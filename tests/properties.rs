//! Cross-crate property tests on the public facade.

use proptest::prelude::*;
use yield_aware_cache::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn populations_are_reproducible(chips in 1usize..40, seed in any::<u64>()) {
        let a = Population::generate(chips, seed);
        let b = Population::generate(chips, seed);
        prop_assert_eq!(a.chips, b.chips);
    }

    #[test]
    fn constraints_scale_monotonically(
        k1 in 0.1f64..2.0,
        k2 in 0.1f64..2.0,
        seed in any::<u64>(),
    ) {
        let population = Population::generate(60, seed);
        let spec = |k| ConstraintSpec { name: "p", delay_sigma_factor: k, leakage_mean_factor: 3.0 };
        let a = YieldConstraints::derive(&population, spec(k1.min(k2)));
        let b = YieldConstraints::derive(&population, spec(k1.max(k2)));
        prop_assert!(a.delay_limit <= b.delay_limit);
        // A stricter limit never loses fewer chips.
        let lost = |c: &YieldConstraints| {
            population.chips.iter().filter(|chip| classify(&chip.regular, c).is_some()).count()
        };
        prop_assert!(lost(&a) >= lost(&b));
    }

    #[test]
    fn scheme_outcomes_are_exhaustive_and_consistent(seed in any::<u64>()) {
        let population = Population::generate(40, seed);
        let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
        let hybrid = Hybrid::new(PowerDownKind::Vertical);
        for chip in &population.chips {
            let outcome = hybrid.apply(chip, &constraints, population.calibration());
            let failing = classify(&chip.regular, &constraints).is_some();
            match outcome {
                SchemeOutcome::MeetsAsIs => prop_assert!(!failing),
                SchemeOutcome::Saved(_) | SchemeOutcome::Lost(_) => prop_assert!(failing),
            }
        }
    }

    #[test]
    fn cycle_quantisation_is_monotone(
        seed in any::<u64>(),
        d1 in 0.1f64..5.0,
        d2 in 0.1f64..5.0,
    ) {
        let population = Population::generate(30, seed);
        let c = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(c.cycles_for(lo) <= c.cycles_for(hi));
        prop_assert!(c.cycles_for(lo) >= c.base_cycles);
    }

    #[test]
    fn traces_feed_the_pipeline_without_stalling_forever(
        seed in any::<u64>(),
        bench_idx in 0usize..24,
    ) {
        let profile = spec2000::all_profiles().swap_remove(bench_idx);
        let mem = MemoryHierarchy::new(HierarchyConfig::paper()).unwrap();
        let mut cpu = Pipeline::new(PipelineConfig::paper(), mem).unwrap();
        let trace = TraceGenerator::new(profile, seed);
        let stats = cpu.run(trace, 500, 2_000);
        prop_assert!(stats.committed >= 2_000);
        prop_assert!(stats.cpi() > 0.25);
    }
}
