//! Property tests for the supervised parallel executor, on the public
//! facade: fault-injected, retried, sharded parallel runs must reproduce
//! the serial study bit-for-bit, and a killed parallel run must resume
//! to the identical result.

use proptest::prelude::*;
use std::time::Duration;
use yield_aware_cache::core::executor::run_checkpointed_workers_budget;
use yield_aware_cache::prelude::*;

const CHIPS: usize = 48;

fn config(seed: u64, fault_rate: f64) -> PopulationConfig {
    let mut cfg = PopulationConfig::paper(seed);
    cfg.chips = CHIPS;
    if fault_rate > 0.0 {
        cfg.faults = Some(FaultPlan::new(fault_rate, seed ^ 0xfa17).expect("rate in range"));
    }
    cfg
}

fn exec(workers: usize, shard_chips: usize) -> ExecutorConfig {
    let mut e = ExecutorConfig::with_workers(workers);
    e.shard_chips = shard_chips;
    e.backoff = Duration::ZERO;
    e
}

fn bits(pop: &Population) -> Vec<(u64, u64, u64)> {
    pop.chips
        .iter()
        .map(|c| {
            (
                c.index,
                c.regular.delay.to_bits(),
                c.regular.leakage.to_bits(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fault-injected shards, retried to success, produce the same
    /// LossTable as the serial path — for any worker count and shard
    /// size.
    #[test]
    fn parallel_run_with_faults_matches_serial(
        seed in any::<u64>(),
        workers in 1usize..8,
        shard_chips in 4usize..24,
        fault_step in 0u8..4,
        shard_fault_rate in 0.2f64..0.8,
    ) {
        // fault_step 0 = no chip faults; 1..=3 = 5/10/15% injection.
        let cfg = config(seed, 0.05 * f64::from(fault_step));
        let mut e = exec(workers, shard_chips);
        // Shards fail their first attempt at shard_fault_rate; the
        // default retry budget recovers all of them.
        e.shard_faults = Some(
            ShardFaultPlan::new(shard_fault_rate, seed ^ 0x5a5a, 1).expect("rate in range"),
        );

        let outcome = run_supervised(&cfg, &e).expect("valid config");
        prop_assert!(!outcome.is_degraded());

        let serial = Population::generate_with(&cfg);
        prop_assert_eq!(bits(&outcome.population), bits(&serial));
        prop_assert_eq!(outcome.population.quarantine(), serial.quarantine());
        if !serial.is_empty() {
            let c = YieldConstraints::derive(&serial, ConstraintSpec::NOMINAL);
            prop_assert_eq!(
                render_loss_table(&table2(&outcome.population, &c)),
                render_loss_table(&table2(&serial, &c))
            );
        }
    }

    /// Kill-resume under parallelism round-trips every f64 bit-exactly.
    #[test]
    fn killed_parallel_run_resumes_bit_exactly(
        seed in any::<u64>(),
        workers in 1usize..6,
        kill_after in 1usize..5,
    ) {
        let cfg = config(seed, 0.1);
        let e = exec(workers, 8);
        let dir = std::env::temp_dir().join("yac-supervised-proptest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("resume-{seed:016x}-{workers}-{kill_after}.ckpt"));
        let _ = std::fs::remove_file(&path);

        let partial = run_checkpointed_workers_budget(&cfg, &e, &path, 1, Some(kill_after))
            .expect("checkpointing works");
        prop_assert!(partial.is_none(), "6 shards > kill_after");
        let outcome = run_checkpointed_workers(&cfg, &e, &path, 2).expect("resume works");
        let _ = std::fs::remove_file(&path);

        prop_assert!(!outcome.is_degraded());
        let serial = Population::generate_with(&cfg);
        prop_assert_eq!(bits(&outcome.population), bits(&serial));
        prop_assert_eq!(outcome.population.chips, serial.chips);
        prop_assert_eq!(outcome.population.quarantine(), serial.quarantine());
    }
}
