//! Integration of the performance half: workload generation through the
//! out-of-order core against repaired caches, and the Table 6 machinery.

use yield_aware_cache::core::perf::{
    benchmark_cpi, canonical_l1d, suite_degradation, table6, PerfOptions,
};
use yield_aware_cache::prelude::*;

fn quick() -> PerfOptions {
    PerfOptions {
        warmup_uops: 5_000,
        measure_uops: 20_000,
        trace_seed: 2006,
    }
}

fn census(a: u8, b: u8, c: u8) -> WayCycleCensus {
    WayCycleCensus {
        ways_4: a,
        ways_5: b,
        ways_6_plus: c,
    }
}

#[test]
fn all_benchmarks_run_on_all_repair_shapes() {
    let opts = quick();
    let shapes = [
        canonical_l1d(census(3, 1, 0), false),
        canonical_l1d(census(3, 1, 0), true),
        canonical_l1d(census(0, 4, 0), false),
        canonical_l1d(census(2, 1, 1), true),
    ];
    for profile in spec2000::all_profiles() {
        for l1d in &shapes {
            let cpi = benchmark_cpi(profile.clone(), l1d, &PipelineConfig::paper(), &opts);
            assert!(
                (0.25..60.0).contains(&cpi),
                "{} on {:?}: cpi {cpi}",
                profile.name,
                l1d.way_latency
            );
        }
    }
}

#[test]
fn degradation_ordering_matches_paper_for_slow_way_counts() {
    let opts = quick();
    let one = suite_degradation(&canonical_l1d(census(3, 1, 0), false), &opts).average;
    let four = suite_degradation(&canonical_l1d(census(0, 4, 0), false), &opts).average;
    assert!(
        one < four,
        "one slow way (+{one:.2}%) must cost less than four (+{four:.2}%)"
    );
    assert!(four > 1.0, "four slow ways must cost real performance");
}

#[test]
fn memory_bound_benchmarks_are_least_hurt_by_vaca() {
    // Paper Fig. 9: mcf/art barely notice a 5-cycle way — their time goes
    // to misses — while cache-resident codes pay the most.
    let opts = PerfOptions {
        warmup_uops: 10_000,
        measure_uops: 60_000,
        trace_seed: 2006,
    };
    let deg = suite_degradation(&canonical_l1d(census(0, 4, 0), false), &opts);
    let get = |name: &str| {
        deg.per_benchmark
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| *d)
            .expect("benchmark present")
    };
    let memory_bound = (get("mcf") + get("art")) / 2.0;
    let core_bound = (get("crafty") + get("gzip") + get("mesa")) / 3.0;
    assert!(
        memory_bound < core_bound,
        "memory-bound {memory_bound:.2}% vs core-bound {core_bound:.2}%"
    );
}

#[test]
fn table6_weighted_sums_are_paper_ordered() {
    let population = Population::generate(600, 2006);
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
    let t = table6(&population, &constraints, &quick());

    // Paper: YAPD 1.08 < Hybrid 1.83 <= VACA 2.20, all small.
    let (yapd, vaca, hybrid) = t.weighted;
    assert!(yapd > 0.0 && vaca > 0.0 && hybrid > 0.0);
    assert!(yapd < 5.0 && vaca < 8.0 && hybrid < 8.0);
    // The Hybrid's weighted cost sits between the specialists' (it takes
    // VACA's repairs where possible and YAPD's where necessary).
    assert!(hybrid <= vaca.max(yapd) + 1.0);

    // The 3-1-0 row dominates the saved-chip census, as in the paper (91
    // of 275).
    let row310 = &t.rows[0];
    assert_eq!(row310.census.to_string(), "3-1-0");
    let total: usize = t.rows.iter().map(|r| r.chip_frequency).sum();
    assert!(
        row310.chip_frequency * 2 >= total / 2,
        "3-1-0 ({}) should be the most common saved configuration of {total}",
        row310.chip_frequency
    );
}

#[test]
fn render_paths_do_not_panic() {
    let population = Population::generate(150, 2006);
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
    let opts = PerfOptions {
        warmup_uops: 1_000,
        measure_uops: 4_000,
        trace_seed: 1,
    };
    let t = table6(&population, &constraints, &opts);
    let text = render_table6(&t);
    assert!(text.contains("3-1-0") && text.contains("wgt sum"));
}
