//! Cross-crate integration: the full path from Monte Carlo variation
//! sampling through the circuit model, constraint derivation and scheme
//! application, exercised through the public facade.

use yield_aware_cache::prelude::*;

fn population() -> (Population, YieldConstraints) {
    let population = Population::generate(600, 2006);
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
    (population, constraints)
}

#[test]
fn the_whole_study_is_deterministic() {
    let (pop_a, c_a) = population();
    let (pop_b, c_b) = population();
    assert_eq!(pop_a.chips, pop_b.chips);
    assert_eq!(c_a, c_b);
    let t_a = table2(&pop_a, &c_a);
    let t_b = table2(&pop_b, &c_b);
    assert_eq!(t_a, t_b);
}

#[test]
fn every_scheme_only_ships_chips_that_meet_constraints() {
    let (population, constraints) = population();
    let cal = population.calibration();
    let schemes: Vec<Box<dyn Scheme>> = vec![
        Box::new(Yapd),
        Box::new(HYapd),
        Box::new(Vaca::default()),
        Box::new(Hybrid::new(PowerDownKind::Vertical)),
        Box::new(Hybrid::new(PowerDownKind::Horizontal)),
        Box::new(NaiveBinning::default()),
    ];
    for chip in &population.chips {
        for scheme in &schemes {
            if let SchemeOutcome::Saved(repair) = scheme.apply(chip, &constraints, cal) {
                // A repair never disables more than one unit and never runs
                // an enabled way beyond 5 cycles (except binning, which the
                // scheduler compensates for).
                assert!(repair.effective_associativity() >= 3, "{}", scheme.name());
                let max = if scheme.name() == "naive binning" {
                    constraints.base_cycles + 10
                } else {
                    constraints.base_cycles + 1
                };
                assert!(
                    repair.slowest_cycles() <= max,
                    "{}: {:?}",
                    scheme.name(),
                    repair
                );
            }
        }
    }
}

#[test]
fn hybrid_dominates_its_components_end_to_end() {
    let (population, constraints) = population();
    let cal = population.calibration();
    let hybrid = Hybrid::new(PowerDownKind::Vertical);
    let vaca = Vaca::default();
    for chip in &population.chips {
        let h = hybrid.apply(chip, &constraints, cal).ships();
        if Yapd.apply(chip, &constraints, cal).ships()
            || vaca.apply(chip, &constraints, cal).ships()
        {
            assert!(h, "hybrid must save chip {}", chip.index);
        }
    }
}

#[test]
fn repaired_configs_translate_into_valid_caches() {
    // Every repair a scheme produces must correspond to a constructible
    // cache configuration.
    let (population, constraints) = population();
    let cal = population.calibration();
    let hybrid = Hybrid::new(PowerDownKind::Vertical);
    let mut seen_repairs = 0;
    for chip in &population.chips {
        if let SchemeOutcome::Saved(repair) = hybrid.apply(chip, &constraints, cal) {
            let mut cfg = CacheConfig::l1d_paper();
            for (w, cycles) in repair.way_cycles.iter().enumerate() {
                match cycles {
                    Some(c) => cfg.way_latency[w] = *c,
                    None => cfg.way_enabled[w] = false,
                }
            }
            cfg.validate().expect("repair maps to a valid cache");
            let cache = SetAssocCache::new(cfg).expect("constructible");
            assert!(cache.config().available_ways(0) >= 3);
            seen_repairs += 1;
        }
    }
    assert!(seen_repairs > 0, "the population must contain saved chips");
}

#[test]
fn horizontal_repairs_translate_into_valid_caches() {
    let (population, constraints) = population();
    let cal = population.calibration();
    let mut seen = 0;
    for chip in &population.chips {
        if let SchemeOutcome::Saved(repair) = HYapd.apply(chip, &constraints, cal) {
            let Some(DisabledUnit::HorizontalRegion(region)) = repair.disabled else {
                panic!("H-YAPD must disable a region");
            };
            let mut cfg = CacheConfig::l1d_paper();
            cfg.disabled_h_region = Some(region);
            cfg.validate().expect("valid H-YAPD cache");
            let cache = SetAssocCache::new(cfg).expect("constructible");
            for set in 0..cache.config().sets {
                assert_eq!(cache.config().available_ways(set), 3);
            }
            seen += 1;
        }
    }
    assert!(seen > 0);
}

#[test]
fn yield_improvements_track_the_papers_ordering() {
    let (population, constraints) = population();
    let t2 = table2(&population, &constraints);
    let t3 = table3(&population, &constraints);

    // Paper, abstract: Hybrid > H-YAPD > YAPD > VACA in loss reduction.
    let yapd = t2.loss_reduction(0);
    let vaca = t2.loss_reduction(1);
    let hybrid = t2.loss_reduction(2);
    let hyapd = t3.loss_reduction(0);
    let hybrid_h = t3.loss_reduction(2);
    assert!(hybrid > yapd, "hybrid {hybrid} vs yapd {yapd}");
    assert!(hybrid_h > hyapd, "hybrid-h {hybrid_h} vs h-yapd {hyapd}");
    assert!(yapd > vaca, "yapd {yapd} vs vaca {vaca}");
    assert!(
        hyapd > yapd - 0.05,
        "h-yapd {hyapd} should be at least on par with yapd {yapd}"
    );

    // Yields in the paper's ballpark (Table 2: 94.6 / 88.7 / 96.8).
    assert!(t2.yield_fraction(Some(0)) > 0.90);
    assert!(t2.yield_fraction(Some(2)) > 0.95);
}

#[test]
fn fig8_population_shape() {
    let (population, _) = population();
    let points = fig8_scatter(&population);
    assert_eq!(points.len(), population.len());
    // Normalised leakage averages 1 by construction; the tail is heavy.
    let mean = points.iter().map(|p| p.normalized_leakage).sum::<f64>() / points.len() as f64;
    assert!((mean - 1.0).abs() < 1e-9);
    let over3x = points.iter().filter(|p| p.normalized_leakage > 3.0).count();
    let frac = over3x as f64 / points.len() as f64;
    assert!(
        (0.02..0.15).contains(&frac),
        "the 3x-mean leakage tail drives Table 2's leakage row: {frac}"
    );
}

#[test]
fn census_matches_loss_rows() {
    let (population, constraints) = population();
    for chip in &population.chips {
        let census = WayCycleCensus::of(&chip.regular, &constraints);
        match classify(&chip.regular, &constraints) {
            Some(LossReason::Delay { violating_ways }) => {
                assert_eq!(
                    usize::from(census.ways_5) + usize::from(census.ways_6_plus),
                    violating_ways
                );
            }
            _ => assert!(census.all_fast()),
        }
    }
}
