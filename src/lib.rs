//! # Yield-Aware Cache Architectures
//!
//! A Rust reproduction of *Yield-Aware Cache Architectures* (Ozdemir,
//! Sinha, Memik, Adams, Zhou — MICRO 2006), complete with every substrate
//! the paper's evaluation depends on:
//!
//! * [`variation`] — spatially-correlated process-variation sampling and
//!   Monte Carlo population generation (§2–3 of the paper);
//! * [`circuit`] — an analytical SRAM timing/leakage model of the 16 KB
//!   4-way cache (the HSPICE substitute, §3);
//! * [`cache`] — functional cache models with way power-down, the H-YAPD
//!   diagonal decoder remap and per-way latencies (§4);
//! * [`workload`] — deterministic synthetic SPEC2000-like traces (§5.2);
//! * [`pipeline`] — a cycle-level out-of-order core with speculative
//!   scheduling, load-bypass buffers and selective replay (the
//!   SimpleScalar substitute, §4.3/§5.2);
//! * [`core`] — the paper's contribution: the YAPD, H-YAPD, VACA and
//!   Hybrid schemes, yield constraints and the full experiment suite
//!   (Tables 2–6, Figures 8–10);
//! * [`obs`] — zero-cost-when-off observability: the metrics registry,
//!   phase timers and benchmark run manifests every layer above reports
//!   into (DESIGN.md §9).
//!
//! # Quick start
//!
//! Reproduce the heart of the paper — how many chips each scheme saves:
//!
//! ```
//! use yield_aware_cache::prelude::*;
//!
//! // 1. Manufacture a (small, for doc-test speed) population of chips.
//! let population = Population::generate(300, 2006);
//!
//! // 2. Derive the paper's yield constraints from the population.
//! let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
//!
//! // 3. Ask each scheme to rescue the failing chips.
//! let table = table2(&population, &constraints);
//! println!("{}", render_loss_table(&table));
//!
//! // The Hybrid dominates: it loses no more chips than YAPD or VACA.
//! let hybrid_losses = table.schemes[2].losses.total();
//! assert!(hybrid_losses <= table.schemes[0].losses.total());
//! assert!(hybrid_losses <= table.schemes[1].losses.total());
//! ```

#![warn(missing_docs)]

pub use yac_cache as cache;
pub use yac_circuit as circuit;
pub use yac_core as core;
pub use yac_obs as obs;
pub use yac_pipeline as pipeline;
pub use yac_variation as variation;
pub use yac_workload as workload;

/// The most commonly used types and functions, re-exported flat.
pub mod prelude {
    pub use yac_cache::{AccessKind, CacheConfig, HierarchyConfig, MemoryHierarchy, SetAssocCache};
    pub use yac_circuit::{CacheCircuitModel, CacheCircuitResult, CacheVariant};
    pub use yac_core::perf::{
        canonical_l1d, render_table6, suite_degradation, table6, PerfOptions,
    };
    pub use yac_core::{
        classify, constraint_sweep, fig8_scatter, full_study, full_study_supervised,
        full_study_workers, render_constraint_sweep, render_loss_table, run_checkpointed,
        run_checkpointed_workers, run_supervised, run_sweep, table2, table3, yield_interval,
        ChaosPlan, ChipSample, ConstraintSpec, DegradedShard, DisabledUnit, ExecutorConfig,
        FullStudy, HYapd, Hybrid, HybridPolicy, LossReason, MeasurementError, NaiveBinning,
        Population, PopulationConfig, PowerDownKind, QuarantineLedger, RepairedCache, Scheme,
        SchemeOutcome, ShardFaultPlan, StudyError, StudyOutcome, SweepConfig, SweepGrid,
        SweepOutcome, Vaca, WayCycleCensus, Yapd, YieldConstraints, YieldInterval,
    };
    pub use yac_obs::{Metric, Phase, Registry, RunManifest};
    pub use yac_pipeline::{Pipeline, PipelineConfig, SimStats};
    pub use yac_variation::{CacheVariation, FaultPlan, MonteCarlo, Parameter, VariationConfig};
    pub use yac_workload::{spec2000, BenchmarkProfile, MicroOp, OpClass, TraceGenerator};
}
