//! Tables 4 and 5 of the paper: total yield losses under relaxed
//! (mean+1.5σ, 4×mean) and strict (mean+0.5σ, 2×mean) constraints, for
//! both power-down organisations.
//!
//! Usage: `cargo run -p yac-bench --release --bin table4_5 [chips] [seed]`

use yac_bench::standard_population;
use yac_core::{constraint_sweep, render_constraint_sweep, ConstraintSpec, PowerDownKind};

fn main() {
    let population = standard_population();
    let specs = [ConstraintSpec::RELAXED, ConstraintSpec::STRICT];

    println!("== Table 4: total losses, regular power-down ==\n");
    let vertical = constraint_sweep(&population, PowerDownKind::Vertical, &specs);
    println!("{}", render_constraint_sweep(&vertical));
    println!("paper: relaxed 184 | YAPD 51, VACA 124, Hybrid 25");
    println!("       strict  727 | YAPD 234, VACA 503, Hybrid 144\n");

    println!("== Table 5: total losses, horizontal power-down ==\n");
    let horizontal = constraint_sweep(&population, PowerDownKind::Horizontal, &specs);
    println!("{}", render_constraint_sweep(&horizontal));
    println!("paper: relaxed 191 | H-YAPD 51, VACA 131, Hybrid 25");
    println!("       strict  752 | H-YAPD 224, VACA 516, Hybrid 146\n");

    for (label, tables) in [("regular", &vertical), ("horizontal", &horizontal)] {
        for t in tables.iter() {
            println!(
                "{label}/{}: hybrid yield {:.1}%  (paper: relaxed ~98.8%, strict ~92.8%)",
                t.spec_name,
                100.0 * t.yield_fraction(Some(2)),
            );
        }
    }
}
