//! Figure 1 of the paper: expected yield and yield-loss factors across
//! process technologies, after the industry data the paper cites ([18],
//! Jones, "A Delayed 90-nm Surprise").
//!
//! This is the paper's motivating background figure — reference data, not
//! a simulation — rendered next to the *parametric* share our own 45 nm
//! Monte Carlo produces for comparison.
//!
//! Usage: `cargo run -p yac-bench --release --bin fig1 [chips] [seed]`

use yac_bench::population_args;
use yac_core::{classify, ConstraintSpec, Population, YieldConstraints};

/// (technology, nominal yield %, defect-density loss %, lithography loss %,
/// parametric loss %) — read off the paper's Figure 1.
const FIG1_DATA: &[(&str, f64, f64, f64, f64)] = &[
    ("0.35 um", 90.0, 6.0, 3.0, 1.0),
    ("0.25 um", 85.0, 8.0, 4.0, 3.0),
    ("0.18 um", 75.0, 10.0, 7.0, 8.0),
    ("0.13 um", 65.0, 12.0, 9.0, 14.0),
    ("90 nm", 52.0, 13.0, 11.0, 24.0),
];

fn bar(pct: f64, scale: f64) -> String {
    "#".repeat((pct * scale).round() as usize)
}

fn main() {
    println!("== Figure 1: yield factors by process technology (industry data [18]) ==\n");
    println!(
        "{:<10}{:>8}{:>9}{:>8}{:>8}   yield",
        "tech", "yield%", "defect%", "litho%", "param%"
    );
    for &(tech, y, d, l, p) in FIG1_DATA {
        println!(
            "{tech:<10}{y:>8.0}{d:>9.0}{l:>8.0}{p:>8.0}   |{}",
            bar(y, 0.5)
        );
    }
    println!("\nparametric loss grows from a rounding error at 0.35 um to the single");
    println!("largest factor at 90 nm — the trend the paper's schemes attack.\n");

    // Our own 45 nm data point: the parametric loss of the simulated cache.
    let (chips, seed) = population_args();
    let population = Population::generate(chips, seed);
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
    let lost = population
        .chips
        .iter()
        .filter(|c| classify(&c.regular, &constraints).is_some())
        .count();
    let pct = 100.0 * lost as f64 / population.len() as f64;
    println!(
        "this repository's 45 nm cache model: {pct:.1}% parametric loss from the L1D\nalone ({lost} of {chips} chips), continuing the curve (the paper cites ~30%\noverall yield reported for 45 nm [3])."
    );
}
