//! Table 2 of the paper: sources of yield loss with regular power-down,
//! and the losses remaining under YAPD, VACA and the Hybrid — plus the
//! abstract's headline yield numbers.
//!
//! Usage: `cargo run -p yac-bench --release --bin table2 [chips] [seed]`

use yac_bench::standard_population;
use yac_core::{render_loss_table, table2, ConstraintSpec, YieldConstraints};

fn main() {
    let population = standard_population();
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
    let table = table2(&population, &constraints);

    println!("== Table 2: sources of yield loss for regular power-down ==\n");
    println!("{}", render_loss_table(&table));
    println!(
        "quarantined: {} chips excluded during generation/evaluation",
        table.quarantined
    );
    println!("paper (2000 chips): base 138/126/36/23/16 = 339");
    println!("  YAPD 33/0/36/23/16 = 108   VACA 138/34/20/19/15 = 226   Hybrid 33/0/7/11/13 = 64");
    println!();
    println!("headline (abstract): YAPD reduces yield loss 68.1%, VACA 33.3%, Hybrid 81.1%;");
    println!(
        "measured:            YAPD {:.1}%, VACA {:.1}%, Hybrid {:.1}%",
        100.0 * table.loss_reduction(0),
        100.0 * table.loss_reduction(1),
        100.0 * table.loss_reduction(2),
    );
    println!(
        "overall yield:       base {:.1}%, YAPD {:.1}%, VACA {:.1}%, Hybrid {:.1}%  (paper: 83.1 / 94.6 / ~88.7 / 96.8)",
        100.0 * table.yield_fraction(None),
        100.0 * table.yield_fraction(Some(0)),
        100.0 * table.yield_fraction(Some(1)),
        100.0 * table.yield_fraction(Some(2)),
    );
}
