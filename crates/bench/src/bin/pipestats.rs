//! Pipeline diagnostics: per-benchmark CPI, L1D hit rate, misprediction
//! rate, replays and bypass stalls for the base machine and the repaired
//! cache configurations of Table 6.
//!
//! Usage: `cargo run -p yac-bench --release --bin pipestats [uops]`

use yac_cache::{HierarchyConfig, MemoryHierarchy};
use yac_pipeline::{Pipeline, PipelineConfig};
use yac_workload::{spec2000, TraceGenerator};

fn run(
    name: &str,
    cfg: PipelineConfig,
    hier: HierarchyConfig,
    uops: u64,
) -> yac_pipeline::SimStats {
    let mem = MemoryHierarchy::new(hier).expect("valid hierarchy");
    let mut cpu = Pipeline::new(cfg, mem).expect("valid pipeline");
    let trace = TraceGenerator::new(spec2000::profile(name).expect("known benchmark"), 2006);
    cpu.run(trace, uops / 5, uops)
}

fn main() {
    let uops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);

    println!(
        "{:<10}{:>8}{:>8}{:>8}{:>8}{:>9}{:>9}{:>8}{:>8}{:>8}{:>8}",
        "bench",
        "CPI",
        "l1d%",
        "bpred%",
        "ipc",
        "vreplay",
        "vbypass",
        "+v5",
        "+yapd",
        "+bin5",
        "+bin6"
    );
    let handles: Vec<_> = spec2000::all_profiles()
        .into_iter()
        .map(|p| {
            std::thread::spawn(move || {
                let base = run(
                    p.name,
                    PipelineConfig::paper(),
                    HierarchyConfig::paper(),
                    uops,
                );

                let mut vaca = HierarchyConfig::paper();
                vaca.l1d.way_latency = vec![4, 4, 4, 5];
                let v = run(p.name, PipelineConfig::paper(), vaca, uops);

                let mut yapd = HierarchyConfig::paper();
                yapd.l1d.way_enabled[3] = false;
                let y = run(p.name, PipelineConfig::paper(), yapd, uops);

                let mut bin5 = HierarchyConfig::paper();
                bin5.l1d.way_latency = vec![5; 4];
                let mut cfg5 = PipelineConfig::paper();
                cfg5.assumed_load_latency = 5;
                let b5 = run(p.name, cfg5, bin5, uops);

                let mut bin6 = HierarchyConfig::paper();
                bin6.l1d.way_latency = vec![6; 4];
                let mut cfg6 = PipelineConfig::paper();
                cfg6.assumed_load_latency = 6;
                let b6 = run(p.name, cfg6, bin6, uops);

                (p.name, base, v, y, b5, b6)
            })
        })
        .collect();

    let mut sum_v = 0.0;
    let mut sum_y = 0.0;
    let mut sum_b5 = 0.0;
    let mut sum_b6 = 0.0;
    let mut n = 0.0;
    for h in handles {
        let (name, base, v, y, b5, b6) = h.join().expect("worker");
        let dv = 100.0 * (v.cpi() / base.cpi() - 1.0);
        let dy = 100.0 * (y.cpi() / base.cpi() - 1.0);
        let d5 = 100.0 * (b5.cpi() / base.cpi() - 1.0);
        let d6 = 100.0 * (b6.cpi() / base.cpi() - 1.0);
        sum_v += dv;
        sum_y += dy;
        sum_b5 += d5;
        sum_b6 += d6;
        n += 1.0;
        println!(
            "{:<10}{:>8.3}{:>8.1}{:>8.2}{:>8.2}{:>9}{:>9}{:>7.2}%{:>7.2}%{:>7.2}%{:>7.2}%",
            name,
            base.cpi(),
            100.0 * base.l1d_load_hit_rate(),
            100.0 * base.mispredict_rate(),
            base.ipc(),
            v.replays,
            v.bypass_stalls,
            dv,
            dy,
            d5,
            d6,
        );
    }
    println!(
        "\naverage: VACA 3-1-0 = {:.2}% (paper 1.81) | YAPD = {:.2}% (1.08) | bin5 = {:.2}% (6.42) | bin6 = {:.2}% (12.62)",
        sum_v / n, sum_y / n, sum_b5 / n, sum_b6 / n
    );
}
