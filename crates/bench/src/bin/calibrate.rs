//! Calibration inspector: prints the population statistics the yield
//! analysis depends on, next to the paper's Table 2/3 targets.
//!
//! Usage: `cargo run -p yac-bench --release --bin calibrate [chips] [seed]`

use yac_circuit::CacheCircuitModel;
use yac_variation::stats::{pearson, Summary};
use yac_variation::{MonteCarlo, VariationConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let chips: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2006);

    let mc = MonteCarlo::new(VariationConfig::default());
    let dies = mc.generate(chips, seed);
    let model = CacheCircuitModel::regular();
    let results: Vec<_> = dies.iter().map(|d| model.evaluate(d)).collect();

    let delays: Vec<f64> = results.iter().map(|r| r.delay).collect();
    let leaks: Vec<f64> = results.iter().map(|r| r.leakage).collect();
    let d = Summary::from_slice(&delays).unwrap();
    let l = Summary::from_slice(&leaks).unwrap();
    println!("delay:   {d}  cv={:.3}", d.cv());
    println!("leakage: {l}  cv={:.3}", l.cv());
    println!(
        "pearson(delay, leakage) = {:.3}",
        pearson(&delays, &leaks).unwrap()
    );

    // Paper's nominal constraints: delay <= mean + 1 sigma; leakage <= 3x mean.
    let delay_limit = d.mean + d.std_dev;
    let leak_limit = 3.0 * l.mean;
    let cycle = delay_limit / 4.0;

    let mut leak_only = 0usize;
    let mut delay_by_ways = [0usize; 5];
    let mut six_plus_of_one_way = 0usize;
    let mut both = 0usize;
    for r in &results {
        let nv = r.ways_violating_delay(delay_limit);
        let leaky = r.leakage > leak_limit;
        if nv > 0 {
            delay_by_ways[nv] += 1;
            if leaky {
                both += 1;
            }
            if nv == 1 {
                let worst = r.ways.iter().map(|w| w.delay).fold(f64::MIN, f64::max);
                let cycles = (worst / cycle).ceil() as u32;
                if cycles >= 6 {
                    six_plus_of_one_way += 1;
                }
            }
        } else if leaky {
            leak_only += 1;
        }
    }
    let total_delay: usize = delay_by_ways.iter().sum();
    println!("\n-- losses at nominal constraints (paper targets in parens, n=2000) --");
    println!("leakage only:      {leak_only}  (138)");
    println!("delay 1 way:       {}  (126)", delay_by_ways[1]);
    println!("delay 2 ways:      {}  (36)", delay_by_ways[2]);
    println!("delay 3 ways:      {}  (23)", delay_by_ways[3]);
    println!("delay 4 ways:      {}  (16)", delay_by_ways[4]);
    println!("total delay:       {total_delay}  (201)");
    println!("total:             {}  (339)", leak_only + total_delay);
    println!("delay&leak overlap {both}");
    println!("1-way violators needing 6+ cycles: {six_plus_of_one_way}  (34)");

    // Full scheme tables via yac-core.
    let pop = yac_core::Population::generate(chips, seed);
    let c = yac_core::YieldConstraints::derive(&pop, yac_core::ConstraintSpec::NOMINAL);
    println!(
        "\n{}",
        yac_core::render_loss_table(&yac_core::table2(&pop, &c))
    );
    println!("paper Table 2: base 138/126/36/23/16=339 | YAPD 33/0/36/23/16=108 | VACA 138/34/20/19/15=226 | Hybrid 33/0/7/11/13=64");
    println!(
        "\n{}",
        yac_core::render_loss_table(&yac_core::table3(&pop, &c))
    );
    println!("paper Table 3: base 138/142/33/29/20=362 | H-YAPD 26/0/33/24/17=100 | VACA 138/38/17/21/19=233 | Hybrid 26/0/6/12/16=60");
}
