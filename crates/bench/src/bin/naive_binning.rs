//! §4.5 of the paper: the naive speed-binning alternative. If any way is
//! slow, the scheduler statically expects the worst latency on *every*
//! load. The paper measured +6.42 % CPI for one extra cycle and +12.62 %
//! for two — the motivation for VACA's per-way latencies.
//!
//! Usage: `cargo run -p yac-bench --release --bin naive_binning [--quick]`

use yac_cache::CacheConfig;
use yac_core::perf::{render_degradation, suite_cpis, PerfOptions, SuiteDegradation};
use yac_pipeline::PipelineConfig;

fn binned(extra: u32, opts: &PerfOptions) -> SuiteDegradation {
    let base = suite_cpis(&CacheConfig::l1d_paper(), &PipelineConfig::paper(), opts);
    let mut l1d = CacheConfig::l1d_paper();
    l1d.way_latency = vec![4 + extra; 4];
    let mut cfg = PipelineConfig::paper();
    cfg.assumed_load_latency = 4 + extra;
    let slow = suite_cpis(&l1d, &cfg, opts);
    let per_benchmark: Vec<(&'static str, f64)> = base
        .iter()
        .zip(&slow)
        .map(|(&(n, b), &(_, m))| (n, 100.0 * (m / b - 1.0)))
        .collect();
    let average = per_benchmark.iter().map(|(_, d)| d).sum::<f64>() / per_benchmark.len() as f64;
    SuiteDegradation {
        per_benchmark,
        average,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        PerfOptions::quick()
    } else {
        PerfOptions::default()
    };
    eprintln!("simulating 5-cycle and 6-cycle bins over 24 benchmarks ...");
    let bin5 = binned(1, &opts);
    let bin6 = binned(2, &opts);

    println!("== Naive speed binning (paper section 4.5) ==\n");
    println!(
        "{}",
        render_degradation(
            "CPI increase [%] when every load is scheduled at the binned latency",
            &[("5-cycle", &bin5), ("6-cycle", &bin6)],
        )
    );
    println!(
        "paper: +6.42% (one extra cycle), +12.62% (two extra cycles); ratio {:.2} vs paper {:.2}",
        bin6.average / bin5.average,
        12.62 / 6.42
    );
}
