//! Which variation source matters? Total-effect variance decomposition of
//! cache delay and leakage across the paper's Table 1 parameters
//! (quantifying §2's qualitative discussion).
//!
//! Usage: `cargo run -p yac-bench --release --bin sensitivity [chips] [seed]`

use yac_bench::population_args;
use yac_core::sensitivity::sensitivity_study;

fn main() {
    let (chips, seed) = population_args();
    eprintln!("freeze-one-source analysis over {chips} chips ...");
    let report = sensitivity_study(chips, seed);
    println!("== variance decomposition by variation source ==\n");
    println!("{report}");
    println!("reading: the paper's §2 claims V_t (exponential leakage, near-threshold");
    println!("delay) and L_gate dominate while interconnect geometry is second-order;");
    println!("the worst-cell extreme-value term shapes the delay tail only.");
}
