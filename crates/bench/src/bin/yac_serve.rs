//! `yac-serve` — the interactive sweep service CLI, its resilient
//! client, and the network torture harness.
//!
//! Serve mode starts a `yac_core::service::SweepService` on a local TCP
//! socket and runs until a client sends the `shutdown` op (or `drain`,
//! which finishes in-flight queries first):
//!
//! ```text
//! yac-serve serve [--listen ADDR] [--port-file PATH] [--workers N]
//!                 [--max-inflight N] [--cache-bytes N]
//!                 [--max-conns N] [--read-deadline-ms N]
//!                 [--write-deadline-ms N] [--retry-after-ms N]
//!                 [--heartbeat-ms N] [--scrub-ms N] [--max-reassigns N]
//!                 [--cache-file PATH] [--warm-journal PATH --chips N --seeds 1,2
//!                  --constraints nominal,... --schemes regular|horizontal|both
//!                  [--cpi WARMUP,MEASURE]]
//!                 [--trace PATH] [--progress]
//! ```
//!
//! `--listen 127.0.0.1:0` (the default) binds an ephemeral port;
//! `--port-file` writes the bound `ADDR:PORT` once listening, which is
//! how scripts (and CI's `service-smoke` job) rendezvous. `--cache-file`
//! loads a `YAC-CACHE v1` snapshot at startup (a corrupt one is
//! discarded with a warning — the cache is an optimisation) and saves
//! the cache there on clean shutdown. `--warm-journal` pre-populates
//! the cache from a completed sweep journal; the grid flags must
//! describe that journal's grid, and a fingerprint mismatch is refused
//! with exit code 4. Serve mode honours `YAC_CHAOS` (including the
//! `net_rate`/`net_delay_us` wire-fault keys and the self-healing
//! drills `mem_rate`/`stall_shard`), so a chaos-injected server can be
//! stood up from the environment alone.
//!
//! The self-healing runtime is on by default: `--heartbeat-ms` sets the
//! stall sentinel's no-progress budget (0 disables supervision),
//! `--scrub-ms` the cache scrubber's pass interval (0 disables the
//! scrubber thread; reads still verify CRCs), and `--max-reassigns` how
//! many times a stalled shard moves to a fresh worker before the query
//! completes with that shard honestly degraded. When `--cache-file` is
//! set the scrubber also re-verifies the persisted snapshot's line CRCs
//! and rewrites it from memory when a line has rotted.
//!
//! Client modes send requests and print the raw reply JSON to stdout
//! (or `--out PATH`):
//!
//! ```text
//! yac-serve query --connect ADDR --chips N --seed S
//!           --constraint nominal|relaxed|strict --kind vertical|horizontal
//!           [--cpi WARMUP,MEASURE] [--deadline-ms N] [--retries N]
//!           [--out PATH]
//! yac-serve stats --connect ADDR
//! yac-serve health --connect ADDR
//! yac-serve drain --connect ADDR
//! yac-serve shutdown --connect ADDR
//! ```
//!
//! `health` asks for the liveness report: uptime, in-flight queries,
//! lane occupancy/stalls, heartbeat misses, reassignments, scrub and
//! quarantine/repair counters, degraded results and pool restarts.
//!
//! Query mode uses the resilient client: transport faults and `busy`
//! refusals are retried with jittered exponential backoff (honouring
//! the server's `retry_after_ms` hint) under a circuit breaker;
//! `--retries` caps the attempts and `--deadline-ms` both bounds the
//! whole call client-side and rides the wire so the server cancels the
//! query cooperatively when it expires.
//!
//! Torture mode runs a seeded client/server chaos campaign in one
//! process and checks the resilience invariants (see `run_torture`):
//!
//! ```text
//! yac-serve torture [--seed N] [--net-rate R] [--clients N]
//!           [--requests N] [--chips N] [--trace PATH]
//! ```
//!
//! # Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success (result, stats, health, bye, or a drain acknowledged) |
//! | 1    | error: bad flags, transport failure, server `error` reply, torture invariant violation |
//! | 3    | the service answered `busy` or `retryable` after all retries (typed backpressure — retry later) |
//! | 4    | warm-journal grid-fingerprint mismatch |
//! | 5    | the service is draining and refused the query |
//! | 6    | the query's deadline expired server-side (shards cancelled cooperatively) |
//! | 7    | the resilient client gave up: breaker open, attempts exhausted, or client deadline |

use std::io::{Read, Write};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use yac_core::client::{ClientConfig, ClientError, ResilientClient};
use yac_core::service::{self, ServiceConfig, ServiceReply, ServiceRequest, StudyQuery};
use yac_core::sweep::CpiOptions;
use yac_core::{
    chaos, ChaosPlan, ConstraintSpec, PowerDownKind, ResultCache, StudyError, SweepConfig,
    SweepGrid, SweepService,
};
use yac_obs::progress::{ProgressConfig, ProgressReporter};
use yac_obs::Metric;

/// Exit code when the service refuses a query with typed backpressure.
const BUSY_EXIT: u8 = 3;
/// Exit code for a warm-journal grid-fingerprint mismatch.
const MISMATCH_EXIT: u8 = 4;
/// Exit code when the service is draining and refused the query.
const DRAINING_EXIT: u8 = 5;
/// Exit code when the query's server-side deadline expired.
const DEADLINE_EXIT: u8 = 6;
/// Exit code when the resilient client gave up (breaker, retries or
/// client deadline).
const UNAVAILABLE_EXIT: u8 = 7;

struct ServeArgs {
    listen: String,
    port_file: Option<String>,
    workers: usize,
    max_inflight: usize,
    cache_bytes: usize,
    max_conns: usize,
    read_deadline_ms: u64,
    write_deadline_ms: u64,
    retry_after_ms: u64,
    /// Stall-sentinel no-progress budget in ms; 0 disables supervision.
    heartbeat_ms: u64,
    /// Cache-scrubber pass interval in ms; 0 disables the thread.
    scrub_ms: u64,
    max_reassigns: u32,
    cache_file: Option<String>,
    warm_journal: Option<String>,
    chips: usize,
    seeds: Vec<u64>,
    constraints: Vec<ConstraintSpec>,
    kinds: Vec<PowerDownKind>,
    cpi: Option<CpiOptions>,
    trace: Option<String>,
    progress: bool,
}

struct ClientArgs {
    connect: String,
    chips: usize,
    seed: u64,
    constraint: ConstraintSpec,
    kind: PowerDownKind,
    cpi: Option<CpiOptions>,
    deadline_ms: Option<u64>,
    retries: u32,
    out: Option<String>,
}

struct TortureArgs {
    seed: u64,
    net_rate: f64,
    clients: usize,
    requests: usize,
    chips: usize,
    trace: Option<String>,
}

fn parse_constraint(name: &str) -> Result<ConstraintSpec, String> {
    service::constraint_by_name(name).ok_or_else(|| format!("unknown constraint {name:?}"))
}

fn parse_cpi(spec: &str) -> Result<CpiOptions, String> {
    let (warm, meas) = spec
        .split_once(',')
        .ok_or_else(|| format!("--cpi: expected WARMUP,MEASURE, got {spec:?}"))?;
    Ok(CpiOptions {
        warmup_uops: warm.trim().parse().map_err(|e| format!("--cpi: {e}"))?,
        measure_uops: meas.trim().parse().map_err(|e| format!("--cpi: {e}"))?,
    })
}

fn parse_serve_args(it: &mut impl Iterator<Item = String>) -> Result<ServeArgs, String> {
    let defaults = ServiceConfig::default();
    let mut args = ServeArgs {
        listen: "127.0.0.1:0".to_owned(),
        port_file: None,
        workers: 2,
        max_inflight: 2,
        cache_bytes: 8 << 20,
        max_conns: defaults.max_conns,
        read_deadline_ms: defaults.read_deadline.as_millis() as u64,
        write_deadline_ms: defaults.write_deadline.as_millis() as u64,
        retry_after_ms: defaults.retry_after_ms,
        heartbeat_ms: defaults
            .heartbeat_budget
            .map_or(0, |d| d.as_millis() as u64),
        scrub_ms: defaults.scrub_interval.map_or(0, |d| d.as_millis() as u64),
        max_reassigns: defaults.max_reassigns,
        cache_file: None,
        warm_journal: None,
        chips: 200,
        seeds: vec![2006],
        constraints: vec![ConstraintSpec::NOMINAL],
        kinds: vec![PowerDownKind::Vertical, PowerDownKind::Horizontal],
        cpi: None,
        trace: None,
        progress: false,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--max-inflight" => {
                args.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|e| format!("--max-inflight: {e}"))?;
            }
            "--cache-bytes" => {
                args.cache_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|e| format!("--cache-bytes: {e}"))?;
            }
            "--max-conns" => {
                args.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--read-deadline-ms" => {
                args.read_deadline_ms = value("--read-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--read-deadline-ms: {e}"))?;
            }
            "--write-deadline-ms" => {
                args.write_deadline_ms = value("--write-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--write-deadline-ms: {e}"))?;
            }
            "--retry-after-ms" => {
                args.retry_after_ms = value("--retry-after-ms")?
                    .parse()
                    .map_err(|e| format!("--retry-after-ms: {e}"))?;
            }
            "--heartbeat-ms" => {
                args.heartbeat_ms = value("--heartbeat-ms")?
                    .parse()
                    .map_err(|e| format!("--heartbeat-ms: {e}"))?;
            }
            "--scrub-ms" => {
                args.scrub_ms = value("--scrub-ms")?
                    .parse()
                    .map_err(|e| format!("--scrub-ms: {e}"))?;
            }
            "--max-reassigns" => {
                args.max_reassigns = value("--max-reassigns")?
                    .parse()
                    .map_err(|e| format!("--max-reassigns: {e}"))?;
            }
            "--cache-file" => args.cache_file = Some(value("--cache-file")?),
            "--warm-journal" => args.warm_journal = Some(value("--warm-journal")?),
            "--chips" => {
                args.chips = value("--chips")?
                    .parse()
                    .map_err(|e| format!("--chips: {e}"))?;
            }
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--seeds: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--constraints" => {
                args.constraints = value("--constraints")?
                    .split(',')
                    .map(|s| parse_constraint(s.trim()))
                    .collect::<Result<_, _>>()?;
            }
            "--schemes" => {
                args.kinds = match value("--schemes")?.as_str() {
                    "regular" => vec![PowerDownKind::Vertical],
                    "horizontal" => vec![PowerDownKind::Horizontal],
                    "both" => vec![PowerDownKind::Vertical, PowerDownKind::Horizontal],
                    other => return Err(format!("--schemes: unknown set {other:?}")),
                };
            }
            "--cpi" => args.cpi = Some(parse_cpi(&value("--cpi")?)?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--progress" => args.progress = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse_client_args(it: &mut impl Iterator<Item = String>) -> Result<ClientArgs, String> {
    let mut args = ClientArgs {
        connect: String::new(),
        chips: 200,
        seed: 2006,
        constraint: ConstraintSpec::NOMINAL,
        kind: PowerDownKind::Vertical,
        cpi: None,
        deadline_ms: None,
        retries: ClientConfig::default().max_attempts,
        out: None,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--connect" => args.connect = value("--connect")?,
            "--chips" => {
                args.chips = value("--chips")?
                    .parse()
                    .map_err(|e| format!("--chips: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--constraint" => args.constraint = parse_constraint(&value("--constraint")?)?,
            "--kind" => {
                args.kind = match value("--kind")?.as_str() {
                    "vertical" => PowerDownKind::Vertical,
                    "horizontal" => PowerDownKind::Horizontal,
                    other => return Err(format!("--kind: unknown kind {other:?}")),
                };
            }
            "--cpi" => args.cpi = Some(parse_cpi(&value("--cpi")?)?),
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                );
            }
            "--retries" => {
                args.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--out" => args.out = Some(value("--out")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.connect.is_empty() {
        return Err("--connect ADDR:PORT is required".into());
    }
    Ok(args)
}

fn parse_torture_args(it: &mut impl Iterator<Item = String>) -> Result<TortureArgs, String> {
    let mut args = TortureArgs {
        seed: 2006,
        net_rate: 0.05,
        clients: 4,
        requests: 12,
        chips: 24,
        trace: None,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--net-rate" => {
                args.net_rate = value("--net-rate")?
                    .parse()
                    .map_err(|e| format!("--net-rate: {e}"))?;
            }
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--chips" => {
                args.chips = value("--chips")?
                    .parse()
                    .map_err(|e| format!("--chips: {e}"))?;
            }
            "--trace" => args.trace = Some(value("--trace")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Installs the `YAC_CHAOS` plan if the environment carries one.
/// Returns `false` (after printing the diagnostic) when the spec is
/// malformed.
fn install_env_chaos(mode: &str) -> bool {
    match ChaosPlan::from_env() {
        Ok(None) => true,
        Ok(Some(plan)) => {
            eprintln!("yac-serve: {mode}: chaos plan installed: {plan:?}");
            chaos::install(plan);
            true
        }
        Err(e) => {
            eprintln!("yac-serve: {mode}: YAC_CHAOS: {e}");
            false
        }
    }
}

/// Writes the bound address to `path` via a temp-name rename, so
/// readers polling the path never observe a half-written address.
fn write_port_file(path: &str, bound: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, bound)?;
    std::fs::rename(&tmp, path)
}

/// Dumps the trace journal as Chrome JSON plus NDJSON next to it.
fn write_traces(trace_path: &str) -> Result<(), String> {
    yac_obs::trace_disable();
    let snapshot = yac_obs::journal().snapshot();
    let trace_path = Path::new(trace_path);
    let ndjson_path = trace_path.with_extension("ndjson");
    yac_obs::perfetto::write_chrome_json(trace_path, &snapshot)
        .map_err(|e| format!("writing {}: {e}", trace_path.display()))?;
    yac_obs::ndjson::write_ndjson(&ndjson_path, &snapshot)
        .map_err(|e| format!("writing {}: {e}", ndjson_path.display()))?;
    eprintln!(
        "yac-serve: traced {} event(s) on {} thread(s) ({} dropped) -> {} + {}",
        snapshot.total_events(),
        snapshot.threads.len(),
        snapshot.dropped_events,
        trace_path.display(),
        ndjson_path.display(),
    );
    Ok(())
}

fn run_serve(args: &ServeArgs) -> ExitCode {
    let registry = yac_obs::global();
    yac_obs::enable();
    registry.reset();
    if args.trace.is_some() {
        yac_obs::trace_label_thread("main");
        yac_obs::trace_enable();
    }
    if !install_env_chaos("serve") {
        return ExitCode::FAILURE;
    }

    let mut config = ServiceConfig {
        exec: yac_core::ExecutorConfig::with_workers(args.workers.max(1)),
        max_inflight: args.max_inflight.max(1),
        cache_bytes: args.cache_bytes,
        max_conns: args.max_conns.max(1),
        read_deadline: Duration::from_millis(args.read_deadline_ms.max(1)),
        write_deadline: Duration::from_millis(args.write_deadline_ms.max(1)),
        retry_after_ms: args.retry_after_ms,
        heartbeat_budget: (args.heartbeat_ms > 0).then(|| Duration::from_millis(args.heartbeat_ms)),
        scrub_interval: (args.scrub_ms > 0).then(|| Duration::from_millis(args.scrub_ms)),
        // The scrubber re-verifies the persisted snapshot too.
        scrub_file: args.cache_file.as_ref().map(std::path::PathBuf::from),
        max_reassigns: args.max_reassigns,
    };
    config.exec.shard_chips = config.exec.shard_chips.min(args.chips.max(1));
    let service = Arc::new(SweepService::new(config));

    if let Some(path) = &args.cache_file {
        match ResultCache::load(Path::new(path), args.cache_bytes) {
            Ok(Some(loaded)) => {
                let entries = loaded.len();
                service.with_cache(|cache| *cache = loaded);
                eprintln!("yac-serve: loaded {entries} cache entr(ies) from {path}");
            }
            Ok(None) => eprintln!("yac-serve: no cache file at {path}, starting cold"),
            Err(e) => {
                // The cache is an optimisation: refuse to trust the
                // file, but serve anyway.
                eprintln!("yac-serve: discarding cache file {path}: {e}");
            }
        }
    }
    if let Some(journal) = &args.warm_journal {
        let grid = SweepGrid {
            chips: args.chips,
            seeds: args.seeds.clone(),
            constraints: args.constraints.clone(),
            kinds: args.kinds.clone(),
        };
        let sweep_config = SweepConfig {
            cpi: args.cpi,
            ..SweepConfig::default()
        };
        let warmed = service
            .with_cache(|cache| cache.warm_from_journal(&grid, &sweep_config, Path::new(journal)));
        match warmed {
            Ok(n) => eprintln!("yac-serve: warmed {n} cache entr(ies) from {journal}"),
            Err(e @ StudyError::Mismatch(_)) => {
                eprintln!("yac-serve: journal mismatch: {e}");
                return ExitCode::from(MISMATCH_EXIT);
            }
            Err(e) => {
                eprintln!("yac-serve: warming from {journal}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let listener = match std::net::TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("yac-serve: binding {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    let bound = match listener.local_addr() {
        Ok(addr) => addr.to_string(),
        Err(e) => {
            eprintln!("yac-serve: local_addr: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.port_file {
        if let Err(e) = write_port_file(path, &bound) {
            eprintln!("yac-serve: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "yac-serve: listening on {bound} ({} worker(s), {} inflight, {} conn(s), {} cache bytes)",
        args.workers.max(1),
        args.max_inflight.max(1),
        args.max_conns.max(1),
        args.cache_bytes,
    );

    let reporter = args.progress.then(|| {
        ProgressReporter::start(
            registry,
            ProgressConfig {
                total_chips: 0,
                workers: args.workers.max(1),
                interval: Duration::from_secs(1),
                label: "yac-serve".to_owned(),
                total_studies: 0,
            },
        )
    });

    let served = service::serve(&listener, &service);
    if let Some(reporter) = reporter {
        reporter.stop();
    }
    if let Err(e) = served {
        eprintln!("yac-serve: serve loop failed: {e}");
        return ExitCode::FAILURE;
    }

    let stats = service.stats();
    eprintln!(
        "yac-serve: shutting down: {} queries ({} served, {} busy), \
         cache {} hit(s) / {} miss(es) / {} eviction(s), {} task(s) stolen, \
         {} slow client(s) evicted, {} connection(s) rejected",
        stats.queries,
        stats.served,
        stats.busy,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.stolen,
        stats.evicted,
        stats.rejected,
    );
    eprintln!(
        "yac-serve: self-healing: {} scrub pass(es), {} entr(ies) quarantined, \
         {} repaired, {} shard(s) reassigned, {} pool restart(s)",
        stats.scrub_passes,
        stats.quarantined,
        stats.repaired,
        stats.reassigned,
        stats.pool_restarts,
    );
    if let Some(path) = &args.cache_file {
        let saved = service.with_cache(|cache| cache.save(Path::new(path)));
        match saved {
            Ok(()) => eprintln!("yac-serve: saved cache to {path}"),
            Err(e) => {
                eprintln!("yac-serve: saving cache to {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(trace_path) = &args.trace {
        if let Err(e) = write_traces(trace_path) {
            eprintln!("yac-serve: {e}");
            return ExitCode::FAILURE;
        }
    }

    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        // A handler thread still holds a reference; workers park until
        // process exit. Harmless, but say so.
        Err(_) => eprintln!("yac-serve: a connection handler outlived the serve loop"),
    }
    ExitCode::SUCCESS
}

/// Maps a terminal reply to the documented exit code. `drain_mode`
/// flips `Draining` from a refusal into the expected acknowledgement.
fn reply_exit(reply: &ServiceReply, drain_mode: bool) -> ExitCode {
    match reply {
        ServiceReply::Result { cached, key, .. } => {
            eprintln!(
                "yac-serve: result key {key:016x} ({})",
                if *cached { "cache hit" } else { "computed" }
            );
            ExitCode::SUCCESS
        }
        ServiceReply::Stats(_) | ServiceReply::Bye => ExitCode::SUCCESS,
        ServiceReply::Health(report) => {
            eprintln!(
                "yac-serve: health: up {} ms, {} inflight, lanes {}/{} busy ({} stalled), \
                 {} heartbeat(s) missed, {} reassigned, {} scrub pass(es), \
                 {} quarantined / {} repaired, {} degraded, {} pool restart(s)",
                report.uptime_ms,
                report.inflight,
                report.lanes_busy,
                report.lanes,
                report.lanes_stalled,
                report.heartbeats_missed,
                report.shards_reassigned,
                report.scrub_passes,
                report.quarantined,
                report.repaired,
                report.degraded,
                report.pool_restarts,
            );
            ExitCode::SUCCESS
        }
        ServiceReply::Retryable { retry_after_ms } => {
            // The same typed-backpressure exit as `busy`: the failure
            // was transient (a healed pool); retrying will succeed.
            eprintln!("yac-serve: transient server fault — retry in {retry_after_ms} ms");
            ExitCode::from(BUSY_EXIT)
        }
        ServiceReply::Busy {
            inflight,
            limit,
            retry_after_ms,
        } => {
            eprintln!(
                "yac-serve: busy ({inflight}/{limit} in flight) — retry in {retry_after_ms} ms"
            );
            ExitCode::from(BUSY_EXIT)
        }
        ServiceReply::Draining { inflight } => {
            if drain_mode {
                eprintln!("yac-serve: draining acknowledged ({inflight} in flight)");
                ExitCode::SUCCESS
            } else {
                eprintln!("yac-serve: service is draining ({inflight} in flight)");
                ExitCode::from(DRAINING_EXIT)
            }
        }
        ServiceReply::Deadline { elapsed_ms } => {
            eprintln!("yac-serve: query deadline expired after {elapsed_ms} ms");
            ExitCode::from(DEADLINE_EXIT)
        }
        ServiceReply::Cancelled => {
            eprintln!("yac-serve: query was cancelled");
            ExitCode::FAILURE
        }
        ServiceReply::Error { message } => {
            eprintln!("yac-serve: error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Sends one request through the resilient client and prints the raw
/// reply (stdout or `--out`).
fn run_client(
    request: &ServiceRequest,
    connect: &str,
    out: Option<&str>,
    config: ClientConfig,
    drain_mode: bool,
) -> ExitCode {
    if !install_env_chaos("client") {
        return ExitCode::FAILURE;
    }
    let mut client = ResilientClient::new(connect, config);
    let (reply, raw) = match client.request(request) {
        Ok(pair) => pair,
        Err(e @ ClientError::BreakerOpen { .. })
        | Err(e @ ClientError::DeadlineExceeded { .. })
        | Err(e @ ClientError::Exhausted { .. }) => {
            eprintln!("yac-serve: {connect}: {e}");
            return ExitCode::from(UNAVAILABLE_EXIT);
        }
    };
    if let Some(path) = out {
        if let Err(e) = std::fs::write(path, &raw) {
            eprintln!("yac-serve: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        println!("{raw}");
    }
    reply_exit(&reply, drain_mode)
}

/// One slowloris pass: opens a connection, dribbles half a frame
/// header, then stalls past the server's read deadline. Returns whether
/// the server dropped it (EOF/reset instead of a hang).
fn slowloris_once(addr: &str, stall: Duration) -> bool {
    let Ok(mut stream) = std::net::TcpStream::connect(addr) else {
        return false;
    };
    // Half a header: enough to arm the server's frame deadline.
    if stream.write_all(&[0, 0, 0, 9]).is_err() {
        return true; // already refused — counts as handled
    }
    std::thread::sleep(stall);
    // An evicting server closed the socket: the read must not hang and
    // must not deliver a reply frame.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut byte = [0u8; 1];
    matches!(stream.read(&mut byte), Ok(0) | Err(_))
}

/// The slowloris campaign: stall connections until the server counts an
/// eviction. Under wire chaos an individual pass can end early — a
/// chaos-injected disconnect kills the connection with a plain error
/// before the eviction deadline fires — so keep poking (bounded) until
/// the `slow_clients_evicted` counter moves. Returns whether every pass
/// was dropped rather than hung on.
fn slowloris(addr: &str, stall: Duration) -> bool {
    let registry = yac_obs::global();
    let before = registry.counter(Metric::SlowClientsEvicted);
    for _ in 0..10 {
        if !slowloris_once(addr, stall) {
            return false;
        }
        if registry.counter(Metric::SlowClientsEvicted) > before {
            return true;
        }
    }
    // Dropped every time but never via the eviction path; the counter
    // invariant will report it.
    true
}

/// The network torture campaign: one in-process server under wire
/// chaos, a swarm of resilient clients hammering a small query space, a
/// deliberate slowloris peer, then a graceful drain. Invariants:
///
/// 1. Every request ends in a typed reply or a typed client error —
///    never a hang (the process itself completing is the proof).
/// 2. All `Result` replies for the same key are bit-identical.
/// 3. The slowloris peer is evicted, not serviced and not hung on.
/// 4. After the drain, the serve loop exits cleanly with no in-flight
///    queries and no leaked admission slots.
/// 5. Chaos made the clients work for it: at least one retry when the
///    fault rate is nonzero.
fn run_torture(args: &TortureArgs) -> ExitCode {
    let registry = yac_obs::global();
    yac_obs::enable();
    registry.reset();
    yac_obs::trace_label_thread("main");
    yac_obs::trace_enable();

    // The environment wins so CI can steer the chaos; flags otherwise.
    if std::env::var("YAC_CHAOS").is_ok() {
        if !install_env_chaos("torture") {
            return ExitCode::FAILURE;
        }
    } else {
        let plan = ChaosPlan::new(args.seed, 0.0)
            .and_then(|p| p.with_net(args.net_rate, Duration::from_micros(500)));
        match plan {
            Ok(plan) => {
                eprintln!("yac-serve: torture: chaos plan installed: {plan:?}");
                chaos::install(plan);
            }
            Err(e) => {
                eprintln!("yac-serve: torture: --net-rate: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let read_deadline = Duration::from_millis(250);
    let mut config = ServiceConfig {
        exec: yac_core::ExecutorConfig::with_workers(2),
        max_inflight: 2,
        cache_bytes: 8 << 20,
        max_conns: args.clients.max(1) * 2 + 4,
        read_deadline,
        write_deadline: Duration::from_millis(500),
        retry_after_ms: 25,
        ..ServiceConfig::default()
    };
    config.exec.shard_chips = config.exec.shard_chips.min(args.chips.max(1));
    let service = Arc::new(SweepService::new(config));
    let listener = match std::net::TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        Err(e) => {
            eprintln!("yac-serve: torture: bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a.to_string(),
        Err(e) => {
            eprintln!("yac-serve: torture: local_addr: {e}");
            return ExitCode::FAILURE;
        }
    };
    let serve_service = Arc::clone(&service);
    let server = std::thread::spawn(move || service::serve(&listener, &serve_service));
    eprintln!(
        "yac-serve: torture: server on {addr}, {} client(s) x {} request(s), chips {}",
        args.clients.max(1),
        args.requests.max(1),
        args.chips.max(1)
    );

    // The slowloris peer runs alongside the swarm.
    let loris_addr = addr.clone();
    let loris = std::thread::spawn(move || slowloris(&loris_addr, read_deadline * 3));

    // The swarm: each client cycles a tiny query space so cache hits,
    // misses and busy refusals all occur. Records per key collect for
    // the bit-identity check.
    let chips = args.chips.max(1);
    let mut swarm = Vec::new();
    for client_index in 0..args.clients.max(1) {
        let addr = addr.clone();
        let requests = args.requests.max(1);
        let seed_base = args.seed;
        swarm.push(std::thread::spawn(move || {
            yac_obs::trace_label_thread(&format!("client-{client_index}"));
            let mut client = ResilientClient::new(
                addr,
                ClientConfig {
                    max_attempts: 6,
                    base_backoff: Duration::from_millis(10),
                    max_backoff: Duration::from_millis(200),
                    deadline: Some(Duration::from_secs(20)),
                    breaker_threshold: 8,
                    breaker_cooldown: Duration::from_millis(100),
                    seed: seed_base ^ (client_index as u64).wrapping_mul(0x9e37),
                },
            );
            let mut results: Vec<(u64, String)> = Vec::new();
            let mut typed_errors = 0usize;
            for i in 0..requests {
                let query = StudyQuery {
                    chips,
                    seed: seed_base + (i % 3) as u64,
                    constraint: ConstraintSpec::NOMINAL,
                    kind: PowerDownKind::Vertical,
                    cpi: None,
                };
                let request = ServiceRequest::Query {
                    query,
                    deadline_ms: Some(15_000),
                };
                match client.request(&request) {
                    Ok((ServiceReply::Result { record, key, .. }, _)) => {
                        results.push((key, record));
                    }
                    Ok(_) | Err(_) => typed_errors += 1,
                }
            }
            (results, typed_errors)
        }));
    }

    let mut records_by_key: std::collections::HashMap<u64, String> =
        std::collections::HashMap::new();
    let mut results = 0usize;
    let mut typed_errors = 0usize;
    let mut mismatches = 0usize;
    for handle in swarm {
        let Ok((client_results, errors)) = handle.join() else {
            eprintln!("yac-serve: torture: a client thread panicked");
            return ExitCode::FAILURE;
        };
        typed_errors += errors;
        for (key, record) in client_results {
            results += 1;
            match records_by_key.get(&key) {
                None => {
                    records_by_key.insert(key, record);
                }
                Some(seen) if *seen == record => {}
                Some(_) => mismatches += 1,
            }
        }
    }
    let loris_evicted = loris.join().unwrap_or(false);

    // Drain: the server finishes in-flight work and exits on its own.
    let mut drainer = ResilientClient::new(addr, ClientConfig::default());
    let drain_ok = matches!(
        drainer.request(&ServiceRequest::Drain),
        Ok((ServiceReply::Draining { .. }, _))
    );
    let serve_result = server.join();
    let clean_exit = matches!(serve_result, Ok(Ok(())));
    let inflight_after = service.inflight();
    let stats = service.stats();

    let retries = registry.counter(Metric::RetryAttempts);
    let evictions = registry.counter(Metric::SlowClientsEvicted);
    let net_faults = registry.counter(Metric::NetFaultsInjected);
    eprintln!(
        "yac-serve: torture: {results} result(s), {typed_errors} typed error(s)/refusal(s), \
         {} distinct key(s), {retries} retry(ies), {evictions} eviction(s), \
         {net_faults} net fault(s), {} rejected, inflight {inflight_after}",
        records_by_key.len(),
        stats.rejected,
    );

    if let Some(trace_path) = &args.trace {
        if let Err(e) = write_traces(trace_path) {
            eprintln!("yac-serve: torture: {e}");
            return ExitCode::FAILURE;
        }
    }
    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => eprintln!("yac-serve: torture: a handler outlived the serve loop"),
    }

    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("yac-serve: torture: INVARIANT VIOLATED: {what}");
            failed = true;
        }
    };
    check(mismatches == 0, "same-key results must be bit-identical");
    check(results > 0, "at least one request must succeed");
    check(
        loris_evicted,
        "the slowloris peer must be evicted, not hung on",
    );
    check(evictions >= 1, "the eviction must be counted");
    check(drain_ok, "the drain request must be acknowledged");
    check(
        clean_exit,
        "the serve loop must exit cleanly after the drain",
    );
    check(inflight_after == 0, "no admission slot may leak");
    check(
        args.net_rate <= 0.0 || retries >= 1,
        "nonzero chaos must provoke at least one retry",
    );
    if failed {
        return ExitCode::FAILURE;
    }
    eprintln!("yac-serve: torture: all invariants held");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut it = std::env::args().skip(1);
    let mode = it.next().unwrap_or_default();
    match mode.as_str() {
        "serve" => match parse_serve_args(&mut it) {
            Ok(args) => run_serve(&args),
            Err(e) => {
                eprintln!("yac-serve: serve: {e}");
                ExitCode::FAILURE
            }
        },
        "query" => match parse_client_args(&mut it) {
            Ok(args) => {
                let request = ServiceRequest::Query {
                    query: StudyQuery {
                        chips: args.chips,
                        seed: args.seed,
                        constraint: args.constraint,
                        kind: args.kind,
                        cpi: args.cpi,
                    },
                    deadline_ms: args.deadline_ms,
                };
                let config = ClientConfig {
                    max_attempts: args.retries.max(1),
                    ..ClientConfig::default()
                };
                run_client(&request, &args.connect, args.out.as_deref(), config, false)
            }
            Err(e) => {
                eprintln!("yac-serve: query: {e}");
                ExitCode::FAILURE
            }
        },
        "torture" => match parse_torture_args(&mut it) {
            Ok(args) => run_torture(&args),
            Err(e) => {
                eprintln!("yac-serve: torture: {e}");
                ExitCode::FAILURE
            }
        },
        "stats" | "health" | "drain" | "shutdown" => {
            let request = match mode.as_str() {
                "stats" => ServiceRequest::Stats,
                "health" => ServiceRequest::Health,
                "drain" => ServiceRequest::Drain,
                _ => ServiceRequest::Shutdown,
            };
            let mut connect = None;
            let mut out = None;
            loop {
                let Some(flag) = it.next() else { break };
                let Some(value) = it.next() else {
                    eprintln!("yac-serve: {mode}: {flag} requires a value");
                    return ExitCode::FAILURE;
                };
                match flag.as_str() {
                    "--connect" => connect = Some(value),
                    "--out" => out = Some(value),
                    other => {
                        eprintln!("yac-serve: {mode}: unknown flag {other}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let Some(connect) = connect else {
                eprintln!("yac-serve: {mode}: --connect ADDR:PORT is required");
                return ExitCode::FAILURE;
            };
            run_client(
                &request,
                &connect,
                out.as_deref(),
                ClientConfig::default(),
                mode == "drain",
            )
        }
        "" => {
            eprintln!(
                "yac-serve: expected a mode: serve | query | stats | health | drain | shutdown | torture"
            );
            ExitCode::FAILURE
        }
        other => {
            eprintln!(
                "yac-serve: unknown mode {other:?} (serve | query | stats | health | drain | shutdown | torture)"
            );
            ExitCode::FAILURE
        }
    }
}
