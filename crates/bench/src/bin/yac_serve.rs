//! `yac-serve` — the interactive sweep service CLI and its tiny client.
//!
//! Serve mode starts a `yac_core::service::SweepService` on a local TCP
//! socket and runs until a client sends the `shutdown` op:
//!
//! ```text
//! yac-serve serve [--listen ADDR] [--port-file PATH] [--workers N]
//!                 [--max-inflight N] [--cache-bytes N]
//!                 [--cache-file PATH] [--warm-journal PATH --chips N --seeds 1,2
//!                  --constraints nominal,... --schemes regular|horizontal|both
//!                  [--cpi WARMUP,MEASURE]]
//!                 [--trace PATH] [--progress]
//! ```
//!
//! `--listen 127.0.0.1:0` (the default) binds an ephemeral port;
//! `--port-file` writes the bound `ADDR:PORT` once listening, which is
//! how scripts (and CI's `service-smoke` job) rendezvous. `--cache-file`
//! loads a `YAC-CACHE v1` snapshot at startup (a corrupt one is
//! discarded with a warning — the cache is an optimisation) and saves
//! the cache there on clean shutdown. `--warm-journal` pre-populates
//! the cache from a completed sweep journal; the grid flags must
//! describe that journal's grid, and a fingerprint mismatch is refused
//! with exit code 4.
//!
//! Client mode sends one request and prints the raw reply JSON to
//! stdout (or `--out PATH`):
//!
//! ```text
//! yac-serve query --connect ADDR --chips N --seed S
//!           --constraint nominal|relaxed|strict --kind vertical|horizontal
//!           [--cpi WARMUP,MEASURE] [--out PATH]
//! yac-serve stats --connect ADDR
//! yac-serve shutdown --connect ADDR
//! ```
//!
//! Query exit codes: 0 for a result, 3 when the service answered
//! `busy` (typed backpressure — retry later), 1 for anything else.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use yac_core::service::{self, ServiceConfig, ServiceReply, ServiceRequest, StudyQuery};
use yac_core::sweep::CpiOptions;
use yac_core::{
    ConstraintSpec, PowerDownKind, ResultCache, StudyError, SweepConfig, SweepGrid, SweepService,
};
use yac_obs::progress::{ProgressConfig, ProgressReporter};

/// Exit code when the service refuses a query with typed backpressure.
const BUSY_EXIT: u8 = 3;
/// Exit code for a warm-journal grid-fingerprint mismatch.
const MISMATCH_EXIT: u8 = 4;

struct ServeArgs {
    listen: String,
    port_file: Option<String>,
    workers: usize,
    max_inflight: usize,
    cache_bytes: usize,
    cache_file: Option<String>,
    warm_journal: Option<String>,
    chips: usize,
    seeds: Vec<u64>,
    constraints: Vec<ConstraintSpec>,
    kinds: Vec<PowerDownKind>,
    cpi: Option<CpiOptions>,
    trace: Option<String>,
    progress: bool,
}

struct ClientArgs {
    connect: String,
    chips: usize,
    seed: u64,
    constraint: ConstraintSpec,
    kind: PowerDownKind,
    cpi: Option<CpiOptions>,
    out: Option<String>,
}

fn parse_constraint(name: &str) -> Result<ConstraintSpec, String> {
    service::constraint_by_name(name).ok_or_else(|| format!("unknown constraint {name:?}"))
}

fn parse_cpi(spec: &str) -> Result<CpiOptions, String> {
    let (warm, meas) = spec
        .split_once(',')
        .ok_or_else(|| format!("--cpi: expected WARMUP,MEASURE, got {spec:?}"))?;
    Ok(CpiOptions {
        warmup_uops: warm.trim().parse().map_err(|e| format!("--cpi: {e}"))?,
        measure_uops: meas.trim().parse().map_err(|e| format!("--cpi: {e}"))?,
    })
}

fn parse_serve_args(it: &mut impl Iterator<Item = String>) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        listen: "127.0.0.1:0".to_owned(),
        port_file: None,
        workers: 2,
        max_inflight: 2,
        cache_bytes: 8 << 20,
        cache_file: None,
        warm_journal: None,
        chips: 200,
        seeds: vec![2006],
        constraints: vec![ConstraintSpec::NOMINAL],
        kinds: vec![PowerDownKind::Vertical, PowerDownKind::Horizontal],
        cpi: None,
        trace: None,
        progress: false,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--max-inflight" => {
                args.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|e| format!("--max-inflight: {e}"))?;
            }
            "--cache-bytes" => {
                args.cache_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|e| format!("--cache-bytes: {e}"))?;
            }
            "--cache-file" => args.cache_file = Some(value("--cache-file")?),
            "--warm-journal" => args.warm_journal = Some(value("--warm-journal")?),
            "--chips" => {
                args.chips = value("--chips")?
                    .parse()
                    .map_err(|e| format!("--chips: {e}"))?;
            }
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--seeds: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--constraints" => {
                args.constraints = value("--constraints")?
                    .split(',')
                    .map(|s| parse_constraint(s.trim()))
                    .collect::<Result<_, _>>()?;
            }
            "--schemes" => {
                args.kinds = match value("--schemes")?.as_str() {
                    "regular" => vec![PowerDownKind::Vertical],
                    "horizontal" => vec![PowerDownKind::Horizontal],
                    "both" => vec![PowerDownKind::Vertical, PowerDownKind::Horizontal],
                    other => return Err(format!("--schemes: unknown set {other:?}")),
                };
            }
            "--cpi" => args.cpi = Some(parse_cpi(&value("--cpi")?)?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--progress" => args.progress = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse_client_args(it: &mut impl Iterator<Item = String>) -> Result<ClientArgs, String> {
    let mut args = ClientArgs {
        connect: String::new(),
        chips: 200,
        seed: 2006,
        constraint: ConstraintSpec::NOMINAL,
        kind: PowerDownKind::Vertical,
        cpi: None,
        out: None,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--connect" => args.connect = value("--connect")?,
            "--chips" => {
                args.chips = value("--chips")?
                    .parse()
                    .map_err(|e| format!("--chips: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--constraint" => args.constraint = parse_constraint(&value("--constraint")?)?,
            "--kind" => {
                args.kind = match value("--kind")?.as_str() {
                    "vertical" => PowerDownKind::Vertical,
                    "horizontal" => PowerDownKind::Horizontal,
                    other => return Err(format!("--kind: unknown kind {other:?}")),
                };
            }
            "--cpi" => args.cpi = Some(parse_cpi(&value("--cpi")?)?),
            "--out" => args.out = Some(value("--out")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.connect.is_empty() {
        return Err("--connect ADDR:PORT is required".into());
    }
    Ok(args)
}

fn run_serve(args: &ServeArgs) -> ExitCode {
    let registry = yac_obs::global();
    yac_obs::enable();
    registry.reset();
    if args.trace.is_some() {
        yac_obs::trace_label_thread("main");
        yac_obs::trace_enable();
    }

    let mut config = ServiceConfig {
        exec: yac_core::ExecutorConfig::with_workers(args.workers.max(1)),
        max_inflight: args.max_inflight.max(1),
        cache_bytes: args.cache_bytes,
    };
    config.exec.shard_chips = config.exec.shard_chips.min(args.chips.max(1));
    let service = Arc::new(SweepService::new(config));

    if let Some(path) = &args.cache_file {
        match ResultCache::load(Path::new(path), args.cache_bytes) {
            Ok(Some(loaded)) => {
                let entries = loaded.len();
                service.with_cache(|cache| *cache = loaded);
                eprintln!("yac-serve: loaded {entries} cache entr(ies) from {path}");
            }
            Ok(None) => eprintln!("yac-serve: no cache file at {path}, starting cold"),
            Err(e) => {
                // The cache is an optimisation: refuse to trust the
                // file, but serve anyway.
                eprintln!("yac-serve: discarding cache file {path}: {e}");
            }
        }
    }
    if let Some(journal) = &args.warm_journal {
        let grid = SweepGrid {
            chips: args.chips,
            seeds: args.seeds.clone(),
            constraints: args.constraints.clone(),
            kinds: args.kinds.clone(),
        };
        let sweep_config = SweepConfig {
            cpi: args.cpi,
            ..SweepConfig::default()
        };
        let warmed = service
            .with_cache(|cache| cache.warm_from_journal(&grid, &sweep_config, Path::new(journal)));
        match warmed {
            Ok(n) => eprintln!("yac-serve: warmed {n} cache entr(ies) from {journal}"),
            Err(e @ StudyError::Mismatch(_)) => {
                eprintln!("yac-serve: journal mismatch: {e}");
                return ExitCode::from(MISMATCH_EXIT);
            }
            Err(e) => {
                eprintln!("yac-serve: warming from {journal}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let listener = match std::net::TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("yac-serve: binding {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    let bound = match listener.local_addr() {
        Ok(addr) => addr.to_string(),
        Err(e) => {
            eprintln!("yac-serve: local_addr: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.port_file {
        // Write to a temp name then rename, so readers polling the path
        // never observe a half-written address.
        let tmp = format!("{path}.tmp");
        if let Err(e) = std::fs::write(&tmp, &bound).and_then(|()| std::fs::rename(&tmp, path)) {
            eprintln!("yac-serve: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "yac-serve: listening on {bound} ({} worker(s), {} inflight, {} cache bytes)",
        args.workers.max(1),
        args.max_inflight.max(1),
        args.cache_bytes,
    );

    let reporter = args.progress.then(|| {
        ProgressReporter::start(
            registry,
            ProgressConfig {
                total_chips: 0,
                workers: args.workers.max(1),
                interval: std::time::Duration::from_secs(1),
                label: "yac-serve".to_owned(),
                total_studies: 0,
            },
        )
    });

    let served = service::serve(&listener, &service);
    if let Some(reporter) = reporter {
        reporter.stop();
    }
    if let Err(e) = served {
        eprintln!("yac-serve: serve loop failed: {e}");
        return ExitCode::FAILURE;
    }

    let stats = service.stats();
    eprintln!(
        "yac-serve: shutting down: {} queries ({} served, {} busy), \
         cache {} hit(s) / {} miss(es) / {} eviction(s), {} task(s) stolen",
        stats.queries,
        stats.served,
        stats.busy,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.stolen,
    );
    if let Some(path) = &args.cache_file {
        let saved = service.with_cache(|cache| cache.save(Path::new(path)));
        match saved {
            Ok(()) => eprintln!("yac-serve: saved cache to {path}"),
            Err(e) => {
                eprintln!("yac-serve: saving cache to {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(trace_path) = &args.trace {
        yac_obs::trace_disable();
        let snapshot = yac_obs::journal().snapshot();
        let trace_path = Path::new(trace_path);
        let ndjson_path = trace_path.with_extension("ndjson");
        if let Err(e) = yac_obs::perfetto::write_chrome_json(trace_path, &snapshot) {
            eprintln!("yac-serve: writing {}: {e}", trace_path.display());
            return ExitCode::FAILURE;
        }
        if let Err(e) = yac_obs::ndjson::write_ndjson(&ndjson_path, &snapshot) {
            eprintln!("yac-serve: writing {}: {e}", ndjson_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "yac-serve: traced {} event(s) on {} thread(s) ({} dropped) -> {} + {}",
            snapshot.total_events(),
            snapshot.threads.len(),
            snapshot.dropped_events,
            trace_path.display(),
            ndjson_path.display(),
        );
    }

    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        // A handler thread still holds a reference; workers park until
        // process exit. Harmless, but say so.
        Err(_) => eprintln!("yac-serve: a connection handler outlived the serve loop"),
    }
    ExitCode::SUCCESS
}

fn run_client(request: &ServiceRequest, connect: &str, out: Option<&str>) -> ExitCode {
    let (reply, raw) = match service::client_request(connect, request) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("yac-serve: {connect}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = out {
        if let Err(e) = std::fs::write(path, &raw) {
            eprintln!("yac-serve: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        println!("{raw}");
    }
    match reply {
        ServiceReply::Result { cached, key, .. } => {
            eprintln!(
                "yac-serve: result key {key:016x} ({})",
                if cached { "cache hit" } else { "computed" }
            );
            ExitCode::SUCCESS
        }
        ServiceReply::Stats(_) | ServiceReply::Bye => ExitCode::SUCCESS,
        ServiceReply::Busy { inflight, limit } => {
            eprintln!("yac-serve: busy ({inflight}/{limit} in flight) — retry later");
            ExitCode::from(BUSY_EXIT)
        }
        ServiceReply::Cancelled => {
            eprintln!("yac-serve: query was cancelled");
            ExitCode::FAILURE
        }
        ServiceReply::Error { message } => {
            eprintln!("yac-serve: error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut it = std::env::args().skip(1);
    let mode = it.next().unwrap_or_default();
    match mode.as_str() {
        "serve" => match parse_serve_args(&mut it) {
            Ok(args) => run_serve(&args),
            Err(e) => {
                eprintln!("yac-serve: serve: {e}");
                ExitCode::FAILURE
            }
        },
        "query" => match parse_client_args(&mut it) {
            Ok(args) => {
                let request = ServiceRequest::Query(StudyQuery {
                    chips: args.chips,
                    seed: args.seed,
                    constraint: args.constraint,
                    kind: args.kind,
                    cpi: args.cpi,
                });
                run_client(&request, &args.connect, args.out.as_deref())
            }
            Err(e) => {
                eprintln!("yac-serve: query: {e}");
                ExitCode::FAILURE
            }
        },
        "stats" | "shutdown" => {
            let request = if mode == "stats" {
                ServiceRequest::Stats
            } else {
                ServiceRequest::Shutdown
            };
            let mut connect = None;
            let mut out = None;
            loop {
                let Some(flag) = it.next() else { break };
                let Some(value) = it.next() else {
                    eprintln!("yac-serve: {mode}: {flag} requires a value");
                    return ExitCode::FAILURE;
                };
                match flag.as_str() {
                    "--connect" => connect = Some(value),
                    "--out" => out = Some(value),
                    other => {
                        eprintln!("yac-serve: {mode}: unknown flag {other}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let Some(connect) = connect else {
                eprintln!("yac-serve: {mode}: --connect ADDR:PORT is required");
                return ExitCode::FAILURE;
            };
            run_client(&request, &connect, out.as_deref())
        }
        "" => {
            eprintln!("yac-serve: expected a mode: serve | query | stats | shutdown");
            ExitCode::FAILURE
        }
        other => {
            eprintln!("yac-serve: unknown mode {other:?} (serve | query | stats | shutdown)");
            ExitCode::FAILURE
        }
    }
}
