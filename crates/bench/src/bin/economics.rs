//! The manufacturer's bottom line: revenue per 2000-chip batch for each
//! shipping policy, combining the yield tables with the Table 6
//! performance discounts under a speed-binning price ladder.
//!
//! Usage: `cargo run -p yac-bench --release --bin economics [chips] [seed] [--quick]`

use yac_bench::standard_population;
use yac_core::economics::{revenue_report, PriceModel};
use yac_core::perf::{table6, PerfOptions};
use yac_core::{table2, ConstraintSpec, YieldConstraints};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        PerfOptions::quick()
    } else {
        PerfOptions::default()
    };
    let population = standard_population();
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
    let losses = table2(&population, &constraints);
    eprintln!("running Table 6 simulations for the degradation discounts ...");
    let perf = table6(&population, &constraints, &opts);

    println!("== revenue per batch (price ladder: -3% price per 1% CPI) ==\n");
    let report = revenue_report(&losses, &perf, &PriceModel::default());
    println!("{report}");
    println!(
        "every scheme monetises chips the base flow scraps; the Hybrid's extra\nsaves outweigh its slightly deeper discount — the economic argument the\npaper's introduction makes qualitatively"
    );
}
