//! Figure 10 of the paper: per-benchmark CPI increase for cache
//! configuration 2-2-0 (two 4-cycle ways, two 5-cycle ways). YAPD cannot
//! save such chips; VACA and the Hybrid both run the two slow ways at 5
//! cycles.
//!
//! Usage: `cargo run -p yac-bench --release --bin fig10 [--quick]`

use yac_core::perf::{canonical_l1d, render_degradation, suite_degradation, PerfOptions};
use yac_core::WayCycleCensus;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        PerfOptions::quick()
    } else {
        PerfOptions::default()
    };
    let census = WayCycleCensus {
        ways_4: 2,
        ways_5: 2,
        ways_6_plus: 0,
    };
    eprintln!("simulating the VACA repair of a 2-2-0 chip over 24 benchmarks ...");
    let vaca = suite_degradation(&canonical_l1d(census, false), &opts);

    println!("== Figure 10: CPI increase per benchmark, configuration 2-2-0 ==\n");
    println!(
        "{}",
        render_degradation(
            "CPI increase [%] (VACA == Hybrid; YAPD cannot save 2-2-0 chips)",
            &[("VACA", &vaca)],
        )
    );
    println!("paper average: 3.3%");
}
