//! Monte Carlo confidence: the paper reports one 2000-chip run; this
//! binary repeats the full Table 2 + Table 3 study across seeds and
//! reports mean ± σ, so differences between schemes can be separated from
//! sampling noise.
//!
//! Usage: `cargo run -p yac-bench --release --bin confidence [chips] [seeds]`

use yac_core::confidence::confidence_study;

fn main() {
    let mut args = std::env::args().skip(1);
    let chips: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2000);
    let n_seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let seeds: Vec<u64> = (0..n_seeds).map(|i| 2006 + i * 101).collect();

    eprintln!("running the full yield study over {n_seeds} seeds x {chips} chips ...");
    let report = confidence_study(chips, &seeds);
    println!("== Monte Carlo confidence ==\n");
    println!("{report}");

    let hyapd = report.scheme("H-YAPD").expect("present");
    let yapd = report.scheme("YAPD").expect("present");
    println!(
        "H-YAPD vs YAPD loss reduction: {} vs {} — {}",
        hyapd.loss_reduction_pct,
        yapd.loss_reduction_pct,
        if hyapd
            .loss_reduction_pct
            .clearly_above(&yapd.loss_reduction_pct)
        {
            "clearly separated (the paper's ordering holds beyond noise)"
        } else {
            "within each other's spread at this sample size"
        }
    );
    let hybrid = report.scheme("Hybrid").expect("present");
    let vaca = report.scheme("VACA").expect("present");
    println!(
        "Hybrid vs VACA loss reduction: {} vs {} — {}",
        hybrid.loss_reduction_pct,
        vaca.loss_reduction_pct,
        if hybrid
            .loss_reduction_pct
            .clearly_above(&vaca.loss_reduction_pct)
        {
            "clearly separated"
        } else {
            "within noise"
        }
    );
}
