//! Table 6 of the paper: average SPEC2000 CPI degradation for every
//! post-repair cache configuration, the frequency of each configuration
//! among the saved chips, and the per-scheme weighted sums.
//!
//! Usage:
//! `cargo run -p yac-bench --release --bin table6 [chips] [seed] [--quick]`

use yac_bench::standard_population;
use yac_core::perf::{render_table6, table6, PerfOptions};
use yac_core::{ConstraintSpec, YieldConstraints};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        PerfOptions::quick()
    } else {
        PerfOptions::default()
    };
    let population = standard_population();
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);

    eprintln!(
        "simulating {} uops/benchmark x 24 benchmarks x ~8 cache configurations ...",
        opts.measure_uops
    );
    let table = table6(&population, &constraints, &opts);

    println!("== Table 6: CPI degradation per saved cache configuration ==\n");
    println!("{}", render_table6(&table));
    println!("paper (chip counts): 3-1-0:91  2-2-0:16  1-3-0:4  0-4-0:1");
    println!("                     3-0-1:35  2-1-1:13  1-2-1:8  0-3-1:2  4-0-0:105");
    println!("paper (degradation %):");
    println!(
        "  3-1-0: YAPD 1.08 VACA 1.81 | 2-2-0: VACA 3.32 | 1-3-0: VACA 5.47 | 0-4-0: VACA 6.42"
    );
    println!("  3-0-1: YAPD 1.08 | 2-1-1: Hyb 3.65 | 1-2-1: Hyb 5.49 | 0-3-1: Hyb 7.39 | 4-0-0: YAPD 1.08");
    println!("paper (weighted sums): YAPD 1.08, VACA 2.20, Hybrid 1.83");
}
