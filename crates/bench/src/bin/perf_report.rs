//! `perf_report` — the calibrated benchmark harness behind the repo's
//! perf trajectory and CI's `bench-smoke` gate.
//!
//! Runs a small-but-representative study end to end with observability
//! enabled — Monte Carlo sampling, circuit evaluation, classification,
//! scheme rescue, and a pipeline-simulation stage over the full
//! SPEC2000-like suite on a healthy and a repaired L1D — then writes a
//! `yac-perf-report/2` JSON manifest (see `yac_obs::manifest`) with
//! total wall time, chips/sec and the per-phase breakdown.
//!
//! ```text
//! perf_report [--chips N] [--seed S] [--out PATH] [--label NAME]
//!             [--baseline PATH] [--max-regress FRAC]
//!             [--workers N] [--no-pipeline]
//!             [--trace PATH] [--progress] [--warm-journal PATH]
//! ```
//!
//! With `--baseline`, compares this run's `chips_per_sec` against the
//! baseline manifest and exits non-zero when throughput regressed by
//! more than `--max-regress` (default 0.20) — the CI gate.
//!
//! With `--workers N` (N ≥ 1) the population is generated on the
//! supervised parallel executor; the manifest gains loss-figure metrics
//! (`table2_base_losses`, `table2_hybrid_losses`, `table3_base_losses`)
//! that CI asserts are identical across worker counts. `--no-pipeline`
//! skips the pipeline-simulation half for fast equivalence runs.
//!
//! With `--trace PATH`, the run records a structured event journal and
//! writes it as Chrome trace-event JSON to `PATH` (load it at
//! <https://ui.perfetto.dev>) plus `yac-trace/1` NDJSON to `PATH` with
//! the extension replaced by `.ndjson`. `--progress` prints a live
//! status line (chips done, chips/s, ETA, worker utilization) to stderr
//! every second. Both are observation-only: the study's results are
//! bit-identical with and without them.

use std::process::ExitCode;
use std::time::Instant;
use yac_cache::CacheConfig;
use yac_core::perf::canonical_l1d;
use yac_core::sweep::{render_result, StudyResult, SweepConfig, SweepGrid};
use yac_core::{
    render_loss_table, run_supervised, suite_cpis_isolated, table2, table3, yield_interval,
    ConstraintSpec, ExecutorConfig, LossTable, PerfOptions, Population, PopulationConfig,
    PowerDownKind, ResultCache, StudyError, StudyQuery, WayCycleCensus, YieldConstraints,
};
use yac_obs::progress::{ProgressConfig, ProgressReporter};
use yac_obs::{extract_metric, ManifestMetric, Metric, Phase, RunManifest};
use yac_pipeline::PipelineConfig;

struct Args {
    chips: usize,
    seed: u64,
    out: String,
    label: String,
    baseline: Option<String>,
    max_regress: f64,
    /// 0 = the serial `Population::generate` path; N ≥ 1 = the
    /// supervised executor with N workers.
    workers: usize,
    pipeline: bool,
    /// Perfetto trace output path (NDJSON lands next to it).
    trace: Option<String>,
    progress: bool,
    /// Sweep journal to warm the service result-cache exercise from.
    warm_journal: Option<String>,
}

/// Exit code for a sweep-journal grid-fingerprint mismatch: the journal
/// belongs to a different grid than this run's flags describe, so
/// rerunning the same command can never succeed.
const MISMATCH_EXIT: u8 = 4;

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        chips: 200,
        seed: 2006,
        out: "BENCH_PR3.json".to_owned(),
        label: "perf_report".to_owned(),
        baseline: None,
        max_regress: 0.20,
        workers: 0,
        pipeline: true,
        trace: None,
        progress: false,
        warm_journal: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--chips" => {
                args.chips = value("--chips")?
                    .parse()
                    .map_err(|e| format!("--chips: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            "--label" => args.label = value("--label")?,
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--max-regress" => {
                args.max_regress = value("--max-regress")?
                    .parse()
                    .map_err(|e| format!("--max-regress: {e}"))?;
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--no-pipeline" => args.pipeline = false,
            "--trace" => args.trace = Some(value("--trace")?),
            "--progress" => args.progress = true,
            "--warm-journal" => args.warm_journal = Some(value("--warm-journal")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// The loss figures CI compares across worker counts.
fn loss_metrics(t2: &LossTable, t3: &LossTable) -> Vec<ManifestMetric> {
    [
        ("table2_base_losses", t2.base.total()),
        ("table2_hybrid_losses", t2.schemes[2].losses.total()),
        ("table3_base_losses", t3.base.total()),
    ]
    .into_iter()
    .map(|(name, value)| ManifestMetric {
        name: name.to_owned(),
        value: value as f64,
        unit: "chips".to_owned(),
    })
    .collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perf_report: {e}");
            return ExitCode::FAILURE;
        }
    };

    let registry = yac_obs::global();
    yac_obs::enable();
    registry.reset();
    if args.trace.is_some() {
        yac_obs::trace_label_thread("main");
        yac_obs::trace_enable();
    }
    let reporter = args.progress.then(|| {
        ProgressReporter::start(
            registry,
            ProgressConfig {
                total_chips: args.chips as u64,
                workers: args.workers.max(1),
                interval: std::time::Duration::from_secs(1),
                label: "perf_report".to_owned(),
                total_studies: 0,
            },
        )
    });
    let t0 = Instant::now();

    // Yield half: sample + circuit-eval (inside generate), then
    // classify + rescue for both cache organisations.
    eprintln!(
        "perf_report: {} chips, seed {}{}",
        args.chips,
        args.seed,
        if args.workers > 0 {
            format!(", {} worker(s)", args.workers)
        } else {
            String::new()
        }
    );
    let population = if args.workers > 0 {
        let mut cfg = PopulationConfig::paper(args.seed);
        cfg.chips = args.chips;
        let exec = ExecutorConfig::with_workers(args.workers);
        let outcome = match run_supervised(&cfg, &exec) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("perf_report: supervised run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if outcome.is_degraded() {
            eprintln!(
                "perf_report: {} shard(s) degraded, {} chips missing, yield {}",
                outcome.degraded.len(),
                outcome.missing_chips(),
                outcome.yield_interval
            );
        }
        outcome.population
    } else {
        Population::generate(args.chips, args.seed)
    };
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
    let t2 = table2(&population, &constraints);
    let t3 = table3(&population, &constraints);
    // Render to exercise the report phase (output discarded; the tables
    // themselves are checked against results/ by the experiment bins).
    let _ = render_loss_table(&t2);
    let _ = render_loss_table(&t3);

    // Service result-cache exercise: key both tables as the single-cell
    // queries the sweep service would use, then prove the cached bytes
    // come back identical. Two misses + two hits land in the manifest as
    // result_cache_misses / result_cache_hits — CI's bench-smoke asserts
    // the exact counts.
    let mut cache = ResultCache::new(1 << 20);
    for (kind, loss) in [
        (PowerDownKind::Vertical, &t2),
        (PowerDownKind::Horizontal, &t3),
    ] {
        let query = StudyQuery {
            chips: args.chips,
            seed: args.seed,
            constraint: ConstraintSpec::NOMINAL,
            kind,
            cpi: None,
        };
        let key = query.fingerprint();
        let shipped = loss.total_chips - loss.base.total();
        let record = render_result(&StudyResult {
            yield_interval: yield_interval(shipped, loss.total_chips, 0),
            evaluated_chips: loss.total_chips + loss.quarantined,
            missing_chips: 0,
            degraded_shards: 0,
            loss: loss.clone(),
            mean_cpi: None,
        });
        if cache.get(key).is_some() {
            eprintln!("perf_report: cache unexpectedly hit before insert (key {key:016x})");
            return ExitCode::FAILURE;
        }
        cache.insert(key, record.clone());
        if cache.get(key).as_deref() != Some(record.as_str()) {
            eprintln!("perf_report: cached record is not byte-identical (key {key:016x})");
            return ExitCode::FAILURE;
        }
    }
    if let Some(journal) = &args.warm_journal {
        // Warm from a sweep journal of this run's implied grid (this
        // chip count and seed, nominal constraint, both organisations).
        let grid = SweepGrid {
            chips: args.chips,
            seeds: vec![args.seed],
            constraints: vec![ConstraintSpec::NOMINAL],
            kinds: vec![PowerDownKind::Vertical, PowerDownKind::Horizontal],
        };
        match cache.warm_from_journal(
            &grid,
            &SweepConfig::default(),
            std::path::Path::new(journal),
        ) {
            Ok(warmed) => {
                eprintln!("perf_report: warmed {warmed} cache entr(ies) from {journal}");
            }
            Err(e @ StudyError::Mismatch(_)) => {
                eprintln!("perf_report: journal mismatch: {e}");
                return ExitCode::from(MISMATCH_EXIT);
            }
            Err(e) => {
                eprintln!("perf_report: warming from {journal}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Perf half: the full benchmark suite on a healthy cache and on the
    // most common repaired configuration (3-1-0 with the slow way off).
    // Skipped with --no-pipeline (the fast CI equivalence runs).
    let mut healthy = Vec::new();
    let mut repaired = Vec::new();
    if args.pipeline {
        let sim_opts = PerfOptions {
            warmup_uops: 2_000,
            measure_uops: 10_000,
            trace_seed: args.seed,
        };
        let pipeline = PipelineConfig::paper();
        let (h, fail_healthy) =
            suite_cpis_isolated(&CacheConfig::l1d_paper(), &pipeline, &sim_opts);
        let repaired_cfg = canonical_l1d(
            WayCycleCensus {
                ways_4: 3,
                ways_5: 1,
                ways_6_plus: 0,
            },
            true,
        );
        let (r, fail_repaired) = suite_cpis_isolated(&repaired_cfg, &pipeline, &sim_opts);
        if !(fail_healthy.is_empty() && fail_repaired.is_empty()) {
            eprintln!(
                "perf_report: {} benchmark worker(s) failed",
                fail_healthy.len() + fail_repaired.len()
            );
            return ExitCode::FAILURE;
        }
        healthy = h;
        repaired = r;
    }

    if let Some(reporter) = reporter {
        reporter.stop();
    }
    let total_wall_s = t0.elapsed().as_secs_f64();
    let mut manifest =
        RunManifest::capture(&args.label, registry, args.seed, args.chips, total_wall_s);
    manifest.metrics.extend(loss_metrics(&t2, &t3));

    // Human-readable summary on stderr; the JSON is the artifact.
    eprintln!(
        "perf_report: {:.2}s total, {:.1} chips/s, {} uops committed, {} benchmarks",
        total_wall_s,
        manifest.metric("chips_per_sec").unwrap_or(0.0),
        registry.counter(Metric::UopsCommitted),
        registry.counter(Metric::BenchmarksSimulated),
    );
    for phase in Phase::ALL {
        eprintln!(
            "  phase {:<14} {:>9.3}s over {} call(s)",
            phase.name(),
            registry.phase_nanos(phase) as f64 / 1e9,
            registry.phase_calls(phase),
        );
    }
    if args.workers > 0 {
        // Busy time across all workers vs. workers × wall clock.
        let busy_s = registry.phase_nanos(Phase::ShardExec) as f64 / 1e9;
        let capacity_s = args.workers as f64 * total_wall_s;
        eprintln!(
            "  worker utilization {:.1}% ({} retries, {} timeouts, {} degraded)",
            100.0 * busy_s / capacity_s.max(f64::MIN_POSITIVE),
            registry.counter(Metric::ShardRetries),
            registry.counter(Metric::ShardTimeouts),
            registry.counter(Metric::DegradedShards),
        );
    }
    if !healthy.is_empty() && !repaired.is_empty() {
        eprintln!(
            "  suite mean CPI healthy {:.4}, repaired(3-1-0, way off) {:.4}",
            healthy.iter().map(|(_, c)| c).sum::<f64>() / healthy.len() as f64,
            repaired.iter().map(|(_, c)| c).sum::<f64>() / repaired.len() as f64,
        );
    }

    let json = manifest.to_json();
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("perf_report: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("perf_report: wrote {}", args.out);

    if let Some(trace_path) = &args.trace {
        yac_obs::trace_disable();
        let snapshot = yac_obs::journal().snapshot();
        let trace_path = std::path::Path::new(trace_path);
        let ndjson_path = trace_path.with_extension("ndjson");
        if let Err(e) = yac_obs::perfetto::write_chrome_json(trace_path, &snapshot) {
            eprintln!("perf_report: writing {}: {e}", trace_path.display());
            return ExitCode::FAILURE;
        }
        if let Err(e) = yac_obs::ndjson::write_ndjson(&ndjson_path, &snapshot) {
            eprintln!("perf_report: writing {}: {e}", ndjson_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "perf_report: traced {} event(s) on {} thread(s) ({} dropped) -> {} + {}",
            snapshot.total_events(),
            snapshot.threads.len(),
            snapshot.dropped_events,
            trace_path.display(),
            ndjson_path.display(),
        );
    }

    if let Some(baseline_path) = &args.baseline {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("perf_report: reading baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(base_tput) = extract_metric(&baseline, "chips_per_sec") else {
            eprintln!("perf_report: baseline {baseline_path} has no chips_per_sec metric");
            return ExitCode::FAILURE;
        };
        let cur_tput = manifest.metric("chips_per_sec").unwrap_or(0.0);
        let regress = if base_tput > 0.0 {
            (base_tput - cur_tput) / base_tput
        } else {
            0.0
        };
        eprintln!(
            "perf_report: throughput {cur_tput:.1} chips/s vs baseline {base_tput:.1} \
             ({:+.1}%)",
            -100.0 * regress
        );
        if regress > args.max_regress {
            eprintln!(
                "perf_report: FAIL — regressed {:.1}% (> {:.0}% allowed)",
                100.0 * regress,
                100.0 * args.max_regress
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
