//! Tester/sensor accuracy study: the paper assumes the slow and leaky
//! ways are identified exactly (§4.1 cites on-die leakage sensors). This
//! binary sweeps the measurement error and reports the escapes (bad chips
//! shipped) and overkills (good chips scrapped) each scheme suffers.
//!
//! Usage: `cargo run -p yac-bench --release --bin measurement [chips] [seed]`

use yac_bench::population_args;
use yac_core::testing::{test_population, MeasurementError};
use yac_core::{
    ConstraintSpec, HYapd, Hybrid, Population, PowerDownKind, Scheme, Yapd, YieldConstraints,
};

fn main() {
    let (chips, seed) = population_args();
    let population = Population::generate(chips, seed);
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);

    let schemes: Vec<Box<dyn Scheme>> = vec![
        Box::new(Yapd),
        Box::new(HYapd),
        Box::new(Hybrid::new(PowerDownKind::Vertical)),
    ];
    // (delay sigma, leakage sigma): speed binning is precise; leakage
    // sensors are coarse.
    let errors = [
        (0.0, 0.0),
        (0.01, 0.05),
        (0.02, 0.10),
        (0.05, 0.20),
        (0.10, 0.40),
    ];

    println!("== yield decisions under measurement error ({chips} chips, seed {seed}) ==\n");
    for scheme in &schemes {
        println!("{}:", scheme.name());
        println!(
            "  {:<22}{:>8}{:>8}{:>10}{:>10}{:>12}{:>12}",
            "error (delay/leak)", "ship", "scrap", "escapes", "overkill", "escape%", "overkill%"
        );
        for &(d, l) in &errors {
            let out = test_population(
                &population,
                &constraints,
                scheme.as_ref(),
                MeasurementError::new(d, l),
                seed ^ xtest_u64(),
            );
            println!(
                "  {:<22}{:>8}{:>8}{:>10}{:>10}{:>11.2}%{:>11.2}%",
                format!("{:.0}% / {:.0}%", d * 100.0, l * 100.0),
                out.good_ships,
                out.good_scraps,
                out.escapes,
                out.overkills,
                100.0 * out.escape_rate(),
                100.0 * out.overkill_rate(),
            );
        }
        println!();
    }
    println!(
        "with exact measurement every scheme makes zero mistakes (the paper's\nassumption); realistic leakage sensors (10-20% error) start shipping\nviolating chips and scrapping salvageable ones"
    );
}

const fn xtest_u64() -> u64 {
    0x7465_7374
}
