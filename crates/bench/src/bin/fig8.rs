//! Figure 8 of the paper: normalised leakage vs latency scatter of the
//! simulated cache population.
//!
//! Prints summary statistics, an ASCII rendering of the scatter, and (with
//! `--csv`) the raw points for external plotting.
//!
//! Usage: `cargo run -p yac-bench --release --bin fig8 [chips] [seed] [--csv]`

use yac_bench::standard_population;
use yac_core::fig8_scatter;
use yac_variation::stats::{pearson, Summary};

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let population = standard_population();
    let points = fig8_scatter(&population);

    let delays: Vec<f64> = points.iter().map(|p| p.delay).collect();
    let leaks: Vec<f64> = points.iter().map(|p| p.normalized_leakage).collect();
    let d = Summary::from_slice(&delays).expect("non-empty population");
    let l = Summary::from_slice(&leaks).expect("non-empty population");
    println!("== Figure 8: normalized leakage vs cache access latency ==");
    println!("latency:  {d}");
    println!("leakage (x mean): {l}");
    println!(
        "pearson(latency, leakage) = {:.3}   (the paper's scatter shows the same anticorrelation:",
        pearson(&delays, &leaks).expect("valid series")
    );
    println!("fast chips are the leaky ones, slow chips are the cool ones)\n");

    // ASCII scatter: x = latency, y = normalized leakage (log-ish bins).
    const W: usize = 72;
    const H: usize = 24;
    let mut grid = vec![[0u32; W]; H];
    let y_max = l.max.min(l.mean + 4.0 * l.std_dev);
    for p in &points {
        let x = ((p.delay - d.min) / (d.max - d.min) * (W - 1) as f64) as usize;
        let y = ((p.normalized_leakage / y_max).min(1.0) * (H - 1) as f64) as usize;
        grid[H - 1 - y][x.min(W - 1)] += 1;
    }
    println!("leakage (up to {y_max:.1}x mean) ^");
    for row in &grid {
        let line: String = row
            .iter()
            .map(|&c| match c {
                0 => ' ',
                1 => '.',
                2..=4 => 'o',
                _ => '#',
            })
            .collect();
        println!("|{line}");
    }
    println!("+{}> latency ({:.2} .. {:.2})", "-".repeat(W), d.min, d.max);

    if csv {
        println!("\nlatency,normalized_leakage");
        for p in &points {
            println!("{:.6},{:.6}", p.delay, p.normalized_leakage);
        }
    }
}
