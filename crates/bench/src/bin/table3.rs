//! Table 3 of the paper: sources of yield loss for the horizontal
//! power-down architecture (2.5 % slower base), with H-YAPD, VACA and the
//! horizontal Hybrid.
//!
//! Usage: `cargo run -p yac-bench --release --bin table3 [chips] [seed]`

use yac_bench::standard_population;
use yac_core::{render_loss_table, table2, table3, ConstraintSpec, YieldConstraints};

fn main() {
    let population = standard_population();
    // Constraints derive once, from the regular architecture (§5.1).
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
    let table = table3(&population, &constraints);

    println!("== Table 3: sources of yield loss for horizontal power-down ==\n");
    println!("{}", render_loss_table(&table));
    println!("paper (2000 chips): base 138/142/33/29/20 = 362");
    println!(
        "  H-YAPD 26/0/33/24/17 = 100   VACA 138/38/17/21/19 = 233   Hybrid 26/0/6/12/16 = 60"
    );
    println!();
    println!("headline (abstract): H-YAPD reduces yield loss 72.4%, Hybrid-H 83.4%;");
    println!(
        "measured:            H-YAPD {:.1}%, VACA {:.1}%, Hybrid-H {:.1}%",
        100.0 * table.loss_reduction(0),
        100.0 * table.loss_reduction(1),
        100.0 * table.loss_reduction(2),
    );
    println!(
        "overall yield:       base {:.1}%, H-YAPD {:.1}%, Hybrid-H {:.1}%  (paper: 81.9 / 95.0 / 97.0)",
        100.0 * table.yield_fraction(None),
        100.0 * table.yield_fraction(Some(0)),
        100.0 * table.yield_fraction(Some(2)),
    );

    // The paper's key cross-architecture comparison: H-YAPD beats YAPD.
    let t2 = table2(&population, &constraints);
    println!(
        "\nH-YAPD vs YAPD loss reduction: {:.1}% vs {:.1}%  (paper: 72.4% vs 68.1%)",
        100.0 * table.loss_reduction(0),
        100.0 * t2.loss_reduction(0),
    );
}
