//! Figure 9 of the paper: per-benchmark CPI increase for cache
//! configuration 3-1-0 (three 4-cycle ways, one 5-cycle way), comparing
//! the YAPD repair (disable the slow way) against VACA (keep it at 5
//! cycles). The Hybrid behaves like VACA here (§5.2).
//!
//! Usage: `cargo run -p yac-bench --release --bin fig9 [--quick]`

use yac_core::perf::{canonical_l1d, render_degradation, suite_degradation, PerfOptions};
use yac_core::WayCycleCensus;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        PerfOptions::quick()
    } else {
        PerfOptions::default()
    };
    let census = WayCycleCensus {
        ways_4: 3,
        ways_5: 1,
        ways_6_plus: 0,
    };
    eprintln!("simulating YAPD and VACA repairs of a 3-1-0 chip over 24 benchmarks ...");
    let yapd = suite_degradation(&canonical_l1d(census, true), &opts);
    let vaca = suite_degradation(&canonical_l1d(census, false), &opts);

    println!("== Figure 9: CPI increase per benchmark, configuration 3-1-0 ==\n");
    println!(
        "{}",
        render_degradation(
            "CPI increase [%] (Hybrid == VACA for this configuration)",
            &[("YAPD", &yapd), ("VACA", &vaca)],
        )
    );
    println!(
        "paper averages: YAPD 1.1%, VACA 1.8%; memory-bound benchmarks (mcf, art, swim)\nsit low on VACA and high on miss-driven YAPD, compute-bound ones the reverse"
    );
}
