//! H-YAPD granularity sweep: the paper fixes 4 horizontal regions (one
//! per bank). How does the region count change what the horizontal
//! power-down can save?
//!
//! Finer regions give the repair more precision (a disable removes less
//! good capacity, less leakage though) and more candidates; coarser
//! regions remove more leakage per disable. The sweep quantifies the
//! trade-off with everything else held fixed.
//!
//! Usage: `cargo run -p yac-bench --release --bin granularity [chips] [seed]`

use yac_bench::population_args;
use yac_circuit::{CacheCircuitModel, CacheGeometry, CacheVariant, Calibration, Technology};
use yac_core::{table3, ConstraintSpec, Population, PopulationConfig, YieldConstraints};
use yac_variation::VariationConfig;

fn main() {
    let (chips, seed) = population_args();
    println!("== H-YAPD horizontal-region granularity ({chips} chips, seed {seed}) ==\n");
    println!(
        "{:<10}{:>10}{:>10}{:>12}{:>12}{:>12}",
        "regions", "base", "H-YAPD", "leak left", "1-way left", "reduction"
    );

    for regions in [2usize, 4, 8] {
        let variation = VariationConfig {
            regions_per_way: regions,
            ..VariationConfig::default()
        };
        let model = |variant| {
            CacheCircuitModel::new(
                Technology::ptm45(),
                Calibration::calibrated(),
                CacheGeometry::paper_16kb(),
                variant,
            )
            .expect("valid model")
        };
        let config = PopulationConfig {
            chips,
            seed,
            variation,
            regular_model: model(CacheVariant::Regular),
            horizontal_model: model(CacheVariant::Horizontal),
            faults: None,
        };
        let population = Population::generate_with(&config);
        let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
        let t = table3(&population, &constraints);
        let hyapd = &t.schemes[0].losses;
        println!(
            "{:<10}{:>10}{:>10}{:>12}{:>12}{:>11.1}%",
            regions,
            t.base.total(),
            hyapd.total(),
            hyapd.leakage,
            hyapd.delay[0],
            100.0 * t.loss_reduction(0),
        );
    }

    println!(
        "\nthis is the yield side only. Coarser regions save more chips because one\ndisable removes more leakage and covers more slow rows — but a region of\na 4-way cache split into R regions holds 4/R way-equivalents of capacity,\nso a 2-region disable costs twice the capacity (and CPI) of the paper's\n4-region disable. The +2.5% H-YAPD latency overhead is held constant\nacross the sweep; a real implementation would also pay more post-decode\noverhead at finer granularity. The paper's 4 (one per bank, one\nway-equivalent per disable) is the layout-aligned sweet spot."
    );
}
