//! Wafer map: sample a full wafer with the radial inter-die systematic,
//! classify every die, and draw where the losses cluster and what the
//! Hybrid scheme recovers.
//!
//! Usage: `cargo run -p yac-bench --release --bin wafer_map [seed] [radial_sigma]`

use yac_circuit::CacheCircuitModel;
use yac_core::{
    classify, ChipSample, ConstraintSpec, Hybrid, Population, PowerDownKind, Scheme,
    YieldConstraints,
};
use yac_variation::wafer::{Wafer, WaferConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2006);
    let radial: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1.0);

    let cfg = WaferConfig {
        radial_sigma: radial,
        ..WaferConfig::default()
    };
    let wafer = Wafer::sample(&cfg, seed);
    eprintln!(
        "sampled {} dies (radial drift {radial} sigma)",
        wafer.dies.len()
    );

    // Evaluate every die through both cache organisations.
    let regular = CacheCircuitModel::regular();
    let horizontal = CacheCircuitModel::horizontal();
    let chips: Vec<ChipSample> = wafer
        .dies
        .iter()
        .enumerate()
        .map(|(i, die)| ChipSample {
            index: i as u64,
            regular: regular.evaluate(&die.variation),
            horizontal: horizontal.evaluate(&die.variation),
        })
        .collect();

    // Constraints from a reference iid population (the spec is set by the
    // product, not by this wafer).
    let reference = Population::generate(2000, seed);
    eprintln!(
        "reference population: {} chips, {} quarantined",
        reference.len(),
        reference.quarantine().len()
    );
    let constraints = YieldConstraints::derive(&reference, ConstraintSpec::NOMINAL);
    let hybrid = Hybrid::new(PowerDownKind::Vertical);
    let cal = reference.calibration();

    let n = cfg.diameter_dies;
    let mut grid = vec![vec![' '; n]; n];
    let mut pass = 0;
    let mut saved = 0;
    let mut lost = 0;
    let mut ring_stats = [(0u32, 0u32); 4]; // (shipped, total) per ring
    for (die, chip) in wafer.dies.iter().zip(&chips) {
        let ring = ((die.radius * 4.0) as usize).min(3);
        ring_stats[ring].1 += 1;
        let symbol = if classify(&chip.regular, &constraints).is_none() {
            pass += 1;
            ring_stats[ring].0 += 1;
            '.'
        } else if hybrid.apply(chip, &constraints, cal).ships() {
            saved += 1;
            ring_stats[ring].0 += 1;
            'o'
        } else {
            lost += 1;
            'X'
        };
        grid[die.row][die.col] = symbol;
    }

    println!("== wafer map ('.' pass, 'o' saved by Hybrid, 'X' lost) ==\n");
    for row in &grid {
        println!("  {}", row.iter().collect::<String>());
    }
    let total = wafer.dies.len();
    println!(
        "\n{total} dies: {pass} pass, {saved} saved by Hybrid, {lost} lost \
         ({:.1}% -> {:.1}% yield)",
        100.0 * pass as f64 / total as f64,
        100.0 * (pass + saved) as f64 / total as f64,
    );
    println!("\nyield by ring (centre -> edge):");
    for (i, (shipped, total)) in ring_stats.iter().enumerate() {
        println!(
            "  ring {i}: {:>5.1}%  ({shipped}/{total})",
            100.0 * f64::from(*shipped) / f64::from(*total)
        );
    }
    println!(
        "\nthe radial drift clusters failures in rings (with the default sign the\nfast, low-V_t centre loses chips to the leakage limit while the slow edge\nbarely notices the delay limit) — spatial structure the paper's iid\nsampling abstracts away; flip the drift sign via the second argument to\nput the losses at the edge instead"
    );
}
