//! Model ablations: disable one physical component of the variation /
//! circuit model at a time and watch which of the paper's claims it
//! carries.
//!
//! * **no spatial correlation structure** (gradient + per-region
//!   systematic off) — H-YAPD's premise (§4.2: the same rows misbehave in
//!   every way) disappears, and with it most of its advantage on
//!   multi-way violators;
//! * **no worst-cell extreme-value spread** — the 6-plus-cycle delay tail
//!   (the chips VACA cannot save) collapses;
//! * **no thermal feedback** — the heavy leakage tail collapses and the
//!   leakage-constraint row empties.
//!
//! Usage: `cargo run -p yac-bench --release --bin ablation [chips] [seed]`

use yac_bench::population_args;
use yac_circuit::{CacheCircuitModel, CacheGeometry, CacheVariant, Calibration, Technology};
use yac_core::{table2, table3, ConstraintSpec, Population, PopulationConfig, YieldConstraints};
use yac_variation::{GradientConfig, VariationConfig};

struct Ablation {
    label: &'static str,
    variation: VariationConfig,
    calibration: Calibration,
}

fn baseline_variation() -> VariationConfig {
    VariationConfig::default()
}

fn ablations() -> Vec<Ablation> {
    let base_var = baseline_variation();
    let base_cal = Calibration::calibrated();

    let mut no_spatial = base_var;
    no_spatial.gradient = GradientConfig::disabled();
    no_spatial.region_systematic_sigma = 0.0;

    let mut no_worst_cell = base_var;
    no_worst_cell.worst_cell_spread_mv = 0.0;
    let mut no_worst_cell_cal = base_cal;
    no_worst_cell_cal.worst_cell_vt_boost_mv = 0.0;

    let mut no_thermal = base_cal;
    no_thermal.thermal_feedback = 0.0;

    vec![
        Ablation {
            label: "full model (baseline)",
            variation: base_var,
            calibration: base_cal,
        },
        Ablation {
            label: "no spatial correlation",
            variation: no_spatial,
            calibration: base_cal,
        },
        Ablation {
            label: "no worst-cell EV tail",
            variation: no_worst_cell,
            calibration: no_worst_cell_cal,
        },
        Ablation {
            label: "no thermal feedback",
            variation: base_var,
            calibration: no_thermal,
        },
    ]
}

fn main() {
    let (chips, seed) = population_args();
    println!("== model ablations ({chips} chips, seed {seed}) ==\n");
    println!(
        "{:<26}{:>7}{:>7}{:>9}{:>8}{:>8}{:>9}{:>9}",
        "model", "lost", "leak", "multiway", "YAPD%", "H-YAPD%", "VACA%", "Hybrid%"
    );

    for ab in ablations() {
        let make_model = |variant| {
            CacheCircuitModel::new(
                Technology::ptm45(),
                ab.calibration,
                CacheGeometry::paper_16kb(),
                variant,
            )
            .expect("valid ablated model")
        };
        let config = PopulationConfig {
            chips,
            seed,
            variation: ab.variation,
            regular_model: make_model(CacheVariant::Regular),
            horizontal_model: make_model(CacheVariant::Horizontal),
            faults: None,
        };
        let population = Population::generate_with(&config);
        let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
        let t2 = table2(&population, &constraints);
        let t3 = table3(&population, &constraints);
        let multiway: usize = t2.base.delay[1..].iter().sum();
        println!(
            "{:<26}{:>7}{:>7}{:>9}{:>7.1}%{:>7.1}%{:>8.1}%{:>8.1}%",
            ab.label,
            t2.base.total(),
            t2.base.leakage,
            multiway,
            100.0 * t2.loss_reduction(0),
            100.0 * t3.loss_reduction(0),
            100.0 * t2.loss_reduction(1),
            100.0 * t2.loss_reduction(2),
        );
    }

    println!(
        "\nreading the table: without spatial correlation the H-YAPD column falls\nback to (or below) YAPD — the paper's premise that the same horizontal\nregion misbehaves in every way is what it sells; without the worst-cell\nextreme-value tail VACA's losses shrink (no 6-plus-cycle chips); without\nthermal feedback the leakage column collapses and power-down schemes lose\ntheir second job."
    );
}
