//! The adaptive Hybrid policy (§4.4's discussed-but-unevaluated idea):
//! for a 3-1-0 chip, pick per target workload whether the 5-cycle way is
//! kept on (memory-intensive: capacity matters) or disabled
//! (compute-intensive: hit latency matters).
//!
//! Usage: `cargo run -p yac-bench --release --bin adaptive [--quick]`

use yac_core::perf::{adaptive_comparison, PerfOptions};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        PerfOptions::quick()
    } else {
        PerfOptions::default()
    };
    eprintln!("simulating both 3-1-0 repairs over 24 benchmarks ...");
    let cmp = adaptive_comparison(&opts);

    println!("== adaptive Hybrid policy on 3-1-0 chips ==\n");
    println!(
        "{:<12}{:>12}{:>12}{:>12}",
        "benchmark", "keep-on %", "disable %", "adaptive"
    );
    for (name, keep, disable, keeps) in &cmp.per_benchmark {
        println!(
            "{name:<12}{keep:>11.2}%{disable:>11.2}%{:>12}",
            if *keeps { "keep on" } else { "disable" }
        );
    }
    let oracle: f64 = cmp
        .per_benchmark
        .iter()
        .map(|(_, k, d, _)| k.min(*d))
        .sum::<f64>()
        / cmp.per_benchmark.len() as f64;
    println!(
        "\nfixed keep-ways-on policy (the paper's):  +{:.2}% average",
        cmp.fixed_average
    );
    println!(
        "adaptive per-workload policy:             +{:.2}% average",
        cmp.adaptive_average
    );
    println!("oracle (always the cheaper repair):       +{oracle:.2}% average");
    println!(
        "\nin this model the fixed keep-on policy is already near the oracle —\nthe margin the adaptive policy chases is small because 3-1-0 repairs are\ncheap either way, which is consistent with the paper fixing the policy"
    );
}
