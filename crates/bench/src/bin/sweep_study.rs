//! `sweep_study` — the multi-study sweep orchestrator CLI, and CI's
//! `chaos-smoke` crash/resume gate.
//!
//! Runs a grid of studies (seed × constraint × scheme set) through
//! `yac_core::run_sweep` with a crash-safe journal: kill the process at
//! any point, re-run the same command, and the sweep resumes where it
//! left off — completed studies are replayed from their journal records,
//! the interrupted one from its shard-granular checkpoint.
//!
//! ```text
//! sweep_study [--chips N] [--seeds 1,2,...] [--constraints nominal,relaxed,strict]
//!             [--schemes regular|horizontal|both] [--workers N] [--studies K]
//!             [--checkpoint-every N] [--cpi WARMUP,MEASURE]
//!             [--journal PATH] [--summary PATH] [--trace PATH] [--progress]
//! ```
//!
//! `--summary PATH` writes a deterministic result digest (loss tables
//! plus every interval and CPI as 16-hex-digit f64 bit images): two runs
//! of the same grid — uninterrupted, or killed and resumed any number of
//! times — must produce byte-identical summaries, which is exactly what
//! CI diffs.
//!
//! When the `YAC_CHAOS` environment variable is set (see
//! `yac_core::chaos`), the named fault/crash plan is installed before the
//! sweep runs — this is how CI kills the process mid-write.

use std::path::Path;
use std::process::ExitCode;
use yac_core::sweep::CpiOptions;
use yac_core::{
    chaos, render_loss_table, ChaosPlan, ConstraintSpec, ExecutorConfig, PowerDownKind, StudyError,
    StudyStatus, SweepConfig, SweepGrid, SweepOutcome,
};
use yac_obs::progress::{ProgressConfig, ProgressReporter};

/// Exit code for a journal/checkpoint grid-fingerprint mismatch: the
/// on-disk state belongs to a different grid, so rerunning the same
/// command can never succeed (unlike the generic failure exit).
const MISMATCH_EXIT: u8 = 4;

struct Args {
    chips: usize,
    seeds: Vec<u64>,
    constraints: Vec<ConstraintSpec>,
    kinds: Vec<PowerDownKind>,
    workers: usize,
    studies: usize,
    checkpoint_every: usize,
    cpi: Option<CpiOptions>,
    journal: String,
    summary: Option<String>,
    trace: Option<String>,
    progress: bool,
}

fn parse_constraint(name: &str) -> Result<ConstraintSpec, String> {
    match name {
        "nominal" => Ok(ConstraintSpec::NOMINAL),
        "relaxed" => Ok(ConstraintSpec::RELAXED),
        "strict" => Ok(ConstraintSpec::STRICT),
        other => Err(format!("unknown constraint {other:?}")),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        chips: 200,
        seeds: vec![2006],
        constraints: vec![ConstraintSpec::NOMINAL],
        kinds: vec![PowerDownKind::Vertical, PowerDownKind::Horizontal],
        workers: 2,
        studies: 1,
        checkpoint_every: 4,
        cpi: None,
        journal: "sweep.journal".to_owned(),
        summary: None,
        trace: None,
        progress: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--chips" => {
                args.chips = value("--chips")?
                    .parse()
                    .map_err(|e| format!("--chips: {e}"))?
            }
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--seeds: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--constraints" => {
                args.constraints = value("--constraints")?
                    .split(',')
                    .map(|s| parse_constraint(s.trim()))
                    .collect::<Result<_, _>>()?;
            }
            "--schemes" => {
                args.kinds = match value("--schemes")?.as_str() {
                    "regular" => vec![PowerDownKind::Vertical],
                    "horizontal" => vec![PowerDownKind::Horizontal],
                    "both" => vec![PowerDownKind::Vertical, PowerDownKind::Horizontal],
                    other => return Err(format!("--schemes: unknown set {other:?}")),
                };
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--studies" => {
                args.studies = value("--studies")?
                    .parse()
                    .map_err(|e| format!("--studies: {e}"))?;
            }
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
            }
            "--cpi" => {
                let spec = value("--cpi")?;
                let (warm, meas) = spec
                    .split_once(',')
                    .ok_or_else(|| format!("--cpi: expected WARMUP,MEASURE, got {spec:?}"))?;
                args.cpi = Some(CpiOptions {
                    warmup_uops: warm.trim().parse().map_err(|e| format!("--cpi: {e}"))?,
                    measure_uops: meas.trim().parse().map_err(|e| format!("--cpi: {e}"))?,
                });
            }
            "--journal" => args.journal = value("--journal")?,
            "--summary" => args.summary = Some(value("--summary")?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--progress" => args.progress = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Deterministic result digest: depends only on the grid's results —
/// never on resume history — so CI can diff clean vs killed-and-resumed.
fn render_summary(outcome: &SweepOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "YAC-SWEEP-SUMMARY v1");
    for (spec, status) in &outcome.studies {
        let kind = match spec.kind {
            PowerDownKind::Vertical => "vertical",
            PowerDownKind::Horizontal => "horizontal",
        };
        let _ = writeln!(
            out,
            "study {} seed {} constraint {} kind {}",
            spec.index, spec.seed, spec.constraint.name, kind
        );
        match status {
            StudyStatus::Pending => {
                let _ = writeln!(out, "  pending");
            }
            StudyStatus::Failed { error } => {
                let _ = writeln!(out, "  failed: {error}");
            }
            StudyStatus::Completed(r) | StudyStatus::Degraded(r) => {
                let _ = writeln!(
                    out,
                    "  interval {} bits {:016x} {:016x} {:016x}",
                    r.yield_interval,
                    r.yield_interval.estimate.to_bits(),
                    r.yield_interval.lo.to_bits(),
                    r.yield_interval.hi.to_bits(),
                );
                let _ = writeln!(
                    out,
                    "  evaluated {} missing {} degraded-shards {}",
                    r.evaluated_chips, r.missing_chips, r.degraded_shards
                );
                match r.mean_cpi {
                    Some(cpi) => {
                        let _ = writeln!(out, "  mean-cpi {cpi:.6} bits {:016x}", cpi.to_bits());
                    }
                    None => {
                        let _ = writeln!(out, "  mean-cpi -");
                    }
                }
                for line in render_loss_table(&r.loss).lines() {
                    let _ = writeln!(out, "  {line}");
                }
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sweep_study: {e}");
            return ExitCode::FAILURE;
        }
    };

    match ChaosPlan::from_env() {
        Ok(None) => {}
        Ok(Some(plan)) => {
            eprintln!("sweep_study: chaos plan installed: {plan:?}");
            chaos::install(plan);
        }
        Err(e) => {
            eprintln!("sweep_study: YAC_CHAOS: {e}");
            return ExitCode::FAILURE;
        }
    }

    let grid = SweepGrid {
        chips: args.chips,
        seeds: args.seeds.clone(),
        constraints: args.constraints.clone(),
        kinds: args.kinds.clone(),
    };
    let mut config = SweepConfig {
        exec: ExecutorConfig::with_workers(args.workers.max(1)),
        concurrent_studies: args.studies,
        checkpoint_every: args.checkpoint_every,
        cpi: args.cpi,
        cancel: None,
        faults: None,
    };
    config.exec.shard_chips = config.exec.shard_chips.min(args.chips.max(1));
    let total_studies = grid.studies().len();

    let registry = yac_obs::global();
    yac_obs::enable();
    registry.reset();
    if args.trace.is_some() {
        yac_obs::trace_label_thread("main");
        yac_obs::trace_enable();
    }
    let reporter = args.progress.then(|| {
        ProgressReporter::start(
            registry,
            ProgressConfig {
                total_chips: (args.chips * total_studies) as u64,
                workers: args.workers.max(1) * args.studies.max(1),
                interval: std::time::Duration::from_secs(1),
                label: "sweep_study".to_owned(),
                total_studies: total_studies as u64,
            },
        )
    });

    eprintln!(
        "sweep_study: {} studies ({} seeds x {} constraints x {} scheme sets), \
         {} chips each, {} concurrent on {} worker(s), journal {}",
        total_studies,
        grid.seeds.len(),
        grid.constraints.len(),
        grid.kinds.len(),
        grid.chips,
        config.concurrent_studies,
        config.exec.workers,
        args.journal,
    );

    let outcome = yac_core::run_sweep(&grid, &config, Path::new(&args.journal));
    if let Some(reporter) = reporter {
        reporter.stop();
    }
    let outcome = match outcome {
        Ok(o) => o,
        // A grid-fingerprint mismatch means the journal belongs to a
        // different sweep — almost always a wrong --journal path or a
        // changed grid flag, and never something a retry fixes. The
        // distinct exit code lets wrappers tell "rerun later" from
        // "operator error".
        Err(e @ StudyError::Mismatch(_)) => {
            eprintln!("sweep_study: journal mismatch: {e}");
            return ExitCode::from(MISMATCH_EXIT);
        }
        Err(e) => {
            eprintln!("sweep_study: sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "sweep_study: {} completed, {} degraded, {} failed, {} pending{}{}",
        outcome.completed(),
        outcome.degraded(),
        outcome.failed(),
        outcome.pending(),
        if outcome.resumed {
            format!(
                " (resumed, {} recovered from the journal)",
                outcome.recovered
            )
        } else {
            String::new()
        },
        if outcome.cancelled {
            " (cancelled)"
        } else {
            ""
        },
    );
    for (spec, status) in &outcome.studies {
        if let StudyStatus::Failed { error } = status {
            eprintln!("sweep_study: study {} FAILED: {error}", spec.index);
        }
    }

    let summary = render_summary(&outcome);
    print!("{summary}");
    if let Some(path) = &args.summary {
        if let Err(e) = std::fs::write(path, &summary) {
            eprintln!("sweep_study: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("sweep_study: wrote {path}");
    }

    if let Some(trace_path) = &args.trace {
        yac_obs::trace_disable();
        let snapshot = yac_obs::journal().snapshot();
        let trace_path = Path::new(trace_path);
        let ndjson_path = trace_path.with_extension("ndjson");
        if let Err(e) = yac_obs::perfetto::write_chrome_json(trace_path, &snapshot) {
            eprintln!("sweep_study: writing {}: {e}", trace_path.display());
            return ExitCode::FAILURE;
        }
        if let Err(e) = yac_obs::ndjson::write_ndjson(&ndjson_path, &snapshot) {
            eprintln!("sweep_study: writing {}: {e}", ndjson_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "sweep_study: traced {} event(s) on {} thread(s) ({} dropped) -> {} + {}",
            snapshot.total_events(),
            snapshot.threads.len(),
            snapshot.dropped_events,
            trace_path.display(),
            ndjson_path.display(),
        );
    }

    if outcome.failed() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
