//! Experiment harness for the *Yield-Aware Cache Architectures*
//! reproduction: one binary per table/figure of the paper (see DESIGN.md
//! for the index) plus shared helpers, and Criterion benches that
//! regenerate scaled versions of every experiment.
//!
//! Binaries:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig8` | Figure 8 (leakage vs latency scatter) |
//! | `table2` | Table 2 (losses, regular power-down) |
//! | `table3` | Table 3 (losses, horizontal power-down) |
//! | `table4_5` | Tables 4–5 (relaxed/strict constraints) |
//! | `table6` | Table 6 (CPI degradation per configuration) |
//! | `fig9` | Figure 9 (per-benchmark CPI, config 3-1-0) |
//! | `fig10` | Figure 10 (per-benchmark CPI, config 2-2-0) |
//! | `naive_binning` | §4.5 (speed-binning CPI numbers) |
//! | `fig1` | Figure 1 (yield factors by technology, industry data) |
//! | `ablation` | model ablations: which component carries which claim |
//! | `sensitivity` | variance decomposition per Table 1 parameter |
//! | `measurement` | escapes/overkills under tester & sensor error |
//! | `confidence` | multi-seed mean ± σ for every scheme's yield |
//! | `economics` | revenue per batch under a speed-binning price ladder |
//! | `adaptive` | the §4.4 adaptive Hybrid policy, evaluated |
//! | `granularity` | H-YAPD horizontal-region count sweep |
//! | `wafer_map` | radial inter-die model, ASCII wafer maps |
//! | `calibrate` | model-vs-paper calibration report |
//! | `pipestats` | per-benchmark pipeline diagnostics |
//! | `perf_report` | instrumented benchmark manifest (`BENCH_*.json`), CI's perf gate |
//! | `sweep_study` | crash-safe multi-study sweep orchestrator, CI's chaos-smoke gate |

#![warn(missing_docs)]

use yac_core::Population;

/// Default population size (the paper's §5.1 uses 2000 chips).
pub const DEFAULT_CHIPS: usize = 2000;
/// Default Monte Carlo seed used by every reported experiment.
pub const DEFAULT_SEED: u64 = 2006;

/// Parses `[chips] [seed]` from the command line, with the paper defaults.
#[must_use]
pub fn population_args() -> (usize, u64) {
    let mut args = std::env::args().skip(1);
    let chips = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_CHIPS);
    let seed = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    (chips, seed)
}

/// Generates the experiment population, echoing its parameters.
#[must_use]
pub fn standard_population() -> Population {
    let (chips, seed) = population_args();
    eprintln!("generating population: {chips} chips, seed {seed}");
    Population::generate(chips, seed)
}
