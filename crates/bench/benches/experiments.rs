//! Criterion benchmarks that regenerate scaled versions of every table and
//! figure of the paper — one bench per experiment, so `cargo bench`
//! exercises the complete evaluation pipeline end to end.
//!
//! The full-size experiments live in the `yac-bench` binaries (`fig8`,
//! `table2`, ..., see DESIGN.md); these benches use smaller populations
//! and shorter simulations so the whole suite finishes in minutes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use yac_core::perf::{canonical_l1d, suite_degradation, table6, PerfOptions};
use yac_core::{
    constraint_sweep, fig8_scatter, table2, table3, ConstraintSpec, Population, PowerDownKind,
    WayCycleCensus, YieldConstraints,
};

const BENCH_CHIPS: usize = 150;

fn pop() -> (Population, YieldConstraints) {
    let population = Population::generate(BENCH_CHIPS, 2006);
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
    (population, constraints)
}

fn tiny_perf() -> PerfOptions {
    PerfOptions {
        warmup_uops: 1_000,
        measure_uops: 4_000,
        trace_seed: 2006,
    }
}

fn bench_fig8(c: &mut Criterion) {
    let (population, _) = pop();
    c.bench_function("experiments/fig8_scatter", |b| {
        b.iter(|| black_box(fig8_scatter(&population)));
    });
}

fn bench_table2(c: &mut Criterion) {
    let (population, constraints) = pop();
    c.bench_function("experiments/table2", |b| {
        b.iter(|| black_box(table2(&population, &constraints)));
    });
}

fn bench_table3(c: &mut Criterion) {
    let (population, constraints) = pop();
    c.bench_function("experiments/table3", |b| {
        b.iter(|| black_box(table3(&population, &constraints)));
    });
}

fn bench_table4_5(c: &mut Criterion) {
    let (population, _) = pop();
    let specs = [ConstraintSpec::RELAXED, ConstraintSpec::STRICT];
    c.bench_function("experiments/table4_5_sweep", |b| {
        b.iter(|| {
            black_box(constraint_sweep(
                &population,
                PowerDownKind::Vertical,
                &specs,
            ));
            black_box(constraint_sweep(
                &population,
                PowerDownKind::Horizontal,
                &specs,
            ));
        });
    });
}

fn bench_table6(c: &mut Criterion) {
    let (population, constraints) = pop();
    let opts = tiny_perf();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.bench_function("table6_scaled", |b| {
        b.iter(|| black_box(table6(&population, &constraints, &opts)));
    });
    group.finish();
}

fn bench_fig9_fig10(c: &mut Criterion) {
    let opts = tiny_perf();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.bench_function("fig9_3_1_0_vaca", |b| {
        let census = WayCycleCensus {
            ways_4: 3,
            ways_5: 1,
            ways_6_plus: 0,
        };
        let l1d = canonical_l1d(census, false);
        b.iter(|| black_box(suite_degradation(&l1d, &opts)));
    });
    group.bench_function("fig10_2_2_0_vaca", |b| {
        let census = WayCycleCensus {
            ways_4: 2,
            ways_5: 2,
            ways_6_plus: 0,
        };
        let l1d = canonical_l1d(census, false);
        b.iter(|| black_box(suite_degradation(&l1d, &opts)));
    });
    group.finish();
}

fn bench_naive_binning(c: &mut Criterion) {
    let opts = tiny_perf();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.bench_function("naive_binning_5cycle", |b| {
        let census = WayCycleCensus {
            ways_4: 0,
            ways_5: 4,
            ways_6_plus: 0,
        };
        let l1d = canonical_l1d(census, false);
        b.iter(|| black_box(suite_degradation(&l1d, &opts)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig8,
    bench_table2,
    bench_table3,
    bench_table4_5,
    bench_table6,
    bench_fig9_fig10,
    bench_naive_binning
);
criterion_main!(benches);
