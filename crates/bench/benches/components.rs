//! Criterion benchmarks for the individual substrates: Monte Carlo
//! sampling, circuit evaluation, cache accesses, trace generation,
//! pipeline simulation and scheme application.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use yac_cache::{AccessKind, CacheConfig, HierarchyConfig, MemoryHierarchy, SetAssocCache};
use yac_circuit::CacheCircuitModel;
use yac_core::{ConstraintSpec, Hybrid, Population, PowerDownKind, Scheme, YieldConstraints};
use yac_pipeline::{Pipeline, PipelineConfig};
use yac_variation::{MonteCarlo, VariationConfig};
use yac_workload::{spec2000, TraceGenerator};

fn bench_variation(c: &mut Criterion) {
    let mc = MonteCarlo::new(VariationConfig::default());
    c.bench_function("variation/sample_one_die", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(mc.sample_one(42, i))
        });
    });
}

fn bench_circuit(c: &mut Criterion) {
    let mc = MonteCarlo::new(VariationConfig::default());
    let die = mc.sample_one(42, 0);
    let model = CacheCircuitModel::regular();
    c.bench_function("circuit/evaluate_die", |b| {
        b.iter(|| black_box(model.evaluate(black_box(&die))));
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/l1d_access", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::l1d_paper()).expect("valid config");
        let mut x = 0x1234_5678u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(cache.access((x >> 16) % (64 * 1024), AccessKind::Read))
        });
    });
}

fn bench_workload(c: &mut Criterion) {
    c.bench_function("workload/generate_1k_uops", |b| {
        let mut generator =
            TraceGenerator::new(spec2000::profile("gcc").expect("known benchmark"), 7);
        b.iter(|| black_box(generator.generate(1_000)));
    });
}

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("pipeline/run_10k_uops_gzip", |b| {
        b.iter_batched(
            || {
                let mem = MemoryHierarchy::new(HierarchyConfig::paper()).expect("valid hierarchy");
                let cpu = Pipeline::new(PipelineConfig::paper(), mem).expect("valid pipeline");
                let trace =
                    TraceGenerator::new(spec2000::profile("gzip").expect("known benchmark"), 7);
                (cpu, trace)
            },
            |(mut cpu, trace)| black_box(cpu.run(trace, 0, 10_000)),
            BatchSize::LargeInput,
        );
    });
}

fn bench_schemes(c: &mut Criterion) {
    let population = Population::generate(64, 2006);
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
    let hybrid = Hybrid::new(PowerDownKind::Vertical);
    c.bench_function("schemes/hybrid_apply_population", |b| {
        b.iter(|| {
            for chip in &population.chips {
                black_box(hybrid.apply(chip, &constraints, population.calibration()));
            }
        });
    });
}

criterion_group!(
    benches,
    bench_variation,
    bench_circuit,
    bench_cache,
    bench_workload,
    bench_pipeline,
    bench_schemes
);
criterion_main!(benches);
