//! Property-based tests for the out-of-order core.

use proptest::prelude::*;
use yac_cache::{HierarchyConfig, MemoryHierarchy};
use yac_pipeline::{Pipeline, PipelineConfig, SimStats};
use yac_workload::{spec2000, MicroOp, OpClass, TraceGenerator};

fn run(cfg: PipelineConfig, hier: HierarchyConfig, bench: usize, seed: u64, n: u64) -> SimStats {
    let profile = spec2000::all_profiles().swap_remove(bench % 24);
    let mem = MemoryHierarchy::new(hier).expect("valid hierarchy");
    let mut cpu = Pipeline::new(cfg, mem).expect("valid pipeline");
    cpu.run(TraceGenerator::new(profile, seed), n / 4, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cpi_respects_the_width_bound(bench in 0usize..24, seed in any::<u64>()) {
        let stats = run(
            PipelineConfig::paper(),
            HierarchyConfig::paper(),
            bench,
            seed,
            8_000,
        );
        prop_assert!(stats.ipc() <= 4.0 + 1e-9, "cannot beat the machine width");
        prop_assert!(stats.cpi() < 60.0, "and cannot be absurdly slow");
        prop_assert!(stats.committed >= 8_000);
    }

    #[test]
    fn slower_ways_never_help(bench in 0usize..24, seed in 0u64..1000) {
        let base = run(
            PipelineConfig::paper(),
            HierarchyConfig::paper(),
            bench,
            seed,
            12_000,
        );
        let mut hier = HierarchyConfig::paper();
        hier.l1d.way_latency = vec![5; 4];
        let slow = run(PipelineConfig::paper(), hier, bench, seed, 12_000);
        prop_assert!(
            slow.cycles >= base.cycles,
            "uniformly slower hits cannot reduce cycles ({} vs {})",
            slow.cycles,
            base.cycles
        );
    }

    #[test]
    fn narrower_machines_are_slower(bench in 0usize..24, seed in 0u64..1000) {
        let wide = run(
            PipelineConfig::paper(),
            HierarchyConfig::paper(),
            bench,
            seed,
            10_000,
        );
        let mut cfg = PipelineConfig::paper();
        cfg.width = 1;
        let narrow = run(cfg, HierarchyConfig::paper(), bench, seed, 10_000);
        prop_assert!(narrow.cpi() >= 1.0 - 1e-9, "width 1 caps IPC at 1");
        prop_assert!(narrow.cycles > wide.cycles);
    }

    #[test]
    fn stats_are_internally_consistent(bench in 0usize..24, seed in any::<u64>()) {
        let stats = run(
            PipelineConfig::paper(),
            HierarchyConfig::paper(),
            bench,
            seed,
            6_000,
        );
        prop_assert!(stats.l1d_load_hits <= stats.loads);
        prop_assert!(stats.mispredicts <= stats.branches + stats.mispredicts);
        prop_assert!(stats.cycles > 0);
        prop_assert_eq!(stats.forwarded_loads, 0, "forwarding is off by default");
        prop_assert_eq!(stats.mshr_stall_cycles, 0, "MSHRs unlimited by default");
    }
}

#[test]
fn an_empty_trace_terminates_immediately() {
    let mem = MemoryHierarchy::new(HierarchyConfig::paper()).unwrap();
    let mut cpu = Pipeline::new(PipelineConfig::paper(), mem).unwrap();
    let stats = cpu.run(Vec::<MicroOp>::new(), 0, 1_000);
    assert_eq!(stats.committed, 0);
}

#[test]
fn stores_only_traces_drain() {
    let ops: Vec<MicroOp> = (0..2_000)
        .map(|i| MicroOp {
            pc: 0x1000 + (i as u64 % 32) * 4,
            class: OpClass::Store,
            srcs: [Some(1), Some(2)],
            dest: None,
            addr: Some(0x4000_0000 + (i as u64 * 32) % 8192),
            taken: None,
        })
        .collect();
    let mem = MemoryHierarchy::new(HierarchyConfig::paper()).unwrap();
    let mut cpu = Pipeline::new(PipelineConfig::paper(), mem).unwrap();
    let stats = cpu.run(ops, 0, 10_000);
    assert_eq!(stats.committed, 2_000);
    assert_eq!(stats.loads, 0);
}

#[test]
fn branch_only_traces_exercise_the_predictor() {
    let ops: Vec<MicroOp> = (0..4_000)
        .map(|i| MicroOp {
            pc: 0x2000 + (i as u64 % 16) * 32,
            class: OpClass::Branch,
            srcs: [Some(0), None],
            dest: None,
            addr: None,
            taken: Some(i % 3 == 0),
        })
        .collect();
    let mem = MemoryHierarchy::new(HierarchyConfig::paper()).unwrap();
    let mut cpu = Pipeline::new(PipelineConfig::paper(), mem).unwrap();
    let stats = cpu.run(ops, 1_000, 2_000);
    assert!(stats.branches > 0);
    assert!(
        stats.mispredict_rate() > 0.0,
        "period-3 pattern defeats 2-bit counters somewhere"
    );
}
