//! A bimodal (2-bit saturating counter) branch predictor.

/// Per-site 2-bit saturating counters, indexed by PC.
///
/// # Examples
///
/// ```
/// use yac_pipeline::BranchPredictor;
///
/// let mut bp = BranchPredictor::new(10);
/// // Train a site taken; it should predict taken afterwards.
/// for _ in 0..4 {
///     bp.update(0x400, true);
/// }
/// assert!(bp.predict(0x400));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    mask: usize,
}

impl BranchPredictor {
    /// Builds a predictor with `2^bits` counters, initialised weakly taken.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 24.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=24).contains(&bits), "predictor bits out of range");
        let size = 1usize << bits;
        BranchPredictor {
            counters: vec![2; size],
            mask: size - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.mask
    }

    /// Predicts the direction of the branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Trains the counter with the actual outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_bias_quickly() {
        let mut bp = BranchPredictor::new(8);
        for _ in 0..3 {
            bp.update(0x80, false);
        }
        assert!(!bp.predict(0x80));
        // Hysteresis: one taken outcome does not flip it.
        bp.update(0x80, true);
        assert!(!bp.predict(0x80));
        bp.update(0x80, true);
        assert!(bp.predict(0x80));
    }

    #[test]
    fn distinct_sites_do_not_interfere_within_table() {
        let mut bp = BranchPredictor::new(8);
        for _ in 0..4 {
            bp.update(0x100, true);
            bp.update(0x104, false);
        }
        assert!(bp.predict(0x100));
        assert!(!bp.predict(0x104));
    }

    #[test]
    fn counters_saturate() {
        let mut bp = BranchPredictor::new(4);
        for _ in 0..100 {
            bp.update(0, true);
        }
        assert!(bp.predict(0));
        bp.update(0, false);
        assert!(bp.predict(0), "one not-taken cannot break full saturation");
    }

    #[test]
    #[should_panic(expected = "predictor bits")]
    fn zero_bits_rejected() {
        let _ = BranchPredictor::new(0);
    }

    #[test]
    fn high_bias_sites_predict_well() {
        // ~95%-biased synthetic site.
        let mut bp = BranchPredictor::new(10);
        let mut x = 123u64;
        let mut correct = 0;
        let n = 10_000;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let taken = (x >> 33) % 100 < 95;
            if bp.predict(0x40) == taken {
                correct += 1;
            }
            bp.update(0x40, taken);
        }
        let acc = f64::from(correct) / f64::from(n);
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
