//! Typed errors for pipeline configuration.
//!
//! Part of the workspace-wide fault-tolerance taxonomy; `Display` output
//! matches the legacy `Result<(), String>` messages exactly.

use std::error::Error;
use std::fmt;

/// A rejected [`crate::PipelineConfig`] (or a configuration the simulator
/// itself cannot host — see [`ConfigError::DepthExceedsHorizon`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The issue width is zero.
    ZeroWidth,
    /// ROB/IQ/LSQ cannot hold one fetch group.
    QueuesTooSmall,
    /// The issue queue is larger than the ROB.
    IqExceedsRob,
    /// The speculative load latency is zero.
    ZeroLoadLatency,
    /// A functional-unit pool (memory ports, integer ALUs, FP adders) is
    /// empty.
    ZeroFunctionalUnits,
    /// A multiplier pool is empty.
    ZeroMultipliers,
    /// The fetch queue cannot hold one fetch group.
    FetchQueueTooSmall,
    /// The branch predictor index width is outside `1..=24`.
    BadPredictorBits,
    /// Store forwarding is enabled with a zero forward latency.
    ZeroForwardLatency,
    /// The schedule-to-execute depth overflows the simulator's wakeup
    /// horizon.
    DepthExceedsHorizon,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConfigError::ZeroWidth => "width must be nonzero",
            ConfigError::QueuesTooSmall => "queues must be large enough for one fetch group",
            ConfigError::IqExceedsRob => "issue queue cannot exceed the ROB",
            ConfigError::ZeroLoadLatency => "assumed load latency must be nonzero",
            ConfigError::ZeroFunctionalUnits => "functional-unit pools must be nonzero",
            ConfigError::ZeroMultipliers => "multiplier pools must be nonzero",
            ConfigError::FetchQueueTooSmall => "fetch queue must hold one fetch group",
            ConfigError::BadPredictorBits => "predictor bits must lie in 1..=24",
            ConfigError::ZeroForwardLatency => "forward latency must be nonzero",
            ConfigError::DepthExceedsHorizon => {
                "schedule-to-execute depth exceeds the arrival horizon"
            }
        })
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_strings() {
        assert_eq!(ConfigError::ZeroWidth.to_string(), "width must be nonzero");
        assert_eq!(
            ConfigError::BadPredictorBits.to_string(),
            "predictor bits must lie in 1..=24"
        );
        assert_eq!(
            ConfigError::DepthExceedsHorizon.to_string(),
            "schedule-to-execute depth exceeds the arrival horizon"
        );
    }
}
