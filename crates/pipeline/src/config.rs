//! Configuration of the simulated out-of-order core (§5.2 of the paper).

use crate::error::ConfigError;
use yac_workload::OpClass;

/// Core configuration.
///
/// Defaults follow the paper's §5.2: a 4-way machine with a 128-entry
/// issue queue, a 256-entry ROB, 7 pipeline stages between schedule and
/// execute, an L1D scheduled speculatively at 4 cycles, and single-entry
/// load-bypass buffers (one extra cycle of tolerance).
///
/// # Examples
///
/// ```
/// use yac_pipeline::PipelineConfig;
///
/// let cfg = PipelineConfig::paper();
/// assert_eq!(cfg.width, 4);
/// assert_eq!(cfg.sched_to_exec, 7);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Fetch/rename/issue/commit width.
    pub width: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Issue-queue entries (ops stay resident until they issue
    /// replay-safely).
    pub iq_size: usize,
    /// Load/store-queue entries.
    pub lsq_size: usize,
    /// Pipeline stages between the scheduling decision and execution.
    pub sched_to_exec: u32,
    /// Extra cycles the load-bypass buffers can absorb (the paper's VACA
    /// uses single-entry buffers: 1).
    pub bypass_depth: u32,
    /// Hit latency the scheduler assumes when speculatively waking load
    /// dependants ("shortest possible", 4 cycles; naive binning raises it).
    pub assumed_load_latency: u32,
    /// Front-end refill cycles added after a branch misprediction resolves.
    pub redirect_penalty: u32,
    /// Data-cache ports (loads + stores per cycle).
    pub mem_ports: usize,
    /// Integer ALUs.
    pub int_alu: usize,
    /// Integer multipliers.
    pub int_mul: usize,
    /// FP adders.
    pub fp_add: usize,
    /// FP multipliers (divides share this pool).
    pub fp_mul: usize,
    /// Fetch-queue entries between fetch and rename.
    pub fetch_queue: usize,
    /// log2 of the branch-predictor table size.
    pub predictor_bits: u32,
    /// Miss-status-holding registers of the L1 data cache: the maximum
    /// number of outstanding misses. `0` means unlimited (the default and
    /// the paper's idealised lock-up-free model).
    pub mshrs: usize,
    /// Enable store-to-load forwarding: a load whose 8-byte word matches
    /// an older in-flight store receives the value from the LSQ in
    /// [`PipelineConfig::forward_latency`] cycles without touching the
    /// cache. Off by default (the synthetic traces carry essentially no
    /// load/store aliasing, so the paper's numbers are unaffected).
    pub store_forwarding: bool,
    /// Latency of a forwarded load, in cycles.
    pub forward_latency: u32,
}

impl PipelineConfig {
    /// The paper's simulated core.
    #[must_use]
    pub fn paper() -> Self {
        PipelineConfig {
            width: 4,
            rob_size: 256,
            iq_size: 128,
            lsq_size: 64,
            sched_to_exec: 7,
            bypass_depth: 1,
            assumed_load_latency: 4,
            redirect_penalty: 3,
            mem_ports: 2,
            int_alu: 4,
            int_mul: 1,
            fp_add: 2,
            fp_mul: 1,
            fetch_queue: 16,
            predictor_bits: 12,
            mshrs: 0,
            store_forwarding: false,
            forward_latency: 2,
        }
    }

    /// Functional units available for one op class.
    #[must_use]
    pub fn fu_count(&self, class: OpClass) -> usize {
        match class {
            OpClass::IntAlu | OpClass::Branch => self.int_alu,
            OpClass::IntMul => self.int_mul,
            OpClass::FpAdd => self.fp_add,
            OpClass::FpMul | OpClass::FpDiv => self.fp_mul,
            OpClass::Load | OpClass::Store => self.mem_ports,
        }
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.width == 0 {
            return Err(ConfigError::ZeroWidth);
        }
        if self.rob_size < self.width || self.iq_size == 0 || self.lsq_size == 0 {
            return Err(ConfigError::QueuesTooSmall);
        }
        if self.iq_size > self.rob_size {
            return Err(ConfigError::IqExceedsRob);
        }
        if self.assumed_load_latency == 0 {
            return Err(ConfigError::ZeroLoadLatency);
        }
        if self.mem_ports == 0 || self.int_alu == 0 || self.fp_add == 0 {
            return Err(ConfigError::ZeroFunctionalUnits);
        }
        if self.int_mul == 0 || self.fp_mul == 0 {
            return Err(ConfigError::ZeroMultipliers);
        }
        if self.fetch_queue < self.width {
            return Err(ConfigError::FetchQueueTooSmall);
        }
        if self.predictor_bits == 0 || self.predictor_bits > 24 {
            return Err(ConfigError::BadPredictorBits);
        }
        if self.store_forwarding && self.forward_latency == 0 {
            return Err(ConfigError::ZeroForwardLatency);
        }
        Ok(())
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_validates() {
        PipelineConfig::paper().validate().unwrap();
    }

    #[test]
    fn fu_mapping_covers_every_class() {
        let cfg = PipelineConfig::paper();
        for class in [
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::FpAdd,
            OpClass::FpMul,
            OpClass::FpDiv,
            OpClass::Load,
            OpClass::Store,
            OpClass::Branch,
        ] {
            assert!(cfg.fu_count(class) > 0, "{class}");
        }
    }

    #[test]
    fn forwarding_validation() {
        let mut cfg = PipelineConfig::paper();
        cfg.store_forwarding = true;
        assert!(cfg.validate().is_ok());
        cfg.forward_latency = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_degenerate_configs() {
        let mut cfg = PipelineConfig::paper();
        cfg.width = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = PipelineConfig::paper();
        cfg.iq_size = 512;
        assert!(cfg.validate().is_err());

        let mut cfg = PipelineConfig::paper();
        cfg.fetch_queue = 1;
        assert!(cfg.validate().is_err());

        let mut cfg = PipelineConfig::paper();
        cfg.assumed_load_latency = 0;
        assert!(cfg.validate().is_err());
    }
}
