//! Cycle-level out-of-order pipeline simulator — the SimpleScalar 3.0
//! substitute for *Yield-Aware Cache Architectures* (MICRO 2006), §5.2.
//!
//! The core models the machinery the paper's schemes interact with:
//! speculative scheduling against an assumed 4-cycle L1D hit, a 7-stage
//! schedule-to-execute pipeline, load-bypass buffers that absorb one extra
//! cycle from a slow VACA way, and selective replay of dependants when a
//! load misses.
//!
//! # Examples
//!
//! ```
//! use yac_cache::{HierarchyConfig, MemoryHierarchy};
//! use yac_pipeline::{Pipeline, PipelineConfig};
//! use yac_workload::{spec2000, TraceGenerator};
//!
//! // A VACA machine: one L1D way answers in 5 cycles.
//! let mut hier = HierarchyConfig::paper();
//! hier.l1d.way_latency = vec![4, 4, 4, 5];
//! let mem = MemoryHierarchy::new(hier).unwrap();
//! let mut cpu = Pipeline::new(PipelineConfig::paper(), mem).unwrap();
//!
//! let trace = TraceGenerator::new(spec2000::profile("gzip").unwrap(), 1);
//! let stats = cpu.run(trace, 2_000, 8_000);
//! assert!(stats.cpi() > 0.25);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod error;
pub mod predictor;
pub mod sim;
pub mod stats;

pub use config::PipelineConfig;
pub use error::ConfigError;
pub use predictor::BranchPredictor;
pub use sim::Pipeline;
pub use stats::SimStats;

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::Pipeline>();
        assert_send_sync::<super::PipelineConfig>();
        assert_send_sync::<super::SimStats>();
    }
}
