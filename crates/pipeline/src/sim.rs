//! The cycle-level out-of-order core.
//!
//! The machine models exactly what the paper's evaluation depends on:
//!
//! * a `width`-wide front end with a bimodal predictor; fetch stalls on
//!   I-cache misses and on mispredicted branches until they resolve;
//! * rename onto ROB tags, dispatch into a bounded issue queue and LSQ;
//! * an oldest-first scheduler that wakes load dependants *speculatively*,
//!   assuming the shortest (4-cycle) hit latency, with `sched_to_exec`
//!   (7) pipeline stages between the scheduling decision and execution;
//! * **load-bypass buffers** at the functional-unit inputs that absorb up
//!   to `bypass_depth` cycles of lateness from a slow (VACA) way;
//! * **selective replay**: an op whose operand is later than the buffers
//!   can absorb (an L1 miss) returns to the issue queue and re-issues when
//!   the value arrives, as do its own speculatively scheduled dependants;
//! * per-class functional-unit pools and cache-port arbitration.
//!
//! Simplifications relative to silicon (documented in DESIGN.md): stores
//! do not forward to loads (the synthetic traces carry no load/store
//! aliasing), wrong-path instructions are modeled as a fetch stall rather
//! than fetched and squashed, and FP divides are treated as pipelined.

use crate::config::PipelineConfig;
use crate::error::ConfigError;
use crate::predictor::BranchPredictor;
use crate::stats::SimStats;
use std::collections::VecDeque;
use yac_cache::{AccessKind, MemoryHierarchy};
use yac_workload::{MicroOp, OpClass};

/// Horizon of the FU-arrival ring (must exceed sched_to_exec + bypass).
const ARRIVAL_HORIZON: usize = 64;
/// Horizon of the completion ring (must exceed the worst memory latency).
const COMPLETION_HORIZON: usize = 1024;
/// Give up on an entry after this many bypass requeues (safety valve).
const MAX_REQUEUES: u8 = 8;
/// Cycles without a commit after which the simulator reports a deadlock.
const DEADLOCK_LIMIT: u64 = 500_000;

/// Functional-unit pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FuClass {
    IntAlu,
    IntMul,
    FpAdd,
    FpMul,
    Mem,
}

impl FuClass {
    const COUNT: usize = 5;

    fn of(class: OpClass) -> FuClass {
        match class {
            OpClass::IntAlu | OpClass::Branch => FuClass::IntAlu,
            OpClass::IntMul => FuClass::IntMul,
            OpClass::FpAdd => FuClass::FpAdd,
            OpClass::FpMul | OpClass::FpDiv => FuClass::FpMul,
            OpClass::Load | OpClass::Store => FuClass::Mem,
        }
    }
}

/// A source operand after rename.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SrcRef {
    /// Architecturally ready at dispatch.
    Ready,
    /// Produced by the ROB entry with this sequence number.
    Producer(u64),
}

/// Execution progress of one ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecState {
    /// In the issue queue, not yet selected.
    Waiting,
    /// Selected; will arrive at its functional unit at `exec_at`.
    Scheduled { exec_at: u64 },
    /// Executing; result available at `done_at`.
    Executing { done_at: u64 },
    /// Complete.
    Done { at: u64 },
}

#[derive(Debug, Clone)]
struct Entry {
    op: MicroOp,
    seq: u64,
    srcs: [Option<SrcRef>; 2],
    state: ExecState,
    /// Counted one bypass stall already.
    bypass_counted: bool,
    requeues: u8,
    /// This mispredicted branch unblocks fetch when it completes.
    resolves_fetch: bool,
    /// The op has been replayed: it re-issues only once its operands are
    /// *actually* available (no further speculative wakeup), which is what
    /// keeps one replay from seeding a self-sustaining replay wave.
    replayed: bool,
    /// For executing loads: the cycle the scheduler *expected* the value
    /// (exec start + assumed hit latency). A slow way or a miss is only
    /// discovered — "announced" to the scheduler — at this cycle; until
    /// then dependants are woken as if the load hits in the assumed time.
    announce_at: Option<u64>,
}

/// The simulated out-of-order core.
///
/// # Examples
///
/// ```
/// use yac_cache::{HierarchyConfig, MemoryHierarchy};
/// use yac_pipeline::{Pipeline, PipelineConfig};
/// use yac_workload::{spec2000, TraceGenerator};
///
/// let mem = MemoryHierarchy::new(HierarchyConfig::paper()).unwrap();
/// let mut cpu = Pipeline::new(PipelineConfig::paper(), mem).unwrap();
/// let trace = TraceGenerator::new(spec2000::profile("gzip").unwrap(), 1);
/// let stats = cpu.run(trace, 2_000, 10_000);
/// assert!(stats.committed >= 10_000); // may overshoot by width-1
/// assert!(stats.cpi() > 0.25, "cannot beat the 4-wide limit");
/// ```
#[derive(Debug)]
pub struct Pipeline {
    cfg: PipelineConfig,
    mem: MemoryHierarchy,
    predictor: BranchPredictor,
    now: u64,
    rob: VecDeque<Entry>,
    base_seq: u64,
    next_seq: u64,
    iq_count: usize,
    lsq_count: usize,
    rat: [Option<u64>; 256],
    fetch_q: VecDeque<(MicroOp, bool)>,
    /// Fetch is stalled until the flagged branch completes.
    fetch_blocked: bool,
    fetch_resume_at: u64,
    last_fetch_block: u64,
    trace_done: bool,
    arrivals: Vec<Vec<u64>>,
    completions: Vec<Vec<u64>>,
    fu_reserved: Vec<[u16; FuClass::COUNT]>,
    fu_limits: [u16; FuClass::COUNT],
    stats: SimStats,
    total_committed: u64,
    last_commit_cycle: u64,
    /// Completion times of in-flight L1D misses (MSHR occupancy).
    outstanding_misses: Vec<u64>,
}

impl Pipeline {
    /// Builds a core over a memory hierarchy.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] if the configuration is inconsistent
    /// or too deep for the simulator's wakeup horizon.
    pub fn new(cfg: PipelineConfig, mem: MemoryHierarchy) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if (cfg.sched_to_exec + cfg.bypass_depth + 2) as usize >= ARRIVAL_HORIZON {
            return Err(ConfigError::DepthExceedsHorizon);
        }
        let fu_limits = [
            cfg.int_alu as u16,
            cfg.int_mul as u16,
            cfg.fp_add as u16,
            cfg.fp_mul as u16,
            cfg.mem_ports as u16,
        ];
        let predictor = BranchPredictor::new(cfg.predictor_bits);
        Ok(Pipeline {
            predictor,
            mem,
            now: 0,
            rob: VecDeque::with_capacity(cfg.rob_size),
            base_seq: 0,
            next_seq: 0,
            iq_count: 0,
            lsq_count: 0,
            rat: [None; 256],
            fetch_q: VecDeque::with_capacity(cfg.fetch_queue),
            fetch_blocked: false,
            fetch_resume_at: 0,
            last_fetch_block: u64::MAX,
            trace_done: false,
            arrivals: vec![Vec::new(); ARRIVAL_HORIZON],
            completions: vec![Vec::new(); COMPLETION_HORIZON],
            fu_reserved: vec![[0; FuClass::COUNT]; ARRIVAL_HORIZON],
            fu_limits,
            stats: SimStats::default(),
            total_committed: 0,
            last_commit_cycle: 0,
            outstanding_misses: Vec::new(),
            cfg,
        })
    }

    /// The core configuration.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// The memory hierarchy (e.g. for miss-rate inspection after a run).
    #[must_use]
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Runs the machine: commits `warmup` micro-ops to warm the caches and
    /// predictor (statistics are then reset), then measures until another
    /// `measure` micro-ops commit or the trace ends.
    ///
    /// # Panics
    ///
    /// Panics if the machine stops committing for an extended period — a
    /// simulator bug, not a workload property.
    pub fn run(
        &mut self,
        trace: impl IntoIterator<Item = MicroOp>,
        warmup: u64,
        measure: u64,
    ) -> SimStats {
        let mut trace = trace.into_iter();
        let target_warm = self.total_committed + warmup;
        let mut target_end = target_warm + measure;
        let mut warmed = warmup == 0;
        if warmup == 0 {
            self.reset_stats_internal();
        }
        loop {
            self.step(&mut trace);
            if !warmed && self.total_committed >= target_warm {
                self.reset_stats_internal();
                // Warm-up may overshoot by up to width-1 commits; measure a
                // full window from the actual reset point.
                target_end = self.total_committed + measure;
                warmed = true;
            }
            if warmed && self.total_committed >= target_end {
                break;
            }
            if self.trace_done && self.rob.is_empty() && self.fetch_q.is_empty() {
                break;
            }
            assert!(
                self.now - self.last_commit_cycle < DEADLOCK_LIMIT,
                "pipeline deadlock at cycle {}: rob={} iq={} head={:?}",
                self.now,
                self.rob.len(),
                self.iq_count,
                self.rob.front().map(|e| (e.seq, e.state, e.op.class)),
            );
        }
        yac_obs::add(yac_obs::Metric::UopsCommitted, self.stats.committed);
        yac_obs::add(yac_obs::Metric::SimCycles, self.stats.cycles);
        self.mem.flush_obs();
        self.stats
    }

    /// Statistics of the current measurement window.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    fn reset_stats_internal(&mut self) {
        self.stats = SimStats::default();
        self.mem.reset_stats();
        self.last_commit_cycle = self.now;
    }

    fn step(&mut self, trace: &mut impl Iterator<Item = MicroOp>) {
        self.commit();
        self.complete();
        self.fu_arrive();
        self.schedule();
        self.dispatch();
        self.fetch(trace);
        self.now += 1;
        self.stats.cycles += 1;
    }

    // ---- helpers -------------------------------------------------------

    fn entry(&self, seq: u64) -> Option<&Entry> {
        seq.checked_sub(self.base_seq)
            .and_then(|i| self.rob.get(i as usize))
    }

    fn entry_mut(&mut self, seq: u64) -> Option<&mut Entry> {
        seq.checked_sub(self.base_seq)
            .and_then(|i| self.rob.get_mut(i as usize))
    }

    /// Latency the scheduler assumes for a producer's result.
    fn assumed_latency(&self, op: &MicroOp) -> u32 {
        match op.class {
            OpClass::Load => self.cfg.assumed_load_latency,
            c => c.exec_latency(),
        }
    }

    /// Predicted cycle at which `src`'s value becomes available, or `None`
    /// if its producer has not even been scheduled.
    fn pred_ready(&self, src: SrcRef) -> Option<u64> {
        match src {
            SrcRef::Ready => Some(0),
            SrcRef::Producer(seq) => match self.entry(seq) {
                None => Some(0), // producer retired: value in the register file
                Some(e) => match e.state {
                    ExecState::Waiting => None,
                    ExecState::Scheduled { exec_at } => {
                        Some(exec_at + u64::from(self.assumed_latency(&e.op)))
                    }
                    ExecState::Executing { done_at } => match e.announce_at {
                        // Until the expected-completion cycle passes, the
                        // scheduler still believes the assumed latency.
                        Some(announce) if self.now < announce => {
                            Some(announce.max(done_at.min(announce)))
                        }
                        _ => Some(done_at),
                    },
                    ExecState::Done { at } => Some(at),
                },
            },
        }
    }

    /// Readiness without speculation: the value's arrival time once the
    /// producer is executing or done, `None` while it is merely queued or
    /// scheduled. Used to re-issue replayed ops safely.
    fn firm_ready(&self, src: SrcRef) -> Option<u64> {
        match src {
            SrcRef::Ready => Some(0),
            SrcRef::Producer(seq) => match self.entry(seq) {
                None => Some(0),
                Some(e) => match e.state {
                    ExecState::Executing { done_at } => Some(done_at),
                    ExecState::Done { at } => Some(at),
                    ExecState::Waiting | ExecState::Scheduled { .. } => None,
                },
            },
        }
    }

    /// Actual readiness of `src` at FU arrival: `Ok(ready_at)` once the
    /// producer is executing or done, `Err(())` if it must be replayed
    /// against (producer not in flight).
    fn actual_ready(&self, src: SrcRef) -> Result<u64, ()> {
        match src {
            SrcRef::Ready => Ok(0),
            SrcRef::Producer(seq) => match self.entry(seq) {
                None => Ok(0),
                Some(e) => match e.state {
                    ExecState::Executing { done_at } => Ok(done_at),
                    ExecState::Done { at } => Ok(at),
                    // Scheduled: the value may still arrive in time; report
                    // its predicted time so the caller can requeue-and-see.
                    ExecState::Scheduled { exec_at } => {
                        Ok(exec_at + u64::from(self.assumed_latency(&e.op)))
                    }
                    ExecState::Waiting => Err(()),
                },
            },
        }
    }

    /// Whether an older, still-in-flight store writes the same 8-byte word.
    fn older_store_to(&self, seq: u64, addr: u64) -> bool {
        let word = addr & !7;
        self.rob.iter().any(|e| {
            e.seq < seq && e.op.class == OpClass::Store && e.op.addr.map(|a| a & !7) == Some(word)
        })
    }

    /// Earliest cycle a new L1D miss can start, honouring the MSHR limit.
    fn acquire_mshr(&mut self) -> u64 {
        if self.cfg.mshrs == 0 {
            return self.now;
        }
        let now = self.now;
        self.outstanding_misses.retain(|&t| t > now);
        if self.outstanding_misses.len() < self.cfg.mshrs {
            return self.now;
        }
        // Queue behind the miss that completes first.
        self.outstanding_misses
            .iter()
            .copied()
            .fold(f64::INFINITY as u64, u64::min)
            .max(self.now)
    }

    // ---- pipeline phases ----------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.cfg.width {
            let Some(front) = self.rob.front() else { break };
            let ExecState::Done { .. } = front.state else {
                break;
            };
            let entry = self.rob.pop_front().expect("front exists");
            self.base_seq += 1;
            if entry.op.class.is_mem() {
                self.lsq_count -= 1;
            }
            self.total_committed += 1;
            self.stats.committed += 1;
            self.last_commit_cycle = self.now;
        }
    }

    fn complete(&mut self) {
        let slot = (self.now % COMPLETION_HORIZON as u64) as usize;
        let seqs = std::mem::take(&mut self.completions[slot]);
        for seq in seqs {
            let now = self.now;
            let Some(e) = self.entry_mut(seq) else {
                continue;
            };
            debug_assert!(matches!(e.state, ExecState::Executing { .. }));
            e.state = ExecState::Done { at: now };
            let is_branch = e.op.class == OpClass::Branch;
            let resolves = e.resolves_fetch;
            if is_branch {
                self.stats.branches += 1;
            }
            if resolves {
                self.fetch_blocked = false;
                self.fetch_resume_at = self
                    .fetch_resume_at
                    .max(now + u64::from(self.cfg.redirect_penalty));
            }
        }
    }

    fn fu_arrive(&mut self) {
        let slot = (self.now % ARRIVAL_HORIZON as u64) as usize;
        let mut seqs = std::mem::take(&mut self.arrivals[slot]);
        seqs.sort_unstable(); // oldest first, so producers precede consumers
        for seq in seqs {
            self.process_arrival(seq);
        }
    }

    fn process_arrival(&mut self, seq: u64) {
        let Some(e) = self.entry(seq) else { return };
        if !matches!(e.state, ExecState::Scheduled { .. }) {
            return; // stale arrival from before a replay
        }
        // Determine operand lateness.
        let mut ready_at = 0u64;
        let mut must_replay = false;
        for src in e.srcs.iter().flatten() {
            match self.actual_ready(*src) {
                Ok(t) => ready_at = ready_at.max(t),
                Err(()) => {
                    must_replay = true;
                    break;
                }
            }
        }
        // An in-flight consumer may find its operand late for two stacked
        // reasons: the slow way itself (up to bypass_depth cycles) and the
        // slip its producer accumulated while *it* waited in a buffer. The
        // paper's scheduler is "informed about this stall" and delays
        // direct and indirect dependants accordingly (§4.3); consumers
        // already inside the schedule-to-execute pipe wait the stacked
        // cycles out in the buffers. The stacking is bounded by the pipe
        // depth (staleness cannot outlive the in-flight window), so
        // lateness up to depth+1 beyond the buffer depth is hit-timing
        // slip; anything later (an L1 miss adds 25+ cycles) is a genuine
        // miss and triggers selective replay.
        let slip_tolerance = 2u64;
        let bypass = u64::from(self.cfg.bypass_depth) + slip_tolerance;
        if !must_replay && ready_at > self.now + bypass {
            must_replay = true;
        }

        if must_replay {
            #[cfg(feature = "replay-debug")]
            {
                use std::sync::atomic::{AtomicU64, Ordering};
                static WAITING: AtomicU64 = AtomicU64::new(0);
                static LATE: AtomicU64 = AtomicU64::new(0);
                static SHOWN: AtomicU64 = AtomicU64::new(0);
                if SHOWN.fetch_add(1, Ordering::Relaxed) < 20 {
                    let e = self.entry(seq).unwrap();
                    eprint!(
                        "REPLAY now={} seq={} class={} srcs:",
                        self.now, seq, e.op.class
                    );
                    for src in e.srcs.iter().flatten() {
                        if let SrcRef::Producer(p) = src {
                            eprint!(" p{}={:?}", p, self.entry(*p).map(|x| x.state));
                        } else {
                            eprint!(" ready");
                        }
                    }
                    eprintln!();
                }
                let mut was_waiting = false;
                let mut late_by = 0;
                for src in self.entry(seq).unwrap().srcs.iter().flatten() {
                    match self.actual_ready(*src) {
                        Err(()) => was_waiting = true,
                        Ok(t) if t > self.now => late_by = late_by.max(t - self.now),
                        _ => {}
                    }
                }
                if was_waiting {
                    WAITING.fetch_add(1, Ordering::Relaxed);
                } else {
                    LATE.fetch_add(1, Ordering::Relaxed);
                }
                let w = WAITING.load(Ordering::Relaxed);
                let l = LATE.load(Ordering::Relaxed);
                if (w + l) % 50_000 == 0 {
                    eprintln!("replays: waiting={w} late={l} (this late_by={late_by})");
                }
            }
            let e = self.entry_mut(seq).expect("entry exists");
            e.state = ExecState::Waiting;
            e.replayed = true;
            e.requeues = 0;
            self.stats.replays += 1;
            return;
        }

        if ready_at > self.now {
            // The load-bypass buffer absorbs the lateness: wait and retry
            // when the value arrives.
            let (requeues, first_stall) = {
                let e = self.entry_mut(seq).expect("entry exists");
                let first = !e.bypass_counted;
                e.bypass_counted = true;
                e.requeues += 1;
                (e.requeues, first)
            };
            if first_stall {
                self.stats.bypass_stalls += 1;
            }
            if requeues > MAX_REQUEUES {
                let e = self.entry_mut(seq).expect("entry exists");
                e.state = ExecState::Waiting;
                e.replayed = true;
                e.requeues = 0;
                self.stats.replays += 1;
                return;
            }
            let retry = ready_at.max(self.now + 1);
            // The scheduler is informed of the stall (§4.3 of the paper):
            // slipping the op's effective execute cycle keeps its own
            // dependants' wakeup predictions in step, so a one-cycle delay
            // propagates down the chain as exactly one cycle instead of
            // collapsing into replays.
            let e = self.entry_mut(seq).expect("entry exists");
            e.state = ExecState::Scheduled { exec_at: retry };
            self.arrivals[(retry % ARRIVAL_HORIZON as u64) as usize].push(seq);
            return;
        }

        // Operands ready: execute.
        let (class, addr) = {
            let e = self.entry(seq).expect("entry exists");
            (e.op.class, e.op.addr)
        };
        let mut announce_at = None;
        let done_at = match class {
            OpClass::Load => {
                let addr = addr.expect("loads carry addresses");
                self.stats.loads += 1;
                announce_at = Some(self.now + u64::from(self.cfg.assumed_load_latency));
                if self.cfg.store_forwarding && self.older_store_to(seq, addr) {
                    // The LSQ forwards the word; the cache is not touched.
                    self.stats.forwarded_loads += 1;
                    self.now + u64::from(self.cfg.forward_latency)
                } else {
                    let out = self.mem.data_access(addr, AccessKind::Read);
                    if out.l1_hit {
                        self.stats.l1d_load_hits += 1;
                        self.now + u64::from(out.latency)
                    } else {
                        // A miss needs an MSHR; with all of them busy the
                        // access queues behind the oldest outstanding miss.
                        let start = self.acquire_mshr();
                        let done = start + u64::from(out.latency);
                        self.outstanding_misses.push(done);
                        if start > self.now {
                            self.stats.mshr_stall_cycles += start - self.now;
                        }
                        done
                    }
                }
            }
            OpClass::Store => {
                let _ = self
                    .mem
                    .data_access(addr.expect("stores carry addresses"), AccessKind::Write);
                self.now + 1
            }
            c => self.now + u64::from(c.exec_latency()),
        };
        let e = self.entry_mut(seq).expect("entry exists");
        e.state = ExecState::Executing { done_at };
        e.announce_at = announce_at;
        self.completions[(done_at % COMPLETION_HORIZON as u64) as usize].push(seq);
        self.iq_count -= 1;
    }

    fn schedule(&mut self) {
        let depth = u64::from(self.cfg.sched_to_exec);
        let exec_at = self.now + depth;
        let fu_slot = (exec_at % ARRIVAL_HORIZON as u64) as usize;
        let mut slots = self.cfg.width;
        let mut picks: Vec<u64> = Vec::with_capacity(slots);

        'scan: for e in &self.rob {
            if slots == 0 {
                break;
            }
            if !matches!(e.state, ExecState::Waiting) {
                continue;
            }
            for src in e.srcs.iter().flatten() {
                let pred = if e.replayed {
                    // Post-replay re-issue is non-speculative: wait for the
                    // producer's value to be definitely on its way.
                    self.firm_ready(*src)
                } else {
                    self.pred_ready(*src)
                };
                match pred {
                    Some(t) if t <= exec_at => {}
                    _ => continue 'scan,
                }
            }
            let fu = FuClass::of(e.op.class) as usize;
            if self.fu_reserved[fu_slot][fu] >= self.fu_limits[fu] {
                continue;
            }
            self.fu_reserved[fu_slot][fu] += 1;
            picks.push(e.seq);
            slots -= 1;
        }

        // Clear the reservation slot that just expired (one past the
        // horizon window as seen by future schedules).
        let expired = ((self.now + ARRIVAL_HORIZON as u64 - 1) % ARRIVAL_HORIZON as u64) as usize;
        if expired != fu_slot {
            self.fu_reserved[expired] = [0; FuClass::COUNT];
        }

        for seq in picks {
            let e = self.entry_mut(seq).expect("picked entries exist");
            e.state = ExecState::Scheduled { exec_at };
            e.bypass_counted = false;
            self.arrivals[fu_slot].push(seq);
        }
    }

    fn dispatch(&mut self) {
        for _ in 0..self.cfg.width {
            let Some((op, _)) = self.fetch_q.front() else {
                break;
            };
            if self.rob.len() >= self.cfg.rob_size || self.iq_count >= self.cfg.iq_size {
                self.stats.dispatch_stalls += 1;
                break;
            }
            if op.class.is_mem() && self.lsq_count >= self.cfg.lsq_size {
                self.stats.dispatch_stalls += 1;
                break;
            }
            let (op, mispredicted) = self.fetch_q.pop_front().expect("front exists");
            let seq = self.next_seq;
            self.next_seq += 1;

            let mut srcs = [None, None];
            for (slot, reg) in op.srcs.iter().flatten().enumerate() {
                let src = match self.rat[usize::from(*reg)] {
                    Some(p) if p >= self.base_seq => SrcRef::Producer(p),
                    _ => SrcRef::Ready,
                };
                srcs[slot] = Some(src);
            }
            if let Some(dest) = op.dest {
                self.rat[usize::from(dest)] = Some(seq);
            }
            if op.class.is_mem() {
                self.lsq_count += 1;
            }
            self.iq_count += 1;
            self.rob.push_back(Entry {
                op,
                seq,
                srcs,
                state: ExecState::Waiting,
                bypass_counted: false,
                requeues: 0,
                resolves_fetch: mispredicted,
                replayed: false,
                announce_at: None,
            });
        }
    }

    fn fetch(&mut self, trace: &mut impl Iterator<Item = MicroOp>) {
        if self.trace_done {
            return;
        }
        if self.fetch_blocked || self.now < self.fetch_resume_at {
            self.stats.fetch_stall_cycles += 1;
            return;
        }
        for _ in 0..self.cfg.width {
            if self.fetch_q.len() >= self.cfg.fetch_queue {
                break;
            }
            let Some(op) = trace.next() else {
                self.trace_done = true;
                break;
            };
            // Instruction-cache access on block change.
            let block = op.pc >> 6;
            let mut stall_after = false;
            if block != self.last_fetch_block {
                self.last_fetch_block = block;
                let latency = self.mem.fetch(op.pc);
                let hit_latency = 2;
                if latency > hit_latency {
                    self.fetch_resume_at = self.now + u64::from(latency - hit_latency);
                    stall_after = true;
                }
            }
            let mut mispredicted = false;
            let mut taken_branch = false;
            if let Some(taken) = op.taken {
                let predicted = self.predictor.predict(op.pc);
                self.predictor.update(op.pc, taken);
                if predicted != taken {
                    mispredicted = true;
                    self.stats.mispredicts += 1;
                } else if taken {
                    taken_branch = true;
                }
            }
            self.fetch_q.push_back((op, mispredicted));
            if mispredicted {
                // Fetch chases the wrong path until the branch resolves.
                self.fetch_blocked = true;
                break;
            }
            if taken_branch || stall_after {
                break; // fetch group ends at a taken branch / I-miss
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yac_cache::HierarchyConfig;
    use yac_workload::{spec2000, TraceGenerator};

    fn cpu(cfg: PipelineConfig, hier: HierarchyConfig) -> Pipeline {
        Pipeline::new(cfg, MemoryHierarchy::new(hier).unwrap()).unwrap()
    }

    fn run_bench(name: &str, cfg: PipelineConfig, hier: HierarchyConfig) -> SimStats {
        let mut pipe = cpu(cfg, hier);
        let trace = TraceGenerator::new(spec2000::profile(name).unwrap(), 7);
        pipe.run(trace, 10_000, 100_000)
    }

    fn alu_chain(n: usize) -> Vec<MicroOp> {
        // r8 <- r8 + r8 repeatedly: a pure serial dependence chain.
        (0..n)
            .map(|i| MicroOp {
                pc: 0x1000 + (i as u64 % 64) * 4,
                class: OpClass::IntAlu,
                srcs: [Some(8), None],
                dest: Some(8),
                addr: None,
                taken: None,
            })
            .collect()
    }

    fn independent_alus(n: usize) -> Vec<MicroOp> {
        (0..n)
            .map(|i| MicroOp {
                pc: 0x1000 + (i as u64 % 64) * 4,
                class: OpClass::IntAlu,
                srcs: [Some(0), Some(1)],
                dest: Some(8 + (i % 32) as u8),
                addr: None,
                taken: None,
            })
            .collect()
    }

    #[test]
    fn independent_ops_reach_full_width() {
        let mut pipe = cpu(PipelineConfig::paper(), HierarchyConfig::paper());
        let stats = pipe.run(independent_alus(40_000), 5_000, 30_000);
        assert!(
            stats.ipc() > 3.5,
            "4 independent ALUs per cycle should run near width: ipc={}",
            stats.ipc()
        );
    }

    #[test]
    fn serial_chain_runs_at_one_ipc() {
        let mut pipe = cpu(PipelineConfig::paper(), HierarchyConfig::paper());
        let stats = pipe.run(alu_chain(20_000), 2_000, 10_000);
        let cpi = stats.cpi();
        assert!(
            (0.95..1.2).contains(&cpi),
            "a serial ALU chain commits one op per cycle (back-to-back wakeup): cpi={cpi}"
        );
    }

    #[test]
    fn dependent_load_chain_pays_the_hit_latency() {
        // load r8 <- [A]; then an ALU on r8 feeding the next load address.
        let n = 30_000;
        let ops: Vec<MicroOp> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    MicroOp {
                        pc: 0x1000 + (i as u64 % 64) * 4,
                        class: OpClass::Load,
                        srcs: [Some(8), None],
                        dest: Some(8),
                        addr: Some(0x4000_0000 + (i as u64 * 8) % 4096),
                        taken: None,
                    }
                } else {
                    MicroOp {
                        pc: 0x1000 + (i as u64 % 64) * 4,
                        class: OpClass::IntAlu,
                        srcs: [Some(8), None],
                        dest: Some(8),
                        addr: None,
                        taken: None,
                    }
                }
            })
            .collect();
        let mut pipe = cpu(PipelineConfig::paper(), HierarchyConfig::paper());
        let stats = pipe.run(ops, 2_000, 20_000);
        // Each load+alu pair costs ~ hit latency (4) + 1 cycles.
        let cpi = stats.cpi();
        assert!(
            (2.2..3.2).contains(&cpi),
            "pointer-chase pairs should cost ~(4+1)/2 cycles per op: cpi={cpi}"
        );
    }

    #[test]
    fn slow_way_hits_trigger_bypass_buffers() {
        // All L1D ways at 5 cycles; plenty of dependent loads. The base
        // machine (4-cycle ways) never touches the buffers; the slow one
        // must use them heavily.
        let base = run_bench("gzip", PipelineConfig::paper(), HierarchyConfig::paper());
        assert_eq!(base.bypass_stalls, 0, "no late hits on the base machine");
        let mut hier = HierarchyConfig::paper();
        hier.l1d.way_latency = vec![5; 4];
        let slow = run_bench("gzip", PipelineConfig::paper(), hier);
        assert!(
            slow.bypass_stalls > 1_000,
            "5-cycle hits must flow through the buffers: {}",
            slow.bypass_stalls
        );
        assert!(slow.cpi() > base.cpi());
    }

    #[test]
    fn misses_cause_selective_replay() {
        let stats = run_bench("mcf", PipelineConfig::paper(), HierarchyConfig::paper());
        assert!(stats.replays > 0, "mcf misses must replay dependants");
        assert!(stats.l1d_load_hit_rate() < 0.98);
    }

    #[test]
    fn core_bound_benchmark_hits_l1() {
        let stats = run_bench("crafty", PipelineConfig::paper(), HierarchyConfig::paper());
        assert!(
            stats.l1d_load_hit_rate() > 0.9,
            "crafty's working set mostly fits: {}",
            stats.l1d_load_hit_rate()
        );
    }

    #[test]
    fn memory_bound_benchmark_is_slower() {
        let fast = run_bench("gzip", PipelineConfig::paper(), HierarchyConfig::paper());
        let slow = run_bench("mcf", PipelineConfig::paper(), HierarchyConfig::paper());
        assert!(
            slow.cpi() > 1.3 * fast.cpi(),
            "mcf ({}) should be much slower than gzip ({})",
            slow.cpi(),
            fast.cpi()
        );
    }

    #[test]
    fn slow_ways_cost_performance_but_less_than_naive_binning() {
        let base = run_bench("gcc", PipelineConfig::paper(), HierarchyConfig::paper());

        // VACA: two slow ways, scheduler still assumes 4.
        let mut hier = HierarchyConfig::paper();
        hier.l1d.way_latency = vec![4, 5, 5, 4];
        let vaca = run_bench("gcc", PipelineConfig::paper(), hier);

        // Naive binning: scheduler assumes 5 for everything.
        let mut hier = HierarchyConfig::paper();
        hier.l1d.way_latency = vec![5; 4];
        let mut cfg = PipelineConfig::paper();
        cfg.assumed_load_latency = 5;
        let naive = run_bench("gcc", cfg, hier);

        assert!(vaca.cpi() > base.cpi(), "slow ways must cost something");
        assert!(
            naive.cpi() > vaca.cpi(),
            "two slow ways ({}) must cost less than binning everything at 5 ({})",
            vaca.cpi(),
            naive.cpi()
        );
    }

    #[test]
    fn disabling_a_way_costs_performance() {
        let base = run_bench("vpr", PipelineConfig::paper(), HierarchyConfig::paper());
        let mut hier = HierarchyConfig::paper();
        hier.l1d.way_enabled[2] = false;
        let yapd = run_bench("vpr", PipelineConfig::paper(), hier);
        assert!(
            yapd.cpi() > base.cpi(),
            "a 3-way L1D must miss more: {} vs {}",
            yapd.cpi(),
            base.cpi()
        );
    }

    #[test]
    fn mispredictions_are_detected_and_cost_cycles() {
        let predictable = run_bench("swim", PipelineConfig::paper(), HierarchyConfig::paper());
        let branchy = run_bench("twolf", PipelineConfig::paper(), HierarchyConfig::paper());
        assert!(predictable.mispredict_rate() < 0.06);
        assert!(branchy.mispredict_rate() > predictable.mispredict_rate());
    }

    #[test]
    fn run_is_deterministic() {
        let a = run_bench("parser", PipelineConfig::paper(), HierarchyConfig::paper());
        let b = run_bench("parser", PipelineConfig::paper(), HierarchyConfig::paper());
        assert_eq!(a, b);
    }

    #[test]
    fn store_forwarding_accelerates_aliasing_loads() {
        // store [A]; load [A] pairs: forwarding should satisfy the loads.
        let ops: Vec<MicroOp> = (0..20_000)
            .map(|i| {
                let addr = 0x4000_0000 + (i as u64 / 2 * 8) % 4096;
                if i % 2 == 0 {
                    MicroOp {
                        pc: 0x1000 + (i as u64 % 64) * 4,
                        class: OpClass::Store,
                        srcs: [Some(0), Some(1)],
                        dest: None,
                        addr: Some(addr),
                        taken: None,
                    }
                } else {
                    MicroOp {
                        pc: 0x1000 + (i as u64 % 64) * 4,
                        class: OpClass::Load,
                        srcs: [Some(2), None],
                        dest: Some(8 + (i % 32) as u8),
                        addr: Some(addr),
                        taken: None,
                    }
                }
            })
            .collect();
        let mut plain_cfg = PipelineConfig::paper();
        plain_cfg.store_forwarding = false;
        let mut pipe = cpu(plain_cfg, HierarchyConfig::paper());
        let plain = pipe.run(ops.clone(), 2_000, 15_000);
        assert_eq!(plain.forwarded_loads, 0);

        let mut fwd_cfg = PipelineConfig::paper();
        fwd_cfg.store_forwarding = true;
        let mut pipe = cpu(fwd_cfg, HierarchyConfig::paper());
        let fwd = pipe.run(ops, 2_000, 15_000);
        assert!(fwd.forwarded_loads > 1_000, "{}", fwd.forwarded_loads);
    }

    #[test]
    fn mshr_limit_throttles_miss_parallelism() {
        let run = |mshrs: usize| {
            let mut cfg = PipelineConfig::paper();
            cfg.mshrs = mshrs;
            let mut pipe = cpu(cfg, HierarchyConfig::paper());
            let trace = TraceGenerator::new(spec2000::profile("mcf").unwrap(), 7);
            pipe.run(trace, 5_000, 40_000)
        };
        let unlimited = run(0);
        let throttled = run(1);
        assert_eq!(unlimited.mshr_stall_cycles, 0);
        assert!(throttled.mshr_stall_cycles > 0);
        assert!(
            throttled.cpi() > unlimited.cpi(),
            "a single MSHR must serialise mcf's misses: {} vs {}",
            throttled.cpi(),
            unlimited.cpi()
        );
    }

    #[test]
    fn default_features_leave_baseline_untouched() {
        // MSHRs unlimited + forwarding off must reproduce the calibrated
        // baseline exactly.
        let a = run_bench("gcc", PipelineConfig::paper(), HierarchyConfig::paper());
        let mut cfg = PipelineConfig::paper();
        cfg.mshrs = 0;
        cfg.store_forwarding = false;
        let b = run_bench("gcc", cfg, HierarchyConfig::paper());
        assert_eq!(a, b);
        assert_eq!(a.forwarded_loads, 0);
        assert_eq!(a.mshr_stall_cycles, 0);
    }

    #[test]
    fn trace_exhaustion_drains_cleanly() {
        let mut pipe = cpu(PipelineConfig::paper(), HierarchyConfig::paper());
        let stats = pipe.run(independent_alus(500), 0, 1_000_000);
        assert_eq!(stats.committed, 500, "all ops commit even past trace end");
    }

    #[test]
    fn measurement_window_is_exact() {
        let mut pipe = cpu(PipelineConfig::paper(), HierarchyConfig::paper());
        let trace = TraceGenerator::new(spec2000::profile("mesa").unwrap(), 11);
        let stats = pipe.run(trace, 1_000, 5_000);
        // Commit is width-wide, so the window may overshoot by width-1.
        assert!(
            (5_000..5_000 + 4).contains(&stats.committed),
            "committed {}",
            stats.committed
        );
    }
}
