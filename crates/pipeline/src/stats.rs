//! Simulation statistics.

use std::fmt;

/// Counters accumulated over a simulation run.
///
/// # Examples
///
/// ```
/// use yac_pipeline::SimStats;
///
/// let stats = SimStats::default();
/// assert_eq!(stats.cpi(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Cycles simulated (after warm-up).
    pub cycles: u64,
    /// Micro-ops committed (after warm-up).
    pub committed: u64,
    /// Ops that had to be pulled back into the issue queue because an
    /// operand was not ready at the functional unit (selective replay).
    pub replays: u64,
    /// Ops that absorbed a late load in a load-bypass buffer.
    pub bypass_stalls: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Branches executed.
    pub branches: u64,
    /// Loads executed.
    pub loads: u64,
    /// Loads that hit in the L1 data cache.
    pub l1d_load_hits: u64,
    /// Cycles the front end spent stalled (mispredict redirect or I-miss).
    pub fetch_stall_cycles: u64,
    /// Dispatch stalls due to a full ROB/IQ/LSQ.
    pub dispatch_stalls: u64,
    /// Loads satisfied by store-to-load forwarding (0 unless enabled).
    pub forwarded_loads: u64,
    /// Cycles misses waited for a free MSHR (0 with unlimited MSHRs).
    pub mshr_stall_cycles: u64,
}

impl SimStats {
    /// Cycles per committed micro-op (0 when nothing committed).
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.cycles as f64 / self.committed as f64
        }
    }

    /// Committed micro-ops per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// L1D load hit rate.
    #[must_use]
    pub fn l1d_load_hit_rate(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.l1d_load_hits as f64 / self.loads as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles={} committed={} CPI={:.4} replays={} bypass={} mispredict={:.2}% l1d-hit={:.2}%",
            self.cycles,
            self.committed,
            self.cpi(),
            self.replays,
            self.bypass_stalls,
            100.0 * self.mispredict_rate(),
            100.0 * self.l1d_load_hit_rate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = SimStats::default();
        assert_eq!(s.cpi(), 0.0);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.l1d_load_hit_rate(), 0.0);
    }

    #[test]
    fn cpi_and_ipc_are_reciprocal() {
        let s = SimStats {
            cycles: 100,
            committed: 50,
            ..SimStats::default()
        };
        assert_eq!(s.cpi(), 2.0);
        assert_eq!(s.ipc(), 0.5);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!SimStats::default().to_string().is_empty());
    }
}
