//! Property-based tests for the circuit model.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use yac_circuit::network::RcNetwork;
use yac_circuit::{CacheCircuitModel, Technology};
use yac_variation::{CacheVariation, Parameter, ParameterSet, VariationConfig};

fn die(seed: u64) -> CacheVariation {
    CacheVariation::sample(
        &VariationConfig::default(),
        &mut SmallRng::seed_from_u64(seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn evaluation_outputs_are_finite_and_positive(seed in any::<u64>()) {
        for model in [CacheCircuitModel::regular(), CacheCircuitModel::horizontal()] {
            let r = model.evaluate(&die(seed));
            prop_assert!(r.delay.is_finite() && r.delay > 0.0);
            prop_assert!(r.leakage.is_finite() && r.leakage > 0.0);
            prop_assert!(r.heat >= 1.0);
            for way in &r.ways {
                prop_assert!(way.delay > 0.0);
                prop_assert!(way.leakage > 0.0);
                prop_assert_eq!(way.region_delay.len(), way.region_cell_leakage.len());
                let max = way.region_delay.iter().copied().fold(f64::MIN, f64::max);
                prop_assert!((way.delay - max).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn horizontal_variant_is_uniformly_slower(seed in any::<u64>()) {
        let d = die(seed);
        let reg = CacheCircuitModel::regular().evaluate(&d);
        let hor = CacheCircuitModel::horizontal().evaluate(&d);
        let overhead = 1.0 + CacheCircuitModel::regular().calibration().hyapd_delay_overhead;
        for (a, b) in reg.ways.iter().zip(&hor.ways) {
            prop_assert!((b.delay / a.delay - overhead).abs() < 1e-9);
        }
        // Leakage is organisation-independent.
        prop_assert!((reg.leakage - hor.leakage).abs() < 1e-9);
    }

    #[test]
    fn raising_vt_never_speeds_up_a_die(seed in any::<u64>(), bump in 0.1f64..2.0) {
        let model = CacheCircuitModel::regular();
        let base_die = die(seed);
        let mut slow_die = base_die.clone();
        for way in &mut slow_die.ways {
            for region in &mut way.regions {
                region.cell_array = region
                    .cell_array
                    .with_offset_sigmas(Parameter::ThresholdVoltage, bump);
            }
        }
        let base = model.evaluate(&base_die);
        let slow = model.evaluate(&slow_die);
        prop_assert!(slow.delay >= base.delay - 1e-12);
        // Raw (cold) leakage must drop with higher cell Vt.
        prop_assert!(slow.raw_leakage() <= base.raw_leakage() + 1e-12);
    }

    #[test]
    fn heat_factor_reflects_raw_leakage(seed in any::<u64>()) {
        let model = CacheCircuitModel::regular();
        let r = model.evaluate(&die(seed));
        let expected = model
            .calibration()
            .thermal_factor(r.raw_leakage() / r.ways.len() as f64);
        prop_assert!((r.heat - expected).abs() < 1e-12);
        prop_assert!((r.leakage - r.heat * r.raw_leakage()).abs() < 1e-9);
    }

    #[test]
    fn rc_ladder_delay_is_monotone_in_geometry(
        driver in 0.1f64..5.0,
        r_total in 0.1f64..5.0,
        c_total in 0.1f64..5.0,
    ) {
        let t = |d: f64, r: f64, c: f64| {
            let (net, far) = RcNetwork::ladder(d, 8, r, c, 0.2);
            net.step_delay_50(far).unwrap()
        };
        let base = t(driver, r_total, c_total);
        prop_assert!(t(driver * 1.5, r_total, c_total) > base);
        prop_assert!(t(driver, r_total * 1.5, c_total) > base);
        prop_assert!(t(driver, r_total, c_total * 1.5) > base);
    }

    #[test]
    fn elmore_bounds_the_step_delay(
        driver in 0.1f64..5.0,
        r_total in 0.1f64..5.0,
        c_total in 0.1f64..5.0,
    ) {
        let (net, far) = RcNetwork::ladder(driver, 12, r_total, c_total, 0.0);
        let t50 = net.step_delay_50(far).unwrap();
        let elmore = net.elmore_delay(far).unwrap();
        // The classic bound: ln2*Elmore <= ... well t50 is always below
        // Elmore and above a third of it for RC trees.
        prop_assert!(t50 < elmore);
        prop_assert!(t50 > elmore / 3.0);
    }
}

#[test]
fn technology_sensitivities_have_the_documented_signs() {
    use yac_circuit::device::{drive_factor, leakage_factor};
    let t = Technology::ptm45();
    let nominal = ParameterSet::nominal();
    for sigmas in [-3.0, -1.0, 1.0, 3.0] {
        let vt = nominal.with_offset_sigmas(Parameter::ThresholdVoltage, sigmas);
        let lg = nominal.with_offset_sigmas(Parameter::GateLength, sigmas);
        if sigmas > 0.0 {
            assert!(drive_factor(&t, &vt, t.vdd_v) < 1.0);
            assert!(leakage_factor(&t, &vt) < 1.0);
            assert!(drive_factor(&t, &lg, t.vdd_v) < 1.0);
        } else {
            assert!(drive_factor(&t, &vt, t.vdd_v) > 1.0);
            assert!(leakage_factor(&t, &vt) > 1.0);
            assert!(drive_factor(&t, &lg, t.vdd_v) > 1.0);
        }
    }
}
