//! Interconnect electrical models: geometry → R and C per unit length,
//! plus Elmore delay of driver + distributed RC ladder loads.
//!
//! Following §2 / Figure 2 of the paper, a line's resistance depends on its
//! width `W` and thickness `T`, its ground capacitance on `W` and the ILD
//! thickness `H`, and its coupling capacitance on `T` and the line space
//! `S = pitch − W` (line space is not an independent parameter).

use crate::error::WireError;
use crate::tech::Technology;
use yac_variation::{Parameter, ParameterSet};

/// Checks the wire-relevant parameters of `params` are physical.
///
/// The infallible factor functions below clamp degenerate inputs for
/// robustness on the hot path; this guard gives callers that would rather
/// reject than clamp (e.g. the quarantine pipeline) a way to find out.
fn check_wire_params(params: &ParameterSet) -> Result<(), WireError> {
    let checks = [
        ("metal width", params.metal_width_um),
        ("metal thickness", params.metal_thickness_um),
        ("ILD thickness", params.ild_thickness_um),
    ];
    for (name, value) in checks {
        if !(value.is_finite() && value > 0.0) {
            return Err(WireError::BadParameter { name, value });
        }
    }
    Ok(())
}

/// Resistance factor per unit length relative to nominal: `R ∝ 1/(W·T)`.
///
/// # Examples
///
/// ```
/// use yac_circuit::wire::resistance_per_um_factor;
/// use yac_variation::ParameterSet;
///
/// let r = resistance_per_um_factor(&ParameterSet::nominal());
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn resistance_per_um_factor(params: &ParameterSet) -> f64 {
    let w_nom = Parameter::MetalWidth.nominal();
    let t_nom = Parameter::MetalThickness.nominal();
    (w_nom / params.metal_width_um.max(1e-6)) * (t_nom / params.metal_thickness_um.max(1e-6))
}

/// Validating counterpart of [`resistance_per_um_factor`]: rejects
/// non-physical wire geometry instead of clamping it.
///
/// # Errors
///
/// Returns [`WireError::BadParameter`] if a wire dimension is not
/// positive and finite.
pub fn try_resistance_per_um_factor(params: &ParameterSet) -> Result<f64, WireError> {
    check_wire_params(params)?;
    Ok(resistance_per_um_factor(params))
}

/// Capacitance factor per unit length relative to nominal, combining the
/// area term `∝ W/H` and the coupling term `∝ T/S` with the technology's
/// weighting coefficients.
#[must_use]
pub fn capacitance_per_um_factor(tech: &Technology, params: &ParameterSet) -> f64 {
    let w_nom = Parameter::MetalWidth.nominal();
    let t_nom = Parameter::MetalThickness.nominal();
    let h_nom = Parameter::IldThickness.nominal();
    let s_nom = (tech.wire_pitch_um - w_nom).max(1e-6);
    let s = (tech.wire_pitch_um - params.metal_width_um).max(0.05 * s_nom);

    let area_nom = tech.cap_area_coeff * w_nom / h_nom;
    let coup_nom = tech.cap_coupling_coeff * t_nom / s_nom;
    let area = tech.cap_area_coeff * params.metal_width_um / params.ild_thickness_um.max(1e-6);
    let coup = tech.cap_coupling_coeff * params.metal_thickness_um / s;
    (area + coup) / (area_nom + coup_nom)
}

/// Validating counterpart of [`capacitance_per_um_factor`].
///
/// # Errors
///
/// Returns [`WireError::BadParameter`] if a wire dimension is not
/// positive and finite.
pub fn try_capacitance_per_um_factor(
    tech: &Technology,
    params: &ParameterSet,
) -> Result<f64, WireError> {
    check_wire_params(params)?;
    Ok(capacitance_per_um_factor(tech, params))
}

/// Elmore delay factor of a distributed RC line of relative length
/// `length` (1.0 = the nominal reference length) driven by a driver with
/// relative output resistance `driver_r`.
///
/// The three contributions are the classic `R_drv·C_wire + R_wire·C_wire/2`
/// ladder terms plus the driver driving the far-end load; all normalised so
/// that nominal parameters at unit length give 1.0.
///
/// # Examples
///
/// ```
/// use yac_circuit::{wire::elmore_factor, Technology};
/// use yac_variation::ParameterSet;
///
/// let tech = Technology::ptm45();
/// let nominal = elmore_factor(&tech, &ParameterSet::nominal(), 1.0, 1.0);
/// assert!((nominal - 1.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn elmore_factor(tech: &Technology, params: &ParameterSet, length: f64, driver_r: f64) -> f64 {
    let r = resistance_per_um_factor(params);
    let c = capacitance_per_um_factor(tech, params);
    // Weights of driver-limited vs wire-limited components at nominal.
    // Local cache wires are short enough that the driver term dominates,
    // but the quadratic wire term grows with both variation and length.
    const DRIVER_WEIGHT: f64 = 0.6;
    const WIRE_WEIGHT: f64 = 0.4;
    (DRIVER_WEIGHT * driver_r * c * length + WIRE_WEIGHT * r * c * length * length)
        / (DRIVER_WEIGHT + WIRE_WEIGHT)
}

/// Validating counterpart of [`elmore_factor`].
///
/// # Errors
///
/// Returns the [`WireError`] identifying the rejected input: a
/// non-physical wire dimension, length, or driver resistance.
pub fn try_elmore_factor(
    tech: &Technology,
    params: &ParameterSet,
    length: f64,
    driver_r: f64,
) -> Result<f64, WireError> {
    check_wire_params(params)?;
    if !(length.is_finite() && length > 0.0) {
        return Err(WireError::BadLength(length));
    }
    if !(driver_r.is_finite() && driver_r > 0.0) {
        return Err(WireError::BadDriver(driver_r));
    }
    Ok(elmore_factor(tech, params, length, driver_r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::ptm45()
    }

    #[test]
    fn nominal_factors_are_unity() {
        let p = ParameterSet::nominal();
        assert!((resistance_per_um_factor(&p) - 1.0).abs() < 1e-12);
        assert!((capacitance_per_um_factor(&tech(), &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn narrow_thin_wire_has_high_resistance() {
        let p = ParameterSet::nominal()
            .with_offset_sigmas(Parameter::MetalWidth, -3.0)
            .with_offset_sigmas(Parameter::MetalThickness, -3.0);
        let r = resistance_per_um_factor(&p);
        // W and T each shrink by 33%: R rises by ~1/(0.67^2) ~ 2.2x.
        assert!((1.8..2.6).contains(&r), "r = {r}");
    }

    #[test]
    fn wide_lines_couple_more_strongly() {
        // Wider W shrinks the space S, raising coupling capacitance.
        let wide = ParameterSet::nominal().with_offset_sigmas(Parameter::MetalWidth, 3.0);
        let narrow = ParameterSet::nominal().with_offset_sigmas(Parameter::MetalWidth, -3.0);
        let t = tech();
        assert!(capacitance_per_um_factor(&t, &wide) > capacitance_per_um_factor(&t, &narrow));
    }

    #[test]
    fn thin_dielectric_raises_area_capacitance() {
        let thin = ParameterSet::nominal().with_offset_sigmas(Parameter::IldThickness, -3.0);
        assert!(capacitance_per_um_factor(&tech(), &thin) > 1.0);
    }

    #[test]
    fn elmore_grows_superlinearly_with_length() {
        let p = ParameterSet::nominal();
        let t = tech();
        let d1 = elmore_factor(&t, &p, 1.0, 1.0);
        let d2 = elmore_factor(&t, &p, 2.0, 1.0);
        assert!(d2 > 2.0 * d1, "distributed term must be superlinear");
        assert!(d2 < 4.0 * d1, "but not fully quadratic at short lengths");
    }

    #[test]
    fn elmore_scales_with_driver_resistance() {
        let p = ParameterSet::nominal();
        let t = tech();
        let weak = elmore_factor(&t, &p, 1.0, 2.0);
        let strong = elmore_factor(&t, &p, 1.0, 0.5);
        assert!(weak > strong);
    }

    #[test]
    fn degenerate_geometry_stays_finite() {
        let mut p = ParameterSet::nominal();
        p.metal_width_um = tech().wire_pitch_um; // zero space
        let c = capacitance_per_um_factor(&tech(), &p);
        assert!(c.is_finite() && c > 0.0);
    }

    #[test]
    fn try_variants_reject_non_physical_inputs() {
        let t = tech();
        let mut p = ParameterSet::nominal();
        p.metal_width_um = f64::INFINITY;
        assert!(matches!(
            try_resistance_per_um_factor(&p),
            Err(crate::error::WireError::BadParameter {
                name: "metal width",
                ..
            })
        ));
        assert!(try_capacitance_per_um_factor(&t, &p).is_err());
        let good = ParameterSet::nominal();
        assert!(matches!(
            try_elmore_factor(&t, &good, f64::NAN, 1.0),
            Err(crate::error::WireError::BadLength(_))
        ));
        assert!(matches!(
            try_elmore_factor(&t, &good, 1.0, 0.0),
            Err(crate::error::WireError::BadDriver(_))
        ));
    }

    #[test]
    fn try_variants_agree_with_infallible_on_good_inputs() {
        let t = tech();
        let p = ParameterSet::nominal().with_offset_sigmas(Parameter::MetalWidth, 2.0);
        assert_eq!(
            try_resistance_per_um_factor(&p).unwrap(),
            resistance_per_um_factor(&p)
        );
        assert_eq!(
            try_elmore_factor(&t, &p, 1.3, 0.8).unwrap(),
            elmore_factor(&t, &p, 1.3, 0.8)
        );
    }

    #[test]
    fn device_parameters_do_not_affect_wires() {
        let p = ParameterSet::nominal()
            .with_offset_sigmas(Parameter::GateLength, 3.0)
            .with_offset_sigmas(Parameter::ThresholdVoltage, -3.0);
        assert_eq!(resistance_per_um_factor(&p), 1.0);
        assert_eq!(capacitance_per_um_factor(&tech(), &p), 1.0);
    }
}
