//! 45 nm technology constants and the model calibration knobs.
//!
//! The paper drives an HSPICE deck built on PTM 45 nm device and
//! interconnect cards. This crate replaces that deck with closed-form
//! first-order models; the constants here play the role of the PTM cards.
//! Absolute units are physical-ish (volts, µΩ·cm, fF/µm) but only the
//! *relative* behaviour under variation matters for the yield study — the
//! paper's constraints are defined on the simulated population's own
//! mean/σ.

use crate::error::CalibrationError;

/// Fixed 45 nm technology parameters (the "PTM card" substitute).
///
/// # Examples
///
/// ```
/// use yac_circuit::Technology;
///
/// let tech = Technology::ptm45();
/// assert_eq!(tech.vdd_v, 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Supply voltage, volts.
    pub vdd_v: f64,
    /// Alpha-power-law velocity-saturation exponent.
    pub alpha: f64,
    /// Subthreshold swing divided by ln(10): `n · v_T`, volts. 26 mV puts
    /// the leakage spread over ±3σ of V_t at ~21×, between the paper's
    /// "factor of five or ten" for small shifts and the 20× increases it
    /// cites for 90 nm.
    pub n_vt_v: f64,
    /// Channel-length sensitivity of subthreshold leakage, nanometres:
    /// leakage scales by `exp(-(L - L_nom) / l_char_nm)`. 4.1 nm reproduces
    /// the paper's 3× leakage change for a 10 % `L_eff` shift.
    pub l_char_nm: f64,
    /// Effective copper resistivity, µΩ·cm (includes barrier/scattering).
    pub wire_resistivity_uohm_cm: f64,
    /// Area (parallel-plate) capacitance coefficient, fF/µm per unit W/H.
    pub cap_area_coeff: f64,
    /// Coupling capacitance coefficient, fF/µm per unit T/S.
    pub cap_coupling_coeff: f64,
    /// Wiring pitch, µm. Line space is `pitch - W`, so width variation
    /// directly modulates coupling (§2, Figure 2 of the paper).
    pub wire_pitch_um: f64,
    /// Effective wordline/bitline voltage seen by the SRAM cell read stack;
    /// lower than `vdd_v` because of the access-transistor source follower.
    /// Operating the cell at reduced overdrive is what makes SRAM delay so
    /// much more variation-sensitive than logic (§1 of the paper).
    pub cell_read_v: f64,
    /// Gate-leakage share of nominal cell leakage (the remainder is
    /// subthreshold). Gate leakage varies only weakly with our five
    /// parameters, which damps the total-leakage spread realistically.
    pub gate_leak_fraction: f64,
}

impl Technology {
    /// The 45 nm operating point used throughout the reproduction.
    #[must_use]
    pub fn ptm45() -> Self {
        Technology {
            vdd_v: 1.0,
            alpha: 1.5,
            n_vt_v: 0.026,
            l_char_nm: 4.1,
            wire_resistivity_uohm_cm: 2.2,
            cap_area_coeff: 0.06,
            cap_coupling_coeff: 0.08,
            wire_pitch_um: 0.50,
            cell_read_v: 0.43,
            gate_leak_fraction: 0.10,
        }
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::ptm45()
    }
}

/// Calibration constants that set the relative weight of each delay and
/// leakage contributor.
///
/// These are the three-and-a-half scalars DESIGN.md §6 commits to: they were
/// fixed once against the paper's base-case loss histogram (Table 2: 138
/// leakage violators, 126/36/23/16 delay violators by way count out of 2000)
/// and are *not* per-experiment tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Share of the nominal critical path spent in wire RC (decoder route +
    /// global wordline + bitline wire). Interconnect parameters (W, T, H)
    /// only matter through this share.
    pub wire_delay_share: f64,
    /// Share of the nominal critical path spent discharging the bitline
    /// through the cell stack (the variation-amplified component).
    pub cell_delay_share: f64,
    /// Deterministic worst-cell V_t boost in millivolts, representing the
    /// max-of-many-cells effect inside one region (the per-bit 0.01 factor
    /// of the paper's recipe, folded into its expected extreme): the
    /// slowest cell of a region sees its threshold raised by this much,
    /// which *amplifies* the region's V_t sensitivity at the reduced cell
    /// read swing.
    pub worst_cell_vt_boost_mv: f64,
    /// Fraction of a way's total nominal leakage consumed by its peripheral
    /// circuits (decoder, precharge, sense amplifiers, output drivers).
    pub peripheral_leak_share: f64,
    /// Fraction of the peripheral leakage that H-YAPD's horizontal
    /// power-down *can* remove per disabled region. The paper notes these
    /// circuits "cannot be turned off completely" under H-YAPD (§4.2).
    pub hyapd_peripheral_shutoff: f64,
    /// Latency overhead of the H-YAPD post-decoder organisation; the
    /// paper's HSPICE runs measured +2.5 % on average (§4.2).
    pub hyapd_delay_overhead: f64,
    /// Strength of the leakage–temperature feedback loop: a cache whose raw
    /// leakage is `x` times nominal self-heats and settles at
    /// `x · exp(thermal_feedback · (x - 1))` times nominal. This is the
    /// classic positive feedback between subthreshold current and junction
    /// temperature; it gives measured leakage distributions tail mass far
    /// beyond a lognormal's (cf. the 20× spreads the paper cites at 90 nm).
    /// The exponent argument is clamped to 3.0: package thermals saturate.
    pub thermal_feedback: f64,
    /// Relative raw leakage `x` below which self-heating is negligible (the
    /// heat sink absorbs nominal-ish dissipation without a temperature
    /// rise). Feedback applies to `max(0, x - thermal_threshold)`.
    pub thermal_threshold: f64,
}

impl Calibration {
    /// The calibrated operating point used for all reported experiments.
    #[must_use]
    pub fn calibrated() -> Self {
        Calibration {
            wire_delay_share: 0.30,
            cell_delay_share: 0.40,
            worst_cell_vt_boost_mv: 125.0,
            peripheral_leak_share: 0.30,
            hyapd_peripheral_shutoff: 0.72,
            hyapd_delay_overhead: 0.025,
            thermal_feedback: 0.9,
            thermal_threshold: 1.35,
        }
    }

    /// The die-level self-heating multiplier for a cache whose *raw* (cold)
    /// leakage is `x` times the nominal cache leakage:
    /// `exp(thermal_feedback * clamp(x - thermal_threshold, 0, 3))`.
    ///
    /// Yield schemes use this to recompute a chip's settled leakage after
    /// powering down a way or region (less raw leakage -> cooler die ->
    /// less heating).
    ///
    /// # Examples
    ///
    /// ```
    /// use yac_circuit::Calibration;
    ///
    /// let cal = Calibration::calibrated();
    /// assert_eq!(cal.thermal_factor(1.0), 1.0); // nominal chips don't heat up
    /// assert!(cal.thermal_factor(3.0) > 1.0);
    /// ```
    #[must_use]
    pub fn thermal_factor(&self, x: f64) -> f64 {
        let excess = (x - self.thermal_threshold).clamp(0.0, 3.0);
        (self.thermal_feedback * excess).exp()
    }

    /// Validates share invariants.
    ///
    /// # Errors
    ///
    /// Returns the [`CalibrationError`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), CalibrationError> {
        let logic_share = 1.0 - self.wire_delay_share - self.cell_delay_share;
        if !(0.0..=1.0).contains(&self.wire_delay_share)
            || !(0.0..=1.0).contains(&self.cell_delay_share)
            || logic_share < 0.0
        {
            return Err(CalibrationError::BadDelayShares);
        }
        if !(0.0..200.0).contains(&self.worst_cell_vt_boost_mv) {
            return Err(CalibrationError::BadWorstCellBoost);
        }
        if !(0.0..1.0).contains(&self.peripheral_leak_share) {
            return Err(CalibrationError::BadPeripheralLeakShare);
        }
        if !(0.0..=1.0).contains(&self.hyapd_peripheral_shutoff) {
            return Err(CalibrationError::BadHyapdShutoff);
        }
        if !(0.0..0.5).contains(&self.hyapd_delay_overhead) {
            return Err(CalibrationError::BadHyapdOverhead);
        }
        if !(0.0..2.0).contains(&self.thermal_feedback) {
            return Err(CalibrationError::BadThermalFeedback);
        }
        if !(0.5..5.0).contains(&self.thermal_threshold) {
            return Err(CalibrationError::BadThermalThreshold);
        }
        Ok(())
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptm45_is_self_consistent() {
        let t = Technology::ptm45();
        assert!(t.vdd_v > t.cell_read_v);
        assert!(t.cell_read_v > 0.22, "cells must have positive overdrive");
        assert!(t.wire_pitch_um > 0.25, "pitch must exceed nominal width");
        assert!((0.0..1.0).contains(&t.gate_leak_fraction));
    }

    #[test]
    fn calibrated_values_validate() {
        assert!(Calibration::calibrated().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_shares() {
        let mut c = Calibration::calibrated();
        c.wire_delay_share = 0.9;
        c.cell_delay_share = 0.9;
        assert!(c.validate().is_err());

        let mut c = Calibration::calibrated();
        c.worst_cell_vt_boost_mv = 500.0;
        assert!(c.validate().is_err());

        let mut c = Calibration::calibrated();
        c.peripheral_leak_share = -0.1;
        assert!(c.validate().is_err());

        let mut c = Calibration::calibrated();
        c.hyapd_peripheral_shutoff = 1.5;
        assert!(c.validate().is_err());

        let mut c = Calibration::calibrated();
        c.hyapd_delay_overhead = 0.6;
        assert!(c.validate().is_err());
    }

    #[test]
    fn leakage_spread_targets_from_paper_hold() {
        let t = Technology::ptm45();
        // +-3 sigma of Vt is +-39.6 mV; the paper quotes a 5-10x leakage
        // spread for small Vt shifts.
        let ratio = ((2.0 * 39.6e-3) / t.n_vt_v).exp();
        assert!((5.0..25.0).contains(&ratio), "Vt leakage span {ratio}");
        // 10% Leff shift -> ~3x subthreshold change (paper, §1).
        let l_ratio = (4.5 / t.l_char_nm).exp();
        assert!((2.5..3.5).contains(&l_ratio), "Leff leakage span {l_ratio}");
    }

    #[test]
    fn defaults_match_named_constructors() {
        assert_eq!(Technology::default(), Technology::ptm45());
        assert_eq!(Calibration::default(), Calibration::calibrated());
    }
}
