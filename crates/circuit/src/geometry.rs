//! Physical organisation of the modeled cache (§3 / Figure 3 of the
//! paper): 16 KB, 4-way set-associative, each way split into 4 banks of
//! 64 × 128 bits with bitlines partitioned in two — the Amrutur–Horowitz
//! style organisation the paper's HSPICE deck implements.

use crate::error::GeometryError;

/// Physical organisation of one cache.
///
/// # Examples
///
/// ```
/// use yac_circuit::CacheGeometry;
///
/// let g = CacheGeometry::paper_16kb();
/// assert_eq!(g.capacity_bytes(), 16 * 1024);
/// assert_eq!(g.ways, 4);
/// assert_eq!(g.regions(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Associativity.
    pub ways: usize,
    /// Banks per way; one bank is one horizontal region for H-YAPD.
    pub banks_per_way: usize,
    /// Word-line rows per bank.
    pub rows_per_bank: usize,
    /// Bit columns per bank.
    pub cols_per_bank: usize,
    /// Number of segments each bitline is partitioned into.
    pub bitline_segments: usize,
    /// Cache block (line) size in bytes.
    pub block_bytes: usize,
}

impl CacheGeometry {
    /// The paper's 16 KB, 4-way data cache: 4 banks/way, 64×128-bit banks,
    /// split bitlines, 32-byte blocks.
    #[must_use]
    pub fn paper_16kb() -> Self {
        CacheGeometry {
            ways: 4,
            banks_per_way: 4,
            rows_per_bank: 64,
            cols_per_bank: 128,
            bitline_segments: 2,
            block_bytes: 32,
        }
    }

    /// Storage bits in one way.
    #[must_use]
    pub fn bits_per_way(&self) -> usize {
        self.banks_per_way * self.rows_per_bank * self.cols_per_bank
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.ways * self.bits_per_way() / 8
    }

    /// Number of sets (capacity / (ways × block size)).
    #[must_use]
    pub fn sets(&self) -> usize {
        self.capacity_bytes() / (self.ways * self.block_bytes)
    }

    /// Number of horizontal power-down regions (one per bank).
    #[must_use]
    pub fn regions(&self) -> usize {
        self.banks_per_way
    }

    /// Rows in a bitline segment.
    #[must_use]
    pub fn rows_per_segment(&self) -> usize {
        self.rows_per_bank / self.bitline_segments
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the [`GeometryError`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), GeometryError> {
        if self.ways == 0
            || self.banks_per_way == 0
            || self.rows_per_bank == 0
            || self.cols_per_bank == 0
            || self.block_bytes == 0
        {
            return Err(GeometryError::ZeroDimension);
        }
        if self.bitline_segments == 0 || self.rows_per_bank % self.bitline_segments != 0 {
            return Err(GeometryError::UnevenBitlineSegments);
        }
        if self.bits_per_way() % 8 != 0 {
            return Err(GeometryError::FractionalBytes);
        }
        if self.capacity_bytes() % (self.ways * self.block_bytes) != 0 {
            return Err(GeometryError::UnevenBlocks);
        }
        if !self.sets().is_power_of_two() {
            return Err(GeometryError::NonPowerOfTwoSets);
        }
        Ok(())
    }
}

impl Default for CacheGeometry {
    fn default() -> Self {
        Self::paper_16kb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_adds_up_to_16kb() {
        let g = CacheGeometry::paper_16kb();
        assert_eq!(g.bits_per_way(), 4 * 64 * 128);
        assert_eq!(g.capacity_bytes(), 16384);
        assert_eq!(g.sets(), 128);
        assert_eq!(g.rows_per_segment(), 32);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn validation_rejects_zero_dimensions() {
        let mut g = CacheGeometry::paper_16kb();
        g.rows_per_bank = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn validation_rejects_uneven_segments() {
        let mut g = CacheGeometry::paper_16kb();
        g.bitline_segments = 3;
        assert!(g.validate().is_err());
    }

    #[test]
    fn validation_rejects_non_power_of_two_sets() {
        let mut g = CacheGeometry::paper_16kb();
        g.banks_per_way = 3; // 96 sets
        assert!(g.validate().is_err());
    }

    #[test]
    fn default_is_paper_geometry() {
        assert_eq!(CacheGeometry::default(), CacheGeometry::paper_16kb());
    }
}
