//! The assembled cache circuit model: per-way, per-region delay and
//! leakage as a function of one die's variation sample.
//!
//! This is the drop-in replacement for the paper's HSPICE runs (§3, §5.1):
//! given a [`CacheVariation`], it produces the way access latencies and
//! leakage numbers the yield analysis consumes. All outputs are
//! *normalised*: a delay of 1.0 is the nominal near-bank critical path, a
//! way leakage of 1.0 is the nominal leakage of one way.

use crate::device::leakage_factor;
use crate::error::CircuitError;
use crate::geometry::CacheGeometry;
use crate::stages::{cell_delay_factor, logic_delay_factor, wire_delay_factor};
use crate::tech::{Calibration, Technology};
use yac_variation::{CacheVariation, WayVariation};

/// Which physical cache organisation is being evaluated.
///
/// The H-YAPD organisation reconfigures the post-decoders (§4.2), costing
/// ~2.5 % average latency and leaving part of the peripheral circuitry
/// always on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CacheVariant {
    /// Conventional organisation with per-way power-down (YAPD).
    #[default]
    Regular,
    /// Horizontal power-down organisation (H-YAPD).
    Horizontal,
}

/// Circuit-level evaluation of a single way.
#[derive(Debug, Clone, PartialEq)]
pub struct WayCircuitResult {
    /// Worst-path delay through each horizontal region of the way
    /// (normalised; index = region).
    pub region_delay: Vec<f64>,
    /// The way's access delay: the maximum over its regions.
    pub delay: f64,
    /// Cell-array leakage of each region (normalised so a nominal way's
    /// *total* leakage is 1.0).
    pub region_cell_leakage: Vec<f64>,
    /// Leakage of the way's peripheral circuits (decoder, precharge, sense
    /// amplifiers, output drivers).
    pub peripheral_leakage: f64,
    /// Total way leakage: cells + peripherals.
    pub leakage: f64,
}

/// Circuit-level evaluation of a whole cache die.
///
/// The per-way results carry *raw* (cold) leakage; `leakage` is the settled
/// total after the die-level self-heating factor `heat` (see
/// [`crate::Calibration::thermal_factor`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheCircuitResult {
    /// Per-way results, index = way number. Leakage fields are raw (cold).
    pub ways: Vec<WayCircuitResult>,
    /// Cache access delay: the maximum over ways.
    pub delay: f64,
    /// The die-level self-heating multiplier applied to the raw leakage.
    pub heat: f64,
    /// Settled total cache leakage: `heat` times the sum of raw way leakage.
    pub leakage: f64,
}

impl CacheCircuitResult {
    /// Sum of the raw (cold) way leakages.
    #[must_use]
    pub fn raw_leakage(&self) -> f64 {
        self.ways.iter().map(|w| w.leakage).sum()
    }
}

impl CacheCircuitResult {
    /// Number of ways whose delay exceeds `limit`.
    #[must_use]
    pub fn ways_violating_delay(&self, limit: f64) -> usize {
        self.ways.iter().filter(|w| w.delay > limit).count()
    }
}

/// The analytical cache circuit model.
///
/// # Examples
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use yac_circuit::CacheCircuitModel;
/// use yac_variation::{CacheVariation, VariationConfig};
///
/// let model = CacheCircuitModel::regular();
/// let mut rng = SmallRng::seed_from_u64(1);
/// let die = CacheVariation::sample(&VariationConfig::default(), &mut rng);
/// let result = model.evaluate(&die);
/// assert_eq!(result.ways.len(), 4);
/// assert!(result.delay > 0.0);
/// assert!(result.leakage > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CacheCircuitModel {
    tech: Technology,
    calibration: Calibration,
    geometry: CacheGeometry,
    variant: CacheVariant,
}

impl CacheCircuitModel {
    /// Builds a model, validating the calibration and geometry.
    ///
    /// # Errors
    ///
    /// Returns the [`CircuitError`] identifying whether the calibration
    /// shares or the geometry dimensions are inconsistent.
    pub fn new(
        tech: Technology,
        calibration: Calibration,
        geometry: CacheGeometry,
        variant: CacheVariant,
    ) -> Result<Self, CircuitError> {
        calibration.validate()?;
        geometry.validate()?;
        Ok(CacheCircuitModel {
            tech,
            calibration,
            geometry,
            variant,
        })
    }

    /// The calibrated model of the paper's regular 16 KB cache.
    #[must_use]
    pub fn regular() -> Self {
        Self::new(
            Technology::ptm45(),
            Calibration::calibrated(),
            CacheGeometry::paper_16kb(),
            CacheVariant::Regular,
        )
        .expect("calibrated defaults are valid")
    }

    /// The calibrated model of the H-YAPD organisation (+2.5 % latency).
    #[must_use]
    pub fn horizontal() -> Self {
        Self::new(
            Technology::ptm45(),
            Calibration::calibrated(),
            CacheGeometry::paper_16kb(),
            CacheVariant::Horizontal,
        )
        .expect("calibrated defaults are valid")
    }

    /// The model's technology constants.
    #[must_use]
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The model's calibration constants.
    #[must_use]
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The modeled cache organisation.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Which organisation variant this model evaluates.
    #[must_use]
    pub fn variant(&self) -> CacheVariant {
        self.variant
    }

    /// Region-dependent delay-share weights.
    ///
    /// The paper's deck sizes gates to equalise nominal path delays, but
    /// the *composition* differs: far banks see more interconnect, near
    /// banks more cell/logic. Returns `(logic_w, wire_w, cell_w)` for the
    /// region, summing to 1.
    fn region_weights(&self, region: usize, regions: usize) -> (f64, f64, f64) {
        let cal = &self.calibration;
        let frac = (region as f64 + 0.5) / regions as f64;
        // Wire share sweeps from 0.6x to 1.4x of its average across the
        // banks; logic and cell shrink proportionally to keep the total 1.
        let wire_w = cal.wire_delay_share * (0.6 + 0.8 * frac);
        let rest = 1.0 - wire_w;
        let rest_nominal = 1.0 - cal.wire_delay_share;
        let scale = rest / rest_nominal;
        let logic_share = 1.0 - cal.wire_delay_share - cal.cell_delay_share;
        (logic_share * scale, wire_w, cal.cell_delay_share * scale)
    }

    /// Evaluates the delay and leakage of one way.
    ///
    /// # Panics
    ///
    /// Panics if the way has no regions.
    #[must_use]
    pub fn evaluate_way(&self, way: &WayVariation) -> WayCircuitResult {
        assert!(
            !way.regions.is_empty(),
            "way must carry at least one region sample"
        );
        let t = &self.tech;
        let cal = &self.calibration;
        let regions = way.regions.len();
        let variant_mult = match self.variant {
            CacheVariant::Regular => 1.0,
            CacheVariant::Horizontal => 1.0 + cal.hyapd_delay_overhead,
        };

        let logic = logic_delay_factor(t, &way.structures);
        let mut region_delay = Vec::with_capacity(regions);
        for (r, region) in way.regions.iter().enumerate() {
            let (logic_w, wire_w, cell_w) = self.region_weights(r, regions);
            let wire = wire_delay_factor(t, &way.structures, &region.interconnect);
            let cell = cell_delay_factor(
                t,
                &region.cell_array,
                cal.worst_cell_vt_boost_mv + region.worst_cell_extra_mv,
            );
            region_delay.push(variant_mult * (logic_w * logic + wire_w * wire + cell_w * cell));
        }
        let delay = region_delay.iter().copied().fold(f64::MIN, f64::max);

        // Leakage: cells carry (1 - peripheral_share) of a nominal way's
        // leakage, split evenly over regions; peripherals carry the rest,
        // split over the four structures.
        let cell_share = 1.0 - cal.peripheral_leak_share;
        let mut region_cell_leakage = Vec::with_capacity(regions);
        for region in &way.regions {
            let f = leakage_factor(t, &region.cell_array);
            region_cell_leakage.push(cell_share / regions as f64 * f);
        }
        let s = &way.structures;
        let peripheral_leakage = cal.peripheral_leak_share
            * (0.30 * leakage_factor(t, &s.decoder)
                + 0.25 * leakage_factor(t, &s.precharge)
                + 0.25 * leakage_factor(t, &s.sense_amp)
                + 0.20 * leakage_factor(t, &s.output_driver));
        let leakage = region_cell_leakage.iter().sum::<f64>() + peripheral_leakage;

        WayCircuitResult {
            region_delay,
            delay,
            region_cell_leakage,
            peripheral_leakage,
            leakage,
        }
    }

    /// Evaluates a whole die: all ways, the cache-level maxima/sums, and
    /// the die-level leakage-temperature feedback.
    ///
    /// Way results keep their *raw* (cold) leakage; the returned
    /// [`CacheCircuitResult::leakage`] is the settled value after applying
    /// [`crate::Calibration::thermal_factor`] to the die's relative raw
    /// leakage.
    ///
    /// # Panics
    ///
    /// Panics if the die has no ways.
    #[must_use]
    pub fn evaluate(&self, die: &CacheVariation) -> CacheCircuitResult {
        let _timer = yac_obs::phase(yac_obs::Phase::CircuitEval);
        yac_obs::inc(yac_obs::Metric::CircuitEvals);
        assert!(!die.ways.is_empty(), "die must carry at least one way");
        let ways: Vec<WayCircuitResult> = die.ways.iter().map(|w| self.evaluate_way(w)).collect();
        let delay = ways.iter().map(|w| w.delay).fold(f64::MIN, f64::max);

        let raw: f64 = ways.iter().map(|w| w.leakage).sum();
        let x = raw / ways.len() as f64; // nominal way leakage is 1.0
        let heat = self.calibration.thermal_factor(x);
        CacheCircuitResult {
            leakage: heat * raw,
            heat,
            ways,
            delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use yac_variation::{
        CacheVariation, GradientConfig, MeshPosition, ParameterSet, RegionVariation,
        StructureParams, VariationConfig,
    };

    fn nominal_way(regions: usize) -> WayVariation {
        WayVariation {
            position: MeshPosition::for_way(0),
            base: ParameterSet::nominal(),
            structures: StructureParams::uniform(ParameterSet::nominal()),
            regions: vec![
                RegionVariation {
                    cell_array: ParameterSet::nominal(),
                    interconnect: ParameterSet::nominal(),
                    worst_cell_extra_mv: 0.0,
                };
                regions
            ],
        }
    }

    #[test]
    fn nominal_way_has_unit_delay_and_leakage() {
        let model = CacheCircuitModel::regular();
        let way = model.evaluate_way(&nominal_way(4));
        // Every region's weights sum to 1 and every factor is 1 at nominal.
        for d in &way.region_delay {
            assert!((d - 1.0).abs() < 1e-9, "region delay {d}");
        }
        assert!((way.delay - 1.0).abs() < 1e-9);
        assert!((way.leakage - 1.0).abs() < 1e-9);
        let cells: f64 = way.region_cell_leakage.iter().sum();
        let cal = model.calibration();
        assert!((cells - (1.0 - cal.peripheral_leak_share)).abs() < 1e-9);
        assert!((way.peripheral_leakage - cal.peripheral_leak_share).abs() < 1e-9);
    }

    #[test]
    fn horizontal_variant_costs_the_documented_overhead() {
        let reg = CacheCircuitModel::regular();
        let hor = CacheCircuitModel::horizontal();
        let way = nominal_way(4);
        let d_reg = reg.evaluate_way(&way).delay;
        let d_hor = hor.evaluate_way(&way).delay;
        let overhead = reg.calibration().hyapd_delay_overhead;
        assert!((d_hor / d_reg - (1.0 + overhead)).abs() < 1e-9);
    }

    #[test]
    fn cache_delay_is_max_and_leakage_is_sum() {
        let model = CacheCircuitModel::regular();
        let mut rng = SmallRng::seed_from_u64(5);
        let die = CacheVariation::sample(&VariationConfig::default(), &mut rng);
        let result = model.evaluate(&die);
        let max_way = result.ways.iter().map(|w| w.delay).fold(f64::MIN, f64::max);
        let sum_leak: f64 = result.ways.iter().map(|w| w.leakage).sum();
        assert_eq!(result.delay, max_way);
        assert!(result.heat >= 1.0);
        assert!((result.leakage - result.heat * sum_leak).abs() < 1e-9);
        assert!((result.raw_leakage() - sum_leak).abs() < 1e-12);
    }

    #[test]
    fn region_weights_sum_to_one() {
        let model = CacheCircuitModel::regular();
        for r in 0..4 {
            let (l, w, c) = model.region_weights(r, 4);
            assert!((l + w + c - 1.0).abs() < 1e-12);
            assert!(l > 0.0 && w > 0.0 && c > 0.0);
        }
    }

    #[test]
    fn far_regions_are_more_wire_weighted() {
        let model = CacheCircuitModel::regular();
        let (_, w0, c0) = model.region_weights(0, 4);
        let (_, w3, c3) = model.region_weights(3, 4);
        assert!(w3 > w0);
        assert!(c3 < c0);
    }

    #[test]
    fn ways_violating_delay_counts_correctly() {
        let model = CacheCircuitModel::regular();
        let mut rng = SmallRng::seed_from_u64(6);
        let die = CacheVariation::sample(&VariationConfig::default(), &mut rng);
        let result = model.evaluate(&die);
        assert_eq!(result.ways_violating_delay(f64::INFINITY), 0);
        assert_eq!(result.ways_violating_delay(0.0), 4);
    }

    #[test]
    fn population_delay_and_leakage_are_plausible() {
        // Spot-check the distribution regime the calibration targets:
        // delay CV in the high single digits to ~25 %, leakage CV larger,
        // and leakage anti-correlated with delay.
        let model = CacheCircuitModel::regular();
        let cfg = VariationConfig::default();
        let n = 400;
        let mut delays = Vec::with_capacity(n);
        let mut leaks = Vec::with_capacity(n);
        for seed in 0..n {
            let mut rng = SmallRng::seed_from_u64(seed as u64);
            let die = CacheVariation::sample(&cfg, &mut rng);
            let r = model.evaluate(&die);
            delays.push(r.delay);
            leaks.push(r.leakage);
        }
        let d = yac_variation::stats::Summary::from_slice(&delays).unwrap();
        let l = yac_variation::stats::Summary::from_slice(&leaks).unwrap();
        assert!(d.cv() > 0.03 && d.cv() < 0.40, "delay cv = {}", d.cv());
        assert!(l.cv() > d.cv(), "leakage must spread wider than delay");
        let r = yac_variation::stats::pearson(&delays, &leaks).unwrap();
        assert!(r < 0.0, "fast caches should be the leaky ones (r = {r})");
    }

    #[test]
    fn gradient_increases_cross_way_agreement_of_critical_region() {
        let with = VariationConfig::default();
        let without = VariationConfig {
            gradient: GradientConfig::disabled(),
            ..VariationConfig::default()
        };
        let model = CacheCircuitModel::regular();
        let agreement = |cfg: &VariationConfig| {
            let mut agree = 0;
            let mut total = 0;
            for seed in 0..200u64 {
                let mut rng = SmallRng::seed_from_u64(seed);
                let die = CacheVariation::sample(cfg, &mut rng);
                let r = model.evaluate(&die);
                let critical = |w: &WayCircuitResult| {
                    w.region_delay
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .map(|(i, _)| i)
                        .unwrap()
                };
                let c0 = critical(&r.ways[0]);
                for w in &r.ways[1..] {
                    total += 1;
                    if critical(w) == c0 {
                        agree += 1;
                    }
                }
            }
            f64::from(agree) / f64::from(total)
        };
        // Chance agreement would be 0.25; both configurations must sit far
        // above it (the region-dependent wire weighting plus — with the
        // gradient — the shared systematic offsets align critical regions
        // across ways: the H-YAPD premise).
        let a_with = agreement(&with);
        let a_without = agreement(&without);
        assert!(
            a_with > 0.33,
            "critical regions should align above chance: {a_with}"
        );
        assert!(a_without > 0.30, "structural alignment alone: {a_without}");
    }

    #[test]
    fn invalid_calibration_is_rejected() {
        let mut cal = Calibration::calibrated();
        cal.wire_delay_share = 0.8;
        cal.cell_delay_share = 0.8;
        assert!(CacheCircuitModel::new(
            Technology::ptm45(),
            cal,
            CacheGeometry::paper_16kb(),
            CacheVariant::Regular,
        )
        .is_err());
    }
}
