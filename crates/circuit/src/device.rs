//! First-order MOS device models: alpha-power-law drive strength and
//! subthreshold/gate leakage as functions of the varied parameters.

use crate::tech::Technology;
use yac_variation::{Parameter, ParameterSet};

/// Drive-strength factor of a device relative to nominal, from the
/// alpha-power law `I_on ∝ (V - V_t)^α / L`.
///
/// `v_swing` is the gate overdrive supply seen by the stack (full `V_dd`
/// for logic, the reduced [`Technology::cell_read_v`] for the SRAM cell
/// read path). Values above 1.0 mean a *stronger* (faster) device.
///
/// # Examples
///
/// ```
/// use yac_circuit::{device::drive_factor, Technology};
/// use yac_variation::ParameterSet;
///
/// let tech = Technology::ptm45();
/// let nominal = drive_factor(&tech, &ParameterSet::nominal(), tech.vdd_v);
/// assert!((nominal - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn drive_factor(tech: &Technology, params: &ParameterSet, v_swing: f64) -> f64 {
    let vt = params.v_t_mv * 1e-3;
    let vt_nom = Parameter::ThresholdVoltage.nominal() * 1e-3;
    let overdrive = (v_swing - vt).max(0.02);
    let overdrive_nom = (v_swing - vt_nom).max(0.02);
    let l_ratio = Parameter::GateLength.nominal() / params.l_gate_nm.max(1e-3);
    (overdrive / overdrive_nom).powf(tech.alpha) * l_ratio
}

/// Effective switching-resistance factor relative to nominal: the inverse
/// of [`drive_factor`]. Values above 1.0 mean a slower device.
#[must_use]
pub fn resistance_factor(tech: &Technology, params: &ParameterSet, v_swing: f64) -> f64 {
    1.0 / drive_factor(tech, params, v_swing)
}

/// Subthreshold leakage of a device relative to nominal:
/// `I_sub ∝ exp(-V_t / n·v_T) · exp(-(L - L_nom)/l_char) · (L_nom / L)`.
///
/// The exponential V_t dependence produces the paper's 5–10× leakage
/// spread; the channel-length term produces the ~3× spread for a 10 %
/// `L_eff` excursion.
///
/// # Examples
///
/// ```
/// use yac_circuit::{device::subthreshold_factor, Technology};
/// use yac_variation::{Parameter, ParameterSet};
///
/// let tech = Technology::ptm45();
/// let low_vt = ParameterSet::nominal().with_offset_sigmas(Parameter::ThresholdVoltage, -3.0);
/// assert!(subthreshold_factor(&tech, &low_vt) > 2.0);
/// ```
#[must_use]
pub fn subthreshold_factor(tech: &Technology, params: &ParameterSet) -> f64 {
    let vt = params.v_t_mv * 1e-3;
    let vt_nom = Parameter::ThresholdVoltage.nominal() * 1e-3;
    let dl = params.l_gate_nm - Parameter::GateLength.nominal();
    let vt_term = (-(vt - vt_nom) / tech.n_vt_v).exp();
    let l_term = (-dl / tech.l_char_nm).exp();
    let width_term = Parameter::GateLength.nominal() / params.l_gate_nm.max(1e-3);
    vt_term * l_term * width_term
}

/// Total static leakage factor of a device: subthreshold plus the weakly
/// varying gate-leakage floor, normalised to 1.0 at nominal.
#[must_use]
pub fn leakage_factor(tech: &Technology, params: &ParameterSet) -> f64 {
    let sub = subthreshold_factor(tech, params);
    // Gate leakage scales mildly with gate area (W fixed, L varies).
    let gate = params.l_gate_nm / Parameter::GateLength.nominal();
    (1.0 - tech.gate_leak_fraction) * sub + tech.gate_leak_fraction * gate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::ptm45()
    }

    #[test]
    fn nominal_factors_are_unity() {
        let p = ParameterSet::nominal();
        assert!((drive_factor(&tech(), &p, 1.0) - 1.0).abs() < 1e-12);
        assert!((resistance_factor(&tech(), &p, 1.0) - 1.0).abs() < 1e-12);
        assert!((subthreshold_factor(&tech(), &p) - 1.0).abs() < 1e-12);
        assert!((leakage_factor(&tech(), &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_vt_means_slower_and_less_leaky() {
        let hi = ParameterSet::nominal().with_offset_sigmas(Parameter::ThresholdVoltage, 2.0);
        let t = tech();
        assert!(drive_factor(&t, &hi, t.vdd_v) < 1.0);
        assert!(leakage_factor(&t, &hi) < 1.0);
    }

    #[test]
    fn lower_vt_means_faster_and_leakier() {
        let lo = ParameterSet::nominal().with_offset_sigmas(Parameter::ThresholdVoltage, -2.0);
        let t = tech();
        assert!(drive_factor(&t, &lo, t.vdd_v) > 1.0);
        assert!(leakage_factor(&t, &lo) > 1.0);
    }

    #[test]
    fn longer_channel_slower_and_less_leaky() {
        let long = ParameterSet::nominal().with_offset_sigmas(Parameter::GateLength, 3.0);
        let t = tech();
        assert!(drive_factor(&t, &long, t.vdd_v) < 1.0);
        assert!(subthreshold_factor(&t, &long) < 1.0);
    }

    #[test]
    fn vt_sensitivity_amplified_at_reduced_swing() {
        let t = tech();
        let hi = ParameterSet::nominal().with_offset_sigmas(Parameter::ThresholdVoltage, 3.0);
        let full = resistance_factor(&t, &hi, t.vdd_v);
        let cell = resistance_factor(&t, &hi, t.cell_read_v);
        assert!(
            cell > full * 1.05,
            "cell path must amplify Vt sensitivity (full {full}, cell {cell})"
        );
    }

    #[test]
    fn ten_percent_leff_gives_about_3x_subthreshold() {
        let t = tech();
        let short = {
            let mut p = ParameterSet::nominal();
            p.l_gate_nm *= 0.9;
            p
        };
        let ratio = subthreshold_factor(&t, &short);
        assert!((2.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn overdrive_floor_prevents_divergence() {
        let mut p = ParameterSet::nominal();
        p.v_t_mv = 990.0; // far above any supply
        let t = tech();
        let r = resistance_factor(&t, &p, t.cell_read_v);
        assert!(r.is_finite() && r > 1.0);
    }

    #[test]
    fn interconnect_parameters_do_not_affect_devices() {
        let t = tech();
        let p = ParameterSet::nominal()
            .with_offset_sigmas(Parameter::MetalWidth, 3.0)
            .with_offset_sigmas(Parameter::IldThickness, -3.0);
        assert_eq!(drive_factor(&t, &p, t.vdd_v), 1.0);
        assert_eq!(leakage_factor(&t, &p), 1.0);
    }
}
