//! Typed errors for the circuit layer.
//!
//! Part of the workspace-wide fault-tolerance taxonomy: every validation
//! that used to return `Result<(), String>` or `assert!` on its inputs now
//! reports a dedicated enum variant, with `Display` text identical to the
//! legacy message so anything matching on the strings keeps working. The
//! umbrella [`CircuitError`] lets [`crate::CacheCircuitModel::new`] report
//! whichever layer rejected its inputs.

use std::error::Error;
use std::fmt;

/// A rejected [`crate::CacheGeometry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// Some dimension (ways, banks, rows, columns, block bytes) is zero.
    ZeroDimension,
    /// `bitline_segments` is zero or does not divide `rows_per_bank`.
    UnevenBitlineSegments,
    /// A way's bit count is not a whole number of bytes.
    FractionalBytes,
    /// `ways * block_bytes` does not tile the capacity.
    UnevenBlocks,
    /// The set count is not a power of two.
    NonPowerOfTwoSets,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GeometryError::ZeroDimension => "all geometry dimensions must be nonzero",
            GeometryError::UnevenBitlineSegments => {
                "bitline segments must evenly divide the rows of a bank"
            }
            GeometryError::FractionalBytes => "a way must hold a whole number of bytes",
            GeometryError::UnevenBlocks => "blocks must tile the capacity exactly",
            GeometryError::NonPowerOfTwoSets => {
                "set count must be a power of two for simple indexing"
            }
        })
    }
}

impl Error for GeometryError {}

/// A rejected [`crate::Calibration`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationError {
    /// Wire/cell/logic delay shares leave no room for each other.
    BadDelayShares,
    /// `worst_cell_vt_boost_mv` outside `[0, 200)`.
    BadWorstCellBoost,
    /// `peripheral_leak_share` outside `[0, 1)`.
    BadPeripheralLeakShare,
    /// `hyapd_peripheral_shutoff` outside `[0, 1]`.
    BadHyapdShutoff,
    /// `hyapd_delay_overhead` outside `[0, 0.5)`.
    BadHyapdOverhead,
    /// `thermal_feedback` outside `[0, 2)`.
    BadThermalFeedback,
    /// `thermal_threshold` outside `[0.5, 5)`.
    BadThermalThreshold,
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CalibrationError::BadDelayShares => {
                "delay shares must be nonnegative and sum to at most 1"
            }
            CalibrationError::BadWorstCellBoost => "worst-cell Vt boost must lie in [0, 200) mV",
            CalibrationError::BadPeripheralLeakShare => {
                "peripheral leakage share must lie in [0, 1)"
            }
            CalibrationError::BadHyapdShutoff => "H-YAPD peripheral shutoff must lie in [0, 1]",
            CalibrationError::BadHyapdOverhead => "H-YAPD delay overhead must lie in [0, 0.5)",
            CalibrationError::BadThermalFeedback => "thermal feedback must lie in [0, 2)",
            CalibrationError::BadThermalThreshold => "thermal threshold must lie in [0.5, 5)",
        })
    }
}

impl Error for CalibrationError {}

/// A rejected [`crate::network::RcNetwork`] element.
///
/// The `Display` strings match the panic messages of the infallible
/// builder methods, which forward to the `try_*` variants and panic with
/// this error's text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetworkError {
    /// A node capacitance is negative, NaN or infinite.
    BadCapacitance(f64),
    /// A resistor value is nonpositive, NaN or infinite.
    BadResistance(f64),
    /// A driver resistance is nonpositive, NaN or infinite.
    BadDriverResistance(f64),
    /// A ladder was requested with zero stages.
    EmptyLadder,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::BadCapacitance(_) => f.write_str("capacitance must be >= 0"),
            NetworkError::BadResistance(_) => f.write_str("resistance must be positive"),
            NetworkError::BadDriverResistance(_) => {
                f.write_str("driver resistance must be positive")
            }
            NetworkError::EmptyLadder => f.write_str("a ladder needs at least one stage"),
        }
    }
}

impl Error for NetworkError {}

/// A rejected wire-model input (see [`crate::wire`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireError {
    /// A geometric parameter of the wire cross-section is not positive
    /// and finite.
    BadParameter {
        /// The human name of the parameter ("metal width", etc.).
        name: &'static str,
        /// The bad value.
        value: f64,
    },
    /// The relative wire length is not positive and finite.
    BadLength(f64),
    /// The relative driver resistance is not positive and finite.
    BadDriver(f64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadParameter { name, value } => {
                write!(f, "wire {name} must be positive and finite, got {value}")
            }
            WireError::BadLength(v) => {
                write!(f, "wire length must be positive and finite, got {v}")
            }
            WireError::BadDriver(v) => {
                write!(f, "driver resistance must be positive and finite, got {v}")
            }
        }
    }
}

impl Error for WireError {}

/// Any error the circuit layer can report; produced by
/// [`crate::CacheCircuitModel::new`] and convertible from each layer's
/// specific error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CircuitError {
    /// The cache geometry was rejected.
    Geometry(GeometryError),
    /// The calibration constants were rejected.
    Calibration(CalibrationError),
    /// An RC-network element was rejected.
    Network(NetworkError),
    /// A wire-model input was rejected.
    Wire(WireError),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::Geometry(e) => e.fmt(f),
            CircuitError::Calibration(e) => e.fmt(f),
            CircuitError::Network(e) => e.fmt(f),
            CircuitError::Wire(e) => e.fmt(f),
        }
    }
}

impl Error for CircuitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CircuitError::Geometry(e) => Some(e),
            CircuitError::Calibration(e) => Some(e),
            CircuitError::Network(e) => Some(e),
            CircuitError::Wire(e) => Some(e),
        }
    }
}

impl From<GeometryError> for CircuitError {
    fn from(e: GeometryError) -> Self {
        CircuitError::Geometry(e)
    }
}

impl From<CalibrationError> for CircuitError {
    fn from(e: CalibrationError) -> Self {
        CircuitError::Calibration(e)
    }
}

impl From<NetworkError> for CircuitError {
    fn from(e: NetworkError) -> Self {
        CircuitError::Network(e)
    }
}

impl From<WireError> for CircuitError {
    fn from(e: WireError) -> Self {
        CircuitError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_strings() {
        assert_eq!(
            GeometryError::ZeroDimension.to_string(),
            "all geometry dimensions must be nonzero"
        );
        assert_eq!(
            CalibrationError::BadDelayShares.to_string(),
            "delay shares must be nonnegative and sum to at most 1"
        );
        assert_eq!(
            NetworkError::BadResistance(0.0).to_string(),
            "resistance must be positive"
        );
    }

    #[test]
    fn umbrella_preserves_message_and_source() {
        let e = CircuitError::from(GeometryError::NonPowerOfTwoSets);
        assert_eq!(
            e.to_string(),
            "set count must be a power of two for simple indexing"
        );
        assert!(std::error::Error::source(&e).is_some());
    }
}
