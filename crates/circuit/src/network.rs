//! A small transient RC-network solver (backward-Euler nodal analysis).
//!
//! The production delay model uses closed-form Elmore expressions for
//! speed; this module provides the ground truth they are validated
//! against: build the same driver + distributed-ladder topology as an
//! explicit RC network, solve the step response numerically, and read off
//! the 50 %-crossing delay. The test suite checks that the Elmore factors
//! used by [`crate::wire`] track the solver across the full variation
//! range.

use crate::error::NetworkError;

/// Handle to a node of an [`RcNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// A linear RC network driven by an ideal step source through a driver
/// resistance.
///
/// # Examples
///
/// Single RC: the 50 % point of a step response is `ln 2 · RC`.
///
/// ```
/// use yac_circuit::network::RcNetwork;
///
/// let mut net = RcNetwork::new();
/// let n = net.add_node(1.0);        // 1 F to ground
/// net.drive(n, 1.0);                // 1 Ω from the step source
/// let t50 = net.step_delay_50(n).unwrap();
/// assert!((t50 - std::f64::consts::LN_2).abs() < 5e-3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RcNetwork {
    /// Node capacitance to ground.
    caps: Vec<f64>,
    /// Resistors between node pairs.
    resistors: Vec<(usize, usize, f64)>,
    /// Conductances from the step source to a node (driver connections).
    sources: Vec<(usize, f64)>,
}

impl RcNetwork {
    /// An empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given capacitance to ground (farads).
    ///
    /// # Panics
    ///
    /// Panics if the capacitance is negative or not finite. Use
    /// [`RcNetwork::try_add_node`] to handle the error instead.
    pub fn add_node(&mut self, cap: f64) -> NodeId {
        self.try_add_node(cap).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`RcNetwork::add_node`].
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::BadCapacitance`] if the capacitance is
    /// negative or not finite.
    pub fn try_add_node(&mut self, cap: f64) -> Result<NodeId, NetworkError> {
        if !(cap.is_finite() && cap >= 0.0) {
            return Err(NetworkError::BadCapacitance(cap));
        }
        self.caps.push(cap);
        Ok(NodeId(self.caps.len() - 1))
    }

    /// Connects two nodes with a resistor (ohms).
    ///
    /// # Panics
    ///
    /// Panics if the resistance is not positive and finite. Use
    /// [`RcNetwork::try_connect`] to handle the error instead.
    pub fn connect(&mut self, a: NodeId, b: NodeId, r: f64) {
        self.try_connect(a, b, r).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible counterpart of [`RcNetwork::connect`].
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::BadResistance`] if the resistance is not
    /// positive and finite.
    pub fn try_connect(&mut self, a: NodeId, b: NodeId, r: f64) -> Result<(), NetworkError> {
        if !(r.is_finite() && r > 0.0) {
            return Err(NetworkError::BadResistance(r));
        }
        self.resistors.push((a.0, b.0, r));
        Ok(())
    }

    /// Connects a node to the step source through a driver resistance.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is not positive and finite. Use
    /// [`RcNetwork::try_drive`] to handle the error instead.
    pub fn drive(&mut self, node: NodeId, driver_r: f64) {
        self.try_drive(node, driver_r)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible counterpart of [`RcNetwork::drive`].
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::BadDriverResistance`] if the resistance is
    /// not positive and finite.
    pub fn try_drive(&mut self, node: NodeId, driver_r: f64) -> Result<(), NetworkError> {
        if !(driver_r.is_finite() && driver_r > 0.0) {
            return Err(NetworkError::BadDriverResistance(driver_r));
        }
        self.sources.push((node.0, 1.0 / driver_r));
        Ok(())
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.caps.len()
    }

    /// Builds a driver + uniform distributed ladder of `stages` segments
    /// with total wire resistance `r_total` and total capacitance
    /// `c_total`, plus a lumped far-end load `c_load`. Returns the network
    /// and the far-end node.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero or any value is non-positive. Use
    /// [`RcNetwork::try_ladder`] to handle the error instead.
    #[must_use]
    pub fn ladder(
        driver_r: f64,
        stages: usize,
        r_total: f64,
        c_total: f64,
        c_load: f64,
    ) -> (Self, NodeId) {
        Self::try_ladder(driver_r, stages, r_total, c_total, c_load)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`RcNetwork::ladder`].
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::EmptyLadder`] for zero stages, or the
    /// element error for a non-physical resistance or capacitance.
    pub fn try_ladder(
        driver_r: f64,
        stages: usize,
        r_total: f64,
        c_total: f64,
        c_load: f64,
    ) -> Result<(Self, NodeId), NetworkError> {
        if stages == 0 {
            return Err(NetworkError::EmptyLadder);
        }
        let mut net = RcNetwork::new();
        let c_seg = c_total / stages as f64;
        let r_seg = r_total / stages as f64;
        let first = net.try_add_node(c_seg)?;
        net.try_drive(first, driver_r)?;
        let mut prev = first;
        for i in 1..stages {
            let extra = if i == stages - 1 { c_load } else { 0.0 };
            let node = net.try_add_node(c_seg + extra)?;
            net.try_connect(prev, node, r_seg)?;
            prev = node;
        }
        if stages == 1 {
            net.caps[first.0] += c_load;
        }
        Ok((net, prev))
    }

    /// The Elmore (first-moment) delay from the source to `node`:
    /// `Σ_k C_k · R(path shared with k)`.
    ///
    /// Only defined for tree topologies driven by a single source, which
    /// is all this crate builds. Returns `None` if the network has no
    /// single driven tree reaching `node`.
    #[must_use]
    pub fn elmore_delay(&self, node: NodeId) -> Option<f64> {
        if self.sources.len() != 1 {
            return None;
        }
        let (root, g) = self.sources[0];
        let driver_r = 1.0 / g;
        let n = self.node_count();
        // Build adjacency and find the unique path from root to each node.
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(a, b, r) in &self.resistors {
            adj[a].push((b, r));
            adj[b].push((a, r));
        }
        // BFS from root recording path resistances.
        let mut path_r: Vec<Option<Vec<(usize, f64)>>> = vec![None; n];
        path_r[root] = Some(vec![]);
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            let base = path_r[u].clone().expect("visited");
            for &(v, r) in &adj[u] {
                if path_r[v].is_none() {
                    let mut p = base.clone();
                    p.push((v, r));
                    path_r[v] = Some(p);
                    queue.push_back(v);
                }
            }
        }
        path_r[node.0].as_ref()?;
        // Elmore: for each capacitor k, the resistance of the common path
        // between source→node and source→k.
        let target_path: Vec<usize> = path_r[node.0]
            .as_ref()
            .expect("checked")
            .iter()
            .map(|&(v, _)| v)
            .collect();
        let mut delay = 0.0;
        for (k, &c) in self.caps.iter().enumerate() {
            let Some(p) = path_r[k].as_ref() else {
                continue;
            };
            // Common prefix resistance (driver R is always shared).
            let mut shared = driver_r;
            for (i, &(v, r)) in p.iter().enumerate() {
                if target_path.get(i) == Some(&v) {
                    shared += r;
                } else {
                    break;
                }
            }
            delay += shared * c;
        }
        Some(delay)
    }

    /// Solves the unit-step response and returns the time at which `node`
    /// first crosses 50 % of the final value, or `None` if the node is
    /// unreachable from the source.
    ///
    /// Backward Euler with an adaptive-enough fixed step: 1/400 of the
    /// network's Elmore delay estimate (stable for any step size; the
    /// small step keeps the crossing time accurate).
    #[must_use]
    pub fn step_delay_50(&self, node: NodeId) -> Option<f64> {
        let tau = self.elmore_delay(node)?.max(1e-18);
        let dt = tau / 400.0;
        let n = self.node_count();

        // Conductance matrix G (including driver conductances) and C/dt.
        let mut g = vec![vec![0.0f64; n]; n];
        for &(a, b, r) in &self.resistors {
            let y = 1.0 / r;
            g[a][a] += y;
            g[b][b] += y;
            g[a][b] -= y;
            g[b][a] -= y;
        }
        let mut src = vec![0.0f64; n];
        for &(node, y) in &self.sources {
            g[node][node] += y;
            src[node] = y; // step source at 1 V through the driver
        }
        // A = G + C/dt (constant); factor once via Gaussian elimination at
        // each solve for simplicity (n is small).
        let mut a = g.clone();
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += self.caps[i] / dt;
        }

        let mut v = vec![0.0f64; n];
        let limit = 100_000;
        for step in 1..=limit {
            // rhs = C/dt * v + src
            let mut rhs: Vec<f64> = (0..n).map(|i| self.caps[i] / dt * v[i] + src[i]).collect();
            v = solve_dense(&a, &mut rhs);
            if v[node.0] >= 0.5 {
                return Some(dt * step as f64);
            }
        }
        None
    }
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
/// `a` is copied; `b` is consumed as workspace.
fn solve_dense(a: &[Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    let mut m: Vec<Vec<f64>> = a.to_vec();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        m.swap(col, pivot);
        b.swap(col, pivot);
        let diag = m[col][col];
        debug_assert!(diag.abs() > 1e-30, "singular RC matrix");
        for row in (col + 1)..n {
            let f = m[row][col] / diag;
            if f == 0.0 {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // two rows of one matrix
            for k in col..n {
                m[row][k] -= f * m[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rc_matches_analytic_solution() {
        let mut net = RcNetwork::new();
        let n = net.add_node(2.0);
        net.drive(n, 3.0);
        let t50 = net.step_delay_50(n).unwrap();
        let expected = 6.0 * std::f64::consts::LN_2; // RC ln 2
        assert!(
            (t50 - expected).abs() / expected < 0.01,
            "{t50} vs {expected}"
        );
        assert!((net.elmore_delay(n).unwrap() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn ladder_t50_is_a_stable_fraction_of_elmore() {
        // Classic results: a driver-dominated (lumped-like) net crosses
        // 50% at ln2 x Elmore ~ 0.69; a pure distributed line crosses at
        // ~0.38 RC against an Elmore of ~0.5 RC, i.e. a ratio near 0.76.
        let (net, far) = RcNetwork::ladder(10.0, 16, 1.0, 1.0, 0.0);
        let t50 = net.step_delay_50(far).unwrap();
        let elmore = net.elmore_delay(far).unwrap();
        let ratio = t50 / elmore;
        assert!(
            (0.65..0.73).contains(&ratio),
            "driver-dominated ratio {ratio}"
        );

        let (net, far) = RcNetwork::ladder(0.01, 64, 1.0, 1.0, 0.0);
        let ratio = net.step_delay_50(far).unwrap() / net.elmore_delay(far).unwrap();
        assert!(
            (0.70..0.80).contains(&ratio),
            "wire-dominated ratio {ratio}"
        );
        // Either way Elmore is a conservative bound the closed-form model
        // can scale by a constant.
        assert!(ratio < 1.0);
    }

    #[test]
    fn more_stages_converge_to_the_distributed_limit() {
        let t = |stages| {
            let (net, far) = RcNetwork::ladder(0.01, stages, 1.0, 1.0, 0.0);
            net.step_delay_50(far).unwrap()
        };
        let coarse = t(4);
        let fine = t(32);
        let finer = t(64);
        assert!(
            (fine - finer).abs() < (coarse - finer).abs(),
            "refinement must converge: {coarse} {fine} {finer}"
        );
    }

    #[test]
    fn delay_is_monotone_in_r_c_and_length() {
        let base = {
            let (net, far) = RcNetwork::ladder(1.0, 16, 1.0, 1.0, 0.5);
            net.step_delay_50(far).unwrap()
        };
        let more_r = {
            let (net, far) = RcNetwork::ladder(1.0, 16, 2.0, 1.0, 0.5);
            net.step_delay_50(far).unwrap()
        };
        let more_c = {
            let (net, far) = RcNetwork::ladder(1.0, 16, 1.0, 2.0, 0.5);
            net.step_delay_50(far).unwrap()
        };
        let weaker_driver = {
            let (net, far) = RcNetwork::ladder(2.0, 16, 1.0, 1.0, 0.5);
            net.step_delay_50(far).unwrap()
        };
        assert!(more_r > base);
        assert!(more_c > base);
        assert!(weaker_driver > base);
    }

    #[test]
    fn elmore_handles_branching_trees() {
        // Driver -> a -> b and a -> c: c's cap contributes only the shared
        // path (driver + r_a) to b's Elmore delay.
        let mut net = RcNetwork::new();
        let a = net.add_node(1.0);
        let b = net.add_node(1.0);
        let c = net.add_node(4.0);
        net.drive(a, 1.0);
        net.connect(a, b, 2.0);
        net.connect(a, c, 7.0);
        let elmore_b = net.elmore_delay(b).unwrap();
        // C_a*(1) + C_b*(1+2) + C_c*(1) = 1 + 3 + 4 = 8.
        assert!((elmore_b - 8.0).abs() < 1e-12, "{elmore_b}");
        // And the solver agrees within the usual step-response margin.
        let t50 = net.step_delay_50(b).unwrap();
        assert!(t50 > 0.3 * elmore_b && t50 < elmore_b);
    }

    #[test]
    fn unreachable_node_returns_none() {
        let mut net = RcNetwork::new();
        let a = net.add_node(1.0);
        let b = net.add_node(1.0); // never connected
        net.drive(a, 1.0);
        assert!(net.elmore_delay(b).is_none());
        assert!(net.step_delay_50(b).is_none());
    }

    #[test]
    fn validates_the_wire_models_variation_trends() {
        // The closed-form elmore_factor of crate::wire must move in the
        // same direction as the full solver when W/T/H vary.
        use crate::wire::{capacitance_per_um_factor, resistance_per_um_factor};
        use crate::Technology;
        use yac_variation::{Parameter, ParameterSet};

        let tech = Technology::ptm45();
        let solve = |params: &ParameterSet| {
            let r = resistance_per_um_factor(params);
            let c = capacitance_per_um_factor(&tech, params);
            let (net, far) = RcNetwork::ladder(1.0, 16, 0.6 * r, c, 0.3);
            net.step_delay_50(far).unwrap()
        };
        let nominal = solve(&ParameterSet::nominal());
        // The coupling corner (wide lines, thin dielectric) must be slower
        // in both the closed form and the solver.
        let coupled = ParameterSet::nominal()
            .with_offset_sigmas(Parameter::MetalWidth, 3.0)
            .with_offset_sigmas(Parameter::IldThickness, -3.0);
        assert!(solve(&coupled) > nominal);
        // The narrow/thin corner loses capacitance faster than it gains
        // resistance for this driver-dominated geometry, as in the model.
        let narrow = ParameterSet::nominal()
            .with_offset_sigmas(Parameter::MetalWidth, -3.0)
            .with_offset_sigmas(Parameter::MetalThickness, -3.0);
        assert!(solve(&narrow) < nominal * 1.05);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistance_rejected() {
        let mut net = RcNetwork::new();
        let a = net.add_node(1.0);
        let b = net.add_node(1.0);
        net.connect(a, b, 0.0);
    }

    #[test]
    fn try_variants_report_typed_errors() {
        use crate::error::NetworkError;
        let mut net = RcNetwork::new();
        assert_eq!(
            net.try_add_node(-1.0),
            Err(NetworkError::BadCapacitance(-1.0))
        );
        let a = net.try_add_node(1.0).unwrap();
        let b = net.try_add_node(1.0).unwrap();
        assert_eq!(
            net.try_connect(a, b, f64::NAN).map_err(|e| e.to_string()),
            Err("resistance must be positive".to_string())
        );
        assert_eq!(
            net.try_drive(a, 0.0),
            Err(NetworkError::BadDriverResistance(0.0))
        );
        assert_eq!(
            RcNetwork::try_ladder(1.0, 0, 1.0, 1.0, 0.0).unwrap_err(),
            NetworkError::EmptyLadder
        );
    }

    #[test]
    fn try_ladder_matches_infallible_ladder() {
        let (net_a, end_a) = RcNetwork::ladder(0.8, 6, 1.0, 2.0, 0.3);
        let (net_b, end_b) = RcNetwork::try_ladder(0.8, 6, 1.0, 2.0, 0.3).unwrap();
        assert_eq!(end_a, end_b);
        assert_eq!(net_a.elmore_delay(end_a), net_b.elmore_delay(end_b));
    }
}
