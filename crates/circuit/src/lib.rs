//! Analytical SRAM cache timing and leakage model under process variation
//! — the HSPICE substitute for *Yield-Aware Cache Architectures* (MICRO
//! 2006), §3.
//!
//! Given one die's [`yac_variation::CacheVariation`], the
//! [`CacheCircuitModel`] produces per-way and per-region access delays and
//! leakage power in normalised units (1.0 = nominal). The model follows
//! the paper's cache organisation — 16 KB, 4 ways, 4 banks per way,
//! 64×128-bit arrays, split bitlines — and first-order circuit physics:
//! alpha-power-law devices, Elmore delay over distributed RC interconnect
//! with coupling, exponential subthreshold leakage.
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::SmallRng, SeedableRng};
//! use yac_circuit::CacheCircuitModel;
//! use yac_variation::{CacheVariation, VariationConfig};
//!
//! let model = CacheCircuitModel::regular();
//! let mut rng = SmallRng::seed_from_u64(2006);
//! let die = CacheVariation::sample(&VariationConfig::default(), &mut rng);
//! let result = model.evaluate(&die);
//!
//! // The cache is as slow as its slowest way:
//! let slowest = result.ways.iter().map(|w| w.delay).fold(f64::MIN, f64::max);
//! assert_eq!(result.delay, slowest);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod device;
pub mod error;
pub mod geometry;
pub mod model;
pub mod network;
pub mod stages;
pub mod tech;
pub mod wire;

pub use error::{CalibrationError, CircuitError, GeometryError, NetworkError, WireError};
pub use geometry::CacheGeometry;
pub use model::{CacheCircuitModel, CacheCircuitResult, CacheVariant, WayCircuitResult};
pub use tech::{Calibration, Technology};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::CacheCircuitModel>();
        assert_send_sync::<super::CacheCircuitResult>();
        assert_send_sync::<super::Technology>();
        assert_send_sync::<super::Calibration>();
    }
}
