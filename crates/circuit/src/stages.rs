//! Per-stage delay factors of the cache read path.
//!
//! Each function returns a dimensionless factor, 1.0 at nominal
//! parameters, multiplying that stage's share of the nominal critical
//! path. The stages follow Figure 3 of the paper: address drivers and
//! decoder → global/local wordline → cell + bitline → sense amplifier →
//! output driver.

use crate::device::resistance_factor;
use crate::tech::Technology;
use crate::wire::elmore_factor;
use yac_variation::{ParameterSet, StructureParams};

/// Delay factor of the static-logic portion of the path (decoder chain,
/// sense-amplifier enable, output driver), weighted by each structure's
/// nominal contribution.
#[must_use]
pub fn logic_delay_factor(tech: &Technology, s: &StructureParams) -> f64 {
    const DECODER_W: f64 = 0.5;
    const SENSE_W: f64 = 0.3;
    const DRIVER_W: f64 = 0.2;
    DECODER_W * resistance_factor(tech, &s.decoder, tech.vdd_v)
        + SENSE_W * resistance_factor(tech, &s.sense_amp, tech.vdd_v)
        + DRIVER_W * resistance_factor(tech, &s.output_driver, tech.vdd_v)
}

/// Delay factor of the interconnect portion: the address/predecode route
/// (decoder-local wiring) plus the global wordline and bitline wiring of
/// the accessed region.
///
/// `region_interconnect` carries the region-refined W/T/H values; the
/// wordline driver sits in the decoder, so its strength uses the decoder's
/// device parameters.
#[must_use]
pub fn wire_delay_factor(
    tech: &Technology,
    s: &StructureParams,
    region_interconnect: &ParameterSet,
) -> f64 {
    const ROUTE_W: f64 = 0.35;
    const ARRAY_W: f64 = 0.65;
    let route_driver = resistance_factor(tech, &s.decoder, tech.vdd_v);
    let array_driver = resistance_factor(tech, &s.decoder, tech.vdd_v);
    ROUTE_W * elmore_factor(tech, &s.decoder, 1.0, route_driver)
        + ARRAY_W * elmore_factor(tech, region_interconnect, 1.0, array_driver)
}

/// Delay factor of the cell read / bitline discharge, the
/// variation-amplified component: the cell stack operates at the reduced
/// [`Technology::cell_read_v`] swing and the region's worst cell carries a
/// deterministic V_t boost (`worst_cell_vt_boost_mv`).
#[must_use]
pub fn cell_delay_factor(
    tech: &Technology,
    region_cells: &ParameterSet,
    worst_cell_vt_boost_mv: f64,
) -> f64 {
    let boosted = |p: &ParameterSet| {
        let mut q = *p;
        q.v_t_mv += worst_cell_vt_boost_mv;
        q
    };
    let varied = resistance_factor(tech, &boosted(region_cells), tech.cell_read_v);
    let nominal = resistance_factor(tech, &boosted(&ParameterSet::nominal()), tech.cell_read_v);
    varied / nominal
}

#[cfg(test)]
mod tests {
    use super::*;
    use yac_variation::Parameter;

    fn tech() -> Technology {
        Technology::ptm45()
    }

    fn nominal_structures() -> StructureParams {
        StructureParams::uniform(ParameterSet::nominal())
    }

    #[test]
    fn all_factors_are_unity_at_nominal() {
        let t = tech();
        let s = nominal_structures();
        let p = ParameterSet::nominal();
        assert!((logic_delay_factor(&t, &s) - 1.0).abs() < 1e-9);
        assert!((wire_delay_factor(&t, &s, &p) - 1.0).abs() < 1e-9);
        assert!((cell_delay_factor(&t, &p, 30.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slow_decoder_slows_logic_and_wire_stages() {
        let t = tech();
        let mut s = nominal_structures();
        s.decoder = s
            .decoder
            .with_offset_sigmas(Parameter::ThresholdVoltage, 3.0);
        assert!(logic_delay_factor(&t, &s) > 1.0);
        assert!(wire_delay_factor(&t, &s, &ParameterSet::nominal()) > 1.0);
    }

    #[test]
    fn coupling_corner_slows_wire_stage_only() {
        // Wide lines shrink the space (coupling up) and a thin dielectric
        // raises area capacitance: the slow interconnect corner.
        let t = tech();
        let s = nominal_structures();
        let wires = ParameterSet::nominal()
            .with_offset_sigmas(Parameter::MetalWidth, 3.0)
            .with_offset_sigmas(Parameter::IldThickness, -3.0);
        assert!(wire_delay_factor(&t, &s, &wires) > 1.15);
        assert!((logic_delay_factor(&t, &s) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cell_stage_is_more_vt_sensitive_than_logic_stage() {
        let t = tech();
        let hi = ParameterSet::nominal().with_offset_sigmas(Parameter::ThresholdVoltage, 3.0);
        let mut s = nominal_structures();
        s.decoder = hi;
        s.sense_amp = hi;
        s.output_driver = hi;
        let logic = logic_delay_factor(&t, &s);
        let cell = cell_delay_factor(&t, &hi, 30.0);
        assert!(
            cell > logic * 1.05,
            "cell stage ({cell}) must amplify Vt relative to logic ({logic})"
        );
    }

    #[test]
    fn worst_cell_boost_increases_sensitivity_not_nominal() {
        let t = tech();
        let hi = ParameterSet::nominal().with_offset_sigmas(Parameter::ThresholdVoltage, 2.0);
        let without = cell_delay_factor(&t, &hi, 0.0);
        let with = cell_delay_factor(&t, &hi, 60.0);
        assert!(with > without, "boost must amplify the same Vt excursion");
        assert!((cell_delay_factor(&t, &ParameterSet::nominal(), 60.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn factors_are_finite_at_extreme_corners() {
        let t = tech();
        let mut extreme = ParameterSet::nominal();
        for p in Parameter::ALL {
            extreme = extreme.with_offset_sigmas(p, 3.0);
        }
        let s = StructureParams::uniform(extreme);
        assert!(logic_delay_factor(&t, &s).is_finite());
        assert!(wire_delay_factor(&t, &s, &extreme).is_finite());
        assert!(cell_delay_factor(&t, &extreme, 30.0).is_finite());
    }
}
