//! The functional set-associative cache with true-LRU replacement.

use crate::config::{CacheConfig, ReplacementPolicy};
use crate::error::CacheConfigError;
use crate::stats::CacheStats;

/// One cache line's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of the last touch (for true LRU).
    last_use: u64,
}

/// Whether an access reads or writes the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load (or instruction fetch).
    Read,
    /// A store; marks the block dirty.
    Write,
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the block was present.
    pub hit: bool,
    /// The way the block now occupies.
    pub way: usize,
    /// This cache's contribution to the access latency (the way's hit
    /// latency; miss handling beyond this cache is the hierarchy's job).
    pub latency: u32,
    /// Base address of a dirty block evicted by this access, if any.
    pub writeback: Option<u64>,
}

/// A set-associative cache honouring way enables, per-way latencies and
/// the H-YAPD region remap.
///
/// # Examples
///
/// ```
/// use yac_cache::{AccessKind, CacheConfig, SetAssocCache};
///
/// let mut cache = SetAssocCache::new(CacheConfig::l1d_paper()).unwrap();
/// let miss = cache.access(0x1000, AccessKind::Read);
/// assert!(!miss.hit);
/// let hit = cache.access(0x1000, AccessKind::Read);
/// assert!(hit.hit);
/// assert_eq!(hit.latency, 4);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    lines: Vec<Line>,
    /// Tree-PLRU state: one bit per internal node, per set (unused for the
    /// other policies).
    plru: Vec<u64>,
    /// Xorshift state for the random policy.
    rng_state: u64,
    clock: u64,
    fills: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds an empty cache.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation message if it is inconsistent.
    pub fn new(config: CacheConfig) -> Result<Self, CacheConfigError> {
        config.validate()?;
        let lines = vec![Line::default(); config.sets * config.ways];
        let plru = vec![0u64; config.sets];
        Ok(SetAssocCache {
            config,
            lines,
            plru,
            rng_state: 0x243f_6a88_85a3_08d3,
            clock: 0,
            fills: 0,
            stats: CacheStats::default(),
        })
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Empties the cache contents and statistics.
    pub fn flush(&mut self) {
        self.lines.fill(Line::default());
        self.plru.fill(0);
        self.stats = CacheStats::default();
        self.clock = 0;
        self.fills = 0;
    }

    fn line_index(&self, set: usize, way: usize) -> usize {
        set * self.config.ways + way
    }

    /// Points every tree node on the path to `way` *away* from it (the
    /// PLRU touch rule).
    fn plru_touch(&mut self, set: usize, way: usize) {
        let ways = self.config.ways;
        let mut state = self.plru[set];
        let mut node = 1usize; // heap-style indexing, root = 1
        let mut lo = 0usize;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                state |= 1 << node; // bit set = right half is colder
                hi = mid;
                node *= 2;
            } else {
                state &= !(1 << node);
                lo = mid;
                node = node * 2 + 1;
            }
        }
        self.plru[set] = state;
    }

    /// Follows the PLRU tree toward the cold side.
    fn plru_victim(&self, set: usize) -> usize {
        let ways = self.config.ways;
        let state = self.plru[set];
        let mut node = 1usize;
        let mut lo = 0usize;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if state & (1 << node) != 0 {
                lo = mid; // cold side is the right half
                node = node * 2 + 1;
            } else {
                hi = mid;
                node *= 2;
            }
        }
        lo
    }

    fn next_random(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Victim choice among the available ways of a set: invalid ways first
    /// (rotating), then the policy's coldest valid way.
    fn choose_victim(&mut self, set: usize) -> usize {
        let available: Vec<usize> = (0..self.config.ways)
            .filter(|&w| self.config.way_available(set, w))
            .collect();
        debug_assert!(!available.is_empty());
        self.fills += 1;
        // Invalid-first, rotating so cold fills spread over the ways.
        let invalid: Vec<usize> = available
            .iter()
            .copied()
            .filter(|&w| !self.lines[self.line_index(set, w)].valid)
            .collect();
        if !invalid.is_empty() {
            return invalid[(self.fills % invalid.len() as u64) as usize];
        }
        match self.config.replacement {
            ReplacementPolicy::TrueLru => available
                .into_iter()
                .min_by_key(|&w| self.lines[self.line_index(set, w)].last_use)
                .expect("non-empty"),
            ReplacementPolicy::TreePlru => {
                let v = self.plru_victim(set);
                if available.contains(&v) {
                    v
                } else {
                    // The tree pointed at a powered-down way: take the
                    // nearest available one (a real implementation would
                    // fuse the enable mask into the tree).
                    available
                        .into_iter()
                        .min_by_key(|&w| w.abs_diff(v))
                        .expect("non-empty")
                }
            }
            ReplacementPolicy::Random => {
                let i = (self.next_random() % available.len() as u64) as usize;
                available[i]
            }
        }
    }

    /// Performs one access, updating LRU state and statistics.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessOutcome {
        self.clock += 1;
        let set = self.config.set_of(addr);
        let tag = self.config.tag_of(addr);
        self.stats.record_access(kind);

        // Hit check among available ways.
        for way in 0..self.config.ways {
            if !self.config.way_available(set, way) {
                continue;
            }
            let idx = self.line_index(set, way);
            if self.lines[idx].valid && self.lines[idx].tag == tag {
                self.lines[idx].last_use = self.clock;
                if kind == AccessKind::Write {
                    self.lines[idx].dirty = true;
                }
                if self.config.replacement == ReplacementPolicy::TreePlru {
                    self.plru_touch(set, way);
                }
                self.stats.record_hit(kind);
                return AccessOutcome {
                    hit: true,
                    way,
                    latency: self.config.way_latency[way],
                    writeback: None,
                };
            }
        }

        // Miss: fill an invalid way first (rotating, so cold fills spread
        // across the ways and per-way hit distributions stay uniform —
        // which the variable-latency experiments depend on), otherwise the
        // replacement policy's victim.
        let victim_way = self.choose_victim(set);
        if self.config.replacement == ReplacementPolicy::TreePlru {
            self.plru_touch(set, victim_way);
        }

        let idx = self.line_index(set, victim_way);
        let evicted = self.lines[idx];
        let writeback = (evicted.valid && evicted.dirty).then(|| {
            self.stats.writebacks += 1;
            self.rebuild_address(evicted.tag, set)
        });

        self.lines[idx] = Line {
            tag,
            valid: true,
            dirty: kind == AccessKind::Write,
            last_use: self.clock,
        };

        AccessOutcome {
            hit: false,
            way: victim_way,
            latency: self.config.way_latency[victim_way],
            writeback,
        }
    }

    /// Fills a block without touching hit/miss statistics — the path a
    /// hardware prefetcher uses. Returns the address of a dirty victim
    /// that must be written back, or `None` (also when the block was
    /// already present).
    pub fn prefetch_fill(&mut self, addr: u64) -> Option<u64> {
        if self.probe(addr) {
            return None;
        }
        self.clock += 1;
        let set = self.config.set_of(addr);
        let tag = self.config.tag_of(addr);
        let victim_way = self.choose_victim(set);
        let idx = self.line_index(set, victim_way);
        let evicted = self.lines[idx];
        let writeback =
            (evicted.valid && evicted.dirty).then(|| self.rebuild_address(evicted.tag, set));
        // A prefetched block enters cold: least-recently-used among valid
        // lines so a useless prefetch is the first thing evicted.
        let lru_floor = (0..self.config.ways)
            .filter(|&w| self.config.way_available(set, w))
            .map(|w| self.lines[self.line_index(set, w)].last_use)
            .min()
            .unwrap_or(0);
        self.lines[idx] = Line {
            tag,
            valid: true,
            dirty: false,
            last_use: lru_floor,
        };
        writeback
    }

    /// Checks for presence without disturbing LRU or statistics.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.config.set_of(addr);
        let tag = self.config.tag_of(addr);
        (0..self.config.ways).any(|way| {
            self.config.way_available(set, way) && {
                let line = &self.lines[self.line_index(set, way)];
                line.valid && line.tag == tag
            }
        })
    }

    /// Invalidates a block if present, returning whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let set = self.config.set_of(addr);
        let tag = self.config.tag_of(addr);
        for way in 0..self.config.ways {
            let idx = self.line_index(set, way);
            if self.lines[idx].valid && self.lines[idx].tag == tag {
                let dirty = self.lines[idx].dirty;
                self.lines[idx] = Line::default();
                return Some(dirty);
            }
        }
        None
    }

    /// Number of valid lines currently held.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    fn rebuild_address(&self, tag: u64, set: usize) -> u64 {
        (tag << (self.config.block_shift() + self.config.sets.trailing_zeros()))
            | ((set as u64) << self.config.block_shift())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1d() -> SetAssocCache {
        SetAssocCache::new(CacheConfig::l1d_paper()).unwrap()
    }

    #[test]
    fn miss_then_hit() {
        let mut cache = l1d();
        assert!(!cache.access(0x40, AccessKind::Read).hit);
        assert!(cache.access(0x40, AccessKind::Read).hit);
        // Same block, different byte:
        assert!(cache.access(0x5f, AccessKind::Read).hit);
        // Different block:
        assert!(!cache.access(0x60, AccessKind::Read).hit);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = l1d();
        let set_stride = (cache.config().sets * cache.config().block_bytes) as u64;
        // Fill all four ways of set 0.
        for i in 0..4u64 {
            cache.access(i * set_stride, AccessKind::Read);
        }
        // Touch block 0 so block 1 becomes LRU.
        cache.access(0, AccessKind::Read);
        // A fifth block evicts block 1.
        cache.access(4 * set_stride, AccessKind::Read);
        assert!(cache.probe(0));
        assert!(!cache.probe(set_stride));
        assert!(cache.probe(2 * set_stride));
    }

    #[test]
    fn writeback_reports_dirty_victim_address() {
        let mut cache = l1d();
        let set_stride = (cache.config().sets * cache.config().block_bytes) as u64;
        cache.access(0x80, AccessKind::Write);
        for i in 1..4u64 {
            cache.access(0x80 + i * set_stride, AccessKind::Read);
        }
        let out = cache.access(0x80 + 4 * set_stride, AccessKind::Read);
        assert_eq!(out.writeback, Some(0x80));
        assert_eq!(cache.stats().writebacks, 1);
    }

    #[test]
    fn clean_evictions_do_not_write_back() {
        let mut cache = l1d();
        let set_stride = (cache.config().sets * cache.config().block_bytes) as u64;
        for i in 0..5u64 {
            let out = cache.access(i * set_stride, AccessKind::Read);
            assert!(out.writeback.is_none());
        }
        assert_eq!(cache.stats().writebacks, 0);
    }

    #[test]
    fn disabled_way_reduces_capacity_and_is_never_used() {
        let mut cfg = CacheConfig::l1d_paper();
        cfg.way_enabled[1] = false;
        let mut cache = SetAssocCache::new(cfg).unwrap();
        let set_stride = (cache.config().sets * cache.config().block_bytes) as u64;
        for i in 0..8u64 {
            let out = cache.access(i * set_stride, AccessKind::Read);
            assert_ne!(out.way, 1);
        }
        // Only 3 of the last 8 blocks can remain in set 0.
        let resident = (0..8u64).filter(|&i| cache.probe(i * set_stride)).count();
        assert_eq!(resident, 3);
    }

    #[test]
    fn three_way_disable_and_hyapd_disable_have_identical_hit_behaviour() {
        // §4.2: "H-YAPD and YAPD will exhibit identical hit/miss behavior".
        let mut yapd_cfg = CacheConfig::l1d_paper();
        yapd_cfg.way_enabled[0] = false;
        let mut hyapd_cfg = CacheConfig::l1d_paper();
        hyapd_cfg.disabled_h_region = Some(0);
        let mut yapd = SetAssocCache::new(yapd_cfg).unwrap();
        let mut hyapd = SetAssocCache::new(hyapd_cfg).unwrap();

        // A deterministic pseudo-random address stream.
        let mut x = 0x1234_5678_u64;
        let mut hits = (0u32, 0u32);
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (x >> 16) % (64 * 1024);
            let kind = if x & 1 == 0 {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            if yapd.access(addr, kind).hit {
                hits.0 += 1;
            }
            if hyapd.access(addr, kind).hit {
                hits.1 += 1;
            }
        }
        assert_eq!(
            hits.0, hits.1,
            "identical associativity per set implies identical hit counts"
        );
    }

    #[test]
    fn vaca_latency_tracks_the_hit_way() {
        let mut cfg = CacheConfig::l1d_paper();
        cfg.way_latency = vec![4, 5, 4, 5];
        let mut cache = SetAssocCache::new(cfg).unwrap();
        let set_stride = (cache.config().sets * cache.config().block_bytes) as u64;
        for i in 0..4u64 {
            cache.access(i * set_stride, AccessKind::Read);
        }
        for i in 0..4u64 {
            let out = cache.access(i * set_stride, AccessKind::Read);
            assert!(out.hit);
            assert_eq!(out.latency, cache.config().way_latency[out.way]);
        }
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut cache = l1d();
        let set_stride = (cache.config().sets * cache.config().block_bytes) as u64;
        for i in 0..4u64 {
            cache.access(i * set_stride, AccessKind::Read);
        }
        // Probing block 0 must not rescue it from LRU eviction.
        assert!(cache.probe(0));
        cache.access(4 * set_stride, AccessKind::Read);
        assert!(!cache.probe(0));
    }

    #[test]
    fn invalidate_removes_block() {
        let mut cache = l1d();
        cache.access(0x100, AccessKind::Write);
        assert_eq!(cache.invalidate(0x100), Some(true));
        assert!(!cache.probe(0x100));
        assert_eq!(cache.invalidate(0x100), None);
    }

    #[test]
    fn occupancy_grows_to_capacity() {
        let mut cache = l1d();
        assert_eq!(cache.occupancy(), 0);
        for i in 0..1000u64 {
            cache.access(i * 32, AccessKind::Read);
        }
        assert_eq!(cache.occupancy(), 512);
    }

    #[test]
    fn flush_and_reset_stats() {
        let mut cache = l1d();
        cache.access(0x40, AccessKind::Read);
        cache.flush();
        assert_eq!(cache.occupancy(), 0);
        assert_eq!(cache.stats().accesses(), 0);
    }

    #[test]
    fn prefetch_fill_inserts_without_stats() {
        let mut cache = l1d();
        assert!(cache.prefetch_fill(0x200).is_none());
        assert!(cache.probe(0x200));
        assert_eq!(cache.stats().accesses(), 0, "prefetches are not accesses");
        // Refilling a present block is a no-op.
        assert!(cache.prefetch_fill(0x200).is_none());
        assert_eq!(cache.occupancy(), 1);
    }

    #[test]
    fn prefetched_blocks_are_evicted_first() {
        let mut cache = l1d();
        let set_stride = (cache.config().sets * cache.config().block_bytes) as u64;
        for i in 0..3u64 {
            cache.access(i * set_stride, AccessKind::Read);
        }
        cache.prefetch_fill(3 * set_stride);
        // The next fill to this set must evict the prefetched block, not a
        // demand-fetched one.
        cache.access(4 * set_stride, AccessKind::Read);
        assert!(!cache.probe(3 * set_stride), "cold prefetch goes first");
        assert!(cache.probe(0));
    }

    #[test]
    fn prefetch_fill_reports_dirty_victims() {
        let mut cache = l1d();
        let set_stride = (cache.config().sets * cache.config().block_bytes) as u64;
        cache.access(0, AccessKind::Write);
        for i in 1..4u64 {
            cache.access(i * set_stride, AccessKind::Read);
        }
        let wb = cache.prefetch_fill(4 * set_stride);
        assert_eq!(wb, Some(0), "the dirty block must be written back");
    }

    #[test]
    fn tree_plru_follows_the_classic_4way_sequence() {
        let mut cfg = CacheConfig::l1d_paper();
        cfg.replacement = crate::config::ReplacementPolicy::TreePlru;
        let mut cache = SetAssocCache::new(cfg).unwrap();
        let stride = (cache.config().sets * cache.config().block_bytes) as u64;
        // Fill ways (rotating invalid fill order is irrelevant for the
        // check below: we re-touch blocks 0..3 in order afterwards).
        for i in 0..4u64 {
            cache.access(i * stride, AccessKind::Read);
        }
        for i in 0..4u64 {
            cache.access(i * stride, AccessKind::Read);
        }
        // After touching 0,1,2,3 in order, PLRU's victim is the way of
        // block 0's... in a 4-way tree, touching 3 last leaves the tree
        // pointing at the opposite half: the victim must be block 0 or 1.
        cache.access(4 * stride, AccessKind::Read);
        assert!(cache.probe(3 * stride), "most recent survives");
        assert!(cache.probe(2 * stride), "same half as most recent survives");
        assert!(
            !cache.probe(0) || !cache.probe(stride),
            "the cold half lost a block"
        );
    }

    #[test]
    fn plru_tracks_lru_closely_on_reuse_heavy_streams() {
        let run = |policy: crate::config::ReplacementPolicy| {
            let mut cfg = CacheConfig::l1d_paper();
            cfg.replacement = policy;
            let mut cache = SetAssocCache::new(cfg).unwrap();
            let mut x = 0x9e3779b9u64;
            for _ in 0..60_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                // Zipf-ish reuse over a 24 KB footprint.
                let r = (x >> 40) % 100;
                let addr = if r < 70 {
                    (x >> 20) % 8192
                } else {
                    (x >> 20) % (24 * 1024)
                };
                cache.access(addr, AccessKind::Read);
            }
            cache.stats().miss_rate()
        };
        use crate::config::ReplacementPolicy as P;
        let lru = run(P::TrueLru);
        let plru = run(P::TreePlru);
        let random = run(P::Random);
        assert!(
            (plru - lru).abs() < 0.03,
            "PLRU approximates LRU: {plru} vs {lru}"
        );
        assert!(
            random >= lru - 0.005,
            "random cannot beat LRU by much here: {random} vs {lru}"
        );
    }

    #[test]
    fn random_policy_is_deterministic() {
        let run = || {
            let mut cfg = CacheConfig::l1d_paper();
            cfg.replacement = crate::config::ReplacementPolicy::Random;
            let mut cache = SetAssocCache::new(cfg).unwrap();
            let mut hits = 0u32;
            for i in 0..20_000u64 {
                if cache.access((i * 1664525) % 65536, AccessKind::Read).hit {
                    hits += 1;
                }
            }
            hits
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn plru_respects_disabled_ways() {
        let mut cfg = CacheConfig::l1d_paper();
        cfg.replacement = crate::config::ReplacementPolicy::TreePlru;
        cfg.way_enabled[0] = false;
        let mut cache = SetAssocCache::new(cfg).unwrap();
        let stride = (cache.config().sets * cache.config().block_bytes) as u64;
        for i in 0..12u64 {
            let out = cache.access(i * stride, AccessKind::Read);
            assert_ne!(out.way, 0, "disabled way must never be filled");
        }
    }

    #[test]
    fn plru_requires_power_of_two_ways() {
        let mut cfg = CacheConfig::uniform("odd", 64, 3, 32, 1);
        cfg.replacement = crate::config::ReplacementPolicy::TreePlru;
        assert!(SetAssocCache::new(cfg).is_err());
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut cache = l1d();
        cache.access(0x40, AccessKind::Read);
        cache.access(0x40, AccessKind::Read);
        cache.access(0x40, AccessKind::Write);
        let stats = cache.stats();
        assert_eq!(stats.accesses(), 3);
        assert_eq!(stats.hits(), 2);
        assert_eq!(stats.misses(), 1);
        assert!((stats.miss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }
}
