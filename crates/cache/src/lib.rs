//! Functional set-associative cache models for *Yield-Aware Cache
//! Architectures* (MICRO 2006): way power-down (YAPD), the H-YAPD
//! horizontal-region disable with its diagonal post-decoder remap
//! (Figure 5 of the paper), per-way variable hit latencies (VACA), and
//! the paper's §5.2 three-level memory hierarchy.
//!
//! # Examples
//!
//! A 16 KB L1D with one way disabled behaves as a 3-way cache:
//!
//! ```
//! use yac_cache::{AccessKind, CacheConfig, SetAssocCache};
//!
//! let mut cfg = CacheConfig::l1d_paper();
//! cfg.way_enabled[3] = false;
//! let mut cache = SetAssocCache::new(cfg)?;
//! cache.access(0x40, AccessKind::Read);
//! assert_eq!(cache.config().available_ways(0), 3);
//! # Ok::<(), yac_cache::CacheConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod config;
pub mod error;
pub mod hierarchy;
pub mod stats;

pub use cache::{AccessKind, AccessOutcome, SetAssocCache};
pub use config::{CacheConfig, ReplacementPolicy};
pub use error::{CacheConfigError, CacheConfigIssue, HierarchyError};
pub use hierarchy::{DataAccess, HierarchyConfig, MemoryHierarchy};
pub use stats::CacheStats;

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::SetAssocCache>();
        assert_send_sync::<super::MemoryHierarchy>();
        assert_send_sync::<super::CacheConfig>();
    }
}
