//! Cache configuration, including the repair knobs the yield schemes use:
//! per-way enables (YAPD), per-way latencies (VACA) and the H-YAPD
//! horizontal-region disable with its diagonal post-decoder remap.

use crate::error::{CacheConfigError, CacheConfigIssue};
use std::fmt;

/// Block replacement policy.
///
/// The paper's model (and this crate's default) is true LRU; real L1
/// arrays usually ship the cheaper tree pseudo-LRU, and random is the
/// classic lower bound. All three honour way power-downs and the H-YAPD
/// remap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Exact least-recently-used (per-line timestamps).
    #[default]
    TrueLru,
    /// Tree pseudo-LRU (one bit per internal node; associativity must be a
    /// power of two).
    TreePlru,
    /// Uniform-random victim (deterministic xorshift stream).
    Random,
}

/// Configuration of one set-associative cache.
///
/// # Examples
///
/// ```
/// use yac_cache::CacheConfig;
///
/// let l1d = CacheConfig::l1d_paper();
/// assert_eq!(l1d.capacity_bytes(), 16 * 1024);
/// assert_eq!(l1d.ways, 4);
/// assert_eq!(l1d.sets, 128);
/// l1d.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Display name for statistics ("L1D", "L2", ...).
    pub name: String,
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Block (line) size in bytes (must be a power of two).
    pub block_bytes: usize,
    /// Hit latency of each way, in cycles. Uniform caches repeat one value;
    /// a VACA repair makes entries differ.
    pub way_latency: Vec<u32>,
    /// Which ways are powered on. A YAPD repair clears one entry.
    pub way_enabled: Vec<bool>,
    /// A disabled horizontal region (H-YAPD): for the address region `ρ` of
    /// a set, vertical way `(h − ρ) mod ways` is unavailable (Figure 5 of
    /// the paper), so every set keeps exactly `ways − 1` candidates.
    pub disabled_h_region: Option<usize>,
    /// Number of address regions the sets divide into for the H-YAPD remap.
    pub address_regions: usize,
    /// Block replacement policy.
    pub replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// A uniform cache with every way enabled at the same latency.
    #[must_use]
    pub fn uniform(
        name: &str,
        sets: usize,
        ways: usize,
        block_bytes: usize,
        hit_latency: u32,
    ) -> Self {
        CacheConfig {
            name: name.to_owned(),
            sets,
            ways,
            block_bytes,
            way_latency: vec![hit_latency; ways],
            way_enabled: vec![true; ways],
            disabled_h_region: None,
            address_regions: 4,
            replacement: ReplacementPolicy::TrueLru,
        }
    }

    /// The paper's L1 data cache: 16 KB, 4-way, 32 B blocks, 4-cycle hits.
    #[must_use]
    pub fn l1d_paper() -> Self {
        Self::uniform("L1D", 128, 4, 32, 4)
    }

    /// The paper's L1 instruction cache: 16 KB, 4-way, 64 B blocks,
    /// 2-cycle hits.
    #[must_use]
    pub fn l1i_paper() -> Self {
        Self::uniform("L1I", 64, 4, 64, 2)
    }

    /// The paper's unified L2: 512 KB, 8-way, 128 B blocks, 25-cycle hits.
    #[must_use]
    pub fn l2_paper() -> Self {
        Self::uniform("L2", 512, 8, 128, 25)
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.block_bytes
    }

    /// Log2 of the block size.
    #[must_use]
    pub fn block_shift(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }

    /// Set index of an address.
    #[must_use]
    pub fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.block_shift()) as usize) & (self.sets - 1)
    }

    /// Tag of an address.
    #[must_use]
    pub fn tag_of(&self, addr: u64) -> u64 {
        addr >> (self.block_shift() + self.sets.trailing_zeros())
    }

    /// Address region of a set (for the H-YAPD remap).
    #[must_use]
    pub fn region_of_set(&self, set: usize) -> usize {
        set * self.address_regions / self.sets
    }

    /// Whether way `way` may hold blocks of `set`, honouring power-downs.
    ///
    /// For a disabled horizontal region `h`, the unavailable vertical way of
    /// address region `ρ` is `(h + ways − ρ) mod ways` — the diagonal
    /// striping of the paper's Figure 5, which keeps the associativity seen
    /// by every address equal.
    #[must_use]
    pub fn way_available(&self, set: usize, way: usize) -> bool {
        if !self.way_enabled[way] {
            return false;
        }
        if let Some(h) = self.disabled_h_region {
            let region = self.region_of_set(set);
            let blocked = (h + self.ways - (region % self.ways)) % self.ways;
            if way == blocked {
                return false;
            }
        }
        true
    }

    /// Number of ways available to a given set.
    #[must_use]
    pub fn available_ways(&self, set: usize) -> usize {
        (0..self.ways)
            .filter(|&w| self.way_available(set, w))
            .count()
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the [`CacheConfigError`] naming this cache and the
    /// violated invariant.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        let fail = |issue: CacheConfigIssue| {
            Err(CacheConfigError {
                cache: self.name.clone(),
                issue,
            })
        };
        if !self.sets.is_power_of_two() {
            return fail(CacheConfigIssue::NonPowerOfTwoSets);
        }
        if !self.block_bytes.is_power_of_two() {
            return fail(CacheConfigIssue::NonPowerOfTwoBlock);
        }
        if self.ways == 0 {
            return fail(CacheConfigIssue::ZeroWays);
        }
        if self.way_latency.len() != self.ways || self.way_enabled.len() != self.ways {
            return fail(CacheConfigIssue::MismatchedWayVectors);
        }
        if self.way_latency.contains(&0) {
            return fail(CacheConfigIssue::ZeroHitLatency);
        }
        if let Some(h) = self.disabled_h_region {
            if h >= self.address_regions {
                return fail(CacheConfigIssue::DisabledRegionOutOfRange);
            }
            if self.address_regions == 0 || self.sets % self.address_regions != 0 {
                return fail(CacheConfigIssue::UnevenAddressRegions);
            }
        }
        if !self.way_enabled.iter().any(|&e| e) {
            return fail(CacheConfigIssue::AllWaysDisabled);
        }
        if (0..self.sets).any(|s| self.available_ways(s) == 0) {
            return fail(CacheConfigIssue::UnreachableSet);
        }
        if self.replacement == ReplacementPolicy::TreePlru && !self.ways.is_power_of_two() {
            return fail(CacheConfigIssue::TreePlruNeedsPowerOfTwo);
        }
        Ok(())
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} KB, {}-way, {} B blocks",
            self.name,
            self.capacity_bytes() / 1024,
            self.ways,
            self.block_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_validate() {
        for cfg in [
            CacheConfig::l1d_paper(),
            CacheConfig::l1i_paper(),
            CacheConfig::l2_paper(),
        ] {
            cfg.validate().unwrap();
        }
        assert_eq!(CacheConfig::l1i_paper().capacity_bytes(), 16 * 1024);
        assert_eq!(CacheConfig::l2_paper().capacity_bytes(), 512 * 1024);
    }

    #[test]
    fn address_decomposition_roundtrips() {
        let cfg = CacheConfig::l1d_paper();
        let addr = 0xdead_beef_u64;
        let set = cfg.set_of(addr);
        let tag = cfg.tag_of(addr);
        assert!(set < cfg.sets);
        // Reconstruct the block base address.
        let rebuilt = (tag << (cfg.block_shift() + cfg.sets.trailing_zeros()))
            | ((set as u64) << cfg.block_shift());
        assert_eq!(rebuilt, addr & !(cfg.block_bytes as u64 - 1));
    }

    #[test]
    fn consecutive_blocks_map_to_consecutive_sets() {
        let cfg = CacheConfig::l1d_paper();
        let a = cfg.set_of(0x1000);
        let b = cfg.set_of(0x1000 + cfg.block_bytes as u64);
        assert_eq!((a + 1) % cfg.sets, b);
    }

    #[test]
    fn hyapd_remap_blocks_exactly_one_way_per_set() {
        for h in 0..4 {
            let mut cfg = CacheConfig::l1d_paper();
            cfg.disabled_h_region = Some(h);
            cfg.validate().unwrap();
            for set in 0..cfg.sets {
                assert_eq!(cfg.available_ways(set), 3, "h={h} set={set}");
            }
        }
    }

    #[test]
    fn hyapd_remap_is_diagonal() {
        // Paper's example: disabling h-way 0 removes way 0 for the first
        // address region and a different way for every other region.
        let mut cfg = CacheConfig::l1d_paper();
        cfg.disabled_h_region = Some(0);
        assert!(!cfg.way_available(0, 0), "region 0 loses way 0");
        let blocked_per_region: Vec<usize> = (0..4)
            .map(|r| {
                let set = r * (cfg.sets / 4);
                (0..4).find(|&w| !cfg.way_available(set, w)).unwrap()
            })
            .collect();
        let mut sorted = blocked_per_region.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            4,
            "each region loses a different way: {blocked_per_region:?}"
        );
    }

    #[test]
    fn different_h_regions_block_different_ways() {
        let set = 0;
        let blocked: Vec<usize> = (0..4)
            .map(|h| {
                let mut cfg = CacheConfig::l1d_paper();
                cfg.disabled_h_region = Some(h);
                (0..4).find(|&w| !cfg.way_available(set, w)).unwrap()
            })
            .collect();
        let mut sorted = blocked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "{blocked:?}");
    }

    #[test]
    fn way_disable_respected() {
        let mut cfg = CacheConfig::l1d_paper();
        cfg.way_enabled[2] = false;
        cfg.validate().unwrap();
        for set in 0..cfg.sets {
            assert!(!cfg.way_available(set, 2));
            assert_eq!(cfg.available_ways(set), 3);
        }
    }

    #[test]
    fn validation_rejects_broken_configs() {
        let mut cfg = CacheConfig::l1d_paper();
        cfg.sets = 100;
        assert!(cfg.validate().is_err());

        let mut cfg = CacheConfig::l1d_paper();
        cfg.way_latency = vec![4; 3];
        assert!(cfg.validate().is_err());

        let mut cfg = CacheConfig::l1d_paper();
        cfg.way_enabled = vec![false; 4];
        assert!(cfg.validate().is_err());

        let mut cfg = CacheConfig::l1d_paper();
        cfg.disabled_h_region = Some(9);
        assert!(cfg.validate().is_err());

        let mut cfg = CacheConfig::l1d_paper();
        cfg.way_latency[0] = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn display_shows_shape() {
        let text = CacheConfig::l1d_paper().to_string();
        assert!(text.contains("16 KB"));
        assert!(text.contains("4-way"));
    }
}
