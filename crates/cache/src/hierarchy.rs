//! The memory hierarchy of the paper's simulated processor (§5.2):
//! split 16 KB L1 caches, a unified 512 KB L2 and a 350-cycle memory.
//! All caches are lock-up free — miss overlap is the pipeline's job; the
//! hierarchy reports per-access latencies and keeps the contents coherent
//! (writebacks flow downward).

use crate::cache::{AccessKind, SetAssocCache};
use crate::config::CacheConfig;
use crate::error::HierarchyError;

/// Configuration of the full hierarchy.
///
/// # Examples
///
/// ```
/// use yac_cache::HierarchyConfig;
///
/// let cfg = HierarchyConfig::paper();
/// assert_eq!(cfg.memory_latency, 350);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified second-level cache.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles.
    pub memory_latency: u32,
    /// Enable an ideal next-line prefetcher on the L1 data cache: every
    /// demand miss also pulls the sequentially next block. Off by default
    /// (the paper's machine has no prefetcher).
    pub l1d_next_line_prefetch: bool,
}

impl HierarchyConfig {
    /// The paper's §5.2 hierarchy.
    #[must_use]
    pub fn paper() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::l1i_paper(),
            l1d: CacheConfig::l1d_paper(),
            l2: CacheConfig::l2_paper(),
            memory_latency: 350,
            l1d_next_line_prefetch: false,
        }
    }

    /// Validates every level.
    ///
    /// # Errors
    ///
    /// Returns the first failing level's message.
    pub fn validate(&self) -> Result<(), HierarchyError> {
        self.l1i.validate()?;
        self.l1d.validate()?;
        self.l2.validate()?;
        if self.memory_latency == 0 {
            return Err(HierarchyError::ZeroMemoryLatency);
        }
        Ok(())
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Outcome of a data access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAccess {
    /// Whether the L1 data cache hit.
    pub l1_hit: bool,
    /// The L1D way involved (hit way, or the fill way on a miss).
    pub way: usize,
    /// End-to-end latency in cycles, including L2/memory on a miss.
    pub latency: u32,
}

/// The assembled memory hierarchy.
///
/// # Examples
///
/// ```
/// use yac_cache::{AccessKind, HierarchyConfig, MemoryHierarchy};
///
/// let mut mem = MemoryHierarchy::new(HierarchyConfig::paper()).unwrap();
/// let cold = mem.data_access(0x8000, AccessKind::Read);
/// assert!(!cold.l1_hit);
/// let warm = mem.data_access(0x8000, AccessKind::Read);
/// assert!(warm.l1_hit);
/// assert_eq!(warm.latency, 4);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    memory_latency: u32,
    l1d_next_line_prefetch: bool,
    prefetches: u64,
    /// `(accesses, misses)` already flushed to the observability
    /// registry, so repeated flushes report deltas only.
    obs_flushed: (u64, u64),
}

impl MemoryHierarchy {
    /// Builds an empty hierarchy.
    ///
    /// # Errors
    ///
    /// Returns the [`HierarchyError`] identifying the failing cache.
    pub fn new(config: HierarchyConfig) -> Result<Self, HierarchyError> {
        config.validate()?;
        Ok(MemoryHierarchy {
            l1i: SetAssocCache::new(config.l1i)?,
            l1d: SetAssocCache::new(config.l1d)?,
            l2: SetAssocCache::new(config.l2)?,
            memory_latency: config.memory_latency,
            l1d_next_line_prefetch: config.l1d_next_line_prefetch,
            prefetches: 0,
            obs_flushed: (0, 0),
        })
    }

    /// Instruction fetch: returns the fetch latency in cycles.
    pub fn fetch(&mut self, addr: u64) -> u32 {
        let l1 = self.l1i.access(addr, AccessKind::Read);
        if l1.hit {
            return l1.latency;
        }
        l1.latency + self.l2_fill(addr, AccessKind::Read)
    }

    /// Data access: returns hit status, way and end-to-end latency.
    pub fn data_access(&mut self, addr: u64, kind: AccessKind) -> DataAccess {
        let l1 = self.l1d.access(addr, kind);
        if let Some(victim) = l1.writeback {
            // Dirty L1 victims are written into L2 (write buffer absorbs
            // the latency).
            let wb = self.l2.access(victim, AccessKind::Write);
            let _ = wb;
        }
        if l1.hit {
            return DataAccess {
                l1_hit: true,
                way: l1.way,
                latency: l1.latency,
            };
        }
        let below = self.l2_fill(addr, AccessKind::Read);
        if self.l1d_next_line_prefetch {
            let next = (addr & !(self.l1d.config().block_bytes as u64 - 1))
                + self.l1d.config().block_bytes as u64;
            if !self.l1d.probe(next) {
                self.prefetches += 1;
                // The prefetch brings the line through L2 (quietly filling
                // it) and into L1D; a dirty victim goes back to L2.
                let _ = self.l2.access(next, AccessKind::Read);
                if let Some(victim) = self.l1d.prefetch_fill(next) {
                    let _ = self.l2.access(victim, AccessKind::Write);
                }
            }
        }
        DataAccess {
            l1_hit: false,
            way: l1.way,
            latency: l1.latency + below,
        }
    }

    /// L2 lookup for a line being filled upward; returns the added latency.
    fn l2_fill(&mut self, addr: u64, kind: AccessKind) -> u32 {
        let l2 = self.l2.access(addr, kind);
        if l2.hit {
            l2.latency
        } else {
            l2.latency + self.memory_latency
        }
    }

    /// The L1 instruction cache's statistics.
    #[must_use]
    pub fn l1i_stats(&self) -> &crate::stats::CacheStats {
        self.l1i.stats()
    }

    /// The L1 data cache's statistics.
    #[must_use]
    pub fn l1d_stats(&self) -> &crate::stats::CacheStats {
        self.l1d.stats()
    }

    /// The L2 cache's statistics.
    #[must_use]
    pub fn l2_stats(&self) -> &crate::stats::CacheStats {
        self.l2.stats()
    }

    /// The L1 data cache's configuration.
    #[must_use]
    pub fn l1d_config(&self) -> &CacheConfig {
        self.l1d.config()
    }

    /// Number of next-line prefetches issued so far.
    #[must_use]
    pub fn prefetch_count(&self) -> u64 {
        self.prefetches
    }

    /// Resets all statistics (keeps contents — used after warm-up).
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.prefetches = 0;
        self.obs_flushed = (0, 0);
    }

    /// Flushes the hierarchy's aggregate access/miss totals (all three
    /// levels) to the global observability registry, counting each access
    /// once across repeated calls. The simulator calls this at the end of
    /// a run; it is a no-op while observability is disabled.
    pub fn flush_obs(&mut self) {
        if !yac_obs::enabled() {
            return;
        }
        let levels = [self.l1i.stats(), self.l1d.stats(), self.l2.stats()];
        let accesses: u64 = levels.iter().map(|s| s.accesses()).sum();
        let misses: u64 = levels.iter().map(|s| s.misses()).sum();
        yac_obs::add(
            yac_obs::Metric::CacheAccesses,
            accesses.saturating_sub(self.obs_flushed.0),
        );
        yac_obs::add(
            yac_obs::Metric::CacheMisses,
            misses.saturating_sub(self.obs_flushed.1),
        );
        self.obs_flushed = (accesses, misses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::paper()).unwrap()
    }

    #[test]
    fn cold_data_access_pays_memory_latency() {
        let mut mem = hierarchy();
        let out = mem.data_access(0x10_0000, AccessKind::Read);
        assert!(!out.l1_hit);
        assert_eq!(out.latency, 4 + 25 + 350);
    }

    #[test]
    fn l2_resident_line_costs_l1_plus_l2() {
        let mut mem = hierarchy();
        mem.data_access(0x10_0000, AccessKind::Read);
        // Evict from tiny L1D with conflicting lines, keeping L2 warm.
        let l1_stride = (128 * 32) as u64;
        for i in 1..=4u64 {
            mem.data_access(0x10_0000 + i * l1_stride, AccessKind::Read);
        }
        let out = mem.data_access(0x10_0000, AccessKind::Read);
        assert!(!out.l1_hit);
        assert_eq!(out.latency, 4 + 25, "L2 should still hold the line");
    }

    #[test]
    fn fetch_latencies_follow_the_levels() {
        let mut mem = hierarchy();
        assert_eq!(mem.fetch(0x4000), 2 + 25 + 350);
        assert_eq!(mem.fetch(0x4000), 2);
        // Same 64-byte I-block:
        assert_eq!(mem.fetch(0x403f), 2);
    }

    #[test]
    fn instruction_fill_warms_l2_for_data_side_too() {
        // Unified L2: an I-side fill makes the D-side miss cost only L2.
        let mut mem = hierarchy();
        mem.fetch(0x9000);
        let out = mem.data_access(0x9000, AccessKind::Read);
        assert!(!out.l1_hit);
        assert_eq!(out.latency, 4 + 25);
    }

    #[test]
    fn dirty_l1_victims_land_in_l2() {
        let mut mem = hierarchy();
        mem.data_access(0x20_0000, AccessKind::Write);
        let l1_stride = (128 * 32) as u64;
        for i in 1..=4u64 {
            mem.data_access(0x20_0000 + i * l1_stride, AccessKind::Read);
        }
        // The dirty line was written back to L2; reading it again costs L2
        // latency only.
        let out = mem.data_access(0x20_0000, AccessKind::Read);
        assert_eq!(out.latency, 4 + 25);
        assert!(mem.l2_stats().writes >= 1);
    }

    #[test]
    fn vaca_way_latency_propagates_through_hierarchy() {
        let mut cfg = HierarchyConfig::paper();
        cfg.l1d.way_latency = vec![4, 5, 5, 4];
        let mut mem = MemoryHierarchy::new(cfg).unwrap();
        mem.data_access(0x30_0000, AccessKind::Read);
        let out = mem.data_access(0x30_0000, AccessKind::Read);
        assert!(out.l1_hit);
        assert_eq!(out.latency, mem.l1d_config().way_latency[out.way]);
    }

    #[test]
    fn yapd_disable_raises_l1_miss_rate() {
        let run = |disable: bool| {
            let mut cfg = HierarchyConfig::paper();
            if disable {
                cfg.l1d.way_enabled[0] = false;
            }
            let mut mem = MemoryHierarchy::new(cfg).unwrap();
            let mut x = 0xabcdef_u64;
            for _ in 0..50_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                // A working set slightly exceeding 16 KB keeps the L1D under
                // pressure so capacity matters.
                let addr = (x >> 13) % (24 * 1024);
                mem.data_access(addr, AccessKind::Read);
            }
            mem.l1d_stats().miss_rate()
        };
        let base = run(false);
        let reduced = run(true);
        assert!(
            reduced > base,
            "3-way cache must miss more ({reduced} vs {base})"
        );
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut mem = hierarchy();
        mem.data_access(0x40_0000, AccessKind::Read);
        mem.reset_stats();
        assert_eq!(mem.l1d_stats().accesses(), 0);
        let out = mem.data_access(0x40_0000, AccessKind::Read);
        assert!(out.l1_hit, "contents survive a stats reset");
    }

    #[test]
    fn next_line_prefetch_turns_streaming_misses_into_hits() {
        let run = |prefetch: bool| {
            let mut cfg = HierarchyConfig::paper();
            cfg.l1d_next_line_prefetch = prefetch;
            let mut mem = MemoryHierarchy::new(cfg).unwrap();
            // A pure streaming walk.
            for i in 0..20_000u64 {
                mem.data_access(0x100_0000 + i * 8, AccessKind::Read);
            }
            (mem.l1d_stats().miss_rate(), mem.prefetch_count())
        };
        let (base_miss, base_pf) = run(false);
        let (pf_miss, pf_count) = run(true);
        assert_eq!(base_pf, 0);
        assert!(pf_count > 0);
        assert!(
            pf_miss < base_miss / 1.8,
            "prefetch must roughly halve streaming misses: {pf_miss} vs {base_miss}"
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = HierarchyConfig::paper();
        cfg.memory_latency = 0;
        assert!(MemoryHierarchy::new(cfg).is_err());
    }
}
