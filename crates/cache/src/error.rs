//! Typed errors for cache configuration.
//!
//! Part of the workspace-wide fault-tolerance taxonomy. A rejected
//! [`crate::CacheConfig`] becomes a [`CacheConfigError`] pairing the
//! cache's name with the structural [`CacheConfigIssue`]; a rejected
//! [`crate::HierarchyConfig`] wraps that in [`HierarchyError`]. `Display`
//! output is identical to the legacy `Result<(), String>` messages
//! (`"{name}: {issue}"`), so anything matching on the strings keeps
//! working.

use std::error::Error;
use std::fmt;

/// The structural invariant a [`crate::CacheConfig`] violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheConfigIssue {
    /// The set count is not a power of two.
    NonPowerOfTwoSets,
    /// The block size is not a power of two.
    NonPowerOfTwoBlock,
    /// Zero ways.
    ZeroWays,
    /// `way_latency`/`way_enabled` lengths disagree with the way count.
    MismatchedWayVectors,
    /// Some way's hit latency is zero.
    ZeroHitLatency,
    /// `disabled_h_region` is outside the address-region range.
    DisabledRegionOutOfRange,
    /// The address regions do not evenly divide the sets.
    UnevenAddressRegions,
    /// Every way is disabled.
    AllWaysDisabled,
    /// Some set is left with no way it can use.
    UnreachableSet,
    /// Tree PLRU with a non-power-of-two associativity.
    TreePlruNeedsPowerOfTwo,
}

impl fmt::Display for CacheConfigIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CacheConfigIssue::NonPowerOfTwoSets => "set count must be a power of two",
            CacheConfigIssue::NonPowerOfTwoBlock => "block size must be a power of two",
            CacheConfigIssue::ZeroWays => "associativity must be nonzero",
            CacheConfigIssue::MismatchedWayVectors => {
                "per-way vectors must match the associativity"
            }
            CacheConfigIssue::ZeroHitLatency => "hit latency must be nonzero",
            CacheConfigIssue::DisabledRegionOutOfRange => "disabled region out of range",
            CacheConfigIssue::UnevenAddressRegions => "address regions must evenly divide the sets",
            CacheConfigIssue::AllWaysDisabled => "at least one way must stay enabled",
            CacheConfigIssue::UnreachableSet => "some set has no available way",
            CacheConfigIssue::TreePlruNeedsPowerOfTwo => {
                "tree PLRU needs a power-of-two associativity"
            }
        })
    }
}

impl Error for CacheConfigIssue {}

/// A rejected [`crate::CacheConfig`]: which cache, and what is wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfigError {
    /// The cache's configured name (e.g. `"L1D"`).
    pub cache: String,
    /// The violated invariant.
    pub issue: CacheConfigIssue,
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.cache, self.issue)
    }
}

impl Error for CacheConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.issue)
    }
}

/// A rejected [`crate::HierarchyConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// One of the three caches was rejected.
    Cache(CacheConfigError),
    /// The main-memory latency is zero.
    ZeroMemoryLatency,
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::Cache(e) => e.fmt(f),
            HierarchyError::ZeroMemoryLatency => f.write_str("memory latency must be nonzero"),
        }
    }
}

impl Error for HierarchyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HierarchyError::Cache(e) => Some(e),
            HierarchyError::ZeroMemoryLatency => None,
        }
    }
}

impl From<CacheConfigError> for HierarchyError {
    fn from(e: CacheConfigError) -> Self {
        HierarchyError::Cache(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_format() {
        let e = CacheConfigError {
            cache: "L1D".into(),
            issue: CacheConfigIssue::ZeroWays,
        };
        assert_eq!(e.to_string(), "L1D: associativity must be nonzero");
        assert_eq!(
            HierarchyError::from(e).to_string(),
            "L1D: associativity must be nonzero"
        );
        assert_eq!(
            HierarchyError::ZeroMemoryLatency.to_string(),
            "memory latency must be nonzero"
        );
    }

    #[test]
    fn sources_chain_to_the_issue() {
        let e = CacheConfigError {
            cache: "L2".into(),
            issue: CacheConfigIssue::UnreachableSet,
        };
        assert!(Error::source(&e).is_some());
    }
}
