//! Access statistics shared by all cache levels.

use crate::cache::AccessKind;
use std::fmt;

/// Hit/miss/writeback counters for one cache.
///
/// # Examples
///
/// ```
/// use yac_cache::CacheStats;
///
/// let stats = CacheStats::default();
/// assert_eq!(stats.accesses(), 0);
/// assert_eq!(stats.miss_rate(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Read (load/fetch) accesses.
    pub reads: u64,
    /// Write (store) accesses.
    pub writes: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    pub(crate) fn record_access(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
    }

    pub(crate) fn record_hit(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::Read => self.read_hits += 1,
            AccessKind::Write => self.write_hits += 1,
        }
    }

    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total hits.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total misses.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.accesses() - self.hits()
    }

    /// Miss rate over all accesses (0 when idle).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} hits={} misses={} ({:.2}% miss) writebacks={}",
            self.accesses(),
            self.hits(),
            self.misses(),
            100.0 * self.miss_rate(),
            self.writebacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_up() {
        let mut s = CacheStats::default();
        s.record_access(AccessKind::Read);
        s.record_hit(AccessKind::Read);
        s.record_access(AccessKind::Write);
        assert_eq!(s.accesses(), 2);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.miss_rate(), 0.5);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!CacheStats::default().to_string().is_empty());
    }
}
