//! Property-based tests for the cache substrate.

use proptest::prelude::*;
use yac_cache::{AccessKind, CacheConfig, SetAssocCache};

fn arb_kind() -> impl Strategy<Value = AccessKind> {
    prop_oneof![Just(AccessKind::Read), Just(AccessKind::Write)]
}

proptest! {
    #[test]
    fn hit_immediately_after_any_access(
        addrs in prop::collection::vec((0u64..1u64 << 20, arb_kind()), 1..200),
    ) {
        let mut cache = SetAssocCache::new(CacheConfig::l1d_paper()).unwrap();
        for (addr, kind) in addrs {
            cache.access(addr, kind);
            prop_assert!(cache.probe(addr), "block must be resident right after access");
        }
    }

    #[test]
    fn occupancy_never_exceeds_available_capacity(
        addrs in prop::collection::vec(0u64..1u64 << 22, 1..500),
        disabled_way in prop::option::of(0usize..4),
    ) {
        let mut cfg = CacheConfig::l1d_paper();
        if let Some(w) = disabled_way {
            cfg.way_enabled[w] = false;
        }
        let ways = cfg.way_enabled.iter().filter(|&&e| e).count();
        let capacity = cfg.sets * ways;
        let mut cache = SetAssocCache::new(cfg).unwrap();
        for addr in addrs {
            cache.access(addr, AccessKind::Read);
            prop_assert!(cache.occupancy() <= capacity);
        }
    }

    #[test]
    fn stats_hits_plus_misses_equals_accesses(
        addrs in prop::collection::vec((0u64..1u64 << 16, arb_kind()), 0..300),
    ) {
        let mut cache = SetAssocCache::new(CacheConfig::l1d_paper()).unwrap();
        let n = addrs.len() as u64;
        for (addr, kind) in addrs {
            cache.access(addr, kind);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses(), n);
        prop_assert_eq!(stats.hits() + stats.misses(), n);
    }

    #[test]
    fn hyapd_never_uses_the_blocked_way(
        addrs in prop::collection::vec(0u64..1u64 << 20, 1..300),
        h in 0usize..4,
    ) {
        let mut cfg = CacheConfig::l1d_paper();
        cfg.disabled_h_region = Some(h);
        let check = cfg.clone();
        let mut cache = SetAssocCache::new(cfg).unwrap();
        for addr in addrs {
            let set = check.set_of(addr);
            let out = cache.access(addr, AccessKind::Read);
            prop_assert!(check.way_available(set, out.way));
        }
    }

    #[test]
    fn writebacks_only_for_previously_written_blocks(
        ops in prop::collection::vec((0u64..1u64 << 18, arb_kind()), 1..400),
    ) {
        let mut cache = SetAssocCache::new(CacheConfig::l1d_paper()).unwrap();
        let mut written: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let block = |a: u64| a & !31;
        for (addr, kind) in ops {
            let out = cache.access(addr, kind);
            if let Some(victim) = out.writeback {
                prop_assert!(written.contains(&block(victim)),
                    "writeback of a never-written block");
            }
            if kind == AccessKind::Write {
                written.insert(block(addr));
            }
        }
    }

    #[test]
    fn lru_is_deterministic(
        addrs in prop::collection::vec(0u64..1u64 << 20, 1..200),
    ) {
        let run = || {
            let mut cache = SetAssocCache::new(CacheConfig::l1d_paper()).unwrap();
            addrs.iter().map(|&a| cache.access(a, AccessKind::Read).hit).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
