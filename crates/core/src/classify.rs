//! Base-case loss classification: why would a chip be discarded?
//!
//! Mirrors the row structure of the paper's Tables 2–3: a chip is lost to
//! its delay constraint (bucketed by how many ways violate it) or, if its
//! timing is fine, to its leakage constraint.

use crate::constraints::YieldConstraints;
use std::fmt;
use yac_circuit::CacheCircuitResult;

/// The reason a chip fails parametric testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LossReason {
    /// Total settled leakage exceeds the power limit (timing is fine).
    Leakage,
    /// `violating_ways` of the cache's ways exceed the delay limit.
    Delay {
        /// How many ways are too slow (1..=associativity).
        violating_ways: usize,
    },
}

impl fmt::Display for LossReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LossReason::Leakage => f.write_str("leakage constraint"),
            LossReason::Delay { violating_ways } => {
                write!(f, "delay constraint ({violating_ways} way)")
            }
        }
    }
}

/// Classifies one circuit result against the constraints.
///
/// Returns `None` when the chip meets both limits. Chips violating both
/// constraints are reported under their delay bucket (the leakage row of
/// the paper's tables holds timing-clean chips); in the calibrated model
/// the two violations are nearly disjoint anyway — fast chips are the
/// leaky ones.
///
/// # Examples
///
/// ```
/// use yac_core::{classify, ConstraintSpec, LossReason, Population, YieldConstraints};
/// use yac_circuit::CacheVariant;
///
/// let pop = Population::generate(200, 1);
/// let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
/// let losses = pop
///     .chips
///     .iter()
///     .filter(|chip| classify(chip.result(CacheVariant::Regular), &c).is_some())
///     .count();
/// assert!(losses < pop.len());
/// ```
#[must_use]
pub fn classify(result: &CacheCircuitResult, c: &YieldConstraints) -> Option<LossReason> {
    yac_obs::inc(yac_obs::Metric::ChipsClassified);
    let violating_ways = result.ways_violating_delay(c.delay_limit);
    if violating_ways > 0 {
        yac_obs::inc(yac_obs::Metric::ChipsLost);
        return Some(LossReason::Delay { violating_ways });
    }
    if !c.meets_leakage(result.leakage) {
        yac_obs::inc(yac_obs::Metric::ChipsLost);
        return Some(LossReason::Leakage);
    }
    None
}

/// The pre-repair way-latency census of a chip: how many ways need 4, 5,
/// and 6-or-more cycles. This is the "cache configuration" axis of the
/// paper's Table 6 (e.g. `3-1-0`).
///
/// # Examples
///
/// ```
/// use yac_core::WayCycleCensus;
///
/// let census = WayCycleCensus { ways_4: 3, ways_5: 1, ways_6_plus: 0 };
/// assert_eq!(census.to_string(), "3-1-0");
/// assert_eq!(census.total(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WayCycleCensus {
    /// Ways meeting the 4-cycle (base) latency.
    pub ways_4: u8,
    /// Ways needing exactly 5 cycles.
    pub ways_5: u8,
    /// Ways needing 6 or more cycles.
    pub ways_6_plus: u8,
}

impl WayCycleCensus {
    /// Computes the census of a circuit result.
    #[must_use]
    pub fn of(result: &CacheCircuitResult, c: &YieldConstraints) -> Self {
        let mut census = WayCycleCensus {
            ways_4: 0,
            ways_5: 0,
            ways_6_plus: 0,
        };
        for way in &result.ways {
            match c.cycles_for(way.delay) {
                4 => census.ways_4 += 1,
                5 => census.ways_5 += 1,
                _ => census.ways_6_plus += 1,
            }
        }
        census
    }

    /// Total ways counted.
    #[must_use]
    pub fn total(&self) -> u8 {
        self.ways_4 + self.ways_5 + self.ways_6_plus
    }

    /// Whether every way meets the base latency (a `4-0-0` chip).
    #[must_use]
    pub fn all_fast(&self) -> bool {
        self.ways_5 == 0 && self.ways_6_plus == 0
    }
}

impl fmt::Display for WayCycleCensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}-{}", self.ways_4, self.ways_5, self.ways_6_plus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::ConstraintSpec;
    use crate::Population;
    use yac_circuit::CacheVariant;

    fn sample() -> (Population, YieldConstraints) {
        let pop = Population::generate(300, 4);
        let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
        (pop, c)
    }

    #[test]
    fn classification_rows_partition_the_losses() {
        let (pop, c) = sample();
        let mut none = 0;
        let mut leak = 0;
        let mut delay = 0;
        for chip in &pop.chips {
            match classify(chip.result(CacheVariant::Regular), &c) {
                None => none += 1,
                Some(LossReason::Leakage) => leak += 1,
                Some(LossReason::Delay { violating_ways }) => {
                    assert!((1..=4).contains(&violating_ways));
                    delay += 1;
                }
            }
        }
        assert_eq!(none + leak + delay, pop.len());
        assert!(none > pop.len() / 2, "most chips should pass");
        assert!(leak > 0, "some chips should fail leakage");
        assert!(delay > 0, "some chips should fail delay");
    }

    #[test]
    fn delay_priority_over_leakage() {
        let (pop, _) = sample();
        // Force limits so that everything violates both; classification must
        // pick the delay bucket.
        let c = YieldConstraints::from_stats(1e-3, 0.0, 1e-3, ConstraintSpec::NOMINAL);
        for chip in pop.chips.iter().take(10) {
            match classify(chip.result(CacheVariant::Regular), &c) {
                Some(LossReason::Delay { violating_ways }) => assert_eq!(violating_ways, 4),
                other => panic!("expected 4-way delay loss, got {other:?}"),
            }
        }
    }

    #[test]
    fn census_counts_sum_to_way_count() {
        let (pop, c) = sample();
        for chip in &pop.chips {
            let census = WayCycleCensus::of(chip.result(CacheVariant::Regular), &c);
            assert_eq!(census.total(), 4);
        }
    }

    #[test]
    fn census_consistent_with_classification() {
        let (pop, c) = sample();
        for chip in &pop.chips {
            let result = chip.result(CacheVariant::Regular);
            let census = WayCycleCensus::of(result, &c);
            match classify(result, &c) {
                Some(LossReason::Delay { violating_ways }) => {
                    assert_eq!(
                        usize::from(census.ways_5 + census.ways_6_plus),
                        violating_ways
                    );
                }
                _ => assert!(census.all_fast()),
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(LossReason::Leakage.to_string(), "leakage constraint");
        assert_eq!(
            LossReason::Delay { violating_ways: 2 }.to_string(),
            "delay constraint (2 way)"
        );
    }
}
