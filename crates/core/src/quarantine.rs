//! The quarantine ledger: where failed chips go instead of crashing the
//! study.
//!
//! Population generation, circuit evaluation and loss-table analysis all
//! run over thousands of independent chips; one bad die (a fault-injected
//! NaN, a panicking evaluator, an out-of-range classification) must not
//! abort the other 1999. Every layer that isolates such a failure records
//! a [`QuarantineEntry`] here, and reports carry the ledger forward so a
//! study's output always accounts for every requested chip:
//! `shipped + lost + quarantined == chips`.

use std::fmt;
use yac_variation::SampleFailure;

/// One quarantined chip: enough to reproduce the failure in isolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// The chip's index in its population's Monte Carlo stream.
    pub index: u64,
    /// The study seed the stream was rooted at.
    pub seed: u64,
    /// Human-readable reason, from the typed error that quarantined it.
    pub error: String,
}

impl fmt::Display for QuarantineEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chip {} (seed {}): {}",
            self.index, self.seed, self.error
        )
    }
}

/// An ordered record of every chip a study had to give up on.
///
/// Entries are kept sorted by chip index, so two ledgers built from the
/// same population — regardless of thread count or insertion order —
/// compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuarantineLedger {
    entries: Vec<QuarantineEntry>,
}

impl QuarantineLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a ledger from the failures of a checked Monte Carlo run.
    #[must_use]
    pub fn from_failures(failures: &[SampleFailure]) -> Self {
        let mut ledger = Self::new();
        for f in failures {
            ledger.record(f.index, f.seed, f.error.to_string());
        }
        ledger
    }

    /// Records a failed chip, keeping the ledger sorted by index, and
    /// counts it in the `ChipsQuarantined` metric.
    pub fn record(&mut self, index: u64, seed: u64, error: String) {
        yac_obs::inc(yac_obs::Metric::ChipsQuarantined);
        self.record_unobserved(index, seed, error);
    }

    /// [`QuarantineLedger::record`] without the metric increment — for
    /// entries that are not (or not yet) part of an accepted study:
    /// speculative shard attempts the supervisor may cancel or retry,
    /// and checkpoint parsing, whose entries were already counted when
    /// first recorded. Whoever accepts such a ledger is responsible for
    /// counting it (the executor does, once per accepted shard).
    pub(crate) fn record_unobserved(&mut self, index: u64, seed: u64, error: String) {
        let entry = QuarantineEntry { index, seed, error };
        let at = self.entries.partition_point(|e| e.index <= entry.index);
        self.entries.insert(at, entry);
    }

    /// All quarantined chips, ascending by index.
    #[must_use]
    pub fn entries(&self) -> &[QuarantineEntry] {
        &self.entries
    }

    /// The quarantined chip indices, ascending.
    #[must_use]
    pub fn indices(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.index).collect()
    }

    /// Whether `index` is quarantined.
    #[must_use]
    pub fn contains(&self, index: u64) -> bool {
        self.entries
            .binary_search_by_key(&index, |e| e.index)
            .is_ok()
    }

    /// Number of quarantined chips.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been quarantined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges another ledger into this one.
    ///
    /// A pure splice of the two sorted entry lists: the `ChipsQuarantined`
    /// metric is *not* touched, because each entry was either already
    /// counted when recorded or is counted by whoever accepted the
    /// absorbed ledger — re-counting here would tally merged chips twice.
    pub fn absorb(&mut self, other: QuarantineLedger) {
        if self.entries.is_empty() {
            self.entries = other.entries;
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let mut ours = std::mem::take(&mut self.entries).into_iter().peekable();
        let mut theirs = other.entries.into_iter().peekable();
        while let (Some(a), Some(b)) = (ours.peek(), theirs.peek()) {
            // `<=` keeps existing entries ahead of absorbed ones on equal
            // indices, matching what repeated `record` calls produced.
            if a.index <= b.index {
                merged.push(ours.next().expect("peeked"));
            } else {
                merged.push(theirs.next().expect("peeked"));
            }
        }
        merged.extend(ours);
        merged.extend(theirs);
        self.entries = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_stays_sorted_regardless_of_insertion_order() {
        let mut a = QuarantineLedger::new();
        a.record(5, 1, "x".into());
        a.record(2, 1, "y".into());
        a.record(9, 1, "z".into());
        let mut b = QuarantineLedger::new();
        b.record(9, 1, "z".into());
        b.record(5, 1, "x".into());
        b.record(2, 1, "y".into());
        assert_eq!(a, b);
        assert_eq!(a.indices(), vec![2, 5, 9]);
    }

    #[test]
    fn contains_and_counts() {
        let mut l = QuarantineLedger::new();
        assert!(l.is_empty());
        l.record(7, 3, "bad".into());
        assert!(l.contains(7));
        assert!(!l.contains(8));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn absorb_merges_sorted() {
        let mut a = QuarantineLedger::new();
        a.record(1, 0, "a".into());
        let mut b = QuarantineLedger::new();
        b.record(0, 0, "b".into());
        b.record(2, 0, "c".into());
        a.absorb(b);
        assert_eq!(a.indices(), vec![0, 1, 2]);
    }

    #[test]
    fn absorb_keeps_existing_entries_first_on_equal_indices() {
        let mut a = QuarantineLedger::new();
        a.record(1, 0, "ours".into());
        a.record(2, 0, "mid".into());
        let mut b = QuarantineLedger::new();
        b.record(1, 0, "theirs".into());
        b.record(3, 0, "tail".into());
        a.absorb(b);
        assert_eq!(a.indices(), vec![1, 1, 2, 3]);
        assert_eq!(a.entries()[0].error, "ours");
        assert_eq!(a.entries()[1].error, "theirs");
    }

    #[test]
    fn display_names_the_chip() {
        let e = QuarantineEntry {
            index: 4,
            seed: 9,
            error: "sampler panicked: boom".into(),
        };
        assert_eq!(e.to_string(), "chip 4 (seed 9): sampler panicked: boom");
    }
}
