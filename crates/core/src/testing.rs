//! Post-fabrication measurement modeling.
//!
//! The paper assumes the slow and leaky ways are identified exactly —
//! "during memory testing right after fabrication and/or on the field
//! using leakage power sensors" (§4.1). Real testers and on-die sensors
//! have finite accuracy, and a yield scheme driven by noisy measurements
//! makes two kinds of mistakes:
//!
//! * **escapes** — a chip (or repaired chip) that actually violates a
//!   constraint ships anyway, because it measured clean;
//! * **overkills** — a chip that is actually fine (or repairable) is
//!   discarded, because it measured dirty.
//!
//! This module perturbs the measured delay/leakage with multiplicative
//! Gaussian error, runs any [`Scheme`] on the *measured* values, and
//! scores the decisions against the *true* values — the analysis a test
//! engineer would run before trusting a sensor with yield decisions.

use crate::chip::{ChipSample, Population};
use crate::classify::classify;
use crate::constraints::YieldConstraints;
use crate::schemes::{DisabledUnit, Scheme, SchemeOutcome};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;
use yac_circuit::{CacheCircuitResult, WayCircuitResult};
use yac_variation::dist::standard_normal;
use yac_variation::montecarlo::mix_seed;

/// Relative 1σ accuracy of the delay and leakage measurements.
///
/// # Examples
///
/// ```
/// use yac_core::testing::MeasurementError;
///
/// let ideal = MeasurementError::ideal();
/// assert_eq!(ideal.delay_sigma, 0.0);
/// let sensor = MeasurementError::new(0.02, 0.10);
/// assert!(sensor.leakage_sigma > sensor.delay_sigma);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementError {
    /// 1σ relative error of per-way / per-region delay measurements
    /// (speed binning is accurate: typically ≤ a few percent).
    pub delay_sigma: f64,
    /// 1σ relative error of leakage measurements (on-die leakage sensors
    /// are much coarser: 10–20 % is realistic).
    pub leakage_sigma: f64,
}

impl MeasurementError {
    /// Perfect measurement — reproduces the paper's assumption.
    #[must_use]
    pub fn ideal() -> Self {
        MeasurementError {
            delay_sigma: 0.0,
            leakage_sigma: 0.0,
        }
    }

    /// Creates an error model.
    ///
    /// # Panics
    ///
    /// Panics if either sigma is negative or not finite.
    #[must_use]
    pub fn new(delay_sigma: f64, leakage_sigma: f64) -> Self {
        assert!(
            delay_sigma.is_finite() && delay_sigma >= 0.0,
            "delay sigma must be finite and nonnegative"
        );
        assert!(
            leakage_sigma.is_finite() && leakage_sigma >= 0.0,
            "leakage sigma must be finite and nonnegative"
        );
        MeasurementError {
            delay_sigma,
            leakage_sigma,
        }
    }

    /// Whether this is the ideal (exact) model.
    #[must_use]
    pub fn is_ideal(&self) -> bool {
        self.delay_sigma == 0.0 && self.leakage_sigma == 0.0
    }

    fn perturb_result(
        &self,
        result: &CacheCircuitResult,
        rng: &mut SmallRng,
    ) -> CacheCircuitResult {
        if self.is_ideal() {
            return result.clone();
        }
        let noise = |rng: &mut SmallRng, sigma: f64| {
            // Multiplicative error, floored so a wild sample cannot turn a
            // measurement negative.
            (1.0 + sigma * standard_normal(rng)).max(0.05)
        };
        let ways: Vec<WayCircuitResult> = result
            .ways
            .iter()
            .map(|w| {
                // One gauge error per way per quantity: region measurements
                // of a way share the tester setup, so they share the error.
                let d = noise(rng, self.delay_sigma);
                let l = noise(rng, self.leakage_sigma);
                WayCircuitResult {
                    region_delay: w.region_delay.iter().map(|x| x * d).collect(),
                    delay: w.delay * d,
                    region_cell_leakage: w.region_cell_leakage.iter().map(|x| x * l).collect(),
                    peripheral_leakage: w.peripheral_leakage * l,
                    leakage: w.leakage * l,
                }
            })
            .collect();
        let delay = ways.iter().map(|w| w.delay).fold(f64::MIN, f64::max);
        let raw: f64 = ways.iter().map(|w| w.leakage).sum();
        // The settled (heated) total is what the sensor reads; scale it by
        // the same relative error as the raw sum it derives from.
        let leakage = result.leakage * (raw / result.raw_leakage().max(1e-12));
        CacheCircuitResult {
            ways,
            delay,
            heat: result.heat,
            leakage,
        }
    }

    /// The chip as the tester sees it: both organisations perturbed with
    /// errors derived deterministically from `seed` and the chip index.
    #[must_use]
    pub fn measure(&self, chip: &ChipSample, seed: u64) -> ChipSample {
        let mut rng = SmallRng::seed_from_u64(mix_seed(seed ^ 0x6d65_6173, chip.index));
        ChipSample {
            index: chip.index,
            regular: self.perturb_result(&chip.regular, &mut rng),
            horizontal: self.perturb_result(&chip.horizontal, &mut rng),
        }
    }
}

/// How one chip's measured-driven decision compares to the truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestVerdict {
    /// Shipped (as-is or repaired) and truly meets the constraints.
    GoodShip,
    /// Discarded and truly unsalvageable by this scheme: correct reject.
    GoodScrap,
    /// Shipped but the configuration actually violates a constraint.
    Escape,
    /// Discarded although the scheme could truly have saved it (or it was
    /// fine all along).
    Overkill,
}

/// Aggregate outcome of testing a population with a noisy tester.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TestOutcome {
    /// Correctly shipped chips.
    pub good_ships: usize,
    /// Correctly discarded chips.
    pub good_scraps: usize,
    /// Violating chips that shipped.
    pub escapes: usize,
    /// Salvageable chips that were discarded.
    pub overkills: usize,
}

impl TestOutcome {
    /// Total chips scored.
    #[must_use]
    pub fn total(&self) -> usize {
        self.good_ships + self.good_scraps + self.escapes + self.overkills
    }

    /// Fraction of shipped chips that violate their constraints (DPPM-ish,
    /// as a fraction).
    #[must_use]
    pub fn escape_rate(&self) -> f64 {
        let shipped = self.good_ships + self.escapes;
        if shipped == 0 {
            0.0
        } else {
            self.escapes as f64 / shipped as f64
        }
    }

    /// Fraction of all chips needlessly discarded.
    #[must_use]
    pub fn overkill_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.overkills as f64 / self.total() as f64
        }
    }
}

impl fmt::Display for TestOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ship {} scrap {} escapes {} ({:.2}%) overkills {} ({:.2}%)",
            self.good_ships,
            self.good_scraps,
            self.escapes,
            100.0 * self.escape_rate(),
            self.overkills,
            100.0 * self.overkill_rate(),
        )
    }
}

/// Does the *true* chip, under the repair decided from measurements, meet
/// the constraints?
fn truly_ok(
    chip: &ChipSample,
    decision: &SchemeOutcome,
    scheme_reads_horizontal: bool,
    constraints: &YieldConstraints,
    calibration: &yac_circuit::Calibration,
) -> bool {
    let result = if scheme_reads_horizontal {
        &chip.horizontal
    } else {
        &chip.regular
    };
    match decision {
        SchemeOutcome::Lost(_) => false,
        SchemeOutcome::MeetsAsIs => classify(result, constraints).is_none(),
        SchemeOutcome::Saved(repair) => {
            // Delay: every enabled unit must fit the cycles the repair
            // assigned to it.
            let delay_ok = match repair.disabled {
                Some(DisabledUnit::HorizontalRegion(r)) => {
                    result.ways.iter().enumerate().all(|(w, way)| {
                        let budget = repair.way_cycles[w]
                            .map_or(f64::INFINITY, |c| constraints.delay_budget(c));
                        way.region_delay
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| *i != r)
                            .all(|(_, d)| *d <= budget)
                    })
                }
                _ => result.ways.iter().enumerate().all(|(w, way)| {
                    match repair.way_cycles[w] {
                        None => true, // disabled
                        Some(c) => way.delay <= constraints.delay_budget(c),
                    }
                }),
            };
            let leakage = match repair.disabled {
                Some(DisabledUnit::Way(w)) => {
                    crate::schemes::leakage_after_way_disable(result, w, calibration)
                }
                Some(DisabledUnit::HorizontalRegion(r)) => {
                    crate::schemes::leakage_after_region_disable(result, r, calibration)
                }
                None => result.leakage,
            };
            delay_ok && constraints.meets_leakage(leakage)
        }
    }
}

/// Runs `scheme` against measured values and scores every decision
/// against the true chip.
///
/// # Examples
///
/// ```
/// use yac_core::testing::{test_population, MeasurementError};
/// use yac_core::{ConstraintSpec, Population, Yapd, YieldConstraints};
///
/// let population = Population::generate(200, 7);
/// let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
/// let exact = test_population(&population, &constraints, &Yapd, MeasurementError::ideal(), 1);
/// assert_eq!(exact.escapes, 0);
/// assert_eq!(exact.overkills, 0);
/// ```
#[must_use]
pub fn test_population(
    population: &Population,
    constraints: &YieldConstraints,
    scheme: &dyn Scheme,
    error: MeasurementError,
    seed: u64,
) -> TestOutcome {
    let cal = population.calibration();
    let reads_horizontal = scheme.name().contains("H-YAPD") || scheme.name().ends_with("-H");
    let mut outcome = TestOutcome::default();
    for chip in &population.chips {
        let measured = error.measure(chip, seed);
        let decision = scheme.apply(&measured, constraints, cal);
        let shipped = decision.ships();
        let ok = truly_ok(chip, &decision, reads_horizontal, constraints, cal);
        // Could an exact tester have shipped this chip with this scheme?
        let salvageable = scheme.apply(chip, constraints, cal).ships();
        match (shipped, ok, salvageable) {
            (true, true, _) => outcome.good_ships += 1,
            (true, false, _) => outcome.escapes += 1,
            (false, _, true) => outcome.overkills += 1,
            (false, _, false) => outcome.good_scraps += 1,
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{Hybrid, PowerDownKind, Yapd};
    use crate::ConstraintSpec;

    fn setup() -> (Population, YieldConstraints) {
        let population = Population::generate(500, 2006);
        let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
        (population, constraints)
    }

    #[test]
    fn ideal_measurement_makes_no_mistakes() {
        let (population, constraints) = setup();
        for scheme in [&Yapd as &dyn Scheme, &Hybrid::new(PowerDownKind::Vertical)] {
            let out = test_population(
                &population,
                &constraints,
                scheme,
                MeasurementError::ideal(),
                9,
            );
            assert_eq!(out.escapes, 0, "{}", scheme.name());
            assert_eq!(out.overkills, 0, "{}", scheme.name());
            assert_eq!(out.total(), population.len());
        }
    }

    #[test]
    fn noise_creates_both_escape_and_overkill() {
        let (population, constraints) = setup();
        let noisy = MeasurementError::new(0.05, 0.25);
        let out = test_population(&population, &constraints, &Yapd, noisy, 9);
        assert!(out.escapes > 0, "{out}");
        assert!(out.overkills > 0, "{out}");
        assert_eq!(out.total(), population.len());
    }

    #[test]
    fn more_noise_means_more_mistakes() {
        let (population, constraints) = setup();
        let mistakes = |d: f64, l: f64| {
            let out = test_population(
                &population,
                &constraints,
                &Yapd,
                MeasurementError::new(d, l),
                9,
            );
            out.escapes + out.overkills
        };
        let small = mistakes(0.01, 0.02);
        let large = mistakes(0.10, 0.40);
        assert!(large > small, "{large} vs {small}");
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let (population, constraints) = setup();
        let e = MeasurementError::new(0.03, 0.15);
        let a = test_population(&population, &constraints, &Yapd, e, 4);
        let b = test_population(&population, &constraints, &Yapd, e, 4);
        assert_eq!(a, b);
        let c = test_population(&population, &constraints, &Yapd, e, 5);
        assert_ne!(a, c, "different tester seeds should differ somewhere");
    }

    #[test]
    fn perturbation_preserves_structure() {
        let (population, _) = setup();
        let e = MeasurementError::new(0.05, 0.2);
        let chip = &population.chips[0];
        let measured = e.measure(chip, 1);
        assert_eq!(measured.regular.ways.len(), chip.regular.ways.len());
        for (m, t) in measured.regular.ways.iter().zip(&chip.regular.ways) {
            assert_eq!(m.region_delay.len(), t.region_delay.len());
            assert!(m.delay > 0.0 && m.leakage > 0.0);
        }
        // Measured max is consistent with measured ways.
        let max = measured
            .regular
            .ways
            .iter()
            .map(|w| w.delay)
            .fold(f64::MIN, f64::max);
        assert_eq!(measured.regular.delay, max);
    }

    #[test]
    fn rates_are_well_defined() {
        let out = TestOutcome {
            good_ships: 90,
            good_scraps: 5,
            escapes: 10,
            overkills: 5,
        };
        assert!((out.escape_rate() - 0.1).abs() < 1e-12);
        assert!((out.overkill_rate() - 5.0 / 110.0).abs() < 1e-12);
        assert!(!out.to_string().is_empty());
        assert_eq!(TestOutcome::default().escape_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn negative_sigma_rejected() {
        let _ = MeasurementError::new(-0.1, 0.1);
    }
}
