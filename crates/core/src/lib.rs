//! Yield-aware cache schemes and parametric-yield analysis — the primary
//! contribution of *Yield-Aware Cache Architectures* (Ozdemir, Sinha,
//! Memik, Adams, Zhou; MICRO 2006), reproduced in Rust.
//!
//! The crate glues the substrates together:
//!
//! * [`yac_variation`] samples spatially-correlated process variation;
//! * [`yac_circuit`] turns a die's variation into per-way delay/leakage;
//! * this crate classifies chips against yield constraints (§5.1) and
//!   applies the paper's four schemes — [`Yapd`], [`HYapd`], [`Vaca`] and
//!   [`Hybrid`] — plus the naive speed-binning alternative (§4.5);
//! * the `perf` module (built on [`yac_pipeline`] and [`yac_workload`])
//!   measures the CPI cost of each repair on SPEC2000-like workloads.
//!
//! # Examples
//!
//! Reproduce the skeleton of the paper's Table 2:
//!
//! ```
//! use yac_core::{table2, render_loss_table, ConstraintSpec, Population, YieldConstraints};
//!
//! let population = Population::generate(500, 2006);
//! let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
//! let table = table2(&population, &constraints);
//!
//! // YAPD eliminates every single-way delay violation:
//! assert_eq!(table.schemes[0].losses.delay[0], 0);
//! println!("{}", render_loss_table(&table));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod chaos;
pub mod checkpoint;
pub mod chip;
pub mod classify;
pub mod client;
pub mod confidence;
pub mod constraints;
pub mod economics;
pub mod executor;
pub mod health;
pub mod perf;
pub mod quarantine;
pub mod report;
pub mod schemes;
pub mod sensitivity;
pub mod service;
pub mod stealing;
pub mod sweep;
pub mod testing;

pub use analysis::{
    constraint_sweep, fig8_scatter, full_study, full_study_supervised, full_study_workers,
    loss_table, saved_config_census, study_from_population, table2, table3, FullStudy,
    InvalidLossReason, LossBreakdown, LossTable, ScatterPoint, SchemeLosses,
};
pub use chaos::{ChaosPlan, ChaosStream, IoSite, MemPlan, NetPlan, NetSite};
pub use checkpoint::{
    run_checkpointed, run_checkpointed_budget, CheckpointState, ShardRecord, ShardStatus,
    StudyError,
};
pub use chip::{ChipSample, Population, PopulationConfig};
pub use classify::{classify, LossReason, WayCycleCensus};
pub use client::{CircuitBreaker, ClientConfig, ClientError, ResilientClient};
pub use confidence::{yield_interval, YieldInterval};
pub use constraints::{ConstraintSpec, YieldConstraints};
pub use economics::PriceError;
pub use executor::{
    run_checkpointed_workers, run_checkpointed_workers_budget, run_supervised, shards_for,
    DegradedShard, ExecutorConfig, ShardFaultPlan, ShardSpec, StudyOutcome,
};
pub use health::{
    HealthConfig, HeartbeatLease, HeartbeatRegistry, LaneState, StallDetector, StallEvent,
    StallSentinel,
};
pub use perf::{
    adaptive_comparison, render_degradation, render_table6, suite_cpis_isolated, suite_degradation,
    table6, AdaptiveComparison, BenchmarkFailure, PerfOptions, SuiteDegradation, Table6, Table6Row,
};
pub use quarantine::{QuarantineEntry, QuarantineLedger};
pub use report::{render_constraint_sweep, render_loss_table};
pub use schemes::{
    DisabledUnit, HYapd, Hybrid, HybridPolicy, NaiveBinning, PowerDownKind, RepairedCache, Scheme,
    SchemeOutcome, Vaca, Yapd,
};
pub use service::{
    client_request, constraint_by_name, read_frame, serve, write_frame, HealthReport, ResultCache,
    ServiceConfig, ServiceReply, ServiceRequest, ServiceStats, StudyQuery, SweepService,
};
pub use stealing::{PoolTask, StealPool, WorkDeque};
pub use sweep::{
    run_sweep, CpiOptions, StudyResult, StudySpec, StudyStatus, SweepConfig, SweepGrid,
    SweepOutcome,
};
pub use testing::{MeasurementError, TestOutcome};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::Population>();
        assert_send_sync::<super::YieldConstraints>();
        assert_send_sync::<super::RepairedCache>();
        assert_send_sync::<Box<dyn super::Scheme>>();
    }
}
