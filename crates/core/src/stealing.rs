//! The work-stealing shard pool behind the sweep service.
//!
//! The batch executor ([`crate::executor`]) hands out shards with a
//! single atomic cursor: every worker pulls the next contiguous shard
//! from one shared list. That is ideal for one big study — the work is
//! known up front and uniformly shaped — but wrong for a *service*,
//! where queries of different sizes arrive at different times: a worker
//! stuck behind one query's shards would leave the rest of the pool
//! idle while its own deque backs up.
//!
//! This module replaces the static cursor with **per-worker deques and
//! steal-half**:
//!
//! * Each worker owns a [`WorkDeque`]; submitted tasks are injected
//!   round-robin (or pinned with [`StealPool::submit_to`]).
//! * A worker drains its own deque FIFO (oldest first, so a query's
//!   shards start roughly in order).
//! * An idle worker picks the most loaded victim and **steals the back
//!   half** of its deque in one grab — the classic steal-half policy:
//!   one steal rebalances a whole backlog instead of migrating tasks
//!   one by one, and taking the *back* half leaves the victim the tasks
//!   it is about to pop.
//!
//! The deque is a small mutex-guarded `VecDeque` rather than a lock-free
//! Chase–Lev buffer: shard tasks are milliseconds of Monte Carlo work,
//! so the nanoseconds a lock costs are noise, and the mutex makes
//! steal-half (a multi-element splice, awkward under Chase–Lev's
//! single-element CAS protocol) trivially exactly-once. The trade-off is
//! documented in DESIGN.md §13 and stress-tested in
//! `crates/core/tests/stealing.rs`.
//!
//! Every steal increments [`yac_obs::Metric::TasksStolen`] (by the
//! number of tasks moved) and records a
//! [`yac_obs::TraceEventKind::TaskStolen`] instant with the thief's
//! worker index, so a trace shows exactly how work migrated.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use yac_obs::{Metric, TraceCtx, TraceEventKind};

/// A task the pool runs: boxed closure receiving the executing worker's
/// index.
pub type PoolTask = Box<dyn FnOnce(usize) + Send + 'static>;

/// One worker's double-ended task queue.
///
/// The owner pushes to the back and pops from the front (FIFO, so a
/// query's shards start in submission order); thieves take the **back
/// half** in one [`WorkDeque::steal_half`] call. All operations are
/// linearized by the internal mutex, so every pushed task is popped or
/// stolen exactly once — the invariant the stress tests hammer.
#[derive(Debug, Default)]
pub struct WorkDeque<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> WorkDeque<T> {
    /// An empty deque.
    #[must_use]
    pub fn new() -> Self {
        WorkDeque {
            items: Mutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.items
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of queued tasks right now (advisory: may change before the
    /// caller acts on it).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the deque is empty right now (advisory).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Enqueues a task at the back (owner side).
    pub fn push(&self, task: T) {
        self.lock().push_back(task);
    }

    /// Dequeues the oldest task (owner side); `None` when empty.
    #[must_use]
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    /// Steals the back half — `ceil(len / 2)` tasks — in one grab,
    /// preserving their relative order. Stealing the *back* leaves the
    /// victim the oldest tasks, which its owner is about to pop.
    #[must_use]
    pub fn steal_half(&self) -> Vec<T> {
        let mut items = self.lock();
        let keep = items.len() / 2;
        items.split_off(keep).into()
    }
}

/// Shared pool state.
struct PoolShared {
    queues: Vec<WorkDeque<PoolTask>>,
    /// Round-robin injection cursor for [`StealPool::submit`].
    next: AtomicUsize,
    /// Set once; workers drain their deques, then exit.
    shutdown: AtomicBool,
    /// Tasks moved by steal-half since the pool started (also mirrored
    /// into [`Metric::TasksStolen`]).
    stolen: AtomicU64,
    /// Workers that died to a panicking task. Tasks run *without* a
    /// `catch_unwind` wrapper — a panic kills its worker thread — so a
    /// poisoned pool is visible here and the sweep service rebuilds it
    /// in place rather than limping on with fewer lanes.
    deaths: AtomicUsize,
    /// Wakeup channel: bumped on every submit and on shutdown.
    wake: Mutex<u64>,
    wake_cv: Condvar,
}

impl PoolShared {
    fn wake_all(&self) {
        let mut version = self
            .wake
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *version += 1;
        drop(version);
        self.wake_cv.notify_all();
    }
}

/// A long-lived work-stealing worker pool: per-worker [`WorkDeque`]s,
/// round-robin injection and steal-half rebalancing.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use yac_core::stealing::StealPool;
///
/// let pool = StealPool::new(2);
/// let done = Arc::new(AtomicUsize::new(0));
/// for _ in 0..8 {
///     let done = Arc::clone(&done);
///     pool.submit(Box::new(move |_worker| {
///         done.fetch_add(1, Ordering::Relaxed);
///     }));
/// }
/// pool.shutdown();
/// assert_eq!(done.load(Ordering::Relaxed), 8);
/// ```
#[derive(Debug)]
pub struct StealPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared")
            .field("workers", &self.queues.len())
            .field("stolen", &self.stolen.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl StealPool {
    /// Starts `workers` (clamped to at least 1) worker threads, each
    /// owning an empty deque.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queues: (0..workers).map(|_| WorkDeque::new()).collect(),
            next: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            stolen: AtomicU64::new(0),
            deaths: AtomicUsize::new(0),
            wake: Mutex::new(0),
            wake_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, me))
            })
            .collect();
        StealPool {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Tasks moved between deques by steal-half since the pool started.
    #[must_use]
    pub fn stolen(&self) -> u64 {
        self.shared.stolen.load(Ordering::Relaxed)
    }

    /// Workers killed by a panicking task since the pool started. A
    /// non-zero count means the pool is poisoned — short of lanes, with
    /// the dead worker's backlog rescued only as long as live peers
    /// remain to steal it. The sweep service polls this and rebuilds the
    /// pool in place when it goes positive.
    #[must_use]
    pub fn dead_workers(&self) -> usize {
        self.shared.deaths.load(Ordering::Relaxed)
    }

    /// Submits a task, injecting round-robin across the worker deques so
    /// a multi-shard query starts spread over the pool.
    pub fn submit(&self, task: PoolTask) {
        let n = self.shared.next.fetch_add(1, Ordering::Relaxed);
        self.submit_to(n % self.shared.queues.len(), task);
    }

    /// Submits a task to one specific worker's deque (tests use this to
    /// force an imbalance; steal-half then has to fix it).
    ///
    /// # Panics
    ///
    /// Panics if `worker >= self.workers()`.
    pub fn submit_to(&self, worker: usize, task: PoolTask) {
        self.shared.queues[worker].push(task);
        self.shared.wake_all();
    }

    /// Signals shutdown and joins every worker. Already-queued tasks are
    /// drained first — shutdown is graceful, never lossy.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for StealPool {
    /// Dropping without [`StealPool::shutdown`] still drains and joins.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Publishes a worker's death-by-panic as it unwinds: tasks run without
/// `catch_unwind`, so a panicking task kills its worker thread — this
/// guard's `Drop` runs during the unwind, bumps the shared death count
/// and wakes the surviving workers so they steal the dead lane's
/// backlog instead of staying parked.
struct DeathWatch<'a> {
    shared: &'a PoolShared,
}

impl Drop for DeathWatch<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.deaths.fetch_add(1, Ordering::Release);
            self.shared.wake_all();
        }
    }
}

/// One worker: drain own deque, steal from the most loaded victim when
/// empty, park when there is nothing to steal.
fn worker_loop(shared: &PoolShared, me: usize) {
    yac_obs::trace_label_thread(&format!("svc-worker-{me}"));
    let _death_watch = DeathWatch { shared };
    loop {
        // Read the wake version *before* looking for work: a submit that
        // lands after the look bumps the version, so the park below
        // returns immediately instead of missing the wakeup.
        let seen = *shared
            .wake
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(task) = shared.queues[me].pop() {
            task(me);
            continue;
        }
        if try_steal(shared, me) {
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            if shared.queues.iter().all(WorkDeque::is_empty) {
                return;
            }
            continue;
        }
        // Park until a submit or shutdown bumps the wake version. The
        // timeout is a belt-and-braces backstop, not the wake mechanism.
        let version = shared
            .wake
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _unused =
            shared
                .wake_cv
                .wait_timeout_while(version, std::time::Duration::from_millis(10), |v| {
                    *v == seen
                });
    }
}

/// Steals the back half of the most loaded victim's deque into `me`'s
/// own deque. Returns whether anything was stolen.
fn try_steal(shared: &PoolShared, me: usize) -> bool {
    let victim = shared
        .queues
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != me)
        .map(|(i, q)| (q.len(), i))
        .max();
    let Some((len, victim)) = victim else {
        return false; // Single-worker pool: nobody to steal from.
    };
    if len == 0 {
        return false;
    }
    let stolen = shared.queues[victim].steal_half();
    if stolen.is_empty() {
        return false; // Raced: the victim drained before our grab.
    }
    let count = stolen.len() as u64;
    shared.stolen.fetch_add(count, Ordering::Relaxed);
    yac_obs::add(Metric::TasksStolen, count);
    yac_obs::trace_instant(
        TraceEventKind::TaskStolen,
        TraceCtx {
            worker: Some(me as u32),
            ..TraceCtx::default()
        },
    );
    for task in stolen {
        shared.queues[me].push(task);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deque_is_fifo_for_the_owner() {
        let q = WorkDeque::new();
        for i in 0..4 {
            q.push(i);
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert!(!q.is_empty());
    }

    #[test]
    fn steal_half_takes_the_newer_back_half_in_order() {
        let q = WorkDeque::new();
        for i in 0..5 {
            q.push(i);
        }
        // ceil(5/2) = 3 stolen, the oldest 2 left for the owner.
        assert_eq!(q.steal_half(), vec![2, 3, 4]);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert!(q.steal_half().is_empty());
    }

    #[test]
    fn steal_half_of_one_task_takes_it() {
        let q = WorkDeque::new();
        q.push(7);
        assert_eq!(q.steal_half(), vec![7]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pool_drains_queued_tasks_on_shutdown() {
        let pool = StealPool::new(3);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move |_| {
                done.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn a_panicking_task_kills_its_worker_and_is_counted() {
        let pool = StealPool::new(2);
        assert_eq!(pool.dead_workers(), 0);
        pool.submit_to(0, Box::new(|_| panic!("injected pool poisoning")));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            pool.submit_to(
                1,
                Box::new(move |_| {
                    done.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        for _ in 0..2500 {
            if pool.dead_workers() == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(pool.dead_workers(), 1);
        // The survivor still drains everything on shutdown.
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn workers_are_clamped_to_at_least_one() {
        let pool = StealPool::new(0);
        assert_eq!(pool.workers(), 1);
        pool.shutdown();
    }
}
