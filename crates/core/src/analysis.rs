//! The yield study: ties populations, constraints, classification and
//! schemes together into the paper's Tables 2–5 and Figure 8.

use crate::chip::Population;
use crate::classify::{classify, LossReason, WayCycleCensus};
use crate::constraints::{ConstraintSpec, YieldConstraints};
use crate::schemes::{HYapd, Hybrid, PowerDownKind, Scheme, SchemeOutcome, Vaca, Yapd};
use std::collections::BTreeMap;
use yac_circuit::CacheVariant;

/// Losses bucketed the way the paper's Tables 2–3 report them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LossBreakdown {
    /// Chips lost to the leakage constraint (timing-clean).
    pub leakage: usize,
    /// Chips lost to the delay constraint, indexed by `violating_ways - 1`.
    pub delay: Vec<usize>,
}

impl LossBreakdown {
    /// An empty breakdown sized for `ways`-way caches.
    #[must_use]
    pub fn new(ways: usize) -> Self {
        LossBreakdown {
            leakage: 0,
            delay: vec![0; ways],
        }
    }

    /// Counts one lost chip, rejecting a delay reason whose
    /// `violating_ways` does not fit this breakdown's way count. (The old
    /// behaviour silently resized the histogram — an out-of-range
    /// classification is corrupt data and belongs in the quarantine
    /// ledger, not an invented bucket.)
    fn count(&mut self, reason: LossReason) -> Result<(), InvalidLossReason> {
        match reason {
            LossReason::Leakage => self.leakage += 1,
            LossReason::Delay { violating_ways } => {
                if violating_ways == 0 || violating_ways > self.delay.len() {
                    return Err(InvalidLossReason {
                        violating_ways,
                        ways: self.delay.len(),
                    });
                }
                self.delay[violating_ways - 1] += 1;
            }
        }
        Ok(())
    }

    /// Total chips lost.
    #[must_use]
    pub fn total(&self) -> usize {
        self.leakage + self.delay.iter().sum::<usize>()
    }
}

/// A classification that does not fit the loss histogram: `violating_ways`
/// outside `1..=ways`. Chips reporting this are quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLossReason {
    /// The out-of-range way count.
    pub violating_ways: usize,
    /// The histogram's way count.
    pub ways: usize,
}

impl std::fmt::Display for InvalidLossReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "classification reported {} violating ways on a {}-way cache",
            self.violating_ways, self.ways
        )
    }
}

impl std::error::Error for InvalidLossReason {}

/// One scheme's losses, row-aligned with the base case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeLosses {
    /// The scheme's display name.
    pub name: String,
    /// Remaining losses per base-case row.
    pub losses: LossBreakdown,
}

/// A full loss table: base case plus one column per scheme (the shape of
/// the paper's Tables 2 and 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LossTable {
    /// Which organisation the base case was classified under.
    pub base_variant: CacheVariant,
    /// The constraint recipe in force.
    pub spec_name: String,
    /// Population size (chips that were actually classified).
    pub total_chips: usize,
    /// Chips lost in the base case, bucketed by reason.
    pub base: LossBreakdown,
    /// Remaining losses per scheme, in the base case's row buckets.
    pub schemes: Vec<SchemeLosses>,
    /// Chips excluded from the table entirely: quarantined during
    /// generation/evaluation, plus any whose classification did not fit
    /// the loss histogram. Not part of `total_chips`.
    pub quarantined: usize,
}

impl LossTable {
    /// Overall yield (fraction of shipping chips) under one scheme column,
    /// or the base case when `scheme` is `None`.
    #[must_use]
    pub fn yield_fraction(&self, scheme: Option<usize>) -> f64 {
        let lost = match scheme {
            None => self.base.total(),
            Some(i) => self.schemes[i].losses.total(),
        };
        1.0 - lost as f64 / self.total_chips as f64
    }

    /// Reduction in yield loss achieved by scheme `i` relative to the base
    /// case (the paper's headline percentages).
    #[must_use]
    pub fn loss_reduction(&self, i: usize) -> f64 {
        let base = self.base.total();
        if base == 0 {
            return 0.0;
        }
        1.0 - self.schemes[i].losses.total() as f64 / base as f64
    }
}

/// Builds a loss table: classifies every chip under `base_variant` and asks
/// each scheme whether it can save the violators.
///
/// # Examples
///
/// ```
/// use yac_core::{loss_table, ConstraintSpec, Population, Yapd, YieldConstraints};
/// use yac_circuit::CacheVariant;
///
/// let pop = Population::generate(300, 7);
/// let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
/// let table = loss_table(&pop, &c, CacheVariant::Regular, &[&Yapd]);
/// assert!(table.yield_fraction(Some(0)) >= table.yield_fraction(None));
/// ```
#[must_use]
pub fn loss_table(
    population: &Population,
    constraints: &YieldConstraints,
    base_variant: CacheVariant,
    schemes: &[&dyn Scheme],
) -> LossTable {
    let ways = population.chips.first().map_or(4, |c| c.way_count());
    let mut base = LossBreakdown::new(ways);
    let mut per_scheme: Vec<LossBreakdown> =
        schemes.iter().map(|_| LossBreakdown::new(ways)).collect();
    let mut analysis_quarantined = 0usize;

    for chip in &population.chips {
        let reason = {
            let _timer = yac_obs::phase_ctx(
                yac_obs::Phase::Classify,
                yac_obs::TraceCtx::chip(chip.index),
            );
            classify(chip.result(base_variant), constraints)
        };
        let Some(reason) = reason else {
            continue;
        };
        if base.count(reason).is_err() {
            // A classification that doesn't fit the histogram is corrupt
            // data; exclude the chip from the table instead of inventing
            // a bucket for it.
            analysis_quarantined += 1;
            continue;
        }
        let _timer =
            yac_obs::phase_ctx(yac_obs::Phase::Rescue, yac_obs::TraceCtx::chip(chip.index));
        for (column, (scheme, losses)) in schemes.iter().zip(&mut per_scheme).enumerate() {
            yac_obs::inc(yac_obs::Metric::RescueAttempts);
            yac_obs::trace_instant(
                yac_obs::TraceEventKind::RescueAttempt,
                yac_obs::TraceCtx::chip(chip.index).with_scheme(column as u16),
            );
            if scheme
                .apply(chip, constraints, population.calibration())
                .ships()
            {
                yac_obs::inc(yac_obs::Metric::RescueSaves);
            } else {
                losses
                    .count(reason)
                    .expect("scheme histogram matches the base histogram");
            }
        }
    }

    LossTable {
        base_variant,
        spec_name: constraints.spec.name.to_owned(),
        total_chips: population.len() - analysis_quarantined,
        quarantined: population.quarantine().len() + analysis_quarantined,
        base,
        schemes: schemes
            .iter()
            .zip(per_scheme)
            .map(|(s, losses)| SchemeLosses {
                name: s.name().to_owned(),
                losses,
            })
            .collect(),
    }
}

/// The paper's Table 2: regular power-down, nominal constraints, schemes
/// YAPD / VACA / Hybrid.
#[must_use]
pub fn table2(population: &Population, constraints: &YieldConstraints) -> LossTable {
    let vaca = Vaca::new(CacheVariant::Regular);
    let hybrid = Hybrid::new(PowerDownKind::Vertical);
    loss_table(
        population,
        constraints,
        CacheVariant::Regular,
        &[&Yapd, &vaca, &hybrid],
    )
}

/// The paper's Table 3: horizontal power-down architecture, schemes
/// H-YAPD / VACA / Hybrid.
#[must_use]
pub fn table3(population: &Population, constraints: &YieldConstraints) -> LossTable {
    let vaca = Vaca::new(CacheVariant::Horizontal);
    let hybrid = Hybrid::new(PowerDownKind::Horizontal);
    loss_table(
        population,
        constraints,
        CacheVariant::Horizontal,
        &[&HYapd, &vaca, &hybrid],
    )
}

/// The paper's Tables 4–5: total losses under relaxed and strict
/// constraints for one power-down organisation.
#[must_use]
pub fn constraint_sweep(
    population: &Population,
    kind: PowerDownKind,
    specs: &[ConstraintSpec],
) -> Vec<LossTable> {
    specs
        .iter()
        .map(|spec| {
            let constraints = YieldConstraints::derive(population, *spec);
            match kind {
                PowerDownKind::Vertical => table2(population, &constraints),
                PowerDownKind::Horizontal => table3(population, &constraints),
            }
        })
        .collect()
}

/// Everything the yield half of the paper produces, from one call:
/// nominal Tables 2–3 plus the relaxed/strict sweeps of Tables 4–5.
#[derive(Debug, Clone, PartialEq)]
pub struct FullStudy {
    /// Monte Carlo seed the study ran with.
    pub seed: u64,
    /// The derived nominal constraints.
    pub constraints: YieldConstraints,
    /// Table 2 (regular power-down, nominal constraints).
    pub table2: LossTable,
    /// Table 3 (horizontal power-down, nominal constraints).
    pub table3: LossTable,
    /// Table 4 (regular; relaxed then strict).
    pub table4: Vec<LossTable>,
    /// Table 5 (horizontal; relaxed then strict).
    pub table5: Vec<LossTable>,
}

impl FullStudy {
    /// The headline loss-reduction percentages, `(YAPD, H-YAPD, VACA,
    /// Hybrid)`, matching the paper's abstract.
    #[must_use]
    pub fn headline(&self) -> (f64, f64, f64, f64) {
        (
            100.0 * self.table2.loss_reduction(0),
            100.0 * self.table3.loss_reduction(0),
            100.0 * self.table2.loss_reduction(1),
            100.0 * self.table2.loss_reduction(2),
        )
    }

    /// The best overall yield achieved (the Hybrid on either layout).
    #[must_use]
    pub fn best_yield(&self) -> f64 {
        self.table2
            .yield_fraction(Some(2))
            .max(self.table3.yield_fraction(Some(2)))
    }
}

/// Runs the complete yield study — the one-call entry point for the
/// paper's Tables 2–5.
///
/// # Examples
///
/// ```
/// use yac_core::analysis::full_study;
///
/// let study = full_study(300, 2006);
/// let (yapd, hyapd, vaca, hybrid) = study.headline();
/// assert!(hybrid > yapd && hybrid > vaca);
/// assert!(study.best_yield() > 0.9);
/// assert!(hyapd > 0.0);
/// ```
#[must_use]
pub fn full_study(chips: usize, seed: u64) -> FullStudy {
    let population = Population::generate(chips, seed);
    study_from_population(&population, seed)
}

/// Builds the complete yield study (Tables 2–5) from an
/// already-generated population — the shared tail of [`full_study`] and
/// [`full_study_workers`].
///
/// # Panics
///
/// Panics if the population is empty (no constraints can be derived).
#[must_use]
pub fn study_from_population(population: &Population, seed: u64) -> FullStudy {
    let constraints = YieldConstraints::derive(population, ConstraintSpec::NOMINAL);
    let sweep_specs = [ConstraintSpec::RELAXED, ConstraintSpec::STRICT];
    FullStudy {
        seed,
        constraints,
        table2: table2(population, &constraints),
        table3: table3(population, &constraints),
        table4: constraint_sweep(population, PowerDownKind::Vertical, &sweep_specs),
        table5: constraint_sweep(population, PowerDownKind::Horizontal, &sweep_specs),
    }
}

/// [`full_study`] on the supervised parallel executor
/// ([`crate::executor::run_supervised`]) with `workers` threads.
///
/// The result is identical — bit-for-bit — to [`full_study`] for any
/// worker count, because every chip is sampled from its own
/// counter-based stream and merged in index order.
///
/// # Errors
///
/// Returns [`crate::StudyError::Config`] when the variation
/// configuration is invalid, and [`crate::StudyError::Degraded`] when
/// *any* shard exhausted its retry budget: this function promises a
/// study of the full population, so a partial one is an error, never a
/// silently shrunken denominator. Callers that can work with a partial
/// result should use [`crate::executor::run_supervised`] and inspect
/// the outcome's degraded map.
pub fn full_study_workers(
    chips: usize,
    seed: u64,
    workers: usize,
) -> Result<FullStudy, crate::StudyError> {
    let mut cfg = crate::chip::PopulationConfig::paper(seed);
    cfg.chips = chips;
    let exec = crate::executor::ExecutorConfig::with_workers(workers);
    full_study_supervised(&cfg, &exec)
}

/// [`full_study_workers`] with an explicit configuration and executor —
/// the underlying entry point, exposed so retry budgets, shard sizes and
/// deadlines (and, in tests, fault plans) can be tuned.
///
/// # Errors
///
/// As [`full_study_workers`]: any degraded shard is
/// [`crate::StudyError::Degraded`], and a population left empty by
/// quarantine is [`crate::StudyError::Mismatch`] (no constraints can be
/// derived from it).
pub fn full_study_supervised(
    config: &crate::chip::PopulationConfig,
    exec: &crate::executor::ExecutorConfig,
) -> Result<FullStudy, crate::StudyError> {
    let outcome = crate::executor::run_supervised(config, exec)?;
    if outcome.is_degraded() {
        return Err(crate::StudyError::Degraded {
            missing: outcome.missing_chips(),
            requested: outcome.requested_chips,
        });
    }
    if outcome.population.is_empty() {
        return Err(crate::StudyError::Mismatch(
            "population is empty: no constraints can be derived".into(),
        ));
    }
    Ok(study_from_population(&outcome.population, config.seed))
}

/// One point of the Figure 8 scatter: a chip's access latency and
/// mean-normalised leakage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// Cache access delay (normalised units).
    pub delay: f64,
    /// Leakage relative to the population mean.
    pub normalized_leakage: f64,
}

/// The Figure 8 scatter: normalised leakage versus latency for every chip.
#[must_use]
pub fn fig8_scatter(population: &Population) -> Vec<ScatterPoint> {
    let leaks = population.leakages(CacheVariant::Regular);
    let mean = leaks.iter().sum::<f64>() / leaks.len().max(1) as f64;
    population
        .chips
        .iter()
        .map(|chip| ScatterPoint {
            delay: chip.regular.delay,
            normalized_leakage: chip.regular.leakage / mean,
        })
        .collect()
}

/// Census of *saved* chips by their pre-repair way-cycle configuration —
/// the "chip frequency" column of the paper's Table 6.
///
/// `4-0-0` entries are leakage-limited chips (all ways timing-clean) that
/// the scheme had to repair.
#[must_use]
pub fn saved_config_census(
    population: &Population,
    constraints: &YieldConstraints,
    scheme: &dyn Scheme,
    variant: CacheVariant,
) -> BTreeMap<WayCycleCensus, usize> {
    let mut census = BTreeMap::new();
    for chip in &population.chips {
        let outcome = {
            let _timer =
                yac_obs::phase_ctx(yac_obs::Phase::Rescue, yac_obs::TraceCtx::chip(chip.index));
            scheme.apply(chip, constraints, population.calibration())
        };
        if matches!(outcome, SchemeOutcome::Saved(_)) {
            let key = WayCycleCensus::of(chip.result(variant), constraints);
            *census.entry(key).or_insert(0) += 1;
        }
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::NaiveBinning;

    fn setup() -> (Population, YieldConstraints) {
        let pop = Population::generate(1000, 2006);
        let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
        (pop, c)
    }

    #[test]
    fn table2_has_paper_shape() {
        let (pop, c) = setup();
        let t = table2(&pop, &c);
        assert_eq!(t.schemes.len(), 3);
        let base = &t.base;
        let yapd = &t.schemes[0].losses;
        let vaca = &t.schemes[1].losses;
        let hybrid = &t.schemes[2].losses;

        // Base case: a meaningful fraction lost, split between reasons.
        let frac = base.total() as f64 / t.total_chips as f64;
        assert!((0.08..0.30).contains(&frac), "base loss fraction {frac}");
        assert!(base.leakage > 0 && base.delay[0] > 0);

        // YAPD nullifies single-way delay losses, cannot touch multi-way.
        assert_eq!(yapd.delay[0], 0);
        assert_eq!(&yapd.delay[1..], &base.delay[1..]);
        assert!(yapd.leakage < base.leakage);

        // VACA cannot save leakage, saves most single-way violators.
        assert_eq!(vaca.leakage, base.leakage);
        assert!(vaca.delay[0] < base.delay[0]);

        // The Hybrid dominates everything.
        assert!(hybrid.total() <= yapd.total());
        assert!(hybrid.total() <= vaca.total());
        assert_eq!(hybrid.delay[0], 0);
        assert_eq!(hybrid.leakage, yapd.leakage);

        // Headline ordering: Hybrid > YAPD > VACA in loss reduction.
        assert!(t.loss_reduction(2) >= t.loss_reduction(0));
        assert!(t.loss_reduction(0) > t.loss_reduction(1));
    }

    #[test]
    fn table3_has_paper_shape() {
        let (pop, c) = setup();
        let t2 = table2(&pop, &c);
        let t3 = table3(&pop, &c);
        // The slower H architecture loses more chips at the same limits.
        assert!(t3.base.total() > t2.base.total());
        // H-YAPD saves the vast majority of single-way violators (the
        // paper reports all of them; our circuit model leaves a small
        // remainder whose slow way is uniformly slow across its regions).
        let hyapd = &t3.schemes[0].losses;
        assert!(
            (hyapd.delay[0] as f64) < 0.25 * t3.base.delay[0] as f64,
            "H-YAPD single-way losses {} of {}",
            hyapd.delay[0],
            t3.base.delay[0]
        );
        // ... and recovers some multi-way violators (unlike YAPD).
        let multi_base: usize = t3.base.delay[1..].iter().sum();
        let multi_hyapd: usize = hyapd.delay[1..].iter().sum();
        assert!(multi_hyapd < multi_base);
        // Hybrid-H dominates.
        assert!(t3.schemes[2].losses.total() <= hyapd.total());
    }

    #[test]
    fn hyapd_beats_yapd_overall_and_matches_on_leakage() {
        // Paper: H-YAPD reduces losses by 72.4% vs YAPD's 68.1%, and trims
        // leakage losses to 26 vs YAPD's 33. Our model reproduces the
        // ordering on total loss reduction and near-parity on leakage.
        let (pop, c) = setup();
        let t2 = table2(&pop, &c);
        let t3 = table3(&pop, &c);
        assert!(
            t3.loss_reduction(0) > t2.loss_reduction(0) - 0.02,
            "H-YAPD reduction {} vs YAPD {}",
            t3.loss_reduction(0),
            t2.loss_reduction(0)
        );
        let leak_h = t3.schemes[0].losses.leakage as f64;
        let leak_v = t2.schemes[0].losses.leakage as f64;
        assert!(
            leak_h <= 1.25 * leak_v,
            "H-YAPD leakage {leak_h} vs YAPD {leak_v}"
        );
    }

    #[test]
    fn strict_loses_more_than_relaxed() {
        let (pop, _) = setup();
        let tables = constraint_sweep(
            &pop,
            PowerDownKind::Vertical,
            &[ConstraintSpec::RELAXED, ConstraintSpec::STRICT],
        );
        assert_eq!(tables.len(), 2);
        assert!(tables[1].base.total() > tables[0].base.total());
        for i in 0..3 {
            assert!(
                tables[1].schemes[i].losses.total() > tables[0].schemes[i].losses.total(),
                "scheme {i} must lose more under strict constraints"
            );
        }
    }

    #[test]
    fn fig8_scatter_is_anticorrelated() {
        let (pop, _) = setup();
        let points = fig8_scatter(&pop);
        assert_eq!(points.len(), pop.len());
        let xs: Vec<f64> = points.iter().map(|p| p.delay).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.normalized_leakage).collect();
        let r = yac_variation::stats::pearson(&xs, &ys).unwrap();
        assert!(r < -0.05, "delay and leakage should anticorrelate (r={r})");
        let mean_norm = ys.iter().sum::<f64>() / ys.len() as f64;
        assert!((mean_norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn census_counts_saved_chips_only() {
        let (pop, c) = setup();
        let census = saved_config_census(&pop, &c, &Yapd, CacheVariant::Regular);
        let total: usize = census.values().sum();
        let t = table2(&pop, &c);
        assert_eq!(total, t.base.total() - t.schemes[0].losses.total());
        // YAPD saves only 4-0-0 (leakage), 3-1-0 and 3-0-1 chips.
        for key in census.keys() {
            assert!(key.ways_5 + key.ways_6_plus <= 1, "unexpected config {key}");
        }
    }

    #[test]
    fn naive_binning_census_is_uniform_latency() {
        let (pop, c) = setup();
        let bin = NaiveBinning::default();
        let census = saved_config_census(&pop, &c, &bin, CacheVariant::Regular);
        for key in census.keys() {
            assert_eq!(key.ways_6_plus, 0);
            assert!(key.ways_5 >= 1, "binned chips have at least one slow way");
        }
    }

    #[test]
    fn yield_fraction_is_consistent() {
        let (pop, c) = setup();
        let t = table2(&pop, &c);
        let base_yield = t.yield_fraction(None);
        assert!((0.0..=1.0).contains(&base_yield));
        for i in 0..t.schemes.len() {
            assert!(t.yield_fraction(Some(i)) >= base_yield);
            assert!((0.0..=1.0).contains(&t.loss_reduction(i)));
        }
    }

    #[test]
    fn full_study_is_self_consistent() {
        let study = full_study(400, 2006);
        assert_eq!(study.seed, 2006);
        assert_eq!(study.table4.len(), 2);
        assert_eq!(study.table5.len(), 2);
        // The strict sweep loses more than the nominal case, which loses
        // more than the relaxed sweep.
        assert!(study.table4[1].base.total() > study.table2.base.total());
        assert!(study.table4[0].base.total() < study.table2.base.total());
        // Re-running reproduces bit-identically.
        assert_eq!(study, full_study(400, 2006));
    }

    #[test]
    fn loss_breakdown_counts_and_totals() {
        let mut b = LossBreakdown::new(4);
        b.count(LossReason::Leakage).unwrap();
        b.count(LossReason::Delay { violating_ways: 1 }).unwrap();
        b.count(LossReason::Delay { violating_ways: 4 }).unwrap();
        assert_eq!(b.leakage, 1);
        assert_eq!(b.delay, vec![1, 0, 0, 1]);
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn loss_breakdown_rejects_out_of_range_reasons() {
        let mut b = LossBreakdown::new(4);
        let err = b
            .count(LossReason::Delay { violating_ways: 5 })
            .unwrap_err();
        assert_eq!(err.violating_ways, 5);
        assert_eq!(err.ways, 4);
        let err0 = b
            .count(LossReason::Delay { violating_ways: 0 })
            .unwrap_err();
        assert_eq!(err0.violating_ways, 0);
        // The rejected counts left the histogram untouched.
        assert_eq!(b.total(), 0);
        assert_eq!(b.delay.len(), 4);
    }
}
