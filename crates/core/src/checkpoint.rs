//! Checkpoint/resume for long population studies.
//!
//! The paper's studies evaluate 2000 chips; a killed run should not have
//! to recompute the chips it already finished. [`run_checkpointed`]
//! writes the completed chip evaluations (and the quarantine ledger) to a
//! plain-text checkpoint file every `every` chips, and a later call with
//! the same configuration and path resumes from the highest completed
//! index.
//!
//! The format stores every `f64` as the 16-hex-digit image of its IEEE
//! bits, so a resumed run's population — and therefore every report
//! rendered from it — is byte-identical to an uninterrupted run's.
//! Chips are computed per-index from the same SplitMix64 stream as
//! [`crate::Population::generate_with`], with the same fault isolation.
//!
//! # Format v2
//!
//! Version 2 (written by everything since the supervised executor landed)
//! extends v1 in two ways, and v1 files still parse:
//!
//! * **Shard records.** `S start len` marks a completed shard and
//!   `D start len attempts error` a degraded one, so a killed *parallel*
//!   run ([`crate::executor::run_checkpointed_workers`]) resumes at shard
//!   granularity without recomputing finished shards. For shard-granular
//!   checkpoints `done` counts the chips covered by recorded shards (not
//!   necessarily a contiguous prefix).
//! * **A CRC32 trailer.** The final line `CRC xxxxxxxx` holds the IEEE
//!   CRC32 of every preceding byte (up to and including the `END` line's
//!   newline); [`parse_checkpoint`] verifies it, so a torn write or
//!   bit-rotted file is rejected as [`StudyError::Corrupt`] instead of
//!   resuming from silently wrong state. The temp file is `sync_all`ed
//!   before the rename, making the write-then-rename durable.

use crate::chip::{evaluate_isolated, ChipSample, Population, PopulationConfig};
use crate::quarantine::QuarantineLedger;
use std::fmt;
use std::path::Path;
use yac_circuit::{CacheCircuitResult, WayCircuitResult};
use yac_variation::{ConfigError, MonteCarlo};

/// Format version tag; bump when the line layout changes.
const MAGIC: &str = "YAC-CHECKPOINT v2";
/// The previous format (no shard records, no CRC trailer); still parsed.
const MAGIC_V1: &str = "YAC-CHECKPOINT v1";

/// An error from the checkpointed-study machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StudyError {
    /// The checkpoint file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
    /// The checkpoint file does not parse (or fails its CRC).
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        what: String,
    },
    /// The checkpoint belongs to a different study (seed, chip count or
    /// shard layout disagree with the configuration).
    Mismatch(String),
    /// The study configuration itself is invalid.
    Config(ConfigError),
    /// A supervised run degraded: some shards exhausted their retry
    /// budget, so the population covers only part of the requested
    /// chips. Raised by entry points that promise a *full* study
    /// ([`crate::analysis::full_study_workers`]); callers that can use a
    /// partial result should call
    /// [`crate::executor::run_supervised`] and inspect
    /// [`crate::executor::StudyOutcome::degraded`] instead.
    Degraded {
        /// Chips missing because their shard degraded.
        missing: usize,
        /// Chips the study was asked for.
        requested: usize,
    },
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Io { path, message } => write!(f, "checkpoint {path}: {message}"),
            StudyError::Corrupt { line, what } => {
                write!(f, "corrupt checkpoint at line {line}: {what}")
            }
            StudyError::Mismatch(what) => write!(f, "checkpoint mismatch: {what}"),
            StudyError::Config(e) => write!(f, "invalid study configuration: {e}"),
            StudyError::Degraded { missing, requested } => write!(
                f,
                "degraded study: {missing} of {requested} chips missing \
                 (shards exhausted their retry budget)"
            ),
        }
    }
}

impl std::error::Error for StudyError {}

/// What became of one shard of a supervised parallel run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardStatus {
    /// Every chip in the shard was computed (classified or quarantined).
    Done,
    /// The shard exhausted its retry budget; its chips are missing.
    Degraded {
        /// Attempts made before giving up.
        attempts: u32,
        /// The last failure (panic message or deadline report).
        error: String,
    },
}

/// One shard's outcome, as persisted in a v2 checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecord {
    /// First chip index of the shard.
    pub start: u64,
    /// Number of chips in the shard.
    pub len: usize,
    /// Whether the shard completed or was recorded degraded.
    pub status: ShardStatus,
}

/// The persisted state of a partially completed study.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// The study seed.
    pub seed: u64,
    /// The total chip count the study was asked for.
    pub chips: usize,
    /// Chips accounted for so far. Chip-granular (serial) checkpoints
    /// have computed the contiguous prefix `0..done`; shard-granular ones
    /// count the chips covered by [`CheckpointState::shards`].
    pub done: usize,
    /// Completed chip evaluations, ascending by index.
    pub completed: Vec<ChipSample>,
    /// Chips quarantined so far.
    pub quarantine: QuarantineLedger,
    /// Shard outcomes of a supervised parallel run, ascending by start
    /// index. Empty for chip-granular (serial) checkpoints.
    pub shards: Vec<ShardRecord>,
}

impl CheckpointState {
    /// A fresh state for a study of `chips` chips under `seed`.
    #[must_use]
    pub fn fresh(seed: u64, chips: usize) -> Self {
        CheckpointState {
            seed,
            chips,
            done: 0,
            completed: Vec::new(),
            quarantine: QuarantineLedger::new(),
            shards: Vec::new(),
        }
    }

    /// Whether every chip has been accounted for.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.done >= self.chips
    }
}

/// IEEE CRC32 (the zlib/PNG polynomial), bitwise. Shared with the sweep
/// journal, whose records carry the same trailer.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64(token: &str, line: usize) -> Result<f64, StudyError> {
    u64::from_str_radix(token, 16)
        .map(f64::from_bits)
        .map_err(|_| StudyError::Corrupt {
            line,
            what: format!("bad f64 bits {token:?}"),
        })
}

fn parse_usize(token: &str, line: usize) -> Result<usize, StudyError> {
    token.parse().map_err(|_| StudyError::Corrupt {
        line,
        what: format!("bad integer {token:?}"),
    })
}

fn push_result(out: &mut String, r: &CacheCircuitResult) {
    use fmt::Write;
    let _ = write!(
        out,
        " {} {} {} {}",
        f64_hex(r.delay),
        f64_hex(r.heat),
        f64_hex(r.leakage),
        r.ways.len()
    );
    for w in &r.ways {
        let _ = write!(
            out,
            " {} {} {} {}",
            f64_hex(w.delay),
            f64_hex(w.peripheral_leakage),
            f64_hex(w.leakage),
            w.region_delay.len()
        );
        for &d in &w.region_delay {
            let _ = write!(out, " {}", f64_hex(d));
        }
        for &l in &w.region_cell_leakage {
            let _ = write!(out, " {}", f64_hex(l));
        }
    }
}

fn take<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    line: usize,
) -> Result<&'a str, StudyError> {
    tokens.next().ok_or(StudyError::Corrupt {
        line,
        what: "truncated record".into(),
    })
}

fn parse_result<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    line: usize,
) -> Result<CacheCircuitResult, StudyError> {
    let delay = parse_f64(take(tokens, line)?, line)?;
    let heat = parse_f64(take(tokens, line)?, line)?;
    let leakage = parse_f64(take(tokens, line)?, line)?;
    let nways = parse_usize(take(tokens, line)?, line)?;
    let mut ways = Vec::with_capacity(nways);
    for _ in 0..nways {
        let way_delay = parse_f64(take(tokens, line)?, line)?;
        let peripheral_leakage = parse_f64(take(tokens, line)?, line)?;
        let way_leakage = parse_f64(take(tokens, line)?, line)?;
        let nregions = parse_usize(take(tokens, line)?, line)?;
        let mut region_delay = Vec::with_capacity(nregions);
        for _ in 0..nregions {
            region_delay.push(parse_f64(take(tokens, line)?, line)?);
        }
        let mut region_cell_leakage = Vec::with_capacity(nregions);
        for _ in 0..nregions {
            region_cell_leakage.push(parse_f64(take(tokens, line)?, line)?);
        }
        ways.push(WayCircuitResult {
            region_delay,
            delay: way_delay,
            region_cell_leakage,
            peripheral_leakage,
            leakage: way_leakage,
        });
    }
    Ok(CacheCircuitResult {
        ways,
        delay,
        heat,
        leakage,
    })
}

/// Serialises a state to the (v2) checkpoint text format.
#[must_use]
pub fn render_checkpoint(state: &CheckpointState) -> String {
    use fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "seed {:016x}", state.seed);
    let _ = writeln!(out, "chips {}", state.chips);
    let _ = writeln!(out, "done {}", state.done);
    for chip in &state.completed {
        let mut line = format!("C {}", chip.index);
        push_result(&mut line, &chip.regular);
        push_result(&mut line, &chip.horizontal);
        let _ = writeln!(out, "{line}");
    }
    for q in state.quarantine.entries() {
        let _ = writeln!(
            out,
            "Q {} {:016x} {}",
            q.index,
            q.seed,
            q.error.replace('\n', " ")
        );
    }
    for s in &state.shards {
        match &s.status {
            ShardStatus::Done => {
                let _ = writeln!(out, "S {} {}", s.start, s.len);
            }
            ShardStatus::Degraded { attempts, error } => {
                let _ = writeln!(
                    out,
                    "D {} {} {} {}",
                    s.start,
                    s.len,
                    attempts,
                    error.replace('\n', " ")
                );
            }
        }
    }
    let _ = writeln!(out, "END");
    let _ = writeln!(out, "CRC {:08x}", crc32(out.as_bytes()));
    out
}

/// Verifies the `CRC xxxxxxxx` trailer of a v2 checkpoint and returns the
/// covered body (everything up to and including the `END` line).
fn split_crc_trailer(text: &str) -> Result<&str, StudyError> {
    let last_line = text.lines().count();
    let corrupt = |what: &str| StudyError::Corrupt {
        line: last_line,
        what: what.to_string(),
    };
    let stripped = text
        .strip_suffix('\n')
        .ok_or_else(|| corrupt("missing trailing newline"))?;
    let (body, trailer) = stripped
        .rsplit_once('\n')
        .ok_or_else(|| corrupt("missing CRC trailer"))?;
    let hex = trailer
        .strip_prefix("CRC ")
        .ok_or_else(|| corrupt("expected CRC trailer"))?;
    let stated = u32::from_str_radix(hex, 16).map_err(|_| corrupt("bad CRC digits"))?;
    let covered = &text[..body.len() + 1];
    let actual = crc32(covered.as_bytes());
    if actual != stated {
        return Err(corrupt(&format!(
            "CRC mismatch: stated {stated:08x}, computed {actual:08x} \
             (torn write or bit rot)"
        )));
    }
    Ok(covered)
}

/// Parses the checkpoint text format back into a state.
///
/// Both the current v2 format (with shard records and a CRC32 trailer)
/// and the legacy v1 format are accepted.
///
/// # Errors
///
/// Returns [`StudyError::Corrupt`] naming the offending line — including
/// a failed CRC check, which rejects torn or bit-rotted v2 files.
pub fn parse_checkpoint(text: &str) -> Result<CheckpointState, StudyError> {
    let magic = text.lines().next().ok_or(StudyError::Corrupt {
        line: 1,
        what: "empty file".to_string(),
    })?;
    match magic {
        MAGIC => parse_body(split_crc_trailer(text)?, 2),
        MAGIC_V1 => parse_body(text, 1),
        _ => Err(StudyError::Corrupt {
            line: 1,
            what: "bad magic".to_string(),
        }),
    }
}

fn parse_body(text: &str, version: u8) -> Result<CheckpointState, StudyError> {
    let mut lines = text.lines().enumerate();
    let corrupt = |line: usize, what: &str| StudyError::Corrupt {
        line,
        what: what.to_string(),
    };
    lines.next(); // The magic line, already verified by the caller.

    let mut header = |name: &str| -> Result<String, StudyError> {
        let (n, l) = lines.next().ok_or_else(|| corrupt(0, "truncated header"))?;
        l.strip_prefix(name)
            .and_then(|v| v.strip_prefix(' '))
            .map(str::to_string)
            .ok_or_else(|| corrupt(n + 1, &format!("expected {name} header")))
    };
    let seed = u64::from_str_radix(&header("seed")?, 16).map_err(|_| corrupt(2, "bad seed"))?;
    let chips = header("chips")?
        .parse()
        .map_err(|_| corrupt(3, "bad chip count"))?;
    let done = header("done")?
        .parse()
        .map_err(|_| corrupt(4, "bad done count"))?;

    let mut state = CheckpointState {
        seed,
        chips,
        done,
        completed: Vec::new(),
        quarantine: QuarantineLedger::new(),
        shards: Vec::new(),
    };
    let mut ended = false;
    for (n, l) in lines {
        let line = n + 1;
        if ended {
            return Err(corrupt(line, "content after END"));
        }
        if l == "END" {
            ended = true;
            continue;
        }
        if let Some(rest) = l.strip_prefix("C ") {
            let mut tokens = rest.split_ascii_whitespace();
            let index = take(&mut tokens, line)?
                .parse()
                .map_err(|_| corrupt(line, "bad chip index"))?;
            let regular = parse_result(&mut tokens, line)?;
            let horizontal = parse_result(&mut tokens, line)?;
            if tokens.next().is_some() {
                return Err(corrupt(line, "trailing tokens on chip record"));
            }
            state.completed.push(ChipSample {
                index,
                regular,
                horizontal,
            });
        } else if let Some(rest) = l.strip_prefix("Q ") {
            let mut tokens = rest.splitn(3, ' ');
            let index = take(&mut tokens, line)?
                .parse()
                .map_err(|_| corrupt(line, "bad quarantine index"))?;
            let q_seed = u64::from_str_radix(take(&mut tokens, line)?, 16)
                .map_err(|_| corrupt(line, "bad quarantine seed"))?;
            let error = take(&mut tokens, line)?.to_string();
            // Unobserved: these chips were counted in `ChipsQuarantined`
            // when first quarantined; re-parsing the checkpoint on resume
            // must not count them again.
            state.quarantine.record_unobserved(index, q_seed, error);
        } else if version >= 2 && l.starts_with("S ") {
            let rest = &l[2..];
            let mut tokens = rest.split_ascii_whitespace();
            let start = take(&mut tokens, line)?
                .parse()
                .map_err(|_| corrupt(line, "bad shard start"))?;
            let len = parse_usize(take(&mut tokens, line)?, line)?;
            if tokens.next().is_some() {
                return Err(corrupt(line, "trailing tokens on shard record"));
            }
            state.shards.push(ShardRecord {
                start,
                len,
                status: ShardStatus::Done,
            });
        } else if version >= 2 && l.starts_with("D ") {
            let rest = &l[2..];
            let mut tokens = rest.splitn(4, ' ');
            let start = take(&mut tokens, line)?
                .parse()
                .map_err(|_| corrupt(line, "bad shard start"))?;
            let len = parse_usize(take(&mut tokens, line)?, line)?;
            let attempts = take(&mut tokens, line)?
                .parse()
                .map_err(|_| corrupt(line, "bad attempt count"))?;
            let error = take(&mut tokens, line)?.to_string();
            state.shards.push(ShardRecord {
                start,
                len,
                status: ShardStatus::Degraded { attempts, error },
            });
        } else {
            return Err(corrupt(line, "unrecognised record"));
        }
    }
    if !ended {
        return Err(corrupt(text.lines().count(), "missing END marker"));
    }
    Ok(state)
}

pub(crate) fn read_state(path: &Path) -> Result<Option<CheckpointState>, StudyError> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_checkpoint(&text).map(Some),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(StudyError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }),
    }
}

/// Syncs `path`'s parent directory, making a just-renamed entry durable
/// (on Unix a rename lives in the directory, which has its own cache).
pub(crate) fn fsync_parent(path: &Path) -> std::io::Result<()> {
    if cfg!(unix) {
        if let Some(parent) = path.parent() {
            let dir = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            std::fs::File::open(dir)?.sync_all()?;
        }
    }
    Ok(())
}

pub(crate) fn write_state(path: &Path, state: &CheckpointState) -> Result<(), StudyError> {
    let io_err = |e: std::io::Error| StudyError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    // Write, sync, rename, then sync the parent directory: a kill
    // mid-write leaves the previous checkpoint intact, the file fsync
    // makes sure the rename cannot publish data still in the page cache,
    // and the directory fsync makes the rename itself survive power loss.
    let tmp = path.with_extension("tmp");
    crate::chaos::intercept_write(
        crate::chaos::IoSite::Checkpoint,
        &tmp,
        render_checkpoint(state).as_bytes(),
        |bytes| {
            use std::io::Write;
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()
        },
    )
    .map_err(io_err)?;
    crate::chaos::intercept_write(crate::chaos::IoSite::CheckpointRename, path, &[], |_| {
        std::fs::rename(&tmp, path)?;
        fsync_parent(path)
    })
    .map_err(io_err)?;
    yac_obs::inc(yac_obs::Metric::CheckpointsWritten);
    yac_obs::trace_instant(
        yac_obs::TraceEventKind::CheckpointWritten,
        yac_obs::TraceCtx::default(),
    );
    Ok(())
}

/// Loads (or initialises) the state for `config` at `path`, verifying it
/// belongs to the same study. Parse and I/O errors are surfaced, never
/// swallowed into a fresh state — a corrupt checkpoint must be dealt
/// with explicitly, not silently recomputed over.
pub(crate) fn load_or_fresh(
    path: &Path,
    config: &PopulationConfig,
) -> Result<CheckpointState, StudyError> {
    match read_state(path)? {
        None => Ok(CheckpointState::fresh(config.seed, config.chips)),
        Some(state) => {
            if state.seed != config.seed {
                return Err(StudyError::Mismatch(format!(
                    "checkpoint seed {:#x} != study seed {:#x}",
                    state.seed, config.seed
                )));
            }
            if state.chips != config.chips {
                return Err(StudyError::Mismatch(format!(
                    "checkpoint is for {} chips, study wants {}",
                    state.chips, config.chips
                )));
            }
            Ok(state)
        }
    }
}

/// Advances `state` by at most `budget` chips, with the same per-chip
/// fault isolation as [`Population::generate_with`].
fn advance(state: &mut CheckpointState, config: &PopulationConfig, mc: &MonteCarlo, budget: usize) {
    let end = state.chips.min(state.done + budget);
    for index in state.done as u64..end as u64 {
        match mc.sample_one_checked(config.seed, index, config.faults.as_ref()) {
            Ok(die) => match evaluate_isolated(config, &die) {
                Ok((regular, horizontal)) => state.completed.push(ChipSample {
                    index,
                    regular,
                    horizontal,
                }),
                Err(error) => state.quarantine.record(index, config.seed, error),
            },
            Err(error) => state
                .quarantine
                .record(index, config.seed, error.to_string()),
        }
    }
    state.done = end;
}

fn into_population(state: CheckpointState, config: &PopulationConfig) -> Population {
    Population::from_parts(
        state.completed,
        state.quarantine,
        *config.regular_model.calibration(),
        state.seed,
    )
}

/// Runs (or resumes) a checkpointed population study to completion,
/// persisting progress to `path` every `every` chips.
///
/// # Errors
///
/// Returns a [`StudyError`] if the checkpoint cannot be read, parsed or
/// written, belongs to a different study, or the variation configuration
/// is invalid ([`StudyError::Config`]).
pub fn run_checkpointed(
    config: &PopulationConfig,
    path: &Path,
    every: usize,
) -> Result<Population, StudyError> {
    run_checkpointed_budget(config, path, every, None)
        .map(|p| p.expect("unbounded run always completes"))
}

/// Like [`run_checkpointed`] but computing at most `max_new_chips` new
/// chips in this call; returns `Ok(None)` if the study is still
/// incomplete afterwards (the checkpoint holds the progress).
///
/// A bounded call is how tests simulate a killed run; driving it with
/// `None` completes the study.
///
/// # Errors
///
/// Returns a [`StudyError`] if the checkpoint cannot be read, parsed or
/// written, belongs to a different study (including a shard-granular
/// checkpoint from a supervised parallel run, which must be resumed with
/// [`crate::executor::run_checkpointed_workers`]), or the variation
/// configuration is invalid ([`StudyError::Config`]).
pub fn run_checkpointed_budget(
    config: &PopulationConfig,
    path: &Path,
    every: usize,
    max_new_chips: Option<usize>,
) -> Result<Option<Population>, StudyError> {
    let every = every.max(1);
    let mc = MonteCarlo::try_new(config.variation).map_err(StudyError::Config)?;
    let mut state = load_or_fresh(path, config)?;
    if !state.shards.is_empty() {
        return Err(StudyError::Mismatch(
            "checkpoint is shard-granular (written by a supervised parallel \
             run); resume it with run_checkpointed_workers"
                .into(),
        ));
    }
    let mut remaining = max_new_chips.unwrap_or(usize::MAX);
    while !state.is_complete() && remaining > 0 {
        let step = every.min(remaining);
        advance(&mut state, config, &mc, step);
        remaining -= step.min(remaining);
        write_state(path, &state)?;
    }
    if state.is_complete() {
        Ok(Some(into_population(state, config)))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::table2;
    use crate::constraints::{ConstraintSpec, YieldConstraints};
    use crate::report::render_loss_table;
    use yac_variation::FaultPlan;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("yac-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn small_config(chips: usize, seed: u64) -> PopulationConfig {
        let mut cfg = PopulationConfig::paper(seed);
        cfg.chips = chips;
        cfg
    }

    #[test]
    fn crc32_matches_the_standard_check_value() {
        // The IEEE CRC32 check value for "123456789" (ITU-T V.42 / zlib).
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checkpoint_text_roundtrips_exactly() {
        let cfg = small_config(6, 11);
        let mc = MonteCarlo::new(cfg.variation);
        let mut state = CheckpointState::fresh(11, 6);
        advance(&mut state, &cfg, &mc, 6);
        state.quarantine.record(99, 11, "synthetic entry".into());
        state.shards.push(ShardRecord {
            start: 0,
            len: 6,
            status: ShardStatus::Done,
        });
        state.shards.push(ShardRecord {
            start: 6,
            len: 6,
            status: ShardStatus::Degraded {
                attempts: 3,
                error: "injected shard fault".into(),
            },
        });
        let text = render_checkpoint(&state);
        let parsed = parse_checkpoint(&text).unwrap();
        assert_eq!(parsed, state);
        // Byte-identical re-render: the format is canonical.
        assert_eq!(render_checkpoint(&parsed), text);
    }

    #[test]
    fn v1_checkpoints_still_parse() {
        let cfg = small_config(4, 11);
        let mc = MonteCarlo::new(cfg.variation);
        let mut state = CheckpointState::fresh(11, 4);
        advance(&mut state, &cfg, &mc, 4);
        // Reconstruct the v1 text: v2 body minus the CRC trailer, with
        // the old magic.
        let v2 = render_checkpoint(&state);
        let body = split_crc_trailer(&v2).unwrap();
        let v1 = body.replacen(MAGIC, MAGIC_V1, 1);
        let parsed = parse_checkpoint(&v1).unwrap();
        assert_eq!(parsed, state);
        // ... but v1 must not smuggle in v2 shard records.
        let with_shard = v1.replace("END\n", "S 0 4\nEND\n");
        assert!(matches!(
            parse_checkpoint(&with_shard),
            Err(StudyError::Corrupt { .. })
        ));
    }

    #[test]
    fn corrupt_checkpoints_are_rejected_with_line_numbers() {
        assert!(matches!(
            parse_checkpoint("not a checkpoint\n"),
            Err(StudyError::Corrupt { line: 1, .. })
        ));
        let good = render_checkpoint(&CheckpointState::fresh(1, 2));
        // Dropping the END line invalidates the CRC.
        let truncated = good.replace("END\n", "");
        assert!(matches!(
            parse_checkpoint(&truncated),
            Err(StudyError::Corrupt { .. })
        ));
        let garbled = good.replace("END", "X 1 2");
        assert!(parse_checkpoint(&garbled).is_err());
        // Chopping off the CRC trailer is detected too.
        let lines: Vec<&str> = good.lines().collect();
        let no_crc = format!("{}\n", lines[..lines.len() - 1].join("\n"));
        assert!(matches!(
            parse_checkpoint(&no_crc),
            Err(StudyError::Corrupt { .. })
        ));
    }

    #[test]
    fn single_bit_rot_fails_the_crc() {
        let cfg = small_config(3, 19);
        let mc = MonteCarlo::new(cfg.variation);
        let mut state = CheckpointState::fresh(19, 3);
        advance(&mut state, &cfg, &mc, 3);
        let good = render_checkpoint(&state);
        assert!(parse_checkpoint(&good).is_ok());
        // Flip one hex digit inside a chip record. The line still parses
        // as a valid f64 image, so only the CRC can catch it.
        let at = good.find("C 0 ").unwrap() + 4;
        let mut rotted = good.clone().into_bytes();
        rotted[at] = if rotted[at] == b'0' { b'1' } else { b'0' };
        let rotted = String::from_utf8(rotted).unwrap();
        assert_ne!(rotted, good);
        let err = parse_checkpoint(&rotted).unwrap_err();
        assert!(
            matches!(&err, StudyError::Corrupt { what, .. } if what.contains("CRC mismatch")),
            "want CRC mismatch, got {err}"
        );
    }

    #[test]
    fn fresh_run_matches_generate_with() {
        let cfg = small_config(40, 5);
        let path = tmp_path("fresh.ckpt");
        let _ = std::fs::remove_file(&path);
        let pop = run_checkpointed(&cfg, &path, 16).unwrap();
        let direct = Population::generate_with(&cfg);
        assert_eq!(pop.chips, direct.chips);
        assert_eq!(pop.quarantine(), direct.quarantine());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn killed_run_resumes_to_byte_identical_report() {
        let plan = FaultPlan::new(0.08, 3).unwrap();
        let mut cfg = small_config(90, 13);
        cfg.faults = Some(plan);
        let path = tmp_path("killed.ckpt");
        let _ = std::fs::remove_file(&path);

        // Uninterrupted reference run (no checkpoint file involved).
        let reference = Population::generate_with(&cfg);

        // "Kill" the study after 35 chips, then resume it.
        let partial = run_checkpointed_budget(&cfg, &path, 10, Some(35)).unwrap();
        assert!(partial.is_none(), "study must not be complete yet");
        let resumed = run_checkpointed(&cfg, &path, 10).unwrap();

        assert_eq!(resumed.chips, reference.chips);
        assert_eq!(resumed.quarantine(), reference.quarantine());
        let constraints = YieldConstraints::derive(&reference, ConstraintSpec::NOMINAL);
        let report_ref = render_loss_table(&table2(&reference, &constraints));
        let report_res = render_loss_table(&table2(&resumed, &constraints));
        assert_eq!(report_ref, report_res, "reports must be byte-identical");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_checkpoint_is_refused() {
        let cfg = small_config(12, 7);
        let path = tmp_path("mismatch.ckpt");
        let _ = std::fs::remove_file(&path);
        let _ = run_checkpointed_budget(&cfg, &path, 4, Some(4)).unwrap();
        let other_seed = small_config(12, 8);
        assert!(matches!(
            run_checkpointed(&other_seed, &path, 4),
            Err(StudyError::Mismatch(_))
        ));
        let other_count = small_config(13, 7);
        assert!(matches!(
            run_checkpointed(&other_count, &path, 4),
            Err(StudyError::Mismatch(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn invalid_variation_config_is_an_error_not_a_panic() {
        let mut cfg = small_config(4, 7);
        cfg.variation.ways = 0;
        let path = tmp_path("invalid-config.ckpt");
        let _ = std::fs::remove_file(&path);
        let err = run_checkpointed(&cfg, &path, 4).unwrap_err();
        assert!(matches!(err, StudyError::Config(_)), "got {err}");
        assert!(!path.exists(), "no checkpoint may be written");
    }
}
