//! Checkpoint/resume for long population studies.
//!
//! The paper's studies evaluate 2000 chips; a killed run should not have
//! to recompute the chips it already finished. [`run_checkpointed`]
//! writes the completed chip evaluations (and the quarantine ledger) to a
//! plain-text checkpoint file every `every` chips, and a later call with
//! the same configuration and path resumes from the highest completed
//! index.
//!
//! The format stores every `f64` as the 16-hex-digit image of its IEEE
//! bits, so a resumed run's population — and therefore every report
//! rendered from it — is byte-identical to an uninterrupted run's.
//! Chips are computed per-index from the same SplitMix64 stream as
//! [`crate::Population::generate_with`], with the same fault isolation.

use crate::chip::{evaluate_isolated, ChipSample, Population, PopulationConfig};
use crate::quarantine::QuarantineLedger;
use std::fmt;
use std::path::Path;
use yac_circuit::{CacheCircuitResult, WayCircuitResult};
use yac_variation::MonteCarlo;

/// Format version tag; bump when the line layout changes.
const MAGIC: &str = "YAC-CHECKPOINT v1";

/// An error from the checkpointed-study machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StudyError {
    /// The checkpoint file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
    /// The checkpoint file does not parse.
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        what: String,
    },
    /// The checkpoint belongs to a different study (seed or chip count
    /// disagree with the configuration).
    Mismatch(String),
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Io { path, message } => write!(f, "checkpoint {path}: {message}"),
            StudyError::Corrupt { line, what } => {
                write!(f, "corrupt checkpoint at line {line}: {what}")
            }
            StudyError::Mismatch(what) => write!(f, "checkpoint mismatch: {what}"),
        }
    }
}

impl std::error::Error for StudyError {}

/// The persisted state of a partially completed study.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// The study seed.
    pub seed: u64,
    /// The total chip count the study was asked for.
    pub chips: usize,
    /// Chip indices `0..done` have been computed (classified or
    /// quarantined).
    pub done: usize,
    /// Completed chip evaluations, ascending by index.
    pub completed: Vec<ChipSample>,
    /// Chips quarantined so far.
    pub quarantine: QuarantineLedger,
}

impl CheckpointState {
    /// A fresh state for a study of `chips` chips under `seed`.
    #[must_use]
    pub fn fresh(seed: u64, chips: usize) -> Self {
        CheckpointState {
            seed,
            chips,
            done: 0,
            completed: Vec::new(),
            quarantine: QuarantineLedger::new(),
        }
    }

    /// Whether every chip has been computed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.done >= self.chips
    }
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64(token: &str, line: usize) -> Result<f64, StudyError> {
    u64::from_str_radix(token, 16)
        .map(f64::from_bits)
        .map_err(|_| StudyError::Corrupt {
            line,
            what: format!("bad f64 bits {token:?}"),
        })
}

fn parse_usize(token: &str, line: usize) -> Result<usize, StudyError> {
    token.parse().map_err(|_| StudyError::Corrupt {
        line,
        what: format!("bad integer {token:?}"),
    })
}

fn push_result(out: &mut String, r: &CacheCircuitResult) {
    use fmt::Write;
    let _ = write!(
        out,
        " {} {} {} {}",
        f64_hex(r.delay),
        f64_hex(r.heat),
        f64_hex(r.leakage),
        r.ways.len()
    );
    for w in &r.ways {
        let _ = write!(
            out,
            " {} {} {} {}",
            f64_hex(w.delay),
            f64_hex(w.peripheral_leakage),
            f64_hex(w.leakage),
            w.region_delay.len()
        );
        for &d in &w.region_delay {
            let _ = write!(out, " {}", f64_hex(d));
        }
        for &l in &w.region_cell_leakage {
            let _ = write!(out, " {}", f64_hex(l));
        }
    }
}

fn take<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    line: usize,
) -> Result<&'a str, StudyError> {
    tokens.next().ok_or(StudyError::Corrupt {
        line,
        what: "truncated record".into(),
    })
}

fn parse_result<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    line: usize,
) -> Result<CacheCircuitResult, StudyError> {
    let delay = parse_f64(take(tokens, line)?, line)?;
    let heat = parse_f64(take(tokens, line)?, line)?;
    let leakage = parse_f64(take(tokens, line)?, line)?;
    let nways = parse_usize(take(tokens, line)?, line)?;
    let mut ways = Vec::with_capacity(nways);
    for _ in 0..nways {
        let way_delay = parse_f64(take(tokens, line)?, line)?;
        let peripheral_leakage = parse_f64(take(tokens, line)?, line)?;
        let way_leakage = parse_f64(take(tokens, line)?, line)?;
        let nregions = parse_usize(take(tokens, line)?, line)?;
        let mut region_delay = Vec::with_capacity(nregions);
        for _ in 0..nregions {
            region_delay.push(parse_f64(take(tokens, line)?, line)?);
        }
        let mut region_cell_leakage = Vec::with_capacity(nregions);
        for _ in 0..nregions {
            region_cell_leakage.push(parse_f64(take(tokens, line)?, line)?);
        }
        ways.push(WayCircuitResult {
            region_delay,
            delay: way_delay,
            region_cell_leakage,
            peripheral_leakage,
            leakage: way_leakage,
        });
    }
    Ok(CacheCircuitResult {
        ways,
        delay,
        heat,
        leakage,
    })
}

/// Serialises a state to the checkpoint text format.
#[must_use]
pub fn render_checkpoint(state: &CheckpointState) -> String {
    use fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "seed {:016x}", state.seed);
    let _ = writeln!(out, "chips {}", state.chips);
    let _ = writeln!(out, "done {}", state.done);
    for chip in &state.completed {
        let mut line = format!("C {}", chip.index);
        push_result(&mut line, &chip.regular);
        push_result(&mut line, &chip.horizontal);
        let _ = writeln!(out, "{line}");
    }
    for q in state.quarantine.entries() {
        let _ = writeln!(
            out,
            "Q {} {:016x} {}",
            q.index,
            q.seed,
            q.error.replace('\n', " ")
        );
    }
    let _ = writeln!(out, "END");
    out
}

/// Parses the checkpoint text format back into a state.
///
/// # Errors
///
/// Returns [`StudyError::Corrupt`] naming the offending line.
pub fn parse_checkpoint(text: &str) -> Result<CheckpointState, StudyError> {
    let mut lines = text.lines().enumerate();
    let corrupt = |line: usize, what: &str| StudyError::Corrupt {
        line,
        what: what.to_string(),
    };
    let (_, magic) = lines.next().ok_or_else(|| corrupt(1, "empty file"))?;
    if magic != MAGIC {
        return Err(corrupt(1, "bad magic"));
    }

    let mut header = |name: &str| -> Result<String, StudyError> {
        let (n, l) = lines.next().ok_or_else(|| corrupt(0, "truncated header"))?;
        l.strip_prefix(name)
            .and_then(|v| v.strip_prefix(' '))
            .map(str::to_string)
            .ok_or_else(|| corrupt(n + 1, &format!("expected {name} header")))
    };
    let seed = u64::from_str_radix(&header("seed")?, 16).map_err(|_| corrupt(2, "bad seed"))?;
    let chips = header("chips")?
        .parse()
        .map_err(|_| corrupt(3, "bad chip count"))?;
    let done = header("done")?
        .parse()
        .map_err(|_| corrupt(4, "bad done count"))?;

    let mut state = CheckpointState {
        seed,
        chips,
        done,
        completed: Vec::new(),
        quarantine: QuarantineLedger::new(),
    };
    let mut ended = false;
    for (n, l) in lines {
        let line = n + 1;
        if ended {
            return Err(corrupt(line, "content after END"));
        }
        if l == "END" {
            ended = true;
            continue;
        }
        if let Some(rest) = l.strip_prefix("C ") {
            let mut tokens = rest.split_ascii_whitespace();
            let index = take(&mut tokens, line)?
                .parse()
                .map_err(|_| corrupt(line, "bad chip index"))?;
            let regular = parse_result(&mut tokens, line)?;
            let horizontal = parse_result(&mut tokens, line)?;
            if tokens.next().is_some() {
                return Err(corrupt(line, "trailing tokens on chip record"));
            }
            state.completed.push(ChipSample {
                index,
                regular,
                horizontal,
            });
        } else if let Some(rest) = l.strip_prefix("Q ") {
            let mut tokens = rest.splitn(3, ' ');
            let index = take(&mut tokens, line)?
                .parse()
                .map_err(|_| corrupt(line, "bad quarantine index"))?;
            let q_seed = u64::from_str_radix(take(&mut tokens, line)?, 16)
                .map_err(|_| corrupt(line, "bad quarantine seed"))?;
            let error = take(&mut tokens, line)?.to_string();
            state.quarantine.record(index, q_seed, error);
        } else {
            return Err(corrupt(line, "unrecognised record"));
        }
    }
    if !ended {
        return Err(corrupt(text.lines().count(), "missing END marker"));
    }
    Ok(state)
}

fn read_state(path: &Path) -> Result<Option<CheckpointState>, StudyError> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_checkpoint(&text).map(Some),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(StudyError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }),
    }
}

fn write_state(path: &Path, state: &CheckpointState) -> Result<(), StudyError> {
    let io_err = |e: std::io::Error| StudyError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    // Write-then-rename so a kill mid-write leaves the previous
    // checkpoint intact rather than a truncated file.
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, render_checkpoint(state)).map_err(io_err)?;
    std::fs::rename(&tmp, path).map_err(io_err)?;
    yac_obs::inc(yac_obs::Metric::CheckpointsWritten);
    Ok(())
}

/// Loads (or initialises) the state for `config` at `path`, verifying it
/// belongs to the same study.
fn load_or_fresh(path: &Path, config: &PopulationConfig) -> Result<CheckpointState, StudyError> {
    match read_state(path)? {
        None => Ok(CheckpointState::fresh(config.seed, config.chips)),
        Some(state) => {
            if state.seed != config.seed {
                return Err(StudyError::Mismatch(format!(
                    "checkpoint seed {:#x} != study seed {:#x}",
                    state.seed, config.seed
                )));
            }
            if state.chips != config.chips {
                return Err(StudyError::Mismatch(format!(
                    "checkpoint is for {} chips, study wants {}",
                    state.chips, config.chips
                )));
            }
            Ok(state)
        }
    }
}

/// Advances `state` by at most `budget` chips, with the same per-chip
/// fault isolation as [`Population::generate_with`].
fn advance(state: &mut CheckpointState, config: &PopulationConfig, mc: &MonteCarlo, budget: usize) {
    let end = state.chips.min(state.done + budget);
    for index in state.done as u64..end as u64 {
        match mc.sample_one_checked(config.seed, index, config.faults.as_ref()) {
            Ok(die) => match evaluate_isolated(config, &die) {
                Ok((regular, horizontal)) => state.completed.push(ChipSample {
                    index,
                    regular,
                    horizontal,
                }),
                Err(error) => state.quarantine.record(index, config.seed, error),
            },
            Err(error) => state
                .quarantine
                .record(index, config.seed, error.to_string()),
        }
    }
    state.done = end;
}

fn into_population(state: CheckpointState, config: &PopulationConfig) -> Population {
    Population::from_parts(
        state.completed,
        state.quarantine,
        *config.regular_model.calibration(),
        state.seed,
    )
}

/// Runs (or resumes) a checkpointed population study to completion,
/// persisting progress to `path` every `every` chips.
///
/// # Errors
///
/// Returns a [`StudyError`] if the checkpoint cannot be read, parsed or
/// written, or belongs to a different study.
///
/// # Panics
///
/// Panics if the variation configuration is invalid.
pub fn run_checkpointed(
    config: &PopulationConfig,
    path: &Path,
    every: usize,
) -> Result<Population, StudyError> {
    run_checkpointed_budget(config, path, every, None)
        .map(|p| p.expect("unbounded run always completes"))
}

/// Like [`run_checkpointed`] but computing at most `max_new_chips` new
/// chips in this call; returns `Ok(None)` if the study is still
/// incomplete afterwards (the checkpoint holds the progress).
///
/// A bounded call is how tests simulate a killed run; driving it with
/// `None` completes the study.
///
/// # Errors
///
/// Returns a [`StudyError`] if the checkpoint cannot be read, parsed or
/// written, or belongs to a different study.
///
/// # Panics
///
/// Panics if the variation configuration is invalid.
pub fn run_checkpointed_budget(
    config: &PopulationConfig,
    path: &Path,
    every: usize,
    max_new_chips: Option<usize>,
) -> Result<Option<Population>, StudyError> {
    let every = every.max(1);
    let mc = MonteCarlo::new(config.variation);
    let mut state = load_or_fresh(path, config)?;
    let mut remaining = max_new_chips.unwrap_or(usize::MAX);
    while !state.is_complete() && remaining > 0 {
        let step = every.min(remaining);
        advance(&mut state, config, &mc, step);
        remaining -= step.min(remaining);
        write_state(path, &state)?;
    }
    if state.is_complete() {
        Ok(Some(into_population(state, config)))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::table2;
    use crate::constraints::{ConstraintSpec, YieldConstraints};
    use crate::report::render_loss_table;
    use yac_variation::FaultPlan;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("yac-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn small_config(chips: usize, seed: u64) -> PopulationConfig {
        let mut cfg = PopulationConfig::paper(seed);
        cfg.chips = chips;
        cfg
    }

    #[test]
    fn checkpoint_text_roundtrips_exactly() {
        let cfg = small_config(6, 11);
        let mc = MonteCarlo::new(cfg.variation);
        let mut state = CheckpointState::fresh(11, 6);
        advance(&mut state, &cfg, &mc, 6);
        state.quarantine.record(99, 11, "synthetic entry".into());
        let text = render_checkpoint(&state);
        let parsed = parse_checkpoint(&text).unwrap();
        assert_eq!(parsed, state);
        // Byte-identical re-render: the format is canonical.
        assert_eq!(render_checkpoint(&parsed), text);
    }

    #[test]
    fn corrupt_checkpoints_are_rejected_with_line_numbers() {
        assert!(matches!(
            parse_checkpoint("not a checkpoint\n"),
            Err(StudyError::Corrupt { line: 1, .. })
        ));
        let good = render_checkpoint(&CheckpointState::fresh(1, 2));
        let truncated = good.replace("END\n", "");
        assert!(matches!(
            parse_checkpoint(&truncated),
            Err(StudyError::Corrupt { .. })
        ));
        let garbled = good.replace("END", "X 1 2");
        assert!(parse_checkpoint(&garbled).is_err());
    }

    #[test]
    fn fresh_run_matches_generate_with() {
        let cfg = small_config(40, 5);
        let path = tmp_path("fresh.ckpt");
        let _ = std::fs::remove_file(&path);
        let pop = run_checkpointed(&cfg, &path, 16).unwrap();
        let direct = Population::generate_with(&cfg);
        assert_eq!(pop.chips, direct.chips);
        assert_eq!(pop.quarantine(), direct.quarantine());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn killed_run_resumes_to_byte_identical_report() {
        let plan = FaultPlan::new(0.08, 3).unwrap();
        let mut cfg = small_config(90, 13);
        cfg.faults = Some(plan);
        let path = tmp_path("killed.ckpt");
        let _ = std::fs::remove_file(&path);

        // Uninterrupted reference run (no checkpoint file involved).
        let reference = Population::generate_with(&cfg);

        // "Kill" the study after 35 chips, then resume it.
        let partial = run_checkpointed_budget(&cfg, &path, 10, Some(35)).unwrap();
        assert!(partial.is_none(), "study must not be complete yet");
        let resumed = run_checkpointed(&cfg, &path, 10).unwrap();

        assert_eq!(resumed.chips, reference.chips);
        assert_eq!(resumed.quarantine(), reference.quarantine());
        let constraints = YieldConstraints::derive(&reference, ConstraintSpec::NOMINAL);
        let report_ref = render_loss_table(&table2(&reference, &constraints));
        let report_res = render_loss_table(&table2(&resumed, &constraints));
        assert_eq!(report_ref, report_res, "reports must be byte-identical");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_checkpoint_is_refused() {
        let cfg = small_config(12, 7);
        let path = tmp_path("mismatch.ckpt");
        let _ = std::fs::remove_file(&path);
        let _ = run_checkpointed_budget(&cfg, &path, 4, Some(4)).unwrap();
        let other_seed = small_config(12, 8);
        assert!(matches!(
            run_checkpointed(&other_seed, &path, 4),
            Err(StudyError::Mismatch(_))
        ));
        let other_count = small_config(13, 7);
        assert!(matches!(
            run_checkpointed(&other_count, &path, 4),
            Err(StudyError::Mismatch(_))
        ));
        let _ = std::fs::remove_file(&path);
    }
}
