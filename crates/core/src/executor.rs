//! The supervised parallel study executor.
//!
//! Splits a population study into contiguous chip shards and runs them on
//! a scoped worker pool under a supervisor: each shard attempt runs
//! behind `catch_unwind` with a bounded retry budget and exponential
//! backoff, attempts that exceed the per-shard time budget are cancelled
//! (the worker checks its own elapsed time between chips, so even a
//! deadline shorter than one chip is enforced deterministically; a
//! watchdog thread additionally raises a generation-tagged cancel
//! request, also polled between chips), and a shard that exhausts its
//! retries is recorded as
//! **degraded** rather than aborting the study. The run still completes,
//! returning a [`StudyOutcome`] that carries the merged
//! [`Population`], the degraded-shard map, and a yield confidence
//! interval widened to account for the missing chips (see
//! [`crate::confidence::yield_interval`]) instead of silently shrinking
//! the denominator.
//!
//! # Determinism
//!
//! Every chip is sampled from its own counter-based SplitMix64 stream
//! (`mix_seed(seed, index)` in `yac_variation`), so a chip's delay and
//! leakage depend only on `(seed, index)` — never on which worker
//! computed it, in what order, or after how many retries. Workers return
//! whole shards; the supervisor splices each shard into the merged chip
//! vector at its sorted position and the quarantine ledger keeps itself
//! ordered by index, so the merged population is **bit-identical to the
//! serial path for any worker count**, including runs with injected
//! faults and retries.
//!
//! # Shard-granular checkpointing
//!
//! [`run_checkpointed_workers`] persists progress in the v2
//! `YAC-CHECKPOINT` format after every completed shard batch: finished
//! shards are recorded as `S` lines and degraded ones as `D` lines, so a
//! killed parallel run resumes without recomputing finished shards and
//! its final population round-trips bit-exactly.

use crate::checkpoint::{
    load_or_fresh, write_state, CheckpointState, ShardRecord, ShardStatus, StudyError,
};
use crate::chip::{evaluate_isolated, ChipSample, Population, PopulationConfig};
use crate::classify::classify;
use crate::confidence::{yield_interval, YieldInterval};
use crate::constraints::{ConstraintSpec, YieldConstraints};
use crate::health::HeartbeatLease;
use crate::quarantine::QuarantineLedger;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use yac_obs::{Metric, Phase, TraceCtx, TraceEventKind};
use yac_variation::{FaultPlan, InvalidRateError, MonteCarlo};

/// One contiguous slice of the Monte Carlo chip stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Position of the shard in the study's shard list.
    pub index: usize,
    /// First chip index of the shard.
    pub start: u64,
    /// Number of chips in the shard.
    pub len: usize,
}

/// Splits a `chips`-chip study into contiguous shards of at most
/// `shard_chips` chips each (the last shard may be shorter).
#[must_use]
pub fn shards_for(chips: usize, shard_chips: usize) -> Vec<ShardSpec> {
    let shard_chips = shard_chips.max(1);
    (0..chips)
        .step_by(shard_chips)
        .enumerate()
        .map(|(index, start)| ShardSpec {
            index,
            start: start as u64,
            len: shard_chips.min(chips - start),
        })
        .collect()
}

/// Deterministic shard-level fault injection: makes selected shards panic
/// at the start of their first `failing_attempts` attempts, to exercise
/// the supervisor's retry and degraded paths in tests and examples.
///
/// Selection reuses [`FaultPlan`]'s hash draw, keyed by the study seed
/// and the *shard* index, so the same shards fail on every run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardFaultPlan {
    plan: FaultPlan,
    failing_attempts: u32,
}

impl ShardFaultPlan {
    /// A plan failing roughly `rate` of all shards for their first
    /// `failing_attempts` attempts.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRateError`] unless `rate` is finite and in
    /// `[0, 1]`.
    pub fn new(rate: f64, salt: u64, failing_attempts: u32) -> Result<Self, InvalidRateError> {
        Ok(ShardFaultPlan {
            plan: FaultPlan::new(rate, salt)?,
            failing_attempts,
        })
    }

    /// A plan failing *every* shard for its first `failing_attempts`
    /// attempts (with `u32::MAX`, every attempt — the degraded path).
    #[must_use]
    pub fn always(failing_attempts: u32) -> Self {
        ShardFaultPlan {
            plan: FaultPlan::new(1.0, 0).expect("1.0 is a valid rate"),
            failing_attempts,
        }
    }

    fn fails(&self, seed: u64, shard_index: usize, attempt: u32) -> bool {
        attempt < self.failing_attempts && self.plan.fault_for(seed, shard_index as u64).is_some()
    }
}

/// Tuning for the supervised executor.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Worker threads. Clamped to at least 1 and at most the shard count.
    pub workers: usize,
    /// Chips per shard (the retry/checkpoint granule).
    pub shard_chips: usize,
    /// Retries granted to a failing shard before it is recorded degraded
    /// (so a shard runs at most `max_retries + 1` attempts).
    pub max_retries: u32,
    /// Base backoff slept before retry `n` is `backoff * 2^n`.
    pub backoff: Duration,
    /// Per-shard-attempt time budget enforced by the watchdog; `None`
    /// disables the watchdog.
    pub shard_deadline: Option<Duration>,
    /// Optional deterministic shard-level fault injection.
    pub shard_faults: Option<ShardFaultPlan>,
}

impl ExecutorConfig {
    /// A sensible configuration for `workers` threads: 64-chip shards,
    /// two retries, 1 ms base backoff, no deadline, no fault injection.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        ExecutorConfig {
            workers: workers.max(1),
            shard_chips: 64,
            max_retries: 2,
            backoff: Duration::from_millis(1),
            shard_deadline: None,
            shard_faults: None,
        }
    }
}

impl Default for ExecutorConfig {
    /// [`ExecutorConfig::with_workers`] at the machine's available
    /// parallelism.
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::with_workers(workers)
    }
}

/// A shard that exhausted its retry budget; its chips are absent from the
/// merged population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedShard {
    /// First chip index of the shard.
    pub start: u64,
    /// Number of missing chips.
    pub len: usize,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The last failure (panic message or deadline report).
    pub error: String,
}

/// The result of a supervised study: everything the run could compute,
/// plus an honest account of what it could not.
#[derive(Debug, Clone)]
pub struct StudyOutcome {
    /// The merged population — bit-identical to a serial run when no
    /// shard degraded, and to the serial run restricted to the surviving
    /// shards otherwise.
    pub population: Population,
    /// Shards that exhausted their retry budget, ascending by start.
    pub degraded: Vec<DegradedShard>,
    /// The chip count the study was asked for.
    pub requested_chips: usize,
    /// Base-case parametric yield under nominal constraints, with the
    /// interval widened to cover every chip lost to degraded shards.
    pub yield_interval: YieldInterval,
}

impl StudyOutcome {
    /// Chips missing because their shard degraded.
    #[must_use]
    pub fn missing_chips(&self) -> usize {
        self.degraded.iter().map(|d| d.len).sum()
    }

    /// Whether any shard was recorded degraded.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }
}

/// What one shard reported back to the supervisor.
pub(crate) enum ShardMsg {
    Done {
        spec: ShardSpec,
        chips: Vec<ChipSample>,
        quarantine: QuarantineLedger,
    },
    Degraded {
        spec: ShardSpec,
        attempts: u32,
        error: String,
    },
}

/// Per-worker state the deadline watchdog inspects.
///
/// `started` holds the current attempt's *tag* — the worker's attempt
/// generation packed with the attempt's start time (see [`attempt_tag`])
/// — or 0 when the worker is idle. To cancel, the watchdog stores the
/// exact tag it observed into `cancel`, and the shard loop only honours
/// a cancel whose tag matches its own attempt. A sweep that read attempt
/// N's tag can therefore never cancel attempt N+1: the generations
/// differ, so the stale store falls on deaf ears instead of spuriously
/// burning a retry.
#[derive(Default)]
struct WorkerWatch {
    started: AtomicU64,
    cancel: AtomicU64,
}

/// One worker thread's fixed identity in the pool: its index (trace
/// context and track label), its watchdog mailbox, and the pool epoch
/// its attempt tags are measured from.
#[derive(Clone, Copy)]
struct WorkerLane<'a> {
    worker: u32,
    watch: &'a WorkerWatch,
    epoch: Instant,
}

/// Low bits of an attempt tag carrying the start time (nanos since the
/// pool epoch, plus 1 so the packed value is never 0). 2^48 ns ≈ 78
/// hours; a run longer than that can at worst trigger one spurious
/// watchdog cancel, which costs a retry, never correctness.
const TAG_NANOS_BITS: u32 = 48;
const TAG_NANOS_MASK: u64 = (1 << TAG_NANOS_BITS) - 1;

/// Packs a worker-local attempt generation (high 16 bits) with the
/// attempt's start nanos (low 48 bits, offset by 1) into a nonzero tag.
fn attempt_tag(generation: u64, nanos_since_epoch: u64) -> u64 {
    (generation << TAG_NANOS_BITS) | ((nanos_since_epoch + 1) & TAG_NANOS_MASK).max(1)
}

/// The start time a tag was packed from (nanos since the pool epoch).
fn tag_started_nanos(tag: u64) -> u64 {
    (tag & TAG_NANOS_MASK) - 1
}

/// Why a shard attempt stopped early.
enum ShardAbort {
    Cancelled,
}

/// One attempt's cancellation state: the worker's watch, the attempt's
/// tag (so only a cancel aimed at *this* attempt stops it), its start
/// time (so the deadline is enforced against the attempt's own clock),
/// an optional external abort flag (the sweep service's per-query
/// cancel, raised when a client disconnects) and an optional heartbeat
/// lease (the stall sentinel's cooperative cancel, raised when the lane
/// publishes no progress for a full budget).
struct AttemptGuard<'a> {
    watch: &'a WorkerWatch,
    tag: u64,
    t0: Instant,
    abort: Option<&'a AtomicBool>,
    lease: Option<&'a HeartbeatLease<'a>>,
}

impl AttemptGuard<'_> {
    fn cancelled(&self, deadline: Option<Duration>) -> bool {
        self.watch.cancel.load(Ordering::Relaxed) == self.tag
            || deadline.is_some_and(|d| self.t0.elapsed() > d)
            || self.abort.is_some_and(|a| a.load(Ordering::Relaxed))
            || self.lease.is_some_and(HeartbeatLease::is_cancelled)
    }

    /// Publishes one unit of liveness progress (a no-op without a lease).
    fn beat(&self) {
        if let Some(lease) = self.lease {
            lease.beat();
        }
    }
}

struct ShardPartial {
    chips: Vec<ChipSample>,
    quarantine: QuarantineLedger,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// One attempt at one shard: evaluates every chip of the shard from its
/// per-chip stream, exactly as the serial paths do.
///
/// The deadline is enforced *here*, between chips, against the attempt's
/// own clock — not only by the watchdog's periodic sweep — so even a
/// deadline smaller than the watchdog tick (or than one chip) cancels
/// deterministically. The watchdog's tag-matched cancel request is
/// honoured as well, as a second trigger for the same cooperative stop.
///
/// Quarantined chips are recorded *unobserved* (no `ChipsQuarantined`
/// increment): this attempt may yet be cancelled or superseded by a
/// retry, so the supervisor counts the metric only when it accepts the
/// shard's result.
fn run_shard_once(
    mc: &MonteCarlo,
    config: &PopulationConfig,
    exec: &ExecutorConfig,
    spec: ShardSpec,
    attempt: u32,
    guard: &AttemptGuard<'_>,
) -> Result<ShardPartial, ShardAbort> {
    if let Some(faults) = &exec.shard_faults {
        if faults.fails(config.seed, spec.index, attempt) {
            panic!(
                "injected shard fault (shard {}, attempt {attempt})",
                spec.index
            );
        }
    }
    if crate::chaos::stall_ticket(spec.index as u64) {
        // Injected hang: hold the shard without a single heartbeat until
        // some cancel source (sentinel lease cancel, query abort, shard
        // deadline or watchdog tag) releases it — this is how the seeded
        // tests drive every stall-recovery path.
        while !guard.cancelled(exec.shard_deadline) {
            std::thread::sleep(Duration::from_micros(200));
        }
        return Err(ShardAbort::Cancelled);
    }
    let mut chips = Vec::with_capacity(spec.len);
    let mut quarantine = QuarantineLedger::new();
    for index in spec.start..spec.start + spec.len as u64 {
        if guard.cancelled(exec.shard_deadline) {
            return Err(ShardAbort::Cancelled);
        }
        guard.beat();
        match mc.sample_one_checked(config.seed, index, config.faults.as_ref()) {
            Ok(die) => match evaluate_isolated(config, &die) {
                Ok((regular, horizontal)) => chips.push(ChipSample {
                    index,
                    regular,
                    horizontal,
                }),
                Err(error) => quarantine.record_unobserved(index, config.seed, error),
            },
            Err(error) => quarantine.record_unobserved(index, config.seed, error.to_string()),
        }
    }
    Ok(ShardPartial { chips, quarantine })
}

/// Runs one shard under supervision: retry on panic or timeout with
/// exponential backoff, degrade after the budget is spent.
///
/// Every lifecycle transition is traced (dispatch, per-attempt exec
/// span, retry, timeout-cancel, completion, degrade) with the worker
/// index, shard index and attempt generation as context, so a trace
/// export shows exactly how each shard travelled through the
/// supervisor.
fn run_shard_supervised(
    mc: &MonteCarlo,
    config: &PopulationConfig,
    exec: &ExecutorConfig,
    spec: ShardSpec,
    lane: &WorkerLane<'_>,
    generation: &mut u64,
) -> ShardMsg {
    let WorkerLane {
        worker,
        watch,
        epoch,
    } = *lane;
    let mut attempt: u32 = 0;
    let ctx = |attempt: u32| TraceCtx::shard(worker, spec.index as u32, attempt);
    yac_obs::trace_instant(TraceEventKind::ShardDispatched, ctx(0));
    loop {
        // A fresh generation per attempt means a stale watchdog cancel
        // (tagged with an earlier attempt) can never match this one, so
        // `cancel` needs no clearing — and no clear/store race exists.
        *generation += 1;
        let tag = attempt_tag(*generation, epoch.elapsed().as_nanos() as u64);
        watch.started.store(tag, Ordering::Release);
        let guard = AttemptGuard {
            watch,
            tag,
            t0: Instant::now(),
            abort: None,
            lease: None,
        };
        let exec_span = yac_obs::phase_ctx(Phase::ShardExec, ctx(attempt));
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_shard_once(mc, config, exec, spec, attempt, &guard)
        }));
        watch.started.store(0, Ordering::Release);
        drop(exec_span);

        let error = match result {
            Ok(Ok(partial)) => {
                yac_obs::inc(Metric::ShardsCompleted);
                yac_obs::trace_instant(TraceEventKind::ShardCompleted, ctx(attempt));
                return ShardMsg::Done {
                    spec,
                    chips: partial.chips,
                    quarantine: partial.quarantine,
                };
            }
            Ok(Err(ShardAbort::Cancelled)) => {
                yac_obs::inc(Metric::ShardTimeouts);
                yac_obs::trace_instant(TraceEventKind::ShardTimedOut, ctx(attempt));
                format!(
                    "shard {} (chips {}..{}) exceeded its deadline on attempt {attempt}",
                    spec.index,
                    spec.start,
                    spec.start + spec.len as u64
                )
            }
            Err(payload) => format!(
                "shard {} panicked: {}",
                spec.index,
                panic_message(&*payload)
            ),
        };
        if attempt >= exec.max_retries {
            yac_obs::inc(Metric::DegradedShards);
            yac_obs::trace_instant(TraceEventKind::ShardDegraded, ctx(attempt));
            return ShardMsg::Degraded {
                spec,
                attempts: attempt + 1,
                error,
            };
        }
        yac_obs::inc(Metric::ShardRetries);
        yac_obs::trace_instant(TraceEventKind::ShardRetried, ctx(attempt));
        let backoff = exec.backoff.saturating_mul(1u32 << attempt.min(16));
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        attempt += 1;
    }
}

/// Runs one shard under full supervision (retry, backoff, deadline,
/// degrade) on a work-stealing service worker — the sweep service's
/// counterpart of [`run_shard_supervised`].
///
/// Differences from the batch path: the deadline is enforced purely by
/// the worker's own between-chip clock (the service runs no watchdog
/// thread), and two cancel sources stop the shard *without* burning
/// retries, returning `None`: `abort` — the query's cancel flag, raised
/// when the client disconnects (the supervisor discards the query) —
/// and `lease` — the stall sentinel's cooperative cancel, raised when
/// this lane stops heartbeating (the shard has been reassigned to a
/// fresh worker; this attempt must neither retry nor degrade).
pub(crate) fn run_shard_stealing(
    mc: &MonteCarlo,
    config: &PopulationConfig,
    exec: &ExecutorConfig,
    spec: ShardSpec,
    worker: u32,
    abort: &AtomicBool,
    lease: Option<&HeartbeatLease<'_>>,
) -> Option<ShardMsg> {
    let watch = WorkerWatch::default();
    let mut attempt: u32 = 0;
    let ctx = |attempt: u32| TraceCtx::shard(worker, spec.index as u32, attempt);
    yac_obs::trace_instant(TraceEventKind::ShardDispatched, ctx(0));
    loop {
        if abort.load(Ordering::Relaxed) {
            return None;
        }
        let guard = AttemptGuard {
            watch: &watch,
            tag: u64::MAX, // No watchdog: the tag can never be matched.
            t0: Instant::now(),
            abort: Some(abort),
            lease,
        };
        let exec_span = yac_obs::phase_ctx(Phase::ShardExec, ctx(attempt));
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_shard_once(mc, config, exec, spec, attempt, &guard)
        }));
        drop(exec_span);

        let error = match result {
            Ok(Ok(partial)) => {
                yac_obs::inc(Metric::ShardsCompleted);
                yac_obs::trace_instant(TraceEventKind::ShardCompleted, ctx(attempt));
                return Some(ShardMsg::Done {
                    spec,
                    chips: partial.chips,
                    quarantine: partial.quarantine,
                });
            }
            Ok(Err(ShardAbort::Cancelled)) => {
                if abort.load(Ordering::Relaxed) {
                    // Query cancelled, not a deadline: no retry, no
                    // degrade — the whole query is being discarded.
                    return None;
                }
                if lease.is_some_and(HeartbeatLease::is_cancelled) {
                    // Sentinel cancel: the shard was reassigned to a
                    // fresh worker while this lane stalled. Yield the
                    // lane; the reassigned attempt reports the shard.
                    return None;
                }
                yac_obs::inc(Metric::ShardTimeouts);
                yac_obs::trace_instant(TraceEventKind::ShardTimedOut, ctx(attempt));
                format!(
                    "shard {} (chips {}..{}) exceeded its deadline on attempt {attempt}",
                    spec.index,
                    spec.start,
                    spec.start + spec.len as u64
                )
            }
            Err(payload) => format!(
                "shard {} panicked: {}",
                spec.index,
                panic_message(&*payload)
            ),
        };
        if attempt >= exec.max_retries {
            yac_obs::inc(Metric::DegradedShards);
            yac_obs::trace_instant(TraceEventKind::ShardDegraded, ctx(attempt));
            return Some(ShardMsg::Degraded {
                spec,
                attempts: attempt + 1,
                error,
            });
        }
        yac_obs::inc(Metric::ShardRetries);
        yac_obs::trace_instant(TraceEventKind::ShardRetried, ctx(attempt));
        let backoff = exec.backoff.saturating_mul(1u32 << attempt.min(16));
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        attempt += 1;
    }
}

/// The worker pool: runs `tasks` on `exec.workers` scoped threads and
/// feeds every shard's outcome to `sink` on the supervisor thread, in
/// completion order. A `sink` error stops the pool (workers finish their
/// current shard and exit) and is returned.
fn execute_shards(
    mc: &MonteCarlo,
    config: &PopulationConfig,
    exec: &ExecutorConfig,
    tasks: &[ShardSpec],
    mut sink: impl FnMut(ShardMsg) -> Result<(), StudyError>,
) -> Result<(), StudyError> {
    if tasks.is_empty() {
        return Ok(());
    }
    let workers = exec.workers.clamp(1, tasks.len());
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let collecting = AtomicBool::new(true);
    let epoch = Instant::now();
    let watches: Vec<WorkerWatch> = (0..workers).map(|_| WorkerWatch::default()).collect();
    let (tx, rx) = mpsc::channel::<ShardMsg>();
    let mut sink_result = Ok(());

    std::thread::scope(|scope| {
        for (worker, watch) in watches.iter().enumerate() {
            let tx = tx.clone();
            let (next, abort) = (&next, &abort);
            scope.spawn(move || {
                yac_obs::trace_label_thread(&format!("worker-{worker}"));
                let lane = WorkerLane {
                    worker: worker as u32,
                    watch,
                    epoch,
                };
                let mut generation = 0u64;
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = tasks.get(i) else { break };
                    let msg = run_shard_supervised(mc, config, exec, *spec, &lane, &mut generation);
                    if tx.send(msg).is_err() {
                        break;
                    }
                }
            });
        }
        if let Some(deadline) = exec.shard_deadline {
            let (watches, collecting) = (&watches, &collecting);
            scope.spawn(move || {
                let tick =
                    (deadline / 4).clamp(Duration::from_micros(200), Duration::from_millis(5));
                let budget = deadline.as_nanos() as u64;
                while collecting.load(Ordering::Relaxed) {
                    let now = epoch.elapsed().as_nanos() as u64;
                    for watch in watches {
                        let tag = watch.started.load(Ordering::Acquire);
                        if tag != 0 && now.saturating_sub(tag_started_nanos(tag)) > budget {
                            // Cancel exactly the attempt observed: the
                            // store carries its tag, so if the worker
                            // has since moved on, this is a no-op.
                            watch.cancel.store(tag, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(tick);
                }
            });
        }
        // The workers hold the remaining senders; dropping ours lets the
        // receive loop end when the last worker exits.
        drop(tx);
        for msg in rx {
            if sink_result.is_ok() {
                if let Err(e) = sink(msg) {
                    sink_result = Err(e);
                    abort.store(true, Ordering::Relaxed);
                }
            }
        }
        collecting.store(false, Ordering::Relaxed);
    });
    sink_result
}

/// Inserts one shard's chips (a contiguous, already-sorted run) into the
/// merged chip vector at its sorted position.
pub(crate) fn insert_chips_sorted(completed: &mut Vec<ChipSample>, mut chips: Vec<ChipSample>) {
    let Some(first) = chips.first() else { return };
    let at = completed.partition_point(|c| c.index < first.index);
    completed.splice(at..at, chips.drain(..));
}

fn insert_shard_record(records: &mut Vec<ShardRecord>, record: ShardRecord) {
    let at = records.partition_point(|r| r.start < record.start);
    records.insert(at, record);
}

/// Builds the outcome: merged population plus a yield interval widened by
/// the chips the degraded shards failed to deliver.
pub(crate) fn finish_outcome(
    population: Population,
    degraded: Vec<DegradedShard>,
    requested_chips: usize,
) -> StudyOutcome {
    let missing: usize = degraded.iter().map(|d| d.len).sum();
    let interval = if population.is_empty() {
        yield_interval(0, 0, missing)
    } else {
        let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
        let lost = population
            .chips
            .iter()
            .filter(|c| classify(&c.regular, &constraints).is_some())
            .count();
        yield_interval(population.len() - lost, population.len(), missing)
    };
    StudyOutcome {
        population,
        degraded,
        requested_chips,
        yield_interval: interval,
    }
}

/// Runs a population study on the supervised parallel executor.
///
/// The merged population is bit-identical to
/// [`Population::generate_with`] for any worker count (see the module
/// docs for the determinism argument) unless shards degrade, in which
/// case the run still completes and the outcome reports exactly which
/// chip ranges are missing, with the yield interval widened to match.
///
/// # Errors
///
/// Returns [`StudyError::Config`] when the variation configuration is
/// invalid. Shard failures are *not* errors — they surface as
/// [`StudyOutcome::degraded`].
pub fn run_supervised(
    config: &PopulationConfig,
    exec: &ExecutorConfig,
) -> Result<StudyOutcome, StudyError> {
    let mc = MonteCarlo::try_new(config.variation).map_err(StudyError::Config)?;
    let tasks = shards_for(config.chips, exec.shard_chips);
    let mut completed: Vec<ChipSample> = Vec::with_capacity(config.chips);
    let mut quarantine = QuarantineLedger::new();
    let mut degraded: Vec<DegradedShard> = Vec::new();
    execute_shards(&mc, config, exec, &tasks, |msg| {
        match msg {
            ShardMsg::Done {
                chips,
                quarantine: q,
                ..
            } => {
                // The workers record quarantines unobserved (attempts can
                // be cancelled or retried); the metric counts each chip
                // once, here, when its shard's result is accepted.
                yac_obs::add(Metric::ChipsQuarantined, q.len() as u64);
                insert_chips_sorted(&mut completed, chips);
                quarantine.absorb(q);
            }
            ShardMsg::Degraded {
                spec,
                attempts,
                error,
            } => degraded.push(DegradedShard {
                start: spec.start,
                len: spec.len,
                attempts,
                error,
            }),
        }
        Ok(())
    })?;
    degraded.sort_by_key(|d| d.start);
    let population = Population::from_parts(
        completed,
        quarantine,
        *config.regular_model.calibration(),
        config.seed,
    );
    Ok(finish_outcome(population, degraded, config.chips))
}

/// Runs (or resumes) a supervised parallel study with shard-granular
/// checkpointing: progress is persisted to `path` every `every`
/// completed shards, and a killed run resumes without recomputing
/// finished shards.
///
/// # Errors
///
/// Returns a [`StudyError`] if the checkpoint cannot be read, parsed or
/// written, belongs to a different study or shard layout, or the
/// variation configuration is invalid.
pub fn run_checkpointed_workers(
    config: &PopulationConfig,
    exec: &ExecutorConfig,
    path: &Path,
    every: usize,
) -> Result<StudyOutcome, StudyError> {
    run_checkpointed_workers_budget(config, exec, path, every, None)
        .map(|o| o.expect("unbounded run always completes"))
}

/// Like [`run_checkpointed_workers`] but running at most `max_shards`
/// shards in this call; returns `Ok(None)` if the study is still
/// incomplete afterwards (the checkpoint holds the progress). A bounded
/// call is how tests simulate a killed parallel run.
///
/// # Errors
///
/// As [`run_checkpointed_workers`].
pub fn run_checkpointed_workers_budget(
    config: &PopulationConfig,
    exec: &ExecutorConfig,
    path: &Path,
    every: usize,
    max_shards: Option<usize>,
) -> Result<Option<StudyOutcome>, StudyError> {
    let mc = MonteCarlo::try_new(config.variation).map_err(StudyError::Config)?;
    let every = every.max(1);
    let mut state = load_or_fresh(path, config)?;
    if state.shards.is_empty() && state.done > 0 {
        return Err(StudyError::Mismatch(
            "checkpoint is chip-granular (written by a serial run); resume \
             it with run_checkpointed"
                .into(),
        ));
    }
    let tasks = shards_for(config.chips, exec.shard_chips);
    let by_start: HashMap<u64, &ShardSpec> = tasks.iter().map(|s| (s.start, s)).collect();
    for record in &state.shards {
        match by_start.get(&record.start) {
            Some(spec) if spec.len == record.len => {}
            _ => {
                return Err(StudyError::Mismatch(format!(
                    "checkpoint shard at chip {} ({} chips) does not fit a \
                     {}-chip shard layout",
                    record.start, record.len, exec.shard_chips
                )))
            }
        }
    }
    let finished: HashSet<u64> = state.shards.iter().map(|r| r.start).collect();
    let pending: Vec<ShardSpec> = tasks
        .iter()
        .filter(|s| !finished.contains(&s.start))
        .copied()
        .take(max_shards.unwrap_or(usize::MAX))
        .collect();

    let mut since_write = 0usize;
    execute_shards(&mc, config, exec, &pending, |msg| {
        match msg {
            ShardMsg::Done {
                spec,
                chips,
                quarantine,
            } => {
                yac_obs::add(Metric::ChipsQuarantined, quarantine.len() as u64);
                insert_chips_sorted(&mut state.completed, chips);
                state.quarantine.absorb(quarantine);
                insert_shard_record(
                    &mut state.shards,
                    ShardRecord {
                        start: spec.start,
                        len: spec.len,
                        status: ShardStatus::Done,
                    },
                );
                state.done += spec.len;
            }
            ShardMsg::Degraded {
                spec,
                attempts,
                error,
            } => {
                insert_shard_record(
                    &mut state.shards,
                    ShardRecord {
                        start: spec.start,
                        len: spec.len,
                        status: ShardStatus::Degraded { attempts, error },
                    },
                );
                state.done += spec.len;
            }
        }
        since_write += 1;
        if since_write >= every {
            since_write = 0;
            write_state(path, &state)?;
        }
        Ok(())
    })?;
    write_state(path, &state)?;
    if state.is_complete() {
        Ok(Some(outcome_from_state(state, config)))
    } else {
        Ok(None)
    }
}

fn outcome_from_state(state: CheckpointState, config: &PopulationConfig) -> StudyOutcome {
    let degraded: Vec<DegradedShard> = state
        .shards
        .iter()
        .filter_map(|r| match &r.status {
            ShardStatus::Done => None,
            ShardStatus::Degraded { attempts, error } => Some(DegradedShard {
                start: r.start,
                len: r.len,
                attempts: *attempts,
                error: error.clone(),
            }),
        })
        .collect();
    let population = Population::from_parts(
        state.completed,
        state.quarantine,
        *config.regular_model.calibration(),
        state.seed,
    );
    finish_outcome(population, degraded, config.chips)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_cover_the_stream_exactly_once() {
        for (chips, shard_chips) in [(0, 16), (1, 16), (16, 16), (17, 16), (120, 7), (5, 100)] {
            let shards = shards_for(chips, shard_chips);
            let mut covered = 0usize;
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.index, i);
                assert_eq!(s.start as usize, covered);
                assert!(s.len >= 1 && s.len <= shard_chips);
                covered += s.len;
            }
            assert_eq!(covered, chips, "{chips}/{shard_chips}");
        }
    }

    #[test]
    fn shard_fault_plan_is_deterministic_and_attempt_bounded() {
        let plan = ShardFaultPlan::new(0.5, 9, 2).unwrap();
        for shard in 0..32 {
            let first = plan.fails(7, shard, 0);
            assert_eq!(plan.fails(7, shard, 0), first, "deterministic");
            assert_eq!(plan.fails(7, shard, 1), first, "still failing");
            assert!(!plan.fails(7, shard, 2), "budget exhausted");
        }
        assert!(ShardFaultPlan::new(1.5, 0, 1).is_err());
        let always = ShardFaultPlan::always(1);
        assert!(always.fails(7, 3, 0) && !always.fails(7, 3, 1));
    }

    #[test]
    fn attempt_tags_distinguish_generations_and_round_trip_start_time() {
        // Same start instant, different attempts: a stale cancel store
        // tagged with one can never match the other.
        assert_ne!(attempt_tag(1, 500), attempt_tag(2, 500));
        assert_eq!(tag_started_nanos(attempt_tag(3, 1234)), 1234);
        // Never 0 (0 means idle), even where the nanos field wraps or
        // the generation field has wrapped back to 0.
        assert_ne!(attempt_tag(1, 0), 0);
        assert_ne!(attempt_tag(0, TAG_NANOS_MASK), 0);
    }

    #[test]
    fn empty_study_completes_with_empty_outcome() {
        let mut cfg = PopulationConfig::paper(1);
        cfg.chips = 0;
        let outcome = run_supervised(&cfg, &ExecutorConfig::with_workers(4)).unwrap();
        assert!(outcome.population.is_empty());
        assert!(!outcome.is_degraded());
        assert_eq!(outcome.yield_interval.estimate, 0.0);
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let mut cfg = PopulationConfig::paper(1);
        cfg.chips = 8;
        cfg.variation.ways = 0;
        let err = run_supervised(&cfg, &ExecutorConfig::with_workers(2)).unwrap_err();
        assert!(matches!(err, StudyError::Config(_)), "got {err}");
    }
}
