//! Which variation source matters? Total-effect sensitivity of cache
//! delay and leakage to each of the paper's Table 1 parameters.
//!
//! §2 of the paper argues qualitatively that V_t and L_gate dominate
//! (exponential leakage dependence, near-threshold delay sensitivity)
//! while interconnect geometry matters less. This module quantifies that
//! for our model with a freeze-one-source analysis: re-evaluate the same
//! Monte Carlo dies with one source pinned at nominal and measure how
//! much output variance disappears.

use crate::chip::PopulationConfig;
use std::fmt;
use yac_circuit::CacheCircuitModel;
use yac_variation::stats::Summary;
use yac_variation::{CacheVariation, MonteCarlo, Parameter, ParameterSet};

/// One variation source's contribution.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRow {
    /// Source name (`gate length`, ..., or `worst-cell EV`).
    pub source: String,
    /// Share of cache-delay variance removed by freezing the source
    /// (total effect; shares need not sum to 1 in a nonlinear model).
    pub delay_share: f64,
    /// Ditto for settled leakage (log-domain, so the heavy tail does not
    /// let one outlier dominate).
    pub leakage_share: f64,
}

/// Total-effect sensitivity of delay and leakage per variation source.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityReport {
    /// One row per source, in Table 1 order plus the worst-cell term.
    pub rows: Vec<SensitivityRow>,
    /// Chips analysed.
    pub chips: usize,
}

impl fmt::Display for SensitivityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<20}{:>14}{:>16}",
            "source", "delay var %", "leakage var %"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<20}{:>13.1}%{:>15.1}%",
                row.source,
                100.0 * row.delay_share,
                100.0 * row.leakage_share
            )?;
        }
        Ok(())
    }
}

/// Pins one Table 1 parameter at its nominal value everywhere on a die.
fn freeze_parameter(die: &CacheVariation, p: Parameter) -> CacheVariation {
    let mut out = die.clone();
    let nominal = ParameterSet::nominal().get(p);
    let fix = |set: &mut ParameterSet| set.set(p, nominal);
    for way in &mut out.ways {
        fix(&mut way.base);
        fix(&mut way.structures.decoder);
        fix(&mut way.structures.precharge);
        fix(&mut way.structures.cell_array);
        fix(&mut way.structures.sense_amp);
        fix(&mut way.structures.output_driver);
        for region in &mut way.regions {
            fix(&mut region.cell_array);
            fix(&mut region.interconnect);
        }
    }
    out
}

/// Zeroes the per-region worst-cell excursions of a die.
fn freeze_worst_cell(die: &CacheVariation) -> CacheVariation {
    let mut out = die.clone();
    for way in &mut out.ways {
        for region in &mut way.regions {
            region.worst_cell_extra_mv = 0.0;
        }
    }
    out
}

fn variances(model: &CacheCircuitModel, dies: &[CacheVariation]) -> (f64, f64) {
    let mut delays = Vec::with_capacity(dies.len());
    let mut leaks = Vec::with_capacity(dies.len());
    for die in dies {
        let r = model.evaluate(die);
        delays.push(r.delay);
        leaks.push(r.leakage.max(1e-12).ln());
    }
    let d = Summary::from_slice(&delays).expect("finite delays");
    let l = Summary::from_slice(&leaks).expect("finite leakage");
    (d.std_dev * d.std_dev, l.std_dev * l.std_dev)
}

/// Runs the freeze-one-source analysis.
///
/// # Panics
///
/// Panics if `chips` is zero.
///
/// # Examples
///
/// ```
/// use yac_core::sensitivity::sensitivity_study;
///
/// let report = sensitivity_study(150, 2006);
/// assert_eq!(report.rows.len(), 6);
/// let vt = report.rows.iter().find(|r| r.source.contains("threshold")).unwrap();
/// assert!(vt.leakage_share > 0.3, "V_t must dominate leakage");
/// ```
#[must_use]
pub fn sensitivity_study(chips: usize, seed: u64) -> SensitivityReport {
    assert!(chips > 0, "population must be non-empty");
    let config = PopulationConfig::paper(seed);
    let mc = MonteCarlo::new(config.variation);
    let dies = mc.generate(chips, seed);
    let model = &config.regular_model;

    let (delay_full, leak_full) = variances(model, &dies);
    let share = |frozen: (f64, f64)| {
        (
            (1.0 - frozen.0 / delay_full).max(0.0),
            (1.0 - frozen.1 / leak_full).max(0.0),
        )
    };

    let mut rows = Vec::new();
    for p in Parameter::ALL {
        let frozen: Vec<CacheVariation> = dies.iter().map(|d| freeze_parameter(d, p)).collect();
        let (d, l) = share(variances(model, &frozen));
        rows.push(SensitivityRow {
            source: p.to_string(),
            delay_share: d,
            leakage_share: l,
        });
    }
    let frozen: Vec<CacheVariation> = dies.iter().map(freeze_worst_cell).collect();
    let (d, l) = share(variances(model, &frozen));
    rows.push(SensitivityRow {
        source: "worst-cell EV".to_owned(),
        delay_share: d,
        leakage_share: l,
    });

    SensitivityReport { rows, chips }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vt_dominates_leakage_and_matters_for_delay() {
        let report = sensitivity_study(250, 2006);
        let get = |needle: &str| {
            report
                .rows
                .iter()
                .find(|r| r.source.contains(needle))
                .unwrap_or_else(|| panic!("{needle} row"))
        };
        let vt = get("threshold");
        let w = get("metal width");
        assert!(
            vt.leakage_share > w.leakage_share,
            "Vt ({}) must beat metal width ({}) on leakage",
            vt.leakage_share,
            w.leakage_share
        );
        assert!(vt.leakage_share > 0.3);
        assert!(vt.delay_share > 0.1, "near-threshold cells feel Vt");
    }

    #[test]
    fn worst_cell_term_contributes_to_delay_not_leakage() {
        let report = sensitivity_study(250, 2006);
        let wc = report
            .rows
            .iter()
            .find(|r| r.source == "worst-cell EV")
            .expect("row present");
        assert!(
            wc.delay_share > 0.02,
            "EV tail shapes delay: {}",
            wc.delay_share
        );
        assert!(
            wc.leakage_share < 0.05,
            "the worst cell does not move total leakage: {}",
            wc.leakage_share
        );
    }

    #[test]
    fn shares_are_bounded() {
        let report = sensitivity_study(120, 7);
        for row in &report.rows {
            assert!((0.0..=1.0).contains(&row.delay_share), "{row:?}");
            assert!((0.0..=1.0).contains(&row.leakage_share), "{row:?}");
        }
    }

    #[test]
    fn freezing_is_idempotent_on_the_frozen_axis() {
        let config = PopulationConfig::paper(3);
        let mc = MonteCarlo::new(config.variation);
        let die = mc.generate(1, 3).remove(0);
        let frozen = freeze_parameter(&die, Parameter::ThresholdVoltage);
        for way in &frozen.ways {
            assert_eq!(way.base.v_t_mv, 220.0);
            for region in &way.regions {
                assert_eq!(region.cell_array.v_t_mv, 220.0);
            }
        }
        // Other axes untouched.
        assert_eq!(frozen.ways[0].base.l_gate_nm, die.ways[0].base.l_gate_nm);
    }

    #[test]
    fn display_lists_all_sources() {
        let report = sensitivity_study(60, 9);
        let text = report.to_string();
        assert!(text.contains("threshold voltage"));
        assert!(text.contains("worst-cell EV"));
        assert!(text.contains("ILD"));
    }
}
