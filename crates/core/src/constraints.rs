//! Parametric yield constraints (§5.1 of the paper).
//!
//! The paper follows Rao et al.: the delay limit is `mean + k·σ` of the
//! simulated cache-latency distribution and the leakage limit is `m×` the
//! average leakage. The nominal setting is `k = 1, m = 3`; the relaxed
//! setting `k = 1.5, m = 4`; the strict setting `k = 0.5, m = 2`.
//!
//! Both limits are derived **once**, from the regular-architecture
//! population, and then applied to every organisation — a chip's spec does
//! not change because its cache was laid out differently, which is why the
//! H-YAPD architecture (2.5 % slower on average) loses more chips in its
//! base case (18.1 % vs 16.9 % in the paper).

use crate::chip::Population;
use std::fmt;
use yac_circuit::CacheVariant;
use yac_variation::stats::Summary;

/// A named constraint recipe: how far out the limits sit.
///
/// # Examples
///
/// ```
/// use yac_core::ConstraintSpec;
///
/// assert_eq!(ConstraintSpec::NOMINAL.delay_sigma_factor, 1.0);
/// assert_eq!(ConstraintSpec::STRICT.leakage_mean_factor, 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstraintSpec {
    /// Human-readable name ("nominal", "relaxed", "strict").
    pub name: &'static str,
    /// `k` in `delay_limit = mean + k·σ`.
    pub delay_sigma_factor: f64,
    /// `m` in `leakage_limit = m × mean`.
    pub leakage_mean_factor: f64,
}

impl ConstraintSpec {
    /// The paper's primary setting: `mean + σ`, `3 × mean`.
    pub const NOMINAL: ConstraintSpec = ConstraintSpec {
        name: "nominal",
        delay_sigma_factor: 1.0,
        leakage_mean_factor: 3.0,
    };
    /// The relaxed setting of Tables 4–5: `mean + 1.5σ`, `4 × mean`.
    pub const RELAXED: ConstraintSpec = ConstraintSpec {
        name: "relaxed",
        delay_sigma_factor: 1.5,
        leakage_mean_factor: 4.0,
    };
    /// The strict setting of Tables 4–5: `mean + 0.5σ`, `2 × mean`.
    pub const STRICT: ConstraintSpec = ConstraintSpec {
        name: "strict",
        delay_sigma_factor: 0.5,
        leakage_mean_factor: 2.0,
    };
}

impl fmt::Display for ConstraintSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (delay <= mean+{}sigma, leakage <= {}x mean)",
            self.name, self.delay_sigma_factor, self.leakage_mean_factor
        )
    }
}

/// Concrete limits derived from a population, plus the cycle quantisation
/// used by the variable-latency schemes.
///
/// The clock is set so that a cache exactly at the delay limit completes in
/// [`YieldConstraints::base_cycles`] (4) cycles; a way needs
/// `ceil(delay / cycle_time)` cycles, never fewer than the base.
///
/// # Examples
///
/// ```
/// use yac_core::{ConstraintSpec, Population, YieldConstraints};
///
/// let pop = Population::generate(200, 42);
/// let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
/// assert_eq!(c.cycles_for(c.delay_limit), 4);
/// assert_eq!(c.cycles_for(c.delay_limit * 1.2), 5);
/// assert_eq!(c.cycles_for(c.delay_limit * 1.3), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldConstraints {
    /// The recipe the limits were derived with.
    pub spec: ConstraintSpec,
    /// Maximum acceptable cache access delay (normalised units).
    pub delay_limit: f64,
    /// Maximum acceptable settled leakage (normalised units).
    pub leakage_limit: f64,
    /// Cycles a limit-delay access takes (the paper's L1D hit latency: 4).
    pub base_cycles: u32,
    /// Duration of one clock cycle in delay units: `delay_limit / base_cycles`.
    pub cycle_time: f64,
}

impl YieldConstraints {
    /// Derives limits from the **regular-architecture** distribution of a
    /// population, per §5.1.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty or contains non-finite values.
    #[must_use]
    pub fn derive(population: &Population, spec: ConstraintSpec) -> Self {
        let delays = population.delays(CacheVariant::Regular);
        let leaks = population.leakages(CacheVariant::Regular);
        let d = Summary::from_slice(&delays).expect("population delays must be non-empty/finite");
        let l = Summary::from_slice(&leaks).expect("population leakage must be non-empty/finite");
        Self::from_stats(d.mean, d.std_dev, l.mean, spec)
    }

    /// Builds limits from explicit distribution statistics.
    ///
    /// # Panics
    ///
    /// Panics if the statistics are not finite and positive.
    #[must_use]
    pub fn from_stats(
        delay_mean: f64,
        delay_std: f64,
        leakage_mean: f64,
        spec: ConstraintSpec,
    ) -> Self {
        assert!(
            delay_mean > 0.0 && delay_std >= 0.0 && leakage_mean > 0.0,
            "distribution statistics must be positive"
        );
        let delay_limit = delay_mean + spec.delay_sigma_factor * delay_std;
        let base_cycles = 4;
        YieldConstraints {
            spec,
            delay_limit,
            leakage_limit: spec.leakage_mean_factor * leakage_mean,
            base_cycles,
            cycle_time: delay_limit / f64::from(base_cycles),
        }
    }

    /// Whether a delay meets the limit.
    #[must_use]
    pub fn meets_delay(&self, delay: f64) -> bool {
        delay <= self.delay_limit
    }

    /// Whether a settled leakage meets the limit.
    #[must_use]
    pub fn meets_leakage(&self, leakage: f64) -> bool {
        leakage <= self.leakage_limit
    }

    /// Clock cycles an access of the given delay needs, floored at the base
    /// pipeline latency.
    #[must_use]
    pub fn cycles_for(&self, delay: f64) -> u32 {
        // The tiny epsilon keeps boundary delays (exactly k cycles) from
        // rounding up through floating-point noise.
        let cycles = (delay / self.cycle_time - 1e-9).ceil();
        if cycles <= f64::from(self.base_cycles) {
            self.base_cycles
        } else if cycles >= f64::from(u32::MAX) {
            u32::MAX
        } else {
            cycles as u32
        }
    }

    /// The largest delay that still fits in `cycles` cycles.
    #[must_use]
    pub fn delay_budget(&self, cycles: u32) -> f64 {
        f64::from(cycles) * self.cycle_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constraints() -> YieldConstraints {
        YieldConstraints::from_stats(1.0, 0.2, 5.0, ConstraintSpec::NOMINAL)
    }

    #[test]
    fn nominal_limits_follow_spec() {
        let c = constraints();
        assert!((c.delay_limit - 1.2).abs() < 1e-12);
        assert!((c.leakage_limit - 15.0).abs() < 1e-12);
        assert!((c.cycle_time - 0.3).abs() < 1e-12);
        assert_eq!(c.base_cycles, 4);
    }

    #[test]
    fn relaxed_and_strict_bracket_nominal() {
        let n = YieldConstraints::from_stats(1.0, 0.2, 5.0, ConstraintSpec::NOMINAL);
        let r = YieldConstraints::from_stats(1.0, 0.2, 5.0, ConstraintSpec::RELAXED);
        let s = YieldConstraints::from_stats(1.0, 0.2, 5.0, ConstraintSpec::STRICT);
        assert!(s.delay_limit < n.delay_limit && n.delay_limit < r.delay_limit);
        assert!(s.leakage_limit < n.leakage_limit && n.leakage_limit < r.leakage_limit);
    }

    #[test]
    fn cycles_quantisation_boundaries() {
        let c = constraints(); // cycle_time 0.3, limit 1.2
        assert_eq!(c.cycles_for(0.1), 4); // faster than limit still takes 4
        assert_eq!(c.cycles_for(1.2), 4);
        assert_eq!(c.cycles_for(1.2000001), 5);
        assert_eq!(c.cycles_for(1.5), 5);
        assert_eq!(c.cycles_for(1.5000301), 6);
        assert_eq!(c.cycles_for(3.0), 10);
    }

    #[test]
    fn delay_budget_inverts_cycles_for() {
        let c = constraints();
        for cycles in 4..12 {
            let budget = c.delay_budget(cycles);
            assert_eq!(c.cycles_for(budget), cycles);
            assert_eq!(c.cycles_for(budget + 1e-6), cycles + 1);
        }
    }

    #[test]
    fn meets_predicates() {
        let c = constraints();
        assert!(c.meets_delay(1.2));
        assert!(!c.meets_delay(1.21));
        assert!(c.meets_leakage(15.0));
        assert!(!c.meets_leakage(15.1));
    }

    #[test]
    fn derive_uses_regular_variant() {
        let pop = Population::generate(100, 11);
        let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
        let d = Summary::from_slice(&pop.delays(CacheVariant::Regular)).unwrap();
        assert!((c.delay_limit - (d.mean + d.std_dev)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn from_stats_rejects_nonpositive_mean() {
        let _ = YieldConstraints::from_stats(0.0, 0.1, 1.0, ConstraintSpec::NOMINAL);
    }

    #[test]
    fn display_mentions_name() {
        assert!(ConstraintSpec::NOMINAL.to_string().contains("nominal"));
    }
}
