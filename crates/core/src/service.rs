//! The interactive sweep service: study queries over a content-addressed
//! result cache, computed on a work-stealing shard pool.
//!
//! Batch sweeps ([`crate::sweep::run_sweep`]) run a fixed grid to a
//! journal and exit. The service inverts the workload: it stays up,
//! accepts single-study queries over a local TCP socket, and answers
//! repeat queries from a cache instead of recomputing them. Three
//! properties carry over from the batch path unchanged:
//!
//! * **Bit-identical results.** A query key is the SplitMix64
//!   fingerprint of the *single-cell sweep grid* the query denotes
//!   ([`StudyQuery::fingerprint`] delegates to
//!   [`SweepGrid::fingerprint`]), and the cached value is the canonical
//!   [`render_result`] text — every `f64` an IEEE bit image. A cache hit
//!   is therefore byte-identical to recomputation, and to the `S` record
//!   a sweep journal would hold for the same cell; tests assert all
//!   three ways.
//! * **Supervised execution.** Misses run on a [`StealPool`] of
//!   work-stealing workers ([`crate::stealing`]), each shard under the
//!   full retry/backoff/deadline/degrade discipline of
//!   `run_shard_stealing`. Degraded results are returned honestly — but
//!   **not cached**, because they depend on which shards happened to
//!   fail.
//! * **Bounded admission.** At most [`ServiceConfig::max_inflight`]
//!   queries compute at once; the next miss gets a typed
//!   [`ServiceReply::Busy`], never an unbounded queue. Cache hits are
//!   deliberately served even when saturated — a hit costs one map
//!   lookup, and refusing it would punish exactly the queries the cache
//!   exists to make cheap.
//!
//! Cancellation is cooperative and per query: the connection handler
//! watches for client disconnect and raises the query's cancel flag,
//! which stops its shards between chips without burning retries.
//!
//! # Wire protocol
//!
//! Length-prefixed, CRC-checked JSON over TCP: each frame is a
//! big-endian `u32` byte length, a big-endian `u32` CRC-32 of the
//! payload, then the payload — a flat JSON object (no nesting, scalars
//! only). The CRC turns wire corruption (including the chaos layer's
//! injected bit flips) into a typed `InvalidData` error instead of a
//! silently wrong record. Requests carry an `"op"` key (`query`,
//! `stats`, `drain`, `shutdown`); replies a `"status"` key (`ok`,
//! `busy`, `draining`, `deadline`, `cancelled`, `error`, `stats`,
//! `bye`). Study records travel as the canonical [`render_result`]
//! token text inside the `"record"` string, so the bytes a client
//! receives are exactly the bytes the cache holds.
//!
//! # Overload hardening
//!
//! The serving tier refuses to be wedged by a slow, dead or malicious
//! peer (the disk path got the same treatment in the sweep journal):
//!
//! * **Per-frame deadlines** — once a frame's first byte arrives, the
//!   rest must follow within [`ServiceConfig::read_deadline`]; replies
//!   must drain within [`ServiceConfig::write_deadline`]. A peer that
//!   stalls mid-frame (the classic slowloris) is evicted, counted in
//!   `slow_clients_evicted` and traced as `SlowClientEvicted`.
//! * **A connection cap** — [`ServiceConfig::max_conns`]; the excess
//!   connection gets a best-effort `Busy` frame and is closed
//!   (`conns_rejected` / `ConnRejected`).
//! * **Typed backpressure with a hint** — [`ServiceReply::Busy`] carries
//!   `retry_after_ms` so clients back off without guessing.
//! * **Client deadlines** — a query's `deadline_ms` arms a server-side
//!   watchdog that raises the query's cooperative-cancel flag and
//!   answers [`ServiceReply::Deadline`]; abandoned work stops between
//!   chips instead of burning the pool.
//! * **Graceful drain** — the `drain` op finishes in-flight queries,
//!   answers new ones with [`ServiceReply::Draining`], and exits the
//!   serve loop once the last in-flight query completes.
//!
//! # Cache persistence (`YAC-CACHE v1`)
//!
//! [`ResultCache::save`] writes the cache as CRC-trailed lines (the
//! sweep journal's discipline): a magic line, then one `E <key>
//! <record>` line per entry in ascending recency, so LRU order survives
//! a round trip. The write runs through the chaos layer
//! ([`IoSite::CacheFile`]) and is fully rewritten each time; a torn or
//! rotted file is refused as [`StudyError::Corrupt`] on load — the cache
//! is an optimisation, never a source of silent corruption. A cold cache
//! can also be warmed from a completed sweep journal
//! ([`ResultCache::warm_from_journal`]), re-keying each `Completed`
//! record by its cell's query fingerprint.
//!
//! # Examples
//!
//! ```
//! use yac_core::service::{ServiceConfig, StudyQuery, SweepService, ServiceReply};
//! use std::sync::Arc;
//! use std::sync::atomic::AtomicBool;
//!
//! let mut config = ServiceConfig::default();
//! config.exec.workers = 2;
//! let service = SweepService::new(config);
//! let query = StudyQuery {
//!     chips: 24,
//!     seed: 7,
//!     constraint: yac_core::ConstraintSpec::NOMINAL,
//!     kind: yac_core::PowerDownKind::Vertical,
//!     cpi: None,
//! };
//! let cancel = Arc::new(AtomicBool::new(false));
//! let first = service.query(&query, &cancel);
//! let second = service.query(&query, &cancel);
//! match (first, second) {
//!     (
//!         ServiceReply::Result { record: a, cached: false, .. },
//!         ServiceReply::Result { record: b, cached: true, .. },
//!     ) => assert_eq!(a, b, "cache hit is byte-identical"),
//!     other => panic!("expected result replies, got {other:?}"),
//! }
//! service.shutdown();
//! ```

use crate::chaos::{intercept_write, ChaosStream, IoSite, NetSite};
use crate::checkpoint::{crc32, fsync_parent, StudyError};
use crate::chip::{ChipSample, Population, PopulationConfig};
use crate::constraints::ConstraintSpec;
use crate::executor::{
    finish_outcome, insert_chips_sorted, run_shard_stealing, shards_for, DegradedShard,
    ExecutorConfig, ShardMsg, ShardSpec,
};
use crate::health::{HealthConfig, HeartbeatRegistry, StallEvent, StallSentinel};
use crate::quarantine::QuarantineLedger;
use crate::schemes::PowerDownKind;
use crate::stealing::StealPool;
use crate::sweep::{
    check_crc_line, crc_line, parse_journal, parse_result, render_result,
    study_result_from_outcome, CpiOptions, StudySpec, StudyStatus, SweepConfig, SweepGrid,
};
use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use yac_obs::{Metric, Phase, TraceCtx, TraceEventKind};
use yac_variation::MonteCarlo;

/// Cache-file magic line content (before its CRC trailer).
const CACHE_MAGIC: &str = "YAC-CACHE v1";

/// Largest frame either side of the wire protocol will accept.
pub const MAX_FRAME: usize = 16 << 20;

/// Looks up one of the paper's constraint recipes by its stable name.
#[must_use]
pub fn constraint_by_name(name: &str) -> Option<ConstraintSpec> {
    [
        ConstraintSpec::NOMINAL,
        ConstraintSpec::RELAXED,
        ConstraintSpec::STRICT,
    ]
    .into_iter()
    .find(|c| c.name == name)
}

/// One cacheable unit of service work: a single sweep-grid cell.
///
/// The query deliberately exposes only result-shaping inputs — chips,
/// seed, constraint recipe, organisation, CPI budgets. Executor tuning
/// (workers, shard size, retries) belongs to the service, not the query,
/// exactly as [`SweepGrid::fingerprint`] excludes it: two deployments
/// with different worker counts must hit each other's cache entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyQuery {
    /// Chips in the study population.
    pub chips: usize,
    /// Monte Carlo seed.
    pub seed: u64,
    /// Constraint recipe the population is classified under.
    pub constraint: ConstraintSpec,
    /// Which organisation's loss table the study builds.
    pub kind: PowerDownKind,
    /// Optional CPI measurement budgets.
    pub cpi: Option<CpiOptions>,
}

impl StudyQuery {
    /// The query a sweep-grid cell denotes, used to warm the cache from
    /// a journal: the cell keyed this way and the same cell queried
    /// directly produce the same fingerprint.
    #[must_use]
    pub fn from_spec(grid: &SweepGrid, config: &SweepConfig, spec: &StudySpec) -> Self {
        StudyQuery {
            chips: grid.chips,
            seed: spec.seed,
            constraint: spec.constraint,
            kind: spec.kind,
            cpi: config.cpi,
        }
    }

    /// The query's cache key: the [`SweepGrid::fingerprint`] of the
    /// single-cell grid this query denotes (same SplitMix64 fold, same
    /// inputs), under a fault-free config. Not a new hash — the existing
    /// one, applied to a one-cell sweep.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let grid = SweepGrid {
            chips: self.chips,
            seeds: vec![self.seed],
            constraints: vec![self.constraint],
            kinds: vec![self.kind],
        };
        let config = SweepConfig {
            cpi: self.cpi,
            ..SweepConfig::default()
        };
        grid.fingerprint(&config)
    }
}

// ---------------------------------------------------------------------
// The result cache
// ---------------------------------------------------------------------

/// Bytes charged to an entry beyond its record text (key, recency tick,
/// map slot). Keeps the byte budget honest about small entries.
pub const ENTRY_OVERHEAD: usize = 48;

#[derive(Debug, Clone)]
struct CacheEntry {
    /// Canonical [`render_result`] text, stored as bytes: an in-memory
    /// bit flip (real rot, or the chaos layer's injected `mem_rate`) may
    /// leave the buffer non-UTF-8, and the scrubber must still be able
    /// to inspect it.
    record: Vec<u8>,
    /// CRC-32 of the record captured at insert, *before* the stored copy
    /// could rot. Every read and every scrub pass re-verifies it; a
    /// mismatch quarantines the entry.
    crc: u32,
    /// Recency: the cache-wide tick of the entry's last touch.
    last_used: u64,
}

impl CacheEntry {
    fn intact(&self) -> bool {
        crc32(&self.record) == self.crc
    }
}

fn entry_bytes(record: &[u8]) -> usize {
    record.len() + ENTRY_OVERHEAD
}

/// A content-addressed LRU cache of study records under a byte budget.
///
/// Keys are [`StudyQuery::fingerprint`] values; values are canonical
/// [`render_result`] text, so a hit hands back the exact bytes a
/// recomputation would render. Eviction is strict LRU over a global
/// recency tick (ties are impossible — every touch bumps the tick), so
/// eviction order is deterministic given the operation sequence.
#[derive(Debug)]
pub struct ResultCache {
    budget: usize,
    entries: HashMap<u64, CacheEntry>,
    /// Quarantine tombstones: keys whose entry failed its CRC. The next
    /// insert over a tombstone is a *repair* — by construction
    /// bit-identical to a cold recompute, because the inserted text is
    /// the canonical rendering and the rotted copy was never served.
    quarantined: HashSet<u64>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    quarantined_total: u64,
    repaired: u64,
    scrub_passes: u64,
}

impl ResultCache {
    /// An empty cache holding at most `budget` bytes of entries.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        ResultCache {
            budget,
            entries: HashMap::new(),
            quarantined: HashSet::new(),
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            quarantined_total: 0,
            repaired: 0,
            scrub_passes: 0,
        }
    }

    /// The configured byte budget.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently charged against the budget.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Lookups that found an entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to stay under budget.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Entries quarantined after failing their CRC (on read or during a
    /// scrub pass).
    #[must_use]
    pub fn quarantined(&self) -> u64 {
        self.quarantined_total
    }

    /// Quarantined keys later repaired by a fresh insert.
    #[must_use]
    pub fn repaired(&self) -> u64 {
        self.repaired
    }

    /// Completed scrub passes.
    #[must_use]
    pub fn scrub_passes(&self) -> u64 {
        self.scrub_passes
    }

    /// Looks up `key`, bumping its recency on a hit. Counts the outcome
    /// in the metric registry and trace ring ([`TraceEventKind::CacheHit`]
    /// / [`TraceEventKind::CacheMiss`]).
    ///
    /// Every hit re-verifies the entry's CRC first. A rotted entry is
    /// **never served**: it is quarantined (removed, its key
    /// tombstoned) and the lookup counts as a miss, so the caller
    /// recomputes — and the recompute's insert repairs the entry with
    /// bytes bit-identical to a cold compute.
    pub fn get(&mut self, key: u64) -> Option<String> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) if entry.intact() => {
                entry.last_used = self.tick;
                self.hits += 1;
                yac_obs::inc(Metric::ResultCacheHits);
                yac_obs::trace_instant(TraceEventKind::CacheHit, TraceCtx::default());
                return Some(String::from_utf8_lossy(&entry.record).into_owned());
            }
            Some(_) => self.quarantine_entry(key),
            None => {}
        }
        self.misses += 1;
        yac_obs::inc(Metric::ResultCacheMisses);
        yac_obs::trace_instant(TraceEventKind::CacheMiss, TraceCtx::default());
        None
    }

    /// Removes a CRC-failing entry and tombstones its key (metric
    /// `entries_quarantined`, trace `EntryQuarantined`).
    fn quarantine_entry(&mut self, key: u64) {
        if let Some(old) = self.entries.remove(&key) {
            self.bytes -= entry_bytes(&old.record);
            self.quarantined.insert(key);
            self.quarantined_total += 1;
            yac_obs::inc(Metric::EntriesQuarantined);
            yac_obs::trace_instant(TraceEventKind::EntryQuarantined, TraceCtx::default());
        }
    }

    /// Re-verifies every entry's CRC, quarantining the failures. Returns
    /// how many entries were quarantined this pass. Counted in
    /// `scrub_passes` / [`Metric::ScrubPasses`] and traced as
    /// [`TraceEventKind::ScrubPass`].
    pub fn scrub(&mut self) -> usize {
        let rotted: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, entry)| !entry.intact())
            .map(|(key, _)| *key)
            .collect();
        for key in &rotted {
            self.quarantine_entry(*key);
        }
        self.scrub_passes += 1;
        yac_obs::inc(Metric::ScrubPasses);
        yac_obs::trace_instant(TraceEventKind::ScrubPass, TraceCtx::default());
        rotted.len()
    }

    /// Re-verifies a persisted `YAC-CACHE` file's line CRCs and, when any
    /// line has rotted, rewrites the whole file from the in-memory cache
    /// (whose own rotted entries [`ResultCache::save`] skips). Each
    /// rotted line counts as one quarantine and — once the rewrite lands
    /// — one repair. Returns how many lines had rotted.
    ///
    /// A missing or unreadable file is left alone: persistence is an
    /// optimisation, and load-time strictness already refuses corrupt
    /// files wholesale.
    pub fn scrub_file(&mut self, path: &Path) -> usize {
        let Ok(text) = std::fs::read_to_string(path) else {
            return 0;
        };
        let rotted = text
            .lines()
            .filter(|line| check_crc_line(line).is_none())
            .count();
        if rotted == 0 {
            return 0;
        }
        self.quarantined_total += rotted as u64;
        for _ in 0..rotted {
            yac_obs::inc(Metric::EntriesQuarantined);
            yac_obs::trace_instant(TraceEventKind::EntryQuarantined, TraceCtx::default());
        }
        if self.save(path).is_ok() {
            self.repaired += rotted as u64;
            for _ in 0..rotted {
                yac_obs::inc(Metric::EntriesRepaired);
                yac_obs::trace_instant(TraceEventKind::EntryRepaired, TraceCtx::default());
            }
        }
        rotted
    }

    /// Inserts (or refreshes) an entry, evicting least-recently-used
    /// entries until the budget holds. Returns `false` — caching
    /// nothing — when the record alone exceeds the whole budget.
    ///
    /// The entry's CRC is captured from `record` *before* the stored
    /// copy can rot (the chaos layer's `mem_rate` corruption is applied
    /// to the stored bytes only). An insert over a quarantined key is a
    /// **repair**: the tombstone clears and the repair is counted
    /// ([`Metric::EntriesRepaired`], trace `EntryRepaired`) — the new
    /// text is canonical, so the repaired entry is bit-identical to a
    /// cold recompute.
    pub fn insert(&mut self, key: u64, record: String) -> bool {
        let crc = crc32(record.as_bytes());
        let mut bytes = record.into_bytes();
        let size = entry_bytes(&bytes);
        if size > self.budget {
            return false;
        }
        if self.quarantined.remove(&key) {
            self.repaired += 1;
            yac_obs::inc(Metric::EntriesRepaired);
            yac_obs::trace_instant(TraceEventKind::EntryRepaired, TraceCtx::default());
        }
        // Injected memory rot (deterministic, keyed by the entry) lands
        // on the stored copy only — the CRC above still describes the
        // canonical bytes, which is exactly what makes the rot visible.
        let _ = crate::chaos::corrupt_cache_entry(key, &mut bytes);
        self.tick += 1;
        if let Some(old) = self.entries.insert(
            key,
            CacheEntry {
                record: bytes,
                crc,
                last_used: self.tick,
            },
        ) {
            self.bytes -= entry_bytes(&old.record);
        }
        self.bytes += size;
        while self.bytes > self.budget {
            self.evict_lru();
        }
        true
    }

    /// Removes the least-recently-used entry. The just-inserted entry
    /// holds the maximum tick, so it is only ever the victim when it is
    /// the sole entry — excluded by the `size > budget` refusal above.
    fn evict_lru(&mut self) {
        let Some(victim) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| *k)
        else {
            return;
        };
        if let Some(old) = self.entries.remove(&victim) {
            self.bytes -= entry_bytes(&old.record);
            self.evictions += 1;
            yac_obs::inc(Metric::ResultCacheEvictions);
        }
    }

    fn io_err(path: &Path, e: io::Error) -> StudyError {
        StudyError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }
    }

    /// Persists the cache to `path` in `YAC-CACHE v1` format: CRC-trailed
    /// lines, entries in ascending recency so a load replays them in LRU
    /// order. One full rewrite through the chaos layer
    /// ([`IoSite::CacheFile`]), fsynced file and parent.
    ///
    /// Entries that fail their own CRC are silently skipped: persisting
    /// a rotted record would either poison the file's strict load (a
    /// malformed record refuses the *whole* cache) or — worse — launder
    /// the rot under a fresh line CRC. The scrubber quarantines them in
    /// memory on its next pass.
    ///
    /// # Errors
    ///
    /// Returns [`StudyError::Io`] when the write fails (including
    /// injected chaos faults).
    pub fn save(&self, path: &Path) -> Result<(), StudyError> {
        let mut ordered: Vec<(&u64, &CacheEntry)> = self.entries.iter().collect();
        ordered.sort_by_key(|(_, e)| e.last_used);
        let mut text = crc_line(CACHE_MAGIC);
        for (key, entry) in ordered {
            if !entry.intact() {
                continue;
            }
            let record = String::from_utf8_lossy(&entry.record);
            text.push_str(&crc_line(&format!("E {key:016x} {record}")));
        }
        intercept_write(IoSite::CacheFile, path, text.as_bytes(), |bytes| {
            let mut f = std::fs::File::create(path)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            fsync_parent(path)
        })
        .map_err(|e| Self::io_err(path, e))
    }

    /// Loads a cache persisted by [`ResultCache::save`]. `Ok(None)` when
    /// no file exists (a cold start). Unlike the append-only sweep
    /// journal, the cache file is rewritten whole, so *any* CRC failure
    /// — torn tail included — is refused as corrupt; the caller discards
    /// the file and starts cold.
    ///
    /// # Errors
    ///
    /// [`StudyError::Io`] when the file cannot be read;
    /// [`StudyError::Corrupt`] for CRC failures, a bad magic or
    /// malformed entry lines.
    pub fn load(path: &Path, budget: usize) -> Result<Option<ResultCache>, StudyError> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(Self::io_err(path, e)),
        };
        let mut cache = ResultCache::new(budget);
        for (lineno, line) in text.lines().enumerate() {
            let line_number = lineno + 1;
            let corrupt = |what: String| StudyError::Corrupt {
                line: line_number,
                what,
            };
            let Some(body) = check_crc_line(line) else {
                return Err(corrupt("cache line fails its CRC".into()));
            };
            if line_number == 1 {
                if body != CACHE_MAGIC {
                    return Err(corrupt(format!("bad cache magic {body:?}")));
                }
                continue;
            }
            let rest = body
                .strip_prefix("E ")
                .ok_or_else(|| corrupt(format!("unknown cache record {body:?}")))?;
            let (key_hex, record) = rest
                .split_once(' ')
                .ok_or_else(|| corrupt("cache entry missing record".into()))?;
            let key = u64::from_str_radix(key_hex, 16)
                .map_err(|_| corrupt(format!("bad cache key {key_hex:?}")))?;
            // Parse and re-render: refuses malformed records and pins the
            // stored text to the canonical rendering.
            let result = parse_result(record, line_number)?;
            cache.insert(key, render_result(&result));
        }
        if text.is_empty() {
            return Err(StudyError::Corrupt {
                line: 1,
                what: "cache file is empty (missing magic)".into(),
            });
        }
        Ok(Some(cache))
    }

    /// Warms the cache from a completed sweep journal: every `Completed`
    /// study record is re-rendered and inserted under its cell's
    /// [`StudyQuery::fingerprint`]. Degraded records are skipped (the
    /// service never caches partial results) and fault-injected sweeps
    /// are refused — service queries are fault-free cells, so their keys
    /// must never map to fault-shaped results. Returns how many entries
    /// were inserted.
    ///
    /// # Errors
    ///
    /// [`StudyError::Io`] when the journal cannot be read,
    /// [`StudyError::Corrupt`] when it fails its own CRC discipline, and
    /// [`StudyError::Mismatch`] when its grid fingerprint disagrees with
    /// `grid`/`config` or the config injects faults.
    pub fn warm_from_journal(
        &mut self,
        grid: &SweepGrid,
        config: &SweepConfig,
        path: &Path,
    ) -> Result<usize, StudyError> {
        if config.faults.is_some() {
            return Err(StudyError::Mismatch(
                "fault-injected sweeps cannot warm the service cache: \
                 queries denote fault-free cells"
                    .into(),
            ));
        }
        let text = std::fs::read_to_string(path).map_err(|e| Self::io_err(path, e))?;
        let Some(journal) = parse_journal(&text)? else {
            return Ok(0); // Headerless journal: nothing durable to warm from.
        };
        let specs = grid.studies();
        let fingerprint = grid.fingerprint(config);
        if journal.grid_hash != fingerprint || journal.studies != specs.len() {
            return Err(StudyError::Mismatch(format!(
                "sweep journal belongs to a different grid \
                 (journal {:016x}/{} studies, this grid {:016x}/{})",
                journal.grid_hash,
                journal.studies,
                fingerprint,
                specs.len()
            )));
        }
        let mut warmed = 0;
        for (index, status) in &journal.terminal {
            if let StudyStatus::Completed(result) = status {
                let query = StudyQuery::from_spec(grid, config, &specs[*index]);
                if self.insert(query.fingerprint(), render_result(result)) {
                    warmed += 1;
                }
            }
        }
        Ok(warmed)
    }
}

// ---------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------

/// Tuning for a [`SweepService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Executor tuning for query computation. `exec.workers` sizes the
    /// work-stealing pool; the retry/backoff/deadline/fault knobs apply
    /// to every query's shards.
    pub exec: ExecutorConfig,
    /// Queries computing at once; the next miss is refused with
    /// [`ServiceReply::Busy`]. Clamped to at least 1.
    pub max_inflight: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Connections served at once; the excess connection gets a
    /// best-effort [`ServiceReply::Busy`] and is closed. Clamped to at
    /// least 1.
    pub max_conns: usize,
    /// Once a frame's first byte arrives, the rest must follow within
    /// this window or the peer is evicted as a slow client.
    pub read_deadline: Duration,
    /// A reply frame must drain to the peer within this window or the
    /// peer is evicted.
    pub write_deadline: Duration,
    /// The backoff hint carried by every [`ServiceReply::Busy`] (and
    /// [`ServiceReply::Retryable`]).
    pub retry_after_ms: u64,
    /// How long a pool lane may hold a shard without one heartbeat
    /// before the stall sentinel escalates (cancel → reassign →
    /// degrade). `None` disables the sentinel.
    pub heartbeat_budget: Option<Duration>,
    /// How often the background scrubber re-verifies cache-entry CRCs.
    /// `None` disables the scrubber thread (scrubs still happen on every
    /// read, and [`SweepService::scrub_now`] runs one on demand).
    pub scrub_interval: Option<Duration>,
    /// A persisted `YAC-CACHE` file for the scrubber to re-verify (and
    /// rewrite from memory when a line has rotted). `None` scrubs only
    /// the in-memory entries.
    pub scrub_file: Option<PathBuf>,
    /// How many times a stalled shard is reassigned to a fresh worker
    /// before the service records it degraded instead.
    pub max_reassigns: u32,
}

impl Default for ServiceConfig {
    /// Default executor, two queries in flight, an 8 MiB cache, 64
    /// connections, two-second frame deadlines, a 200 ms retry hint, a
    /// two-second heartbeat budget, five-second scrub passes, one
    /// reassignment per stalled shard.
    fn default() -> Self {
        ServiceConfig {
            exec: ExecutorConfig::default(),
            max_inflight: 2,
            cache_bytes: 8 << 20,
            max_conns: 64,
            read_deadline: Duration::from_secs(2),
            write_deadline: Duration::from_secs(2),
            retry_after_ms: DEFAULT_RETRY_AFTER_MS,
            heartbeat_budget: Some(Duration::from_secs(2)),
            scrub_interval: Some(Duration::from_secs(5)),
            scrub_file: None,
            max_reassigns: 1,
        }
    }
}

/// The `retry_after_ms` a client assumes when a `busy` reply omits the
/// field (a pre-hint server); also the default hint servers send.
pub const DEFAULT_RETRY_AFTER_MS: u64 = 200;

/// A point-in-time snapshot of service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries received (any outcome).
    pub queries: u64,
    /// Queries answered with a result (cached or computed).
    pub served: u64,
    /// Queries refused with [`ServiceReply::Busy`].
    pub busy: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache evictions.
    pub cache_evictions: u64,
    /// Entries currently cached.
    pub cache_entries: usize,
    /// Bytes currently charged against the cache budget.
    pub cache_bytes: usize,
    /// Tasks stolen between pool workers.
    pub stolen: u64,
    /// Queries computing right now.
    pub inflight: usize,
    /// The admission limit.
    pub limit: usize,
    /// Slow clients evicted for stalling mid-frame.
    pub evicted: u64,
    /// Connections refused at the connection cap.
    pub rejected: u64,
    /// Whether the service is draining (refusing new queries).
    pub draining: bool,
    /// Completed cache scrub passes.
    pub scrub_passes: u64,
    /// Cache entries quarantined after failing their CRC.
    pub quarantined: u64,
    /// Quarantined entries repaired by a fresh insert.
    pub repaired: u64,
    /// Stalled shards reassigned to a fresh worker.
    pub reassigned: u64,
    /// Times the worker pool was rebuilt after poisoning.
    pub pool_restarts: u64,
}

/// A point-in-time liveness report, answering [`ServiceRequest::Health`].
///
/// Where [`ServiceStats`] counts *traffic*, this reports *self-healing*:
/// lane liveness, the escalation ladder's counters, scrub activity and
/// pool rebuilds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReport {
    /// Milliseconds since the service was built.
    pub uptime_ms: u64,
    /// Queries computing right now.
    pub inflight: usize,
    /// Heartbeat lanes (one per pool worker).
    pub lanes: usize,
    /// Lanes currently holding a shard lease.
    pub lanes_busy: usize,
    /// Lanes past a missed heartbeat without recovering (cancelled or
    /// truly wedged), as of the sentinel's last poll.
    pub lanes_stalled: u64,
    /// Lease cancels issued for missed heartbeats.
    pub heartbeats_missed: u64,
    /// Stalled shards reassigned to a fresh worker.
    pub shards_reassigned: u64,
    /// Completed cache scrub passes.
    pub scrub_passes: u64,
    /// Cache entries quarantined after failing their CRC.
    pub quarantined: u64,
    /// Quarantined entries repaired by a fresh insert.
    pub repaired: u64,
    /// Queries answered with a degraded (shards-missing) result.
    pub degraded: u64,
    /// Times the worker pool was rebuilt after poisoning.
    pub pool_restarts: u64,
}

/// A request a client can put on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceRequest {
    /// Compute (or fetch from cache) one study.
    Query {
        /// The study to compute or fetch.
        query: StudyQuery,
        /// Give up after this many milliseconds: the server arms a
        /// watchdog that raises the query's cancel flag and answers
        /// [`ServiceReply::Deadline`]. Deliberately *not* part of
        /// [`StudyQuery`] — it shapes scheduling, not the result, so it
        /// must not move the cache key.
        deadline_ms: Option<u64>,
    },
    /// Report service counters.
    Stats,
    /// Report liveness: uptime, lane health, scrub and self-healing
    /// counters.
    Health,
    /// Finish in-flight queries, refuse new ones, then exit the serve
    /// loop.
    Drain,
    /// Shut the service down cleanly.
    Shutdown,
}

/// What the service answers.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceReply {
    /// The study's canonical record text.
    Result {
        /// Canonical [`render_result`] text — exactly the cached bytes.
        record: String,
        /// The query's fingerprint (the cache key).
        key: u64,
        /// Whether the record came from the cache.
        cached: bool,
    },
    /// The service is saturated; retry later. Backpressure is typed,
    /// never an unbounded queue.
    Busy {
        /// Queries computing when the refusal was made.
        inflight: usize,
        /// The admission limit.
        limit: usize,
        /// How long the server suggests waiting before retrying. Absent
        /// on the wire from older servers; clients assume
        /// [`DEFAULT_RETRY_AFTER_MS`].
        retry_after_ms: u64,
    },
    /// The service is draining: in-flight queries finish, new ones are
    /// refused, and the serve loop exits once the last completes.
    Draining {
        /// Queries still computing when the refusal was made.
        inflight: usize,
    },
    /// The query's `deadline_ms` expired before it finished; its shards
    /// were cancelled cooperatively.
    Deadline {
        /// Milliseconds the query ran before the deadline fired.
        elapsed_ms: u64,
    },
    /// The query's client disconnected mid-computation.
    Cancelled,
    /// The query was lost to a fault the service has already healed
    /// (worker-pool poisoning mid-computation): the same request will
    /// succeed on a fresh attempt. Unlike [`ServiceReply::Error`] this
    /// is explicitly *transient* — resilient clients retry it like
    /// [`ServiceReply::Busy`], without a breaker penalty.
    Retryable {
        /// How long the server suggests waiting before retrying.
        retry_after_ms: u64,
    },
    /// The query could not be answered.
    Error {
        /// One-line diagnostic.
        message: String,
    },
    /// Service counters, answering [`ServiceRequest::Stats`].
    Stats(ServiceStats),
    /// Liveness report, answering [`ServiceRequest::Health`].
    Health(HealthReport),
    /// Acknowledges [`ServiceRequest::Shutdown`].
    Bye,
}

/// Everything one query's shard tasks share.
#[derive(Debug)]
struct QueryJob {
    mc: MonteCarlo,
    pop: PopulationConfig,
    exec: ExecutorConfig,
    cancel: Arc<AtomicBool>,
}

/// A computing query, registered so the stall sentinel's handler can
/// reassign (or degrade) its stalled shards from outside the collector.
#[derive(Debug)]
struct ActiveJob {
    job: Arc<QueryJob>,
    specs: Vec<ShardSpec>,
    /// A clone of the query's result channel. Held here until the
    /// collector deregisters the job, which also keeps the channel open
    /// while reassignment is still possible.
    tx: mpsc::Sender<Option<ShardMsg>>,
    /// Stalled-shard reassignments already spent on this query.
    reassigns: u32,
}

/// The live query table the sentinel handler works against.
type JobTable = Arc<Mutex<HashMap<u64, ActiveJob>>>;

/// Shard tags pack the owning job and the shard index into the lease's
/// `shard` word: low 20 bits the shard index, the rest the job id.
const SHARD_TAG_BITS: u32 = 20;

fn shard_tag(job_id: u64, index: usize) -> u64 {
    (job_id << SHARD_TAG_BITS) | (index as u64 & ((1 << SHARD_TAG_BITS) - 1))
}

fn lock_jobs(jobs: &JobTable) -> std::sync::MutexGuard<'_, HashMap<u64, ActiveJob>> {
    jobs.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_opt<T>(slot: &Mutex<Option<T>>) -> std::sync::MutexGuard<'_, Option<T>> {
    slot.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Submits one shard of a job to the pool: the task takes a heartbeat
/// lease tagged with the job+shard, beats once per chip, and reports on
/// `tx`. Used by the collector for the initial fan-out and by the stall
/// sentinel's handler for reassignment — both paths are byte-identical
/// compute.
fn submit_shard(
    pool: &RwLock<StealPool>,
    registry: &Arc<HeartbeatRegistry>,
    job: Arc<QueryJob>,
    job_id: u64,
    spec: ShardSpec,
    tx: mpsc::Sender<Option<ShardMsg>>,
) {
    let registry = Arc::clone(registry);
    pool.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .submit(Box::new(move |worker| {
            if job.cancel.load(Ordering::Relaxed) {
                let _ = tx.send(None);
                return;
            }
            let lease = registry.begin(worker, shard_tag(job_id, spec.index));
            let msg = run_shard_stealing(
                &job.mc,
                &job.pop,
                &job.exec,
                spec,
                worker as u32,
                &job.cancel,
                Some(&lease),
            );
            match msg {
                Some(msg) => {
                    let _ = tx.send(Some(msg));
                }
                // `None` with the query's cancel flag up means the query
                // is being discarded: tell the collector. `None` with a
                // cancelled *lease* means the sentinel reassigned this
                // shard to a fresh worker — report nothing; the
                // reassigned attempt owns the shard now.
                None => {
                    if job.cancel.load(Ordering::Relaxed) {
                        let _ = tx.send(None);
                    }
                }
            }
        }));
}

/// Sentinel escalation policy (steps two and three of the ladder —
/// step one, the cooperative cancel, already ran in the sentinel): move
/// the stalled shard to a fresh worker while the reassign budget lasts,
/// then record it honestly degraded.
fn handle_stall(
    event: StallEvent,
    jobs: &JobTable,
    pool: &RwLock<StealPool>,
    registry: &Arc<HeartbeatRegistry>,
    hb_missed: &AtomicU64,
    reassigned: &AtomicU64,
    max_reassigns: u32,
) {
    let StallEvent::Missed { shard: tag, .. } = event else {
        return; // Wedged lanes are reported via health, nothing to move.
    };
    hb_missed.fetch_add(1, Ordering::Relaxed);
    let job_id = tag >> SHARD_TAG_BITS;
    let index = (tag & ((1 << SHARD_TAG_BITS) - 1)) as usize;
    let mut table = lock_jobs(jobs);
    let Some(active) = table.get_mut(&job_id) else {
        return; // The query already finished (or was discarded).
    };
    if active.job.cancel.load(Ordering::Relaxed) {
        return;
    }
    let Some(spec) = active.specs.iter().find(|s| s.index == index).copied() else {
        return;
    };
    if active.reassigns >= max_reassigns {
        // Ladder step three: the reassign budget is spent — report the
        // shard degraded so the query completes honestly without it.
        yac_obs::inc(Metric::DegradedShards);
        yac_obs::trace_instant(
            TraceEventKind::ShardDegraded,
            TraceCtx::shard(u32::MAX, spec.index as u32, active.reassigns),
        );
        let _ = active.tx.send(Some(ShardMsg::Degraded {
            spec,
            attempts: active.reassigns + 1,
            error: format!(
                "shard {} stalled (no heartbeat) and exhausted its {} reassignment(s)",
                spec.index, max_reassigns
            ),
        }));
        return;
    }
    active.reassigns += 1;
    let job = Arc::clone(&active.job);
    let tx = active.tx.clone();
    drop(table);
    reassigned.fetch_add(1, Ordering::Relaxed);
    yac_obs::inc(Metric::ShardsReassigned);
    yac_obs::trace_instant(
        TraceEventKind::ShardReassigned,
        TraceCtx {
            shard: Some(spec.index as u32),
            ..TraceCtx::default()
        },
    );
    submit_shard(pool, registry, job, job_id, spec, tx);
}

/// The background cache scrubber: a low-priority thread re-verifying
/// entry CRCs every interval (plus the persisted cache file, when
/// configured). Stops promptly on signal; also stopped by drop.
struct Scrubber {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Scrubber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scrubber").finish_non_exhaustive()
    }
}

impl Scrubber {
    fn spawn(cache: Arc<Mutex<ResultCache>>, interval: Duration, file: Option<PathBuf>) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("svc-scrubber".into())
                .spawn(move || loop {
                    let (lock, cv) = &*stop;
                    let guard = lock
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let (guard, _) = cv
                        .wait_timeout_while(guard, interval.max(Duration::from_millis(1)), |s| !*s)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if *guard {
                        return;
                    }
                    drop(guard);
                    scrub_pass(&cache, file.as_deref());
                })
                .ok()
        };
        Scrubber { stop, handle }
    }

    fn halt(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Scrubber {
    fn drop(&mut self) {
        self.halt();
    }
}

/// One scrub pass: in-memory CRC sweep, then the persisted file (two
/// short lock holds, so queries are never blocked for long).
fn scrub_pass(cache: &Mutex<ResultCache>, file: Option<&Path>) {
    cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .scrub();
    if let Some(path) = file {
        cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .scrub_file(path);
    }
}

/// RAII decrement of the inflight gauge. Dropping also unparks the
/// serve loop — a draining service exits the moment the last in-flight
/// query completes instead of waiting out a poll tick.
struct InflightSlot<'a>(&'a SweepService);

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::AcqRel);
        self.0.unpark();
    }
}

/// The long-lived sweep service: a work-stealing pool, a result cache
/// and bounded admission. See the module docs for the architecture.
#[derive(Debug)]
pub struct SweepService {
    config: ServiceConfig,
    /// The worker pool, behind a lock so a poisoned pool can be rebuilt
    /// in place ([`SweepService::heal_pool`]) while queries keep
    /// submitting through read guards.
    pool: Arc<RwLock<StealPool>>,
    registry: Arc<HeartbeatRegistry>,
    sentinel: Mutex<Option<StallSentinel>>,
    scrubber: Mutex<Option<Scrubber>>,
    jobs: JobTable,
    next_job: AtomicU64,
    started: Instant,
    cache: Arc<Mutex<ResultCache>>,
    inflight: AtomicUsize,
    queries: AtomicU64,
    served: AtomicU64,
    busy: AtomicU64,
    evicted: AtomicU64,
    rejected: AtomicU64,
    hb_missed: Arc<AtomicU64>,
    reassigned: Arc<AtomicU64>,
    degraded: AtomicU64,
    pool_restarts: AtomicU64,
    draining: AtomicBool,
    shutdown: AtomicBool,
    /// Parks the serve loop between accepts. The mutex guards nothing
    /// but the wait itself: wake conditions are re-checked under it in
    /// [`SweepService::park`], and every signal site takes it in
    /// [`SweepService::unpark`] before notifying, so a wakeup raced
    /// against the pre-wait check cannot be lost.
    parker: (Mutex<()>, Condvar),
}

impl SweepService {
    /// Builds a service: spawns `config.exec.workers` pool workers, an
    /// empty cache of `config.cache_bytes`, the stall sentinel (when
    /// `config.heartbeat_budget` is set) and the cache scrubber (when
    /// `config.scrub_interval` is set).
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        let cache = Arc::new(Mutex::new(ResultCache::new(config.cache_bytes)));
        let pool = Arc::new(RwLock::new(StealPool::new(config.exec.workers)));
        let registry = Arc::new(HeartbeatRegistry::new(config.exec.workers.max(1)));
        let jobs: JobTable = Arc::new(Mutex::new(HashMap::new()));
        let hb_missed = Arc::new(AtomicU64::new(0));
        let reassigned = Arc::new(AtomicU64::new(0));
        let sentinel = config.heartbeat_budget.map(|budget| {
            let jobs = Arc::clone(&jobs);
            let pool = Arc::clone(&pool);
            let handler_registry = Arc::clone(&registry);
            let hb_missed = Arc::clone(&hb_missed);
            let reassigned = Arc::clone(&reassigned);
            let max_reassigns = config.max_reassigns;
            StallSentinel::spawn(
                Arc::clone(&registry),
                HealthConfig::with_budget(budget),
                move |event| {
                    handle_stall(
                        event,
                        &jobs,
                        &pool,
                        &handler_registry,
                        &hb_missed,
                        &reassigned,
                        max_reassigns,
                    );
                },
            )
        });
        let scrubber = config.scrub_interval.map(|interval| {
            Scrubber::spawn(Arc::clone(&cache), interval, config.scrub_file.clone())
        });
        SweepService {
            config,
            pool,
            registry,
            sentinel: Mutex::new(sentinel),
            scrubber: Mutex::new(scrubber),
            jobs,
            next_job: AtomicU64::new(1),
            started: Instant::now(),
            cache,
            inflight: AtomicUsize::new(0),
            queries: AtomicU64::new(0),
            served: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            hb_missed,
            reassigned,
            degraded: AtomicU64::new(0),
            pool_restarts: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            parker: (Mutex::new(()), Condvar::new()),
        }
    }

    /// The service's configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Queries computing right now.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Runs `f` against the result cache (for warm-start, persistence
    /// and inspection). The lock is held for the duration of `f`; keep
    /// it short — queries block on the same lock for hit checks.
    pub fn with_cache<R>(&self, f: impl FnOnce(&mut ResultCache) -> R) -> R {
        f(&mut self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Asks the serve loop (and idle connection handlers) to wind down.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.unpark();
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Starts draining: in-flight queries finish, new ones are answered
    /// with [`ServiceReply::Draining`], and the serve loop exits once
    /// the last in-flight query completes.
    pub fn request_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.unpark();
    }

    /// Whether the service is draining.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Counts a slow-client eviction (metric, trace and stats).
    pub fn note_evicted(&self) {
        self.evicted.fetch_add(1, Ordering::Relaxed);
        yac_obs::inc(Metric::SlowClientsEvicted);
        yac_obs::trace_instant(TraceEventKind::SlowClientEvicted, TraceCtx::default());
    }

    /// Counts a connection refused at the cap (metric, trace and stats).
    pub fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        yac_obs::inc(Metric::ConnsRejected);
        yac_obs::trace_instant(TraceEventKind::ConnRejected, TraceCtx::default());
    }

    /// Whether the serve loop has a reason to wake right now.
    fn wake_now(&self) -> bool {
        self.shutdown_requested() || (self.draining() && self.inflight() == 0)
    }

    /// Parks the calling thread until [`SweepService::unpark`] or
    /// `timeout`, whichever comes first. The wake condition is
    /// re-checked under the parker lock before waiting, and signal
    /// sites notify under the same lock, so a signal raised between the
    /// caller's own check and this wait still wakes it immediately.
    fn park(&self, timeout: Duration) {
        let (lock, cv) = &self.parker;
        let guard = lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if self.wake_now() {
            return;
        }
        let _ = cv.wait_timeout(guard, timeout);
    }

    /// Wakes a parked serve loop (shutdown, drain, or a freed inflight
    /// slot the drain logic may be waiting on).
    fn unpark(&self) {
        let (lock, cv) = &self.parker;
        drop(
            lock.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        cv.notify_all();
    }

    /// Stops the sentinel and scrubber, then joins the worker pool. Call
    /// after the serve loop has exited.
    pub fn shutdown(self) {
        // Stop the sentinel first: its handler holds pool/jobs clones,
        // and no reassignment should race the teardown.
        if let Some(sentinel) = lock_opt(&self.sentinel).take() {
            sentinel.stop();
        }
        if let Some(mut scrubber) = lock_opt(&self.scrubber).take() {
            scrubber.halt();
        }
        if let Ok(pool) = Arc::try_unwrap(self.pool) {
            pool.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .shutdown();
        }
    }

    /// Runs one synchronous scrub pass (in-memory entries plus the
    /// configured persisted file) — what the background scrubber does
    /// every [`ServiceConfig::scrub_interval`].
    pub fn scrub_now(&self) {
        scrub_pass(&self.cache, self.config.scrub_file.as_deref());
    }

    /// Rebuilds the worker pool in place when a panicking task has
    /// killed one of its workers. Queued tasks of *other* queries drain
    /// onto the old pool's surviving workers before it is torn down;
    /// tasks lost with the dead worker surface as
    /// [`ServiceReply::Retryable`] through their collectors. Returns
    /// whether a rebuild happened (counted in [`Metric::PoolRestarts`],
    /// traced as [`TraceEventKind::PoolRestarted`]).
    pub fn heal_pool(&self) -> bool {
        let dead = self
            .pool
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .dead_workers();
        if dead == 0 {
            return false;
        }
        let old = {
            let mut guard = self
                .pool
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if guard.dead_workers() == 0 {
                return false; // Another query healed it first.
            }
            std::mem::replace(&mut *guard, StealPool::new(self.config.exec.workers))
        };
        // Joined outside the lock so fresh submissions are never blocked
        // on the old pool draining.
        old.shutdown();
        self.pool_restarts.fetch_add(1, Ordering::Relaxed);
        yac_obs::inc(Metric::PoolRestarts);
        yac_obs::trace_instant(TraceEventKind::PoolRestarted, TraceCtx::default());
        true
    }

    /// A snapshot of the service counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let stolen = self
            .pool
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .stolen();
        self.with_cache(|cache| ServiceStats {
            queries: self.queries.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_evictions: cache.evictions(),
            cache_entries: cache.len(),
            cache_bytes: cache.bytes(),
            stolen,
            inflight: self.inflight.load(Ordering::Acquire),
            limit: self.config.max_inflight.max(1),
            evicted: self.evicted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            draining: self.draining(),
            scrub_passes: cache.scrub_passes(),
            quarantined: cache.quarantined(),
            repaired: cache.repaired(),
            reassigned: self.reassigned.load(Ordering::Relaxed),
            pool_restarts: self.pool_restarts.load(Ordering::Relaxed),
        })
    }

    /// A point-in-time liveness report (the `health` wire op).
    #[must_use]
    pub fn health(&self) -> HealthReport {
        let lanes_stalled = lock_opt(&self.sentinel)
            .as_ref()
            .map_or(0, StallSentinel::stalled_lanes);
        self.with_cache(|cache| HealthReport {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            inflight: self.inflight.load(Ordering::Acquire),
            lanes: self.registry.lanes(),
            lanes_busy: self.registry.busy(),
            lanes_stalled,
            heartbeats_missed: self.hb_missed.load(Ordering::Relaxed),
            shards_reassigned: self.reassigned.load(Ordering::Relaxed),
            scrub_passes: cache.scrub_passes(),
            quarantined: cache.quarantined(),
            repaired: cache.repaired(),
            degraded: self.degraded.load(Ordering::Relaxed),
            pool_restarts: self.pool_restarts.load(Ordering::Relaxed),
        })
    }

    /// Answers one query: cache first, then bounded admission, then
    /// supervised computation on the stealing pool. `cancel` is the
    /// query's cooperative abort flag — raise it (the connection handler
    /// does, on client disconnect) and the computation stops between
    /// chips and answers [`ServiceReply::Cancelled`].
    ///
    /// Cache hits bypass admission by design: a saturated service keeps
    /// answering the cheap queries.
    pub fn query(&self, query: &StudyQuery, cancel: &Arc<AtomicBool>) -> ServiceReply {
        self.queries.fetch_add(1, Ordering::Relaxed);
        yac_obs::inc(Metric::QueriesReceived);
        yac_obs::trace_instant(TraceEventKind::QueryReceived, TraceCtx::default());
        if query.chips == 0 {
            return ServiceReply::Error {
                message: "query asks for zero chips".into(),
            };
        }
        if self.draining() {
            yac_obs::inc(Metric::QueriesDraining);
            return ServiceReply::Draining {
                inflight: self.inflight(),
            };
        }
        let key = query.fingerprint();
        if let Some(record) = self.with_cache(|cache| cache.get(key)) {
            return self.served(ServiceReply::Result {
                record,
                key,
                cached: true,
            });
        }
        let limit = self.config.max_inflight.max(1);
        if !self.try_admit(limit) {
            self.busy.fetch_add(1, Ordering::Relaxed);
            yac_obs::inc(Metric::QueriesBusy);
            return ServiceReply::Busy {
                inflight: self.inflight.load(Ordering::Acquire),
                limit,
                retry_after_ms: self.config.retry_after_ms,
            };
        }
        let _slot = InflightSlot(self);
        let _span = yac_obs::phase_ctx(Phase::QueryExec, TraceCtx::default());
        // A pool poisoned by an earlier query is rebuilt before this one
        // fans out, so the damage never outlives the query that saw it.
        self.heal_pool();
        let reply = self.compute(query, key, cancel);
        match reply {
            ServiceReply::Result { .. } => self.served(reply),
            other => other,
        }
    }

    fn served(&self, reply: ServiceReply) -> ServiceReply {
        self.served.fetch_add(1, Ordering::Relaxed);
        yac_obs::inc(Metric::QueriesServed);
        yac_obs::trace_instant(TraceEventKind::QueryServed, TraceCtx::default());
        reply
    }

    fn try_admit(&self, limit: usize) -> bool {
        let mut current = self.inflight.load(Ordering::Acquire);
        loop {
            if current >= limit {
                return false;
            }
            match self.inflight.compare_exchange(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(now) => current = now,
            }
        }
    }

    /// Computes a missed query on the stealing pool and caches the
    /// record if (and only if) every chip was observed — degraded
    /// results depend on which shards failed, so they are returned but
    /// never cached.
    fn compute(&self, query: &StudyQuery, key: u64, cancel: &Arc<AtomicBool>) -> ServiceReply {
        let mut pop = PopulationConfig::paper(query.seed);
        pop.chips = query.chips;
        let mc = match MonteCarlo::try_new(pop.variation) {
            Ok(mc) => mc,
            Err(e) => {
                return ServiceReply::Error {
                    message: StudyError::Config(e).to_string(),
                }
            }
        };
        let shards = shards_for(query.chips, self.config.exec.shard_chips);
        let job = Arc::new(QueryJob {
            mc,
            pop,
            exec: self.config.exec.clone(),
            cancel: Arc::clone(cancel),
        });
        let (tx, rx) = mpsc::channel::<Option<ShardMsg>>();
        let job_id = self.next_job.fetch_add(1, Ordering::Relaxed);
        lock_jobs(&self.jobs).insert(
            job_id,
            ActiveJob {
                job: Arc::clone(&job),
                specs: shards.clone(),
                tx: tx.clone(),
                reassigns: 0,
            },
        );
        for spec in &shards {
            submit_shard(
                &self.pool,
                &self.registry,
                Arc::clone(&job),
                job_id,
                *spec,
                tx.clone(),
            );
        }
        drop(tx);

        // The collector: first report per shard wins (a reassigned shard
        // and its cancelled original may both complete — dedup keeps the
        // result exactly-once), and a periodic timeout checks pool
        // health so a task lost inside a dead worker turns into a typed
        // `Retryable` instead of a hang. The sentinel's reassignments
        // keep the channel open (the job table holds a sender clone)
        // until the job is deregistered below.
        let mut completed: Vec<ChipSample> = Vec::with_capacity(query.chips);
        let mut quarantine = QuarantineLedger::new();
        let mut degraded: Vec<DegradedShard> = Vec::new();
        let mut remaining: HashSet<usize> = shards.iter().map(|s| s.index).collect();
        let mut cancelled = false;
        let mut retryable = false;
        while !remaining.is_empty() {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(Some(ShardMsg::Done {
                    spec,
                    chips,
                    quarantine: q,
                })) => {
                    if remaining.remove(&spec.index) {
                        yac_obs::add(Metric::ChipsQuarantined, q.len() as u64);
                        insert_chips_sorted(&mut completed, chips);
                        quarantine.absorb(q);
                    }
                }
                Ok(Some(ShardMsg::Degraded {
                    spec,
                    attempts,
                    error,
                })) => {
                    if remaining.remove(&spec.index) {
                        degraded.push(DegradedShard {
                            start: spec.start,
                            len: spec.len,
                            attempts,
                            error,
                        });
                    }
                }
                Ok(None) => {
                    cancelled = true;
                    break;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if cancel.load(Ordering::Relaxed) {
                        cancelled = true;
                        break;
                    }
                    if self.heal_pool() {
                        // Shards queued on (or running in) the dead
                        // worker are gone; the pool is already healthy
                        // again, so the same request will succeed.
                        retryable = true;
                        break;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        lock_jobs(&self.jobs).remove(&job_id);
        if retryable {
            yac_obs::inc(Metric::QueriesRetryable);
            return ServiceReply::Retryable {
                retry_after_ms: self.config.retry_after_ms,
            };
        }
        if cancelled || cancel.load(Ordering::Relaxed) {
            return ServiceReply::Cancelled;
        }
        if !remaining.is_empty() {
            // Every sender vanished with shards unreported — possible
            // only through a fault the ladder did not cover. Transient
            // by construction: report it as such.
            yac_obs::inc(Metric::QueriesRetryable);
            return ServiceReply::Retryable {
                retry_after_ms: self.config.retry_after_ms,
            };
        }
        degraded.sort_by_key(|d| d.start);
        let population = Population::from_parts(
            completed,
            quarantine,
            *job.pop.regular_model.calibration(),
            job.pop.seed,
        );
        let outcome = finish_outcome(population, degraded, query.chips);
        match study_result_from_outcome(
            &outcome,
            query.constraint,
            query.kind,
            query.seed,
            query.cpi.as_ref(),
        ) {
            Ok(result) => {
                let record = render_result(&result);
                if result.missing_chips == 0 {
                    self.with_cache(|cache| cache.insert(key, record.clone()));
                } else {
                    self.degraded.fetch_add(1, Ordering::Relaxed);
                }
                ServiceReply::Result {
                    record,
                    key,
                    cached: false,
                }
            }
            Err(e) => ServiceReply::Error {
                message: e.to_string(),
            },
        }
    }
}

// ---------------------------------------------------------------------
// Flat JSON encoding
// ---------------------------------------------------------------------
//
// The protocol needs exactly flat objects of scalars, so the codec is
// ~100 lines here instead of a dependency: an escaping writer and a
// recursive-descent parser for one object of string/number/bool/null
// values. Numbers are kept as raw token text until a typed accessor
// parses them, so `u64` seeds survive without an `f64` round trip.

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// One scalar value in a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
enum JsonScalar {
    Str(String),
    /// Raw number token, parsed on demand by the typed accessors.
    Num(String),
    Bool(bool),
    Null,
}

/// A parsed flat JSON object with typed, diagnostic-bearing accessors.
#[derive(Debug)]
struct FlatObject {
    fields: Vec<(String, JsonScalar)>,
}

impl FlatObject {
    fn get(&self, key: &str) -> Option<&JsonScalar> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        match self.get(key) {
            Some(JsonScalar::Str(s)) => Ok(s),
            Some(_) => Err(format!("field {key:?} is not a string")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        match self.get(key) {
            Some(JsonScalar::Num(raw)) => raw
                .parse()
                .map_err(|_| format!("field {key:?} is not an unsigned integer")),
            Some(_) => Err(format!("field {key:?} is not a number")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    fn usize(&self, key: &str) -> Result<usize, String> {
        self.u64(key).map(|v| v as usize)
    }

    fn opt_u64(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(_) => self.u64(key).map(Some),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key) {
            Some(JsonScalar::Bool(b)) => Ok(*b),
            Some(_) => Err(format!("field {key:?} is not a bool")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    fn opt_bool(&self, key: &str) -> Result<Option<bool>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(_) => self.bool(key).map(Some),
        }
    }
}

struct JsonParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.chars.next_if(|c| c.is_ascii_whitespace()).is_some() {}
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(format!("expected {want:?}, got {c:?}")),
            None => Err(format!("expected {want:?}, got end of input")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match self.chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = self
                                .chars
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + digit;
                        }
                        // Surrogates don't appear in our own output;
                        // foreign ones are refused rather than mangled.
                        out.push(char::from_u32(code).ok_or("\\u escape is not a scalar value")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn scalar(&mut self) -> Result<JsonScalar, String> {
        match self.chars.peek() {
            Some('"') => self.string().map(JsonScalar::Str),
            Some('t') => self.literal("true").map(|()| JsonScalar::Bool(true)),
            Some('f') => self.literal("false").map(|()| JsonScalar::Bool(false)),
            Some('n') => self.literal("null").map(|()| JsonScalar::Null),
            Some(c) if *c == '-' || c.is_ascii_digit() => {
                let mut raw = String::new();
                while let Some(c) = self
                    .chars
                    .next_if(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                {
                    raw.push(c);
                }
                // Validate the token shape once; integer accessors
                // re-parse the raw text exactly.
                raw.parse::<f64>()
                    .map_err(|_| format!("bad number {raw:?}"))?;
                Ok(JsonScalar::Num(raw))
            }
            Some(c) => Err(format!("unexpected {c:?} (nested values not supported)")),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(())
    }
}

/// Parses one flat JSON object (string/number/bool/null values only).
fn parse_flat_object(text: &str) -> Result<FlatObject, String> {
    let mut p = JsonParser {
        chars: text.chars().peekable(),
    };
    p.skip_ws();
    p.expect('{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.chars.peek() == Some(&'}') {
        p.chars.next();
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            let value = p.scalar()?;
            fields.push((key, value));
            p.skip_ws();
            match p.chars.next() {
                Some(',') => {}
                Some('}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if let Some(c) = p.chars.next() {
        return Err(format!("trailing {c:?} after object"));
    }
    Ok(FlatObject { fields })
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    let _ = std::fmt::Write::write_fmt(out, format_args!("\"{key}\":\""));
    json_escape(out, value);
    out.push('"');
}

impl ServiceRequest {
    /// Renders the request as its wire JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            ServiceRequest::Query {
                query: q,
                deadline_ms,
            } => {
                let kind = match q.kind {
                    PowerDownKind::Vertical => "vertical",
                    PowerDownKind::Horizontal => "horizontal",
                };
                let mut out = format!(
                    "{{\"op\":\"query\",\"chips\":{},\"seed\":{},\"constraint\":\"{}\",\"kind\":\"{kind}\"",
                    q.chips, q.seed, q.constraint.name
                );
                if let Some(cpi) = &q.cpi {
                    let _ = std::fmt::Write::write_fmt(
                        &mut out,
                        format_args!(
                            ",\"warmup\":{},\"measure\":{}",
                            cpi.warmup_uops, cpi.measure_uops
                        ),
                    );
                }
                if let Some(ms) = deadline_ms {
                    let _ =
                        std::fmt::Write::write_fmt(&mut out, format_args!(",\"deadline_ms\":{ms}"));
                }
                out.push('}');
                out
            }
            ServiceRequest::Stats => "{\"op\":\"stats\"}".to_owned(),
            ServiceRequest::Health => "{\"op\":\"health\"}".to_owned(),
            ServiceRequest::Drain => "{\"op\":\"drain\"}".to_owned(),
            ServiceRequest::Shutdown => "{\"op\":\"shutdown\"}".to_owned(),
        }
    }

    /// Parses a wire request.
    ///
    /// # Errors
    ///
    /// Returns a one-line diagnostic naming the malformed field; the
    /// server sends it back as [`ServiceReply::Error`].
    pub fn parse(text: &str) -> Result<ServiceRequest, String> {
        let obj = parse_flat_object(text)?;
        match obj.str("op")? {
            "stats" => Ok(ServiceRequest::Stats),
            "health" => Ok(ServiceRequest::Health),
            "drain" => Ok(ServiceRequest::Drain),
            "shutdown" => Ok(ServiceRequest::Shutdown),
            "query" => {
                let name = obj.str("constraint")?;
                let constraint = constraint_by_name(name)
                    .ok_or_else(|| format!("unknown constraint {name:?}"))?;
                let kind = match obj.str("kind")? {
                    "vertical" => PowerDownKind::Vertical,
                    "horizontal" => PowerDownKind::Horizontal,
                    other => return Err(format!("unknown kind {other:?}")),
                };
                let cpi = match (obj.opt_u64("warmup")?, obj.opt_u64("measure")?) {
                    (Some(warmup_uops), Some(measure_uops)) => Some(CpiOptions {
                        warmup_uops,
                        measure_uops,
                    }),
                    (None, None) => None,
                    _ => return Err("warmup and measure must be given together".into()),
                };
                Ok(ServiceRequest::Query {
                    query: StudyQuery {
                        chips: obj.usize("chips")?,
                        seed: obj.u64("seed")?,
                        constraint,
                        kind,
                        cpi,
                    },
                    deadline_ms: obj.opt_u64("deadline_ms")?,
                })
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

impl ServiceReply {
    /// Renders the reply as its wire JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            ServiceReply::Result {
                record,
                key,
                cached,
            } => {
                let mut out =
                    format!("{{\"status\":\"ok\",\"cached\":{cached},\"key\":\"{key:016x}\",");
                push_str_field(&mut out, "record", record);
                out.push('}');
                out
            }
            ServiceReply::Busy {
                inflight,
                limit,
                retry_after_ms,
            } => format!(
                "{{\"status\":\"busy\",\"inflight\":{inflight},\"limit\":{limit},\
                 \"retry_after_ms\":{retry_after_ms}}}"
            ),
            ServiceReply::Draining { inflight } => {
                format!("{{\"status\":\"draining\",\"inflight\":{inflight}}}")
            }
            ServiceReply::Deadline { elapsed_ms } => {
                format!("{{\"status\":\"deadline\",\"elapsed_ms\":{elapsed_ms}}}")
            }
            ServiceReply::Cancelled => "{\"status\":\"cancelled\"}".to_owned(),
            ServiceReply::Retryable { retry_after_ms } => {
                format!("{{\"status\":\"retryable\",\"retry_after_ms\":{retry_after_ms}}}")
            }
            ServiceReply::Error { message } => {
                let mut out = "{\"status\":\"error\",".to_owned();
                push_str_field(&mut out, "message", message);
                out.push('}');
                out
            }
            ServiceReply::Stats(s) => format!(
                "{{\"status\":\"stats\",\"queries\":{},\"served\":{},\"busy\":{},\
                 \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\
                 \"cache_entries\":{},\"cache_bytes\":{},\"stolen\":{},\
                 \"inflight\":{},\"limit\":{},\"evicted\":{},\"rejected\":{},\
                 \"draining\":{},\"scrub_passes\":{},\"quarantined\":{},\
                 \"repaired\":{},\"reassigned\":{},\"pool_restarts\":{}}}",
                s.queries,
                s.served,
                s.busy,
                s.cache_hits,
                s.cache_misses,
                s.cache_evictions,
                s.cache_entries,
                s.cache_bytes,
                s.stolen,
                s.inflight,
                s.limit,
                s.evicted,
                s.rejected,
                s.draining,
                s.scrub_passes,
                s.quarantined,
                s.repaired,
                s.reassigned,
                s.pool_restarts
            ),
            ServiceReply::Health(h) => format!(
                "{{\"status\":\"health\",\"uptime_ms\":{},\"inflight\":{},\
                 \"lanes\":{},\"lanes_busy\":{},\"lanes_stalled\":{},\
                 \"heartbeats_missed\":{},\"shards_reassigned\":{},\
                 \"scrub_passes\":{},\"quarantined\":{},\"repaired\":{},\
                 \"degraded\":{},\"pool_restarts\":{}}}",
                h.uptime_ms,
                h.inflight,
                h.lanes,
                h.lanes_busy,
                h.lanes_stalled,
                h.heartbeats_missed,
                h.shards_reassigned,
                h.scrub_passes,
                h.quarantined,
                h.repaired,
                h.degraded,
                h.pool_restarts
            ),
            ServiceReply::Bye => "{\"status\":\"bye\"}".to_owned(),
        }
    }

    /// Parses a wire reply.
    ///
    /// # Errors
    ///
    /// Returns a one-line diagnostic naming the malformed field.
    pub fn parse(text: &str) -> Result<ServiceReply, String> {
        let obj = parse_flat_object(text)?;
        match obj.str("status")? {
            "ok" => {
                let key_hex = obj.str("key")?;
                let key =
                    u64::from_str_radix(key_hex, 16).map_err(|_| format!("bad key {key_hex:?}"))?;
                Ok(ServiceReply::Result {
                    record: obj.str("record")?.to_owned(),
                    key,
                    cached: obj.bool("cached")?,
                })
            }
            "busy" => Ok(ServiceReply::Busy {
                inflight: obj.usize("inflight")?,
                limit: obj.usize("limit")?,
                // Absent from pre-hint servers: assume the default.
                retry_after_ms: obj
                    .opt_u64("retry_after_ms")?
                    .unwrap_or(DEFAULT_RETRY_AFTER_MS),
            }),
            "draining" => Ok(ServiceReply::Draining {
                inflight: obj.usize("inflight")?,
            }),
            "deadline" => Ok(ServiceReply::Deadline {
                elapsed_ms: obj.u64("elapsed_ms")?,
            }),
            "cancelled" => Ok(ServiceReply::Cancelled),
            "retryable" => Ok(ServiceReply::Retryable {
                retry_after_ms: obj
                    .opt_u64("retry_after_ms")?
                    .unwrap_or(DEFAULT_RETRY_AFTER_MS),
            }),
            "error" => Ok(ServiceReply::Error {
                message: obj.str("message")?.to_owned(),
            }),
            "stats" => Ok(ServiceReply::Stats(ServiceStats {
                queries: obj.u64("queries")?,
                served: obj.u64("served")?,
                busy: obj.u64("busy")?,
                cache_hits: obj.u64("cache_hits")?,
                cache_misses: obj.u64("cache_misses")?,
                cache_evictions: obj.u64("cache_evictions")?,
                cache_entries: obj.usize("cache_entries")?,
                cache_bytes: obj.usize("cache_bytes")?,
                stolen: obj.u64("stolen")?,
                inflight: obj.usize("inflight")?,
                limit: obj.usize("limit")?,
                // Hardening-era fields; absent from older servers.
                evicted: obj.opt_u64("evicted")?.unwrap_or(0),
                rejected: obj.opt_u64("rejected")?.unwrap_or(0),
                draining: obj.opt_bool("draining")?.unwrap_or(false),
                // Self-healing-era fields; absent from older servers.
                scrub_passes: obj.opt_u64("scrub_passes")?.unwrap_or(0),
                quarantined: obj.opt_u64("quarantined")?.unwrap_or(0),
                repaired: obj.opt_u64("repaired")?.unwrap_or(0),
                reassigned: obj.opt_u64("reassigned")?.unwrap_or(0),
                pool_restarts: obj.opt_u64("pool_restarts")?.unwrap_or(0),
            })),
            "health" => Ok(ServiceReply::Health(HealthReport {
                uptime_ms: obj.u64("uptime_ms")?,
                inflight: obj.usize("inflight")?,
                lanes: obj.usize("lanes")?,
                lanes_busy: obj.usize("lanes_busy")?,
                lanes_stalled: obj.u64("lanes_stalled")?,
                heartbeats_missed: obj.u64("heartbeats_missed")?,
                shards_reassigned: obj.u64("shards_reassigned")?,
                scrub_passes: obj.u64("scrub_passes")?,
                quarantined: obj.u64("quarantined")?,
                repaired: obj.u64("repaired")?,
                degraded: obj.u64("degraded")?,
                pool_restarts: obj.u64("pool_restarts")?,
            })),
            "bye" => Ok(ServiceReply::Bye),
            other => Err(format!("unknown status {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------
// Framing and the TCP serve loop
// ---------------------------------------------------------------------

/// Renders the wire image of one frame: big-endian `u32` length,
/// big-endian `u32` CRC-32 of the payload, then the payload.
fn frame_bytes(payload: &[u8]) -> io::Result<Vec<u8>> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&crc32(payload).to_be_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// Writes one CRC-checked, length-prefixed frame (big-endian `u32`
/// length, big-endian `u32` payload CRC-32, then the payload) and
/// flushes.
///
/// # Errors
///
/// Propagates the underlying write error; refuses payloads over
/// [`MAX_FRAME`] as [`io::ErrorKind::InvalidData`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&frame_bytes(payload)?)?;
    w.flush()
}

/// Reads `buf.len()` bytes from a *blocking* reader. `Ok(false)` means
/// clean EOF before the first byte (only honoured when `at_start`).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8], at_start: bool) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 && at_start => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Diagnoses a frame whose payload fails its CRC.
fn crc_mismatch(want: u32, got: u32) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("frame payload fails its CRC (header {want:08x}, payload {got:08x})"),
    )
}

/// Reads one CRC-checked, length-prefixed frame from a *blocking*
/// reader. `Ok(None)` means the peer closed the connection cleanly
/// before a frame started.
///
/// The payload buffer grows as bytes actually arrive (in steps of at
/// most 64 KiB), so a hostile header claiming [`MAX_FRAME`] bytes on a
/// connection that then stalls or closes never costs a 16 MiB
/// allocation up front.
///
/// # Errors
///
/// [`io::ErrorKind::UnexpectedEof`] when the peer closes mid-frame;
/// [`io::ErrorKind::InvalidData`] for frames over [`MAX_FRAME`] or
/// payloads failing their CRC.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    if !read_exact_or_eof(r, &mut len_bytes, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut crc_bytes = [0u8; 4];
    read_exact_or_eof(r, &mut crc_bytes, false)?;
    let want = u32::from_be_bytes(crc_bytes);
    let mut payload = Vec::with_capacity(len.min(64 << 10));
    let mut chunk = [0u8; 4096];
    while payload.len() < len {
        let step = (len - payload.len()).min(chunk.len());
        match r.read(&mut chunk[..step]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => payload.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let got = crc32(&payload);
    if got != want {
        return Err(crc_mismatch(want, got));
    }
    Ok(Some(payload))
}

/// Whether an error is the "no data within the socket timeout" signal.
/// `set_read_timeout` surfaces as either kind depending on platform.
fn is_would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// How long connection sockets block per read/write attempt. The kernel
/// parks the thread for up to one tick (`SO_RCVTIMEO`/`SO_SNDTIMEO`),
/// so idling costs no CPU; shutdown and frame deadlines are checked
/// once per tick.
const IO_TICK: Duration = Duration::from_millis(20);

/// One read attempt from a frame loop.
enum FrameIn {
    /// A whole frame arrived.
    Frame(Vec<u8>),
    /// Clean EOF before a frame, or shutdown was requested while idle.
    Closed,
    /// The peer stalled mid-frame past the read deadline: evict it.
    Evicted,
}

/// Reads one frame from a connection socket whose read timeout is
/// [`IO_TICK`]. Idle ticks *between* frames are free — a connected
/// client may stay silent forever — but once the first byte of a frame
/// arrives the rest must follow within `deadline` or the peer is
/// reported as [`FrameIn::Evicted`].
fn read_frame_conn(
    stream: &mut ChaosStream<TcpStream>,
    service: &SweepService,
    deadline: Duration,
) -> io::Result<FrameIn> {
    let mut header = [0u8; 8];
    let mut filled = 0;
    let mut started: Option<Instant> = None;
    // Header: length then CRC. The eviction clock arms at byte one.
    while filled < 8 {
        match stream.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameIn::Closed),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => {
                started.get_or_insert_with(Instant::now);
                filled += n;
            }
            Err(e) if is_would_block(&e) => {
                if filled == 0 {
                    if service.shutdown_requested() {
                        return Ok(FrameIn::Closed);
                    }
                } else if started.is_some_and(|t| t.elapsed() >= deadline) {
                    return Ok(FrameIn::Evicted);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let want = u32::from_be_bytes([header[4], header[5], header[6], header[7]]);
    let armed = started.unwrap_or_else(Instant::now);
    let mut payload = Vec::with_capacity(len.min(64 << 10));
    let mut chunk = [0u8; 4096];
    while payload.len() < len {
        let step = (len - payload.len()).min(chunk.len());
        match stream.read(&mut chunk[..step]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => payload.extend_from_slice(&chunk[..n]),
            Err(e) if is_would_block(&e) => {
                if armed.elapsed() >= deadline {
                    return Ok(FrameIn::Evicted);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let got = crc32(&payload);
    if got != want {
        return Err(crc_mismatch(want, got));
    }
    Ok(FrameIn::Frame(payload))
}

/// Writes all of `bytes` to a connection socket whose write timeout is
/// [`IO_TICK`], giving up (`TimedOut`) when the peer accepts nothing
/// for `deadline`.
fn write_all_deadline(
    stream: &mut ChaosStream<TcpStream>,
    bytes: &[u8],
    deadline: Duration,
) -> io::Result<()> {
    let started = Instant::now();
    let mut at = 0;
    while at < bytes.len() {
        match stream.write(&bytes[at..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "socket refused bytes",
                ))
            }
            Ok(n) => at += n,
            Err(e) if is_would_block(&e) => {
                if started.elapsed() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled accepting the reply",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Frames and sends one reply under the service's write deadline. A
/// stalled peer is evicted (counted and traced) and reported as an
/// error so the handler drops the connection.
fn send_reply(
    stream: &mut ChaosStream<TcpStream>,
    service: &SweepService,
    reply: &ServiceReply,
) -> io::Result<()> {
    let frame = frame_bytes(reply.to_json().as_bytes())?;
    match write_all_deadline(stream, &frame, service.config().write_deadline) {
        Err(e) if e.kind() == io::ErrorKind::TimedOut => {
            service.note_evicted();
            Err(e)
        }
        other => other,
    }
}

/// Watches a query's connection while it computes: raises the query's
/// cancel flag on client disconnect (peeking a shared-description clone
/// of the socket, so it consumes nothing the handler will later read)
/// and, when the query carried a `deadline_ms`, when the deadline
/// expires — recording which of the two fired.
///
/// A failed clone or spawn degrades gracefully: the query runs
/// unwatched (no cancel-on-disconnect, no deadline) instead of killing
/// the connection handler.
struct ConnMonitor {
    stop: Arc<AtomicBool>,
    deadline_hit: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ConnMonitor {
    fn spawn(stream: &TcpStream, cancel: Arc<AtomicBool>, deadline: Option<Duration>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let deadline_hit = Arc::new(AtomicBool::new(false));
        // The clone is optional: without it the watcher still enforces
        // the deadline, it just cannot see disconnects.
        let peek_stream = stream.try_clone().ok();
        let handle = {
            let stop = Arc::clone(&stop);
            let deadline_hit = Arc::clone(&deadline_hit);
            std::thread::Builder::new()
                .name("svc-conn-watch".into())
                .spawn(move || {
                    let started = Instant::now();
                    let mut byte = [0u8; 1];
                    while !stop.load(Ordering::Relaxed) {
                        if deadline.is_some_and(|limit| started.elapsed() >= limit) {
                            deadline_hit.store(true, Ordering::Relaxed);
                            cancel.store(true, Ordering::Relaxed);
                            return;
                        }
                        match peek_stream.as_ref().map(|s| s.peek(&mut byte)) {
                            // No clone: deadline-only watching.
                            None => std::thread::sleep(IO_TICK),
                            // Orderly shutdown by the peer.
                            Some(Ok(0)) => {
                                cancel.store(true, Ordering::Relaxed);
                                return;
                            }
                            // Pipelined bytes: the client is alive. The
                            // peek itself blocked up to IO_TICK, so no
                            // extra nap is needed on this arm or the
                            // timeout arm.
                            Some(Ok(_)) => std::thread::sleep(IO_TICK),
                            Some(Err(e)) if is_would_block(&e) => {}
                            // A signal interrupted the peek: the peer is
                            // not gone, retry. Folding this into the arm
                            // below would cancel live queries spuriously.
                            Some(Err(e)) if e.kind() == io::ErrorKind::Interrupted => {}
                            // Reset or any hard error: treat as gone.
                            Some(Err(_)) => {
                                cancel.store(true, Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                })
                .ok()
        };
        ConnMonitor {
            stop,
            deadline_hit,
            handle,
        }
    }

    /// Whether the watcher cancelled the query because its deadline
    /// expired (as opposed to a client disconnect).
    fn deadline_hit(&self) -> bool {
        self.deadline_hit.load(Ordering::Relaxed)
    }
}

impl Drop for ConnMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn handle_connection(stream: TcpStream, service: &Arc<SweepService>) {
    let _ = stream.set_nodelay(true);
    // Blocking IO with a short kernel timeout: the thread parks in the
    // kernel between bytes (no poll-loop CPU burn) and surfaces every
    // IO_TICK to check shutdown and frame deadlines.
    if stream.set_read_timeout(Some(IO_TICK)).is_err()
        || stream.set_write_timeout(Some(IO_TICK)).is_err()
    {
        return;
    }
    // All bytes flow through the chaos layer; without a net plan the
    // wrapper is a transparent passthrough.
    let mut stream = ChaosStream::new(stream, NetSite::Server);
    let read_deadline = service.config().read_deadline;
    loop {
        let payload = match read_frame_conn(&mut stream, service, read_deadline) {
            Ok(FrameIn::Frame(payload)) => payload,
            Ok(FrameIn::Closed) => return,
            Ok(FrameIn::Evicted) => {
                service.note_evicted();
                return;
            }
            // A corrupt or oversized frame gets a best-effort typed
            // error before the close — the peer learns why instead of
            // seeing a bare reset. Framing may be desynced, so the
            // connection cannot be reused either way.
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ = send_reply(
                    &mut stream,
                    service,
                    &ServiceReply::Error {
                        message: e.to_string(),
                    },
                );
                return;
            }
            Err(_) => return,
        };
        let request = String::from_utf8(payload)
            .map_err(|_| "request is not UTF-8".to_owned())
            .and_then(|text| ServiceRequest::parse(&text));
        match request {
            Err(message) => {
                if send_reply(&mut stream, service, &ServiceReply::Error { message }).is_err() {
                    return;
                }
            }
            Ok(ServiceRequest::Query { query, deadline_ms }) => {
                let cancel = Arc::new(AtomicBool::new(false));
                let started = Instant::now();
                let monitor = ConnMonitor::spawn(
                    stream.get_ref(),
                    Arc::clone(&cancel),
                    deadline_ms.map(Duration::from_millis),
                );
                let mut reply = service.query(&query, &cancel);
                let deadline_hit = monitor.deadline_hit();
                drop(monitor);
                if deadline_hit && reply == ServiceReply::Cancelled {
                    reply = ServiceReply::Deadline {
                        elapsed_ms: started.elapsed().as_millis() as u64,
                    };
                }
                if send_reply(&mut stream, service, &reply).is_err() {
                    return;
                }
            }
            Ok(ServiceRequest::Stats) => {
                if send_reply(&mut stream, service, &ServiceReply::Stats(service.stats())).is_err()
                {
                    return;
                }
            }
            Ok(ServiceRequest::Health) => {
                let reply = ServiceReply::Health(service.health());
                if send_reply(&mut stream, service, &reply).is_err() {
                    return;
                }
            }
            Ok(ServiceRequest::Drain) => {
                service.request_drain();
                let reply = ServiceReply::Draining {
                    inflight: service.inflight(),
                };
                if send_reply(&mut stream, service, &reply).is_err() {
                    return;
                }
            }
            Ok(ServiceRequest::Shutdown) => {
                let _ = send_reply(&mut stream, service, &ServiceReply::Bye);
                service.request_shutdown();
                return;
            }
        }
    }
}

/// Tells an over-cap connection it was refused: a best-effort `Busy`
/// frame under a short write timeout, then the stream drops. Failures
/// are ignored — the refusal is advisory; the close is the decision.
fn reject_connection(stream: TcpStream, conns: usize, cap: usize, service: &SweepService) {
    service.note_rejected();
    let _ = stream.set_write_timeout(Some(IO_TICK));
    let mut stream = ChaosStream::new(stream, NetSite::Server);
    let reply = ServiceReply::Busy {
        inflight: conns,
        limit: cap,
        retry_after_ms: service.config().retry_after_ms,
    };
    if let Ok(frame) = frame_bytes(reply.to_json().as_bytes()) {
        let _ = write_all_deadline(&mut stream, &frame, IO_TICK);
    }
}

/// Runs the accept loop until [`SweepService::request_shutdown`] (any
/// connection's `shutdown` op, a completed drain, or the embedding
/// process). Each connection gets its own handler thread, up to
/// [`ServiceConfig::max_conns`]; the excess connection is refused with
/// a best-effort `Busy` frame. All handlers are joined before the loop
/// returns, so a clean return means no request is still in flight.
///
/// The loop parks on the service's condvar between accepts (woken by
/// shutdown, drain, and freed inflight slots) instead of sleep-polling,
/// bounded by a 25 ms tick for newly arrived connections.
///
/// # Errors
///
/// Propagates listener errors other than the nonblocking idle signal.
pub fn serve(listener: &TcpListener, service: &Arc<SweepService>) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let cap = service.config().max_conns.max(1);
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !service.shutdown_requested() {
        // A drain completes once the last in-flight query finishes; any
        // still-open idle connections see the shutdown flag within one
        // IO_TICK and wind down before the joins below return.
        if service.draining() && service.inflight() == 0 {
            service.request_shutdown();
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                handlers.retain(|h| !h.is_finished());
                if handlers.len() >= cap {
                    reject_connection(stream, handlers.len(), cap, service);
                    continue;
                }
                let service = Arc::clone(service);
                handlers.push(
                    std::thread::Builder::new()
                        .name("svc-conn".into())
                        .spawn(move || handle_connection(stream, &service))
                        .map_err(io::Error::other)?,
                );
            }
            Err(e) if is_would_block(&e) => {
                handlers.retain(|h| !h.is_finished());
                service.park(Duration::from_millis(25));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
    Ok(())
}

/// Sends one request over a fresh blocking connection and returns the
/// typed reply plus the raw reply JSON (callers print or persist the
/// raw text so nothing is re-rendered on the client side).
///
/// # Errors
///
/// Propagates connect/read/write failures; a malformed reply surfaces
/// as [`io::ErrorKind::InvalidData`].
pub fn client_request(addr: &str, request: &ServiceRequest) -> io::Result<(ServiceReply, String)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    // Client bytes flow through the chaos layer too, so a torture run
    // exercises both directions of the wire.
    let mut stream = ChaosStream::new(stream, NetSite::Client);
    write_frame(&mut stream, request.to_json().as_bytes())?;
    let payload = read_frame(&mut stream)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed without replying",
        )
    })?;
    let text = String::from_utf8(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let reply =
        ServiceReply::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok((reply, text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query() -> StudyQuery {
        StudyQuery {
            chips: 32,
            seed: 11,
            constraint: ConstraintSpec::STRICT,
            kind: PowerDownKind::Horizontal,
            cpi: Some(CpiOptions {
                warmup_uops: 100,
                measure_uops: 400,
            }),
        }
    }

    #[test]
    fn query_fingerprint_is_the_single_cell_grid_fingerprint() {
        let q = query();
        let grid = SweepGrid {
            chips: q.chips,
            seeds: vec![q.seed],
            constraints: vec![q.constraint],
            kinds: vec![q.kind],
        };
        let config = SweepConfig {
            cpi: q.cpi,
            ..SweepConfig::default()
        };
        assert_eq!(q.fingerprint(), grid.fingerprint(&config));

        // Executor tuning on the service side must not move the key.
        let mut other = config.clone();
        other.exec.workers = 13;
        other.checkpoint_every = 2;
        assert_eq!(q.fingerprint(), grid.fingerprint(&other));

        // Every result-shaping field must.
        for changed in [
            StudyQuery { chips: 33, ..q },
            StudyQuery { seed: 12, ..q },
            StudyQuery {
                constraint: ConstraintSpec::NOMINAL,
                ..q
            },
            StudyQuery {
                kind: PowerDownKind::Vertical,
                ..q
            },
            StudyQuery { cpi: None, ..q },
        ] {
            assert_ne!(changed.fingerprint(), q.fingerprint(), "{changed:?}");
        }
    }

    #[test]
    fn from_spec_keys_match_direct_queries() {
        let grid = SweepGrid {
            chips: 16,
            seeds: vec![5, 6],
            constraints: vec![ConstraintSpec::NOMINAL, ConstraintSpec::STRICT],
            kinds: vec![PowerDownKind::Vertical],
        };
        let config = SweepConfig::default();
        for spec in grid.studies() {
            let warm = StudyQuery::from_spec(&grid, &config, &spec);
            let direct = StudyQuery {
                chips: 16,
                seed: spec.seed,
                constraint: spec.constraint,
                kind: spec.kind,
                cpi: None,
            };
            assert_eq!(warm.fingerprint(), direct.fingerprint());
        }
    }

    #[test]
    fn cache_serves_lru_under_byte_budget() {
        let record = "x".repeat(52); // 100 bytes with overhead
        let mut cache = ResultCache::new(2 * entry_bytes(record.as_bytes()));
        assert!(cache.insert(1, record.clone()));
        assert!(cache.insert(2, record.clone()));
        assert_eq!(cache.bytes(), 2 * entry_bytes(record.as_bytes()));

        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(cache.get(1).as_deref(), Some(record.as_str()));
        assert!(cache.insert(3, record.clone()));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(2).is_none(), "LRU entry 2 was evicted");
        assert!(cache.get(1).is_some() && cache.get(3).is_some());
        assert!(cache.bytes() <= cache.budget());

        // An entry bigger than the whole budget is refused, not churned.
        let before = cache.len();
        assert!(!cache.insert(4, "y".repeat(cache.budget() + 1)));
        assert_eq!(cache.len(), before);

        // Reinserting an existing key replaces, not double-counts.
        assert!(cache.insert(1, record.clone()));
        assert_eq!(cache.bytes(), 2 * entry_bytes(record.as_bytes()));
    }

    #[test]
    fn rotted_entries_are_quarantined_on_read_and_repaired_on_insert() {
        let mut cache = ResultCache::new(4096);
        let record = "total 4 quarantined 0\n".to_string();
        assert!(cache.insert(7, record.clone()));

        // Rot the stored copy behind the CRC's back.
        cache.entries.get_mut(&7).unwrap().record[0] ^= 0x40;

        // The rotted entry is never served: the read quarantines it and
        // reports a miss, so the caller recomputes.
        assert_eq!(cache.get(7), None);
        assert_eq!(cache.quarantined(), 1);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes(), 0);

        // The recompute's insert is the repair — and the repaired entry
        // is bit-identical to a cold compute, because it *is* one.
        assert!(cache.insert(7, record.clone()));
        assert_eq!(cache.repaired(), 1);
        assert_eq!(cache.get(7).as_deref(), Some(record.as_str()));

        // A second insert over the same key is a refresh, not a repair.
        assert!(cache.insert(7, record));
        assert_eq!(cache.repaired(), 1);
    }

    #[test]
    fn scrub_quarantines_every_rotted_entry_in_one_pass() {
        let mut cache = ResultCache::new(4096);
        for key in 0..4u64 {
            assert!(cache.insert(key, format!("record {key}\n")));
        }
        cache.entries.get_mut(&1).unwrap().record[3] ^= 0x01;
        cache.entries.get_mut(&3).unwrap().record[5] ^= 0x80;

        assert_eq!(cache.scrub(), 2);
        assert_eq!(cache.scrub_passes(), 1);
        assert_eq!(cache.quarantined(), 2);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(0).is_some() && cache.get(2).is_some());

        // A clean pass still counts as a pass, quarantines nothing.
        assert_eq!(cache.scrub(), 0);
        assert_eq!(cache.scrub_passes(), 2);
        assert_eq!(cache.quarantined(), 2);
    }

    /// A canonical record (persistable: [`ResultCache::load`] re-parses
    /// entries, so arbitrary text won't do). `total` varies the bytes.
    fn canonical_record(total: usize) -> String {
        use crate::analysis::{LossBreakdown, LossTable, SchemeLosses};
        use crate::confidence::YieldInterval;
        use crate::sweep::StudyResult;
        use yac_circuit::CacheVariant;
        render_result(&StudyResult {
            loss: LossTable {
                base_variant: CacheVariant::Horizontal,
                spec_name: "strict".into(),
                total_chips: total,
                base: LossBreakdown {
                    leakage: 2,
                    delay: vec![1, 0, 0, 0],
                },
                schemes: vec![SchemeLosses {
                    name: "H-YAPD".into(),
                    losses: LossBreakdown {
                        leakage: 2,
                        delay: vec![0, 0, 0, 0],
                    },
                }],
                quarantined: 1,
            },
            yield_interval: YieldInterval {
                estimate: 0.9,
                lo: 0.85,
                hi: 0.95,
            },
            evaluated_chips: total,
            missing_chips: 0,
            degraded_shards: 0,
            mean_cpi: None,
        })
    }

    #[test]
    fn save_skips_rotted_entries_instead_of_laundering_them() {
        let path = std::env::temp_dir()
            .join("yac-service-tests")
            .join("save-skips-rot.cache");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let keep = canonical_record(100);
        let mut cache = ResultCache::new(4096);
        assert!(cache.insert(1, keep.clone()));
        assert!(cache.insert(2, canonical_record(200)));
        cache.entries.get_mut(&2).unwrap().record[0] ^= 0x02;
        cache.save(&path).unwrap();

        // The rotted entry never reaches disk under a fresh line CRC.
        let mut loaded = ResultCache::load(&path, 4096).unwrap().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.get(1).as_deref(), Some(keep.as_str()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scrub_file_rewrites_a_file_with_rotted_lines() {
        let path = std::env::temp_dir()
            .join("yac-service-tests")
            .join("scrub-file-repairs.cache");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let (alpha, beta) = (canonical_record(100), canonical_record(200));
        let mut cache = ResultCache::new(4096);
        assert!(cache.insert(1, alpha.clone()));
        assert!(cache.insert(2, beta.clone()));
        cache.save(&path).unwrap();

        // Rot one persisted line's payload out from under its CRC.
        let text = std::fs::read_to_string(&path).unwrap();
        let rotted = text.replacen("total 100", "total 101", 1);
        assert_ne!(text, rotted, "fixture line not found");
        std::fs::write(&path, rotted).unwrap();

        // The scrubber counts the rot and rewrites from memory.
        assert_eq!(cache.scrub_file(&path), 1);
        assert_eq!(cache.quarantined(), 1);
        assert_eq!(cache.repaired(), 1);
        let mut reloaded = ResultCache::load(&path, 4096).unwrap().unwrap();
        assert_eq!(reloaded.get(1).as_deref(), Some(alpha.as_str()));
        assert_eq!(reloaded.get(2).as_deref(), Some(beta.as_str()));

        // A clean file is left alone.
        assert_eq!(cache.scrub_file(&path), 0);
        std::fs::remove_file(&path).unwrap();
    }

    fn tiny_service() -> SweepService {
        let mut config = ServiceConfig::default();
        config.exec.workers = 2;
        config.exec.shard_chips = 8;
        // Unit tests drive scrubbing and healing synchronously.
        config.heartbeat_budget = None;
        config.scrub_interval = None;
        SweepService::new(config)
    }

    #[test]
    fn a_poisoned_pool_is_healed_before_the_next_query_fans_out() {
        let service = tiny_service();
        service
            .pool
            .read()
            .unwrap()
            .submit_to(0, Box::new(|_| panic!("poison the pool")));
        let deadline = Instant::now() + Duration::from_secs(5);
        while service.pool.read().unwrap().dead_workers() == 0 {
            assert!(Instant::now() < deadline, "worker death never observed");
            std::thread::sleep(Duration::from_millis(5));
        }

        // The next query heals in place and then computes normally.
        let q = StudyQuery {
            chips: 16,
            seed: 3,
            constraint: ConstraintSpec::NOMINAL,
            kind: PowerDownKind::Horizontal,
            cpi: None,
        };
        let reply = service.query(&q, &Arc::new(AtomicBool::new(false)));
        assert!(
            matches!(reply, ServiceReply::Result { cached: false, .. }),
            "{reply:?}"
        );
        let stats = service.stats();
        assert_eq!(stats.pool_restarts, 1);
        assert_eq!(service.pool.read().unwrap().dead_workers(), 0);

        // Healing is idempotent: a healthy pool is left alone.
        assert!(!service.heal_pool());
        assert_eq!(service.stats().pool_restarts, 1);
        service.shutdown();
    }

    #[test]
    fn health_report_tracks_lanes_scrubs_and_inflight() {
        let service = tiny_service();
        let report = service.health();
        assert_eq!(report.lanes, 2);
        assert_eq!(report.lanes_busy, 0);
        assert_eq!(report.inflight, 0);
        assert_eq!(report.scrub_passes, 0);

        service.with_cache(|cache| {
            assert!(cache.insert(9, "healthy record\n".into()));
        });
        service.scrub_now();
        let report = service.health();
        assert_eq!(report.scrub_passes, 1);
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.degraded, 0);
        service.shutdown();
    }

    #[test]
    fn requests_round_trip_through_wire_json() {
        for request in [
            ServiceRequest::Query {
                query: query(),
                deadline_ms: None,
            },
            ServiceRequest::Query {
                query: StudyQuery {
                    cpi: None,
                    ..query()
                },
                deadline_ms: Some(1500),
            },
            ServiceRequest::Stats,
            ServiceRequest::Health,
            ServiceRequest::Drain,
            ServiceRequest::Shutdown,
        ] {
            let json = request.to_json();
            assert_eq!(ServiceRequest::parse(&json).unwrap(), request, "{json}");
        }
    }

    #[test]
    fn replies_round_trip_through_wire_json() {
        for reply in [
            ServiceReply::Result {
                record: "total 4 quarantined 0 \"quoted\\path\"\n".into(),
                key: 0xdead_beef_0bad_cafe,
                cached: true,
            },
            ServiceReply::Busy {
                inflight: 2,
                limit: 2,
                retry_after_ms: 350,
            },
            ServiceReply::Draining { inflight: 1 },
            ServiceReply::Deadline { elapsed_ms: 420 },
            ServiceReply::Cancelled,
            ServiceReply::Error {
                message: "shard 3 panicked: \"boom\"".into(),
            },
            ServiceReply::Stats(ServiceStats {
                queries: 9,
                served: 7,
                busy: 1,
                cache_hits: 4,
                cache_misses: 3,
                cache_evictions: 2,
                cache_entries: 1,
                cache_bytes: 812,
                stolen: 5,
                inflight: 1,
                limit: 2,
                evicted: 3,
                rejected: 6,
                draining: true,
                scrub_passes: 11,
                quarantined: 2,
                repaired: 1,
                reassigned: 4,
                pool_restarts: 1,
            }),
            ServiceReply::Retryable { retry_after_ms: 75 },
            ServiceReply::Health(HealthReport {
                uptime_ms: 120_500,
                inflight: 1,
                lanes: 4,
                lanes_busy: 2,
                lanes_stalled: 1,
                heartbeats_missed: 3,
                shards_reassigned: 2,
                scrub_passes: 9,
                quarantined: 1,
                repaired: 1,
                degraded: 0,
                pool_restarts: 0,
            }),
            ServiceReply::Bye,
        ] {
            let json = reply.to_json();
            assert_eq!(ServiceReply::parse(&json).unwrap(), reply, "{json}");
        }
    }

    #[test]
    fn busy_without_a_hint_assumes_the_default() {
        let reply =
            ServiceReply::parse("{\"status\":\"busy\",\"inflight\":2,\"limit\":2}").unwrap();
        assert_eq!(
            reply,
            ServiceReply::Busy {
                inflight: 2,
                limit: 2,
                retry_after_ms: DEFAULT_RETRY_AFTER_MS,
            }
        );
    }

    #[test]
    fn malformed_requests_are_diagnosed_not_panicked() {
        for bad in [
            "",
            "{",
            "not json",
            "{\"op\":\"query\"}",
            "{\"op\":\"mystery\"}",
            "{\"op\":\"query\",\"chips\":8,\"seed\":1,\"constraint\":\"bogus\",\"kind\":\"vertical\"}",
            "{\"op\":\"query\",\"chips\":8,\"seed\":1,\"constraint\":\"nominal\",\"kind\":\"diagonal\"}",
            "{\"op\":\"query\",\"chips\":8,\"seed\":1,\"constraint\":\"nominal\",\"kind\":\"vertical\",\"warmup\":5}",
            "{\"op\":\"query\",\"chips\":-3,\"seed\":1,\"constraint\":\"nominal\",\"kind\":\"vertical\"}",
            "{\"op\":\"query\",\"chips\":{},\"seed\":1,\"constraint\":\"nominal\",\"kind\":\"vertical\"}",
            "{\"op\":\"stats\"} trailing",
        ] {
            assert!(ServiceRequest::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn json_strings_escape_and_unescape() {
        let mut out = String::new();
        json_escape(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
        let obj = parse_flat_object(&format!("{{\"k\":\"{out}\"}}")).unwrap();
        assert_eq!(obj.str("k").unwrap(), "a\"b\\c\nd\te\u{1}");
        // Foreign escapes parse too.
        let obj = parse_flat_object("{\"k\":\"\\u0041\\/\\b\\f\\r\"}").unwrap();
        assert_eq!(obj.str("k").unwrap(), "A/\u{8}\u{c}\r");
    }

    #[test]
    fn frames_round_trip_and_enforce_the_cap() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        // A frame length over the cap is refused before allocation.
        let mut huge = io::Cursor::new(((MAX_FRAME + 1) as u32).to_be_bytes().to_vec());
        assert_eq!(
            read_frame(&mut huge).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // A torn frame is an UnexpectedEof, not a silent truncation.
        let mut torn = Vec::new();
        write_frame(&mut torn, b"full payload").unwrap();
        torn.truncate(torn.len() - 3);
        let mut r = io::Cursor::new(torn);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn corrupted_frames_fail_their_crc() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"precious payload").unwrap();
        // Flip one payload bit: CRC-32 detects every single-bit error.
        for bit in 0..8 {
            let mut rotted = wire.clone();
            let last = rotted.len() - 1;
            rotted[last] ^= 1 << bit;
            let mut r = io::Cursor::new(rotted);
            let err = read_frame(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "bit {bit}");
            assert!(err.to_string().contains("CRC"), "bit {bit}: {err}");
        }
        // A header CRC flip is caught too.
        let mut rotted = wire.clone();
        rotted[5] ^= 0x10;
        let mut r = io::Cursor::new(rotted);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn constraint_lookup_covers_the_paper_recipes() {
        for spec in [
            ConstraintSpec::NOMINAL,
            ConstraintSpec::RELAXED,
            ConstraintSpec::STRICT,
        ] {
            assert_eq!(constraint_by_name(spec.name), Some(spec));
        }
        assert_eq!(constraint_by_name("bogus"), None);
    }
}
