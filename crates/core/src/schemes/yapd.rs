//! Yield-Aware Power-Down (§4.1): disable at most one vertical way.

use super::{
    leakage_after_way_disable, leakiest_way, slow_ways, RepairedCache, Scheme, SchemeOutcome,
};
use crate::chip::ChipSample;
use crate::classify::{classify, LossReason};
use crate::constraints::YieldConstraints;
use crate::schemes::DisabledUnit;
use yac_circuit::Calibration;

/// The YAPD scheme: Selective Cache Ways + Gated-Vdd, driven by yield.
///
/// If exactly one way violates the delay limit it is turned off; if the
/// chip only violates the leakage limit, the leakiest way is turned off.
/// At most a single way may be disabled (the paper's 2 % performance
/// budget, §4.2), so chips with two or more slow ways are lost, as are
/// chips whose leakage still violates the limit after the disable.
///
/// # Examples
///
/// ```
/// use yac_core::{ConstraintSpec, Population, Scheme, Yapd, YieldConstraints};
///
/// let pop = Population::generate(200, 7);
/// let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
/// let saved = pop
///     .chips
///     .iter()
///     .filter(|chip| Yapd.apply(chip, &c, pop.calibration()).ships())
///     .count();
/// assert!(saved > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Yapd;

impl Scheme for Yapd {
    fn name(&self) -> &str {
        "YAPD"
    }

    fn apply(
        &self,
        chip: &ChipSample,
        constraints: &YieldConstraints,
        calibration: &Calibration,
    ) -> SchemeOutcome {
        let result = &chip.regular;
        let Some(reason) = classify(result, constraints) else {
            return SchemeOutcome::MeetsAsIs;
        };

        let slow = slow_ways(result, constraints);
        if slow.len() > 1 {
            return SchemeOutcome::Lost(reason);
        }

        // Exactly one slow way: it must be the one disabled. Leakage-only
        // chips get their leakiest way disabled instead.
        let victim = slow
            .first()
            .copied()
            .unwrap_or_else(|| leakiest_way(result));

        let settled = leakage_after_way_disable(result, victim, calibration);
        if !constraints.meets_leakage(settled) {
            return SchemeOutcome::Lost(LossReason::Leakage);
        }

        let way_cycles = (0..result.ways.len())
            .map(|w| (w != victim).then_some(constraints.base_cycles))
            .collect();
        SchemeOutcome::Saved(RepairedCache {
            disabled: Some(DisabledUnit::Way(victim)),
            way_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstraintSpec, Population, WayCycleCensus};

    fn setup() -> (Population, YieldConstraints) {
        let pop = Population::generate(800, 21);
        let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
        (pop, c)
    }

    #[test]
    fn passing_chips_are_untouched() {
        let (pop, c) = setup();
        for chip in &pop.chips {
            if classify(&chip.regular, &c).is_none() {
                assert_eq!(
                    Yapd.apply(chip, &c, pop.calibration()),
                    SchemeOutcome::MeetsAsIs
                );
            }
        }
    }

    #[test]
    fn saves_every_single_way_delay_violator() {
        // The paper's Table 2: YAPD nullifies the one-way delay row.
        let (pop, c) = setup();
        for chip in &pop.chips {
            if let Some(LossReason::Delay { violating_ways: 1 }) = classify(&chip.regular, &c) {
                let outcome = Yapd.apply(chip, &c, pop.calibration());
                match outcome {
                    SchemeOutcome::Saved(r) => {
                        assert_eq!(r.effective_associativity(), 3);
                        assert_eq!(r.slowest_cycles(), 4);
                        // The disabled way is the slow one.
                        let slow = slow_ways(&chip.regular, &c);
                        assert_eq!(r.disabled, Some(DisabledUnit::Way(slow[0])));
                    }
                    // Permitted only if the chip also violates leakage after
                    // the repair (rare: slow chips are the cool ones).
                    SchemeOutcome::Lost(LossReason::Leakage) => {}
                    other => panic!("single-way violator mishandled: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn loses_every_multi_way_delay_violator() {
        let (pop, c) = setup();
        for chip in &pop.chips {
            if let Some(LossReason::Delay { violating_ways }) = classify(&chip.regular, &c) {
                if violating_ways >= 2 {
                    assert!(!Yapd.apply(chip, &c, pop.calibration()).ships());
                }
            }
        }
    }

    #[test]
    fn leakage_repairs_disable_the_leakiest_way() {
        let (pop, c) = setup();
        let mut repaired = 0;
        for chip in &pop.chips {
            if classify(&chip.regular, &c) == Some(LossReason::Leakage) {
                if let SchemeOutcome::Saved(r) = Yapd.apply(chip, &c, pop.calibration()) {
                    assert_eq!(
                        r.disabled,
                        Some(DisabledUnit::Way(leakiest_way(&chip.regular)))
                    );
                    repaired += 1;
                }
            }
        }
        assert!(repaired > 0, "some leakage chips must be repairable");
    }

    #[test]
    fn saves_most_leakage_violators_but_not_all() {
        // Paper: 138 -> 33 remaining. The shape requirement: a clear
        // majority saved, a nonzero remainder lost.
        let (pop, c) = setup();
        let mut lost = 0;
        let mut saved = 0;
        for chip in &pop.chips {
            if classify(&chip.regular, &c) == Some(LossReason::Leakage) {
                if Yapd.apply(chip, &c, pop.calibration()).ships() {
                    saved += 1;
                } else {
                    lost += 1;
                }
            }
        }
        assert!(
            saved > lost,
            "YAPD should save most leakage chips ({saved} vs {lost})"
        );
        assert!(
            lost > 0,
            "the extreme leakage tail should survive the repair"
        );
    }

    #[test]
    fn saved_chips_keep_base_cycles_everywhere() {
        let (pop, c) = setup();
        for chip in &pop.chips {
            if let SchemeOutcome::Saved(r) = Yapd.apply(chip, &c, pop.calibration()) {
                for cycles in r.way_cycles.iter().flatten() {
                    assert_eq!(*cycles, 4);
                }
                // Pre-repair census: at most one way beyond 4 cycles.
                let census = WayCycleCensus::of(&chip.regular, &c);
                assert!(census.ways_5 + census.ways_6_plus <= 1);
            }
        }
    }
}
