//! The paper's four yield-aware cache schemes plus the naive
//! frequency-binning alternative (§4).
//!
//! Every scheme consumes one [`ChipSample`] and the derived
//! [`YieldConstraints`] and decides whether the chip ships as-is, ships
//! after repair (with a concrete [`RepairedCache`] configuration that the
//! performance analysis can simulate), or is discarded.

mod hyapd;
mod hybrid;
mod naive;
mod vaca;
mod yapd;

pub use hyapd::HYapd;
pub use hybrid::{Hybrid, HybridPolicy, PowerDownKind};
pub use naive::NaiveBinning;
pub use vaca::Vaca;
pub use yapd::Yapd;

use crate::chip::ChipSample;
use crate::classify::LossReason;
use crate::constraints::YieldConstraints;
use std::fmt;
use yac_circuit::{CacheCircuitResult, Calibration};

/// Which storage unit a scheme powered down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DisabledUnit {
    /// A whole vertical way (YAPD / vertical Hybrid).
    Way(usize),
    /// A horizontal region across all ways (H-YAPD / horizontal Hybrid).
    HorizontalRegion(usize),
}

impl fmt::Display for DisabledUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DisabledUnit::Way(w) => write!(f, "way {w}"),
            DisabledUnit::HorizontalRegion(r) => write!(f, "horizontal region {r}"),
        }
    }
}

/// The post-repair cache configuration of a saved chip.
///
/// `way_cycles[w]` is `None` when way `w` is powered down (vertical
/// disable) and otherwise the hit latency, in cycles, the scheduler must
/// assume for that way. After a *horizontal* disable every way stays
/// partially active, so all entries are `Some`, and the effective
/// associativity drops by one instead.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RepairedCache {
    /// What was powered down, if anything.
    pub disabled: Option<DisabledUnit>,
    /// Per-way hit latency in cycles; `None` = way disabled.
    pub way_cycles: Vec<Option<u32>>,
}

impl RepairedCache {
    /// A configuration with nothing disabled and every way at `cycles`.
    #[must_use]
    pub fn uniform(ways: usize, cycles: u32) -> Self {
        RepairedCache {
            disabled: None,
            way_cycles: vec![Some(cycles); ways],
        }
    }

    /// Ways still contributing storage to every set.
    ///
    /// A vertical disable removes one entry; a horizontal disable keeps all
    /// ways active but removes one candidate per set (§4.2: "the hit/miss
    /// behavior of this architecture will be identical to that of a 3-way
    /// cache").
    #[must_use]
    pub fn effective_associativity(&self) -> usize {
        let enabled = self.way_cycles.iter().filter(|c| c.is_some()).count();
        match self.disabled {
            Some(DisabledUnit::HorizontalRegion(_)) => enabled.saturating_sub(1),
            _ => enabled,
        }
    }

    /// The slowest enabled way's latency, in cycles.
    ///
    /// # Panics
    ///
    /// Panics if every way is disabled (schemes never produce that).
    #[must_use]
    pub fn slowest_cycles(&self) -> u32 {
        self.way_cycles
            .iter()
            .flatten()
            .copied()
            .max()
            .expect("a repaired cache keeps at least one way enabled")
    }

    /// How many enabled ways need exactly `cycles`.
    #[must_use]
    pub fn ways_at(&self, cycles: u32) -> usize {
        self.way_cycles
            .iter()
            .flatten()
            .filter(|&&c| c == cycles)
            .count()
    }
}

/// The decision a scheme makes for one chip.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemeOutcome {
    /// The chip meets both constraints without intervention; the scheme is
    /// never activated (and costs no performance — §5 of the paper).
    MeetsAsIs,
    /// The chip violated a constraint but the scheme rescued it with the
    /// given configuration.
    Saved(RepairedCache),
    /// The chip cannot be rescued by this scheme.
    Lost(LossReason),
}

impl SchemeOutcome {
    /// Whether the chip ships (as-is or repaired).
    #[must_use]
    pub fn ships(&self) -> bool {
        !matches!(self, SchemeOutcome::Lost(_))
    }

    /// The repaired configuration, if the scheme had to intervene.
    #[must_use]
    pub fn repaired(&self) -> Option<&RepairedCache> {
        match self {
            SchemeOutcome::Saved(r) => Some(r),
            _ => None,
        }
    }
}

/// A yield-aware scheme: a post-fabrication repair policy.
///
/// Implementations are stateless policies; the same scheme value can be
/// applied to every chip of a population.
pub trait Scheme: fmt::Debug + Send + Sync {
    /// A short name for reports ("YAPD", "VACA", ...).
    fn name(&self) -> &str;

    /// Decides the fate of one chip.
    fn apply(
        &self,
        chip: &ChipSample,
        constraints: &YieldConstraints,
        calibration: &Calibration,
    ) -> SchemeOutcome;
}

/// Settled leakage after powering down way `way` of `result` (vertical
/// power-down removes the way's cells *and* peripherals; the die then
/// cools, so self-heating is recomputed against the original way count).
#[must_use]
pub fn leakage_after_way_disable(
    result: &CacheCircuitResult,
    way: usize,
    cal: &Calibration,
) -> f64 {
    let raw_remaining = result.raw_leakage() - result.ways[way].leakage;
    raw_remaining * cal.thermal_factor(raw_remaining / result.ways.len() as f64)
}

/// Settled leakage after powering down horizontal region `region`: the
/// region's cells go away in every way, but only
/// [`Calibration::hyapd_peripheral_shutoff`] of the per-region share of
/// each way's peripherals can be gated (§4.2).
#[must_use]
pub fn leakage_after_region_disable(
    result: &CacheCircuitResult,
    region: usize,
    cal: &Calibration,
) -> f64 {
    let mut removed = 0.0;
    for way in &result.ways {
        let regions = way.region_cell_leakage.len() as f64;
        removed += way.region_cell_leakage[region];
        removed += cal.hyapd_peripheral_shutoff * way.peripheral_leakage / regions;
    }
    let raw_remaining = result.raw_leakage() - removed;
    raw_remaining * cal.thermal_factor(raw_remaining / result.ways.len() as f64)
}

/// Ways of `result` that violate the delay limit.
#[must_use]
pub fn slow_ways(result: &CacheCircuitResult, c: &YieldConstraints) -> Vec<usize> {
    result
        .ways
        .iter()
        .enumerate()
        .filter(|(_, w)| !c.meets_delay(w.delay))
        .map(|(i, _)| i)
        .collect()
}

/// Index of the way with the highest raw leakage.
///
/// # Panics
///
/// Panics if the result has no ways.
#[must_use]
pub fn leakiest_way(result: &CacheCircuitResult) -> usize {
    result
        .ways
        .iter()
        .enumerate()
        .max_by(|a, b| {
            a.1.leakage
                .partial_cmp(&b.1.leakage)
                .expect("leakage values are finite")
        })
        .map(|(i, _)| i)
        .expect("result has at least one way")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstraintSpec, Population};

    #[test]
    fn repaired_cache_accessors() {
        let r = RepairedCache {
            disabled: Some(DisabledUnit::Way(2)),
            way_cycles: vec![Some(4), Some(5), None, Some(4)],
        };
        assert_eq!(r.effective_associativity(), 3);
        assert_eq!(r.slowest_cycles(), 5);
        assert_eq!(r.ways_at(4), 2);
        assert_eq!(r.ways_at(5), 1);
    }

    #[test]
    fn horizontal_disable_reduces_effective_associativity() {
        let r = RepairedCache {
            disabled: Some(DisabledUnit::HorizontalRegion(1)),
            way_cycles: vec![Some(4); 4],
        };
        assert_eq!(r.effective_associativity(), 3);
    }

    #[test]
    fn uniform_constructor() {
        let r = RepairedCache::uniform(4, 5);
        assert_eq!(r.effective_associativity(), 4);
        assert_eq!(r.slowest_cycles(), 5);
        assert!(r.disabled.is_none());
    }

    #[test]
    fn outcome_predicates() {
        assert!(SchemeOutcome::MeetsAsIs.ships());
        assert!(SchemeOutcome::Saved(RepairedCache::uniform(4, 4)).ships());
        assert!(!SchemeOutcome::Lost(LossReason::Leakage).ships());
        assert!(SchemeOutcome::MeetsAsIs.repaired().is_none());
        assert!(SchemeOutcome::Saved(RepairedCache::uniform(4, 4))
            .repaired()
            .is_some());
    }

    #[test]
    fn way_disable_reduces_settled_leakage() {
        let pop = Population::generate(50, 13);
        let cal = *pop.calibration();
        for chip in &pop.chips {
            for w in 0..4 {
                let after = leakage_after_way_disable(&chip.regular, w, &cal);
                assert!(
                    after < chip.regular.leakage,
                    "disabling way {w} must reduce leakage"
                );
                assert!(after >= 0.0);
            }
        }
    }

    #[test]
    fn region_disable_removes_less_than_way_disable_of_leakiest() {
        // One region disable removes ~1/4 of the cells of every way plus a
        // fraction of peripherals: less than removing the leakiest whole
        // way's share on typical chips? Not always — but it must always
        // remove *something* and stay below the original total.
        let pop = Population::generate(50, 14);
        let cal = *pop.calibration();
        for chip in &pop.chips {
            for r in 0..4 {
                let after = leakage_after_region_disable(&chip.horizontal, r, &cal);
                assert!(after < chip.horizontal.leakage);
                assert!(after >= 0.0);
            }
        }
    }

    #[test]
    fn slow_ways_and_leakiest_way_are_consistent() {
        let pop = Population::generate(50, 15);
        let c = crate::YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
        for chip in &pop.chips {
            let slow = slow_ways(&chip.regular, &c);
            assert_eq!(slow.len(), chip.regular.ways_violating_delay(c.delay_limit));
            let leaky = leakiest_way(&chip.regular);
            for (i, w) in chip.regular.ways.iter().enumerate() {
                assert!(
                    w.leakage <= chip.regular.ways[leaky].leakage + 1e-15,
                    "way {i}"
                );
            }
        }
    }

    #[test]
    fn disabled_unit_display() {
        assert_eq!(DisabledUnit::Way(1).to_string(), "way 1");
        assert_eq!(
            DisabledUnit::HorizontalRegion(3).to_string(),
            "horizontal region 3"
        );
    }
}
