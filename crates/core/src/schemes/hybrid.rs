//! The Hybrid scheme (§4.4): VACA plus at-most-one power-down.

use super::{
    leakage_after_region_disable, leakage_after_way_disable, leakiest_way, RepairedCache, Scheme,
    SchemeOutcome,
};
use crate::chip::ChipSample;
use crate::classify::{classify, LossReason};
use crate::constraints::YieldConstraints;
use crate::schemes::DisabledUnit;
use yac_circuit::{CacheVariant, Calibration};

/// Which power-down mechanism a [`Hybrid`] instance combines with VACA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerDownKind {
    /// YAPD-style: disable one vertical way (evaluates the regular layout).
    Vertical,
    /// H-YAPD-style: disable one horizontal region (evaluates the
    /// horizontal layout).
    Horizontal,
}

/// How the Hybrid decides between keeping a 5-cycle way on (VACA-style)
/// and disabling it (YAPD-style) when *both* would save the chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HybridPolicy {
    /// The paper's fixed policy (§4.4): keep ways on as long as possible;
    /// disable only for a 6-plus-cycle way or a leakage violation.
    KeepWaysOn,
    /// The paper's discussed-but-not-evaluated alternative: pick per the
    /// target workload. A memory-intensive application suffers more from
    /// the lost capacity than from a 5-cycle way, so above the threshold
    /// the way stays on; a compute-intensive application prefers the
    /// disable. Applies only when exactly one way needs 5 cycles and
    /// nothing else forces the choice.
    Adaptive {
        /// Memory intensity of the target workload in `[0, 1]`
        /// (see [`yac_workload`]-derived helpers or profiling data).
        memory_intensity: f64,
        /// Intensity at or above which the slow way is kept enabled.
        threshold: f64,
    },
}

/// The Hybrid scheme: a variable-latency cache that can additionally power
/// down one way (or one horizontal region).
///
/// Per the paper's fixed policy, the Hybrid "keeps the ways on as long as
/// possible": it powers down only when a way needs more than 5 cycles or
/// the leakage limit is violated, and it powers down at most one unit.
/// Remaining ways run at their measured 4- or 5-cycle latencies.
/// [`Hybrid::adaptive`] instead picks the cheaper repair for a known
/// target workload (§4.4's discussion).
///
/// # Examples
///
/// ```
/// use yac_core::{ConstraintSpec, Hybrid, Population, PowerDownKind, Scheme, YieldConstraints};
///
/// let pop = Population::generate(300, 7);
/// let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
/// let hybrid = Hybrid::new(PowerDownKind::Vertical);
/// let lost = pop
///     .chips
///     .iter()
///     .filter(|chip| !hybrid.apply(chip, &c, pop.calibration()).ships())
///     .count();
/// assert!(lost < pop.len() / 10, "the Hybrid saves almost everything");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hybrid {
    kind: PowerDownKind,
    policy: HybridPolicy,
}

impl Hybrid {
    /// Creates a Hybrid with the chosen power-down mechanism and the
    /// paper's fixed keep-ways-on policy.
    #[must_use]
    pub fn new(kind: PowerDownKind) -> Self {
        Hybrid {
            kind,
            policy: HybridPolicy::KeepWaysOn,
        }
    }

    /// Creates an adaptive Hybrid for a workload of the given memory
    /// intensity (threshold 0.5).
    ///
    /// # Panics
    ///
    /// Panics if `memory_intensity` lies outside `[0, 1]`.
    #[must_use]
    pub fn adaptive(kind: PowerDownKind, memory_intensity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&memory_intensity),
            "memory intensity must lie in [0, 1]"
        );
        Hybrid {
            kind,
            policy: HybridPolicy::Adaptive {
                memory_intensity,
                threshold: 0.5,
            },
        }
    }

    /// The power-down mechanism in use.
    #[must_use]
    pub fn kind(&self) -> PowerDownKind {
        self.kind
    }

    /// The keep-on/disable policy in use.
    #[must_use]
    pub fn policy(&self) -> HybridPolicy {
        self.policy
    }

    /// Whether the policy prefers disabling a lone 5-cycle way.
    fn prefers_disable(&self) -> bool {
        match self.policy {
            HybridPolicy::KeepWaysOn => false,
            HybridPolicy::Adaptive {
                memory_intensity,
                threshold,
            } => memory_intensity < threshold,
        }
    }

    fn variant(&self) -> CacheVariant {
        match self.kind {
            PowerDownKind::Vertical => CacheVariant::Regular,
            PowerDownKind::Horizontal => CacheVariant::Horizontal,
        }
    }

    fn apply_vertical(
        &self,
        chip: &ChipSample,
        c: &YieldConstraints,
        cal: &Calibration,
        reason: LossReason,
    ) -> SchemeOutcome {
        let result = &chip.regular;
        let max_ok = c.base_cycles + 1;
        let cycles: Vec<u32> = result.ways.iter().map(|w| c.cycles_for(w.delay)).collect();
        let over: Vec<usize> = (0..cycles.len()).filter(|&w| cycles[w] > max_ok).collect();
        if over.len() > 1 {
            return SchemeOutcome::Lost(reason);
        }

        let leaky = !c.meets_leakage(result.leakage);
        // Power down when necessary (a 6+-cycle way or excess leakage) —
        // or when the adaptive policy says a compute-bound workload would
        // rather lose the capacity than take 5-cycle hits, provided the
        // chip has exactly one slow way to point at.
        let slow5: Vec<usize> = (0..cycles.len()).filter(|&w| cycles[w] == max_ok).collect();
        let victim = if let Some(&w) = over.first() {
            Some(w)
        } else if leaky {
            Some(leakiest_way(result))
        } else if self.prefers_disable() && slow5.len() == 1 {
            Some(slow5[0])
        } else {
            None
        };

        if let Some(w) = victim {
            let settled = leakage_after_way_disable(result, w, cal);
            if !c.meets_leakage(settled) {
                return SchemeOutcome::Lost(LossReason::Leakage);
            }
            let way_cycles = (0..cycles.len())
                .map(|i| (i != w).then_some(cycles[i]))
                .collect();
            SchemeOutcome::Saved(RepairedCache {
                disabled: Some(DisabledUnit::Way(w)),
                way_cycles,
            })
        } else {
            // Pure VACA operation on the 5-cycle ways.
            SchemeOutcome::Saved(RepairedCache {
                disabled: None,
                way_cycles: cycles.into_iter().map(Some).collect(),
            })
        }
    }

    fn apply_horizontal(
        &self,
        chip: &ChipSample,
        c: &YieldConstraints,
        cal: &Calibration,
        reason: LossReason,
    ) -> SchemeOutcome {
        let result = &chip.horizontal;
        let max_ok = c.base_cycles + 1;
        let budget = c.delay_budget(max_ok);
        let way_cycles_full: Vec<u32> = result.ways.iter().map(|w| c.cycles_for(w.delay)).collect();
        let leaky = !c.meets_leakage(result.leakage);
        let needs_disable = leaky || way_cycles_full.iter().any(|&cyc| cyc > max_ok);

        if !needs_disable {
            return SchemeOutcome::Saved(RepairedCache {
                disabled: None,
                way_cycles: way_cycles_full.into_iter().map(Some).collect(),
            });
        }

        // Try each region: after disabling it every way must fit in 5
        // cycles and the settled leakage must meet the limit.
        let regions = result.ways.first().map_or(0, |w| w.region_delay.len());
        let mut best: Option<(usize, Vec<u32>, f64)> = None;
        for r in 0..regions {
            let mut ok = true;
            let mut cycles = Vec::with_capacity(result.ways.len());
            for way in &result.ways {
                let delay = way
                    .region_delay
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != r)
                    .map(|(_, d)| *d)
                    .fold(f64::MIN, f64::max);
                if delay > budget {
                    ok = false;
                    break;
                }
                cycles.push(c.cycles_for(delay));
            }
            if !ok {
                continue;
            }
            let settled = leakage_after_region_disable(result, r, cal);
            if !c.meets_leakage(settled) {
                continue;
            }
            let worst = cycles.iter().copied().max().unwrap_or(c.base_cycles);
            if best
                .as_ref()
                .is_none_or(|(_, bc, _)| worst < bc.iter().copied().max().unwrap_or(u32::MAX))
            {
                best = Some((r, cycles, settled));
            }
        }

        match best {
            Some((r, cycles, _)) => SchemeOutcome::Saved(RepairedCache {
                disabled: Some(DisabledUnit::HorizontalRegion(r)),
                way_cycles: cycles.into_iter().map(Some).collect(),
            }),
            None => SchemeOutcome::Lost(reason),
        }
    }
}

impl Scheme for Hybrid {
    fn name(&self) -> &str {
        match self.kind {
            PowerDownKind::Vertical => "Hybrid",
            PowerDownKind::Horizontal => "Hybrid-H",
        }
    }

    fn apply(
        &self,
        chip: &ChipSample,
        constraints: &YieldConstraints,
        calibration: &Calibration,
    ) -> SchemeOutcome {
        let result = chip.result(self.variant());
        let Some(reason) = classify(result, constraints) else {
            return SchemeOutcome::MeetsAsIs;
        };
        match self.kind {
            PowerDownKind::Vertical => self.apply_vertical(chip, constraints, calibration, reason),
            PowerDownKind::Horizontal => {
                self.apply_horizontal(chip, constraints, calibration, reason)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{Vaca, Yapd};
    use crate::{ConstraintSpec, Population};

    fn setup() -> (Population, YieldConstraints) {
        let pop = Population::generate(800, 21);
        let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
        (pop, c)
    }

    #[test]
    fn hybrid_dominates_yapd_and_vaca() {
        // The whole point of §4.4: the Hybrid saves a superset of chips.
        let (pop, c) = setup();
        let cal = pop.calibration();
        let hybrid = Hybrid::new(PowerDownKind::Vertical);
        let vaca = Vaca::default();
        for chip in &pop.chips {
            let h = hybrid.apply(chip, &c, cal).ships();
            if Yapd.apply(chip, &c, cal).ships() {
                assert!(h, "chip {} saved by YAPD but not Hybrid", chip.index);
            }
            if vaca.apply(chip, &c, cal).ships() {
                assert!(h, "chip {} saved by VACA but not Hybrid", chip.index);
            }
        }
    }

    #[test]
    fn keeps_ways_on_when_vaca_suffices() {
        // Paper §5.2: for 3-1-0 chips the fixed Hybrid policy behaves like
        // VACA (no disable).
        let (pop, c) = setup();
        let hybrid = Hybrid::new(PowerDownKind::Vertical);
        let mut checked = 0;
        for chip in &pop.chips {
            let cycles: Vec<u32> = chip
                .regular
                .ways
                .iter()
                .map(|w| c.cycles_for(w.delay))
                .collect();
            let leaky = !c.meets_leakage(chip.regular.leakage);
            let fives = cycles.iter().filter(|&&x| x == 5).count();
            let sixes = cycles.iter().filter(|&&x| x >= 6).count();
            if fives >= 1 && sixes == 0 && !leaky {
                if let SchemeOutcome::Saved(r) = hybrid.apply(chip, &c, pop.calibration()) {
                    assert!(
                        r.disabled.is_none(),
                        "no disable needed for chip {}",
                        chip.index
                    );
                    assert_eq!(r.ways_at(5), fives);
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn disables_exactly_the_six_cycle_way() {
        let (pop, c) = setup();
        let hybrid = Hybrid::new(PowerDownKind::Vertical);
        let mut checked = 0;
        for chip in &pop.chips {
            let cycles: Vec<u32> = chip
                .regular
                .ways
                .iter()
                .map(|w| c.cycles_for(w.delay))
                .collect();
            let sixes: Vec<usize> = (0..4).filter(|&w| cycles[w] >= 6).collect();
            if sixes.len() == 1 {
                if let SchemeOutcome::Saved(r) = hybrid.apply(chip, &c, pop.calibration()) {
                    assert_eq!(r.disabled, Some(DisabledUnit::Way(sixes[0])));
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn loses_chips_with_two_six_cycle_ways() {
        let (pop, c) = setup();
        let hybrid = Hybrid::new(PowerDownKind::Vertical);
        for chip in &pop.chips {
            let sixes = chip
                .regular
                .ways
                .iter()
                .filter(|w| c.cycles_for(w.delay) >= 6)
                .count();
            if sixes >= 2 {
                assert!(!hybrid.apply(chip, &c, pop.calibration()).ships());
            }
        }
    }

    #[test]
    fn horizontal_hybrid_dominates_hyapd() {
        use crate::schemes::HYapd;
        let (pop, c) = setup();
        let cal = pop.calibration();
        let hybrid = Hybrid::new(PowerDownKind::Horizontal);
        for chip in &pop.chips {
            if HYapd.apply(chip, &c, cal).ships() {
                assert!(
                    hybrid.apply(chip, &c, cal).ships(),
                    "chip {} saved by H-YAPD but not Hybrid-H",
                    chip.index
                );
            }
        }
    }

    #[test]
    fn adaptive_compute_bound_disables_the_lone_slow_way() {
        let (pop, c) = setup();
        let keep = Hybrid::new(PowerDownKind::Vertical);
        let compute_bound = Hybrid::adaptive(PowerDownKind::Vertical, 0.1);
        let memory_bound = Hybrid::adaptive(PowerDownKind::Vertical, 0.9);
        let mut diverged = 0;
        for chip in &pop.chips {
            let cycles: Vec<u32> = chip
                .regular
                .ways
                .iter()
                .map(|w| c.cycles_for(w.delay))
                .collect();
            let fives: Vec<usize> = (0..4).filter(|&w| cycles[w] == 5).collect();
            let sixes = cycles.iter().filter(|&&x| x >= 6).count();
            let leaky = !c.meets_leakage(chip.regular.leakage);
            if fives.len() == 1 && sixes == 0 && !leaky {
                let k = keep.apply(chip, &c, pop.calibration());
                let cb = compute_bound.apply(chip, &c, pop.calibration());
                let mb = memory_bound.apply(chip, &c, pop.calibration());
                // Memory-bound adaptive behaves like the paper's policy.
                assert_eq!(k, mb);
                if let (SchemeOutcome::Saved(rk), SchemeOutcome::Saved(rc)) = (&k, &cb) {
                    assert!(rk.disabled.is_none());
                    assert_eq!(rc.disabled, Some(DisabledUnit::Way(fives[0])));
                    diverged += 1;
                }
            }
        }
        assert!(diverged > 0, "3-1-0-like chips must exist");
    }

    #[test]
    fn adaptive_saves_exactly_the_same_chips() {
        // The policy changes the repair, never the save/lose decision.
        let (pop, c) = setup();
        let keep = Hybrid::new(PowerDownKind::Vertical);
        let adaptive = Hybrid::adaptive(PowerDownKind::Vertical, 0.0);
        for chip in &pop.chips {
            let a = keep.apply(chip, &c, pop.calibration()).ships();
            let b = adaptive.apply(chip, &c, pop.calibration()).ships();
            // With one exception: an adaptive disable also needs the
            // leakage check; disabling can only reduce leakage, so it
            // never loses a chip the fixed policy saves.
            assert_eq!(a, b, "chip {}", chip.index);
        }
    }

    #[test]
    #[should_panic(expected = "memory intensity")]
    fn adaptive_rejects_bad_intensity() {
        let _ = Hybrid::adaptive(PowerDownKind::Vertical, 1.5);
    }

    #[test]
    fn names_distinguish_kinds() {
        assert_eq!(Hybrid::new(PowerDownKind::Vertical).name(), "Hybrid");
        assert_eq!(Hybrid::new(PowerDownKind::Horizontal).name(), "Hybrid-H");
        assert_eq!(
            Hybrid::new(PowerDownKind::Horizontal).kind(),
            PowerDownKind::Horizontal
        );
    }
}
