//! The Variable-latency Cache Architecture (§4.3): keep slow ways enabled
//! and let them answer one cycle late.

use super::{slow_ways, RepairedCache, Scheme, SchemeOutcome};
use crate::chip::ChipSample;
use crate::classify::{classify, LossReason};
use crate::constraints::YieldConstraints;
use yac_circuit::{CacheVariant, Calibration};

/// The VACA scheme.
///
/// Load-bypass buffers at the functional-unit inputs allow an access to
/// complete in `base + 1` cycles (the paper fixes the buffers at a single
/// entry, so 4-or-5-cycle ways are supported; anything needing 6 or more
/// cycles is a loss). VACA never powers anything down, so it cannot save
/// leakage violators.
///
/// The scheme can be applied to either cache organisation — the paper's
/// Table 3 evaluates it on the H-YAPD layout too.
///
/// # Examples
///
/// ```
/// use yac_core::{ConstraintSpec, Population, Scheme, Vaca, YieldConstraints};
///
/// let pop = Population::generate(200, 7);
/// let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
/// let vaca = Vaca::default();
/// let saved = pop
///     .chips
///     .iter()
///     .filter(|chip| vaca.apply(chip, &c, pop.calibration()).ships())
///     .count();
/// assert!(saved > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vaca {
    variant: CacheVariant,
    /// Extra cycles the load-bypass buffers can absorb (the paper uses 1;
    /// §4.3 discusses — and dismisses — deeper buffers, which we expose for
    /// the ablation study).
    extra_cycles: u32,
}

impl Vaca {
    /// VACA on the regular cache organisation with single-entry buffers.
    #[must_use]
    pub fn new(variant: CacheVariant) -> Self {
        Vaca {
            variant,
            extra_cycles: 1,
        }
    }

    /// VACA with deeper load-bypass buffers tolerating `extra_cycles`
    /// additional cycles (the paper's unexplored extension).
    ///
    /// # Panics
    ///
    /// Panics if `extra_cycles` is 0 — that would be a plain cache.
    #[must_use]
    pub fn with_buffer_depth(variant: CacheVariant, extra_cycles: u32) -> Self {
        assert!(extra_cycles > 0, "VACA needs at least one buffer entry");
        Vaca {
            variant,
            extra_cycles,
        }
    }

    /// The organisation this instance evaluates.
    #[must_use]
    pub fn variant(&self) -> CacheVariant {
        self.variant
    }

    /// The slowest supported access latency, in cycles.
    #[must_use]
    pub fn max_cycles(&self, constraints: &YieldConstraints) -> u32 {
        constraints.base_cycles + self.extra_cycles
    }
}

impl Default for Vaca {
    /// VACA on the regular organisation, single-entry buffers.
    fn default() -> Self {
        Self::new(CacheVariant::Regular)
    }
}

impl Scheme for Vaca {
    fn name(&self) -> &str {
        "VACA"
    }

    fn apply(
        &self,
        chip: &ChipSample,
        constraints: &YieldConstraints,
        _calibration: &Calibration,
    ) -> SchemeOutcome {
        let result = chip.result(self.variant);
        let Some(reason) = classify(result, constraints) else {
            return SchemeOutcome::MeetsAsIs;
        };

        // VACA has no power-down: a leakage violation is terminal.
        if !constraints.meets_leakage(result.leakage) {
            return SchemeOutcome::Lost(LossReason::Leakage);
        }

        let max = self.max_cycles(constraints);
        let way_cycles: Vec<Option<u32>> = result
            .ways
            .iter()
            .map(|w| Some(constraints.cycles_for(w.delay)))
            .collect();
        if way_cycles.iter().flatten().any(|&c| c > max) {
            return SchemeOutcome::Lost(reason);
        }
        debug_assert!(!slow_ways(result, constraints).is_empty());
        SchemeOutcome::Saved(RepairedCache {
            disabled: None,
            way_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstraintSpec, Population};

    fn setup() -> (Population, YieldConstraints) {
        let pop = Population::generate(800, 21);
        let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
        (pop, c)
    }

    #[test]
    fn never_saves_leakage_violators() {
        let (pop, c) = setup();
        for chip in &pop.chips {
            if classify(&chip.regular, &c) == Some(LossReason::Leakage) {
                assert!(!Vaca::default().apply(chip, &c, pop.calibration()).ships());
            }
        }
    }

    #[test]
    fn saves_exactly_the_sub_six_cycle_delay_violators() {
        let (pop, c) = setup();
        let vaca = Vaca::default();
        for chip in &pop.chips {
            if let Some(LossReason::Delay { .. }) = classify(&chip.regular, &c) {
                let worst = chip
                    .regular
                    .ways
                    .iter()
                    .map(|w| c.cycles_for(w.delay))
                    .max()
                    .unwrap();
                let leaky = !c.meets_leakage(chip.regular.leakage);
                let outcome = vaca.apply(chip, &c, pop.calibration());
                if worst <= 5 && !leaky {
                    let r = outcome.repaired().expect("5-cycle chips are saved");
                    assert_eq!(r.effective_associativity(), 4);
                    assert_eq!(r.slowest_cycles(), worst);
                    assert!(r.disabled.is_none());
                } else {
                    assert!(!outcome.ships());
                }
            }
        }
    }

    #[test]
    fn deeper_buffers_save_more_chips() {
        let (pop, c) = setup();
        let shallow = Vaca::default();
        let deep = Vaca::with_buffer_depth(CacheVariant::Regular, 3);
        let count = |s: &Vaca| {
            pop.chips
                .iter()
                .filter(|chip| {
                    matches!(
                        s.apply(chip, &c, pop.calibration()),
                        SchemeOutcome::Saved(_)
                    )
                })
                .count()
        };
        let a = count(&shallow);
        let b = count(&deep);
        assert!(
            b >= a,
            "deeper buffers cannot save fewer chips ({b} vs {a})"
        );
        assert!(b > a, "the 6+-cycle tail should be reachable with depth 3");
    }

    #[test]
    fn variant_selection_matters() {
        let (pop, c) = setup();
        let reg = Vaca::new(CacheVariant::Regular);
        let hor = Vaca::new(CacheVariant::Horizontal);
        // The horizontal organisation is slower, so VACA on it saves at
        // most as many chips (usually fewer).
        let count = |s: &Vaca| {
            pop.chips
                .iter()
                .filter(|chip| s.apply(chip, &c, pop.calibration()).ships())
                .count()
        };
        assert!(count(&hor) <= count(&reg));
        assert_eq!(reg.variant(), CacheVariant::Regular);
    }

    #[test]
    #[should_panic(expected = "buffer")]
    fn zero_depth_is_rejected() {
        let _ = Vaca::with_buffer_depth(CacheVariant::Regular, 0);
    }

    #[test]
    fn max_cycles_reflects_depth() {
        let (_, c) = setup();
        assert_eq!(Vaca::default().max_cycles(&c), 5);
        assert_eq!(
            Vaca::with_buffer_depth(CacheVariant::Regular, 3).max_cycles(&c),
            7
        );
    }
}
