//! Horizontal Yield-Aware Power-Down (§4.2): disable one horizontal
//! region of the cache instead of a vertical way.

use super::{leakage_after_region_disable, RepairedCache, Scheme, SchemeOutcome};
use crate::chip::ChipSample;
use crate::classify::classify;
use crate::constraints::YieldConstraints;
use crate::schemes::DisabledUnit;
use yac_circuit::Calibration;

/// The H-YAPD scheme.
///
/// Thanks to the modified post-decoders (Figure 5 of the paper), turning
/// off horizontal region `r` removes one — different — vertical way from
/// every address region, so every set keeps `ways − 1` candidates. Because
/// process variation is spatially correlated, the slow rows tend to sit in
/// the *same* region of every way, so one horizontal disable can fix
/// delay violations in several ways at once — the advantage over
/// [`super::Yapd`].
///
/// The scheme evaluates the H-YAPD cache organisation (≈2.5 % slower on
/// average), tries each region, and keeps the chip if some single region
/// disable satisfies both constraints.
///
/// # Examples
///
/// ```
/// use yac_core::{ConstraintSpec, HYapd, Population, Scheme, YieldConstraints};
///
/// let pop = Population::generate(200, 7);
/// let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
/// let saved = pop
///     .chips
///     .iter()
///     .filter(|chip| HYapd.apply(chip, &c, pop.calibration()).ships())
///     .count();
/// assert!(saved > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HYapd;

impl HYapd {
    /// The best single-region disable for `chip`, if any satisfies both
    /// constraints: returns `(region, settled_leakage)` minimising the
    /// post-repair cache delay.
    fn best_region(
        chip: &ChipSample,
        constraints: &YieldConstraints,
        calibration: &Calibration,
    ) -> Option<(usize, f64)> {
        let result = &chip.horizontal;
        let regions = result.ways.first()?.region_delay.len();
        let mut best: Option<(usize, f64, f64)> = None; // (region, delay, leak)
        for r in 0..regions {
            let delay = result
                .ways
                .iter()
                .flat_map(|w| {
                    w.region_delay
                        .iter()
                        .enumerate()
                        .filter(move |(i, _)| *i != r)
                        .map(|(_, d)| *d)
                })
                .fold(f64::MIN, f64::max);
            if !constraints.meets_delay(delay) {
                continue;
            }
            let settled = leakage_after_region_disable(result, r, calibration);
            if !constraints.meets_leakage(settled) {
                continue;
            }
            if best.is_none_or(|(_, d, _)| delay < d) {
                best = Some((r, delay, settled));
            }
        }
        best.map(|(r, _, leak)| (r, leak))
    }
}

impl Scheme for HYapd {
    fn name(&self) -> &str {
        "H-YAPD"
    }

    fn apply(
        &self,
        chip: &ChipSample,
        constraints: &YieldConstraints,
        calibration: &Calibration,
    ) -> SchemeOutcome {
        let result = &chip.horizontal;
        let Some(reason) = classify(result, constraints) else {
            return SchemeOutcome::MeetsAsIs;
        };

        match Self::best_region(chip, constraints, calibration) {
            Some((region, _)) => {
                let way_cycles = vec![Some(constraints.base_cycles); result.ways.len()];
                SchemeOutcome::Saved(RepairedCache {
                    disabled: Some(DisabledUnit::HorizontalRegion(region)),
                    way_cycles,
                })
            }
            None => SchemeOutcome::Lost(reason),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::LossReason;
    use crate::schemes::Yapd;
    use crate::{ConstraintSpec, Population};

    fn setup() -> (Population, YieldConstraints) {
        let pop = Population::generate(800, 21);
        // Constraints always derive from the regular architecture.
        let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
        (pop, c)
    }

    #[test]
    fn passing_chips_are_untouched() {
        let (pop, c) = setup();
        let mut passing = 0;
        for chip in &pop.chips {
            if classify(&chip.horizontal, &c).is_none() {
                passing += 1;
                assert_eq!(
                    HYapd.apply(chip, &c, pop.calibration()),
                    SchemeOutcome::MeetsAsIs
                );
            }
        }
        assert!(passing > 0);
    }

    #[test]
    fn h_architecture_base_losses_exceed_regular() {
        // Paper: 362 vs 339 (the +2.5% latency costs chips).
        let (pop, c) = setup();
        let lost = |reg: bool| {
            pop.chips
                .iter()
                .filter(|chip| {
                    classify(if reg { &chip.regular } else { &chip.horizontal }, &c).is_some()
                })
                .count()
        };
        assert!(lost(false) > lost(true));
    }

    #[test]
    fn saved_chips_use_a_single_region_disable() {
        let (pop, c) = setup();
        for chip in &pop.chips {
            if let SchemeOutcome::Saved(r) = HYapd.apply(chip, &c, pop.calibration()) {
                match r.disabled {
                    Some(DisabledUnit::HorizontalRegion(region)) => assert!(region < 4),
                    other => panic!("H-YAPD must disable a region, got {other:?}"),
                }
                assert_eq!(r.effective_associativity(), 3);
                assert_eq!(r.slowest_cycles(), 4);
            }
        }
    }

    #[test]
    fn repair_actually_fixes_the_delay() {
        let (pop, c) = setup();
        for chip in &pop.chips {
            if let SchemeOutcome::Saved(r) = HYapd.apply(chip, &c, pop.calibration()) {
                let Some(DisabledUnit::HorizontalRegion(region)) = r.disabled else {
                    unreachable!()
                };
                for way in &chip.horizontal.ways {
                    for (i, d) in way.region_delay.iter().enumerate() {
                        if i != region {
                            assert!(c.meets_delay(*d));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn saves_some_multi_way_violators_that_yapd_loses() {
        // The paper's motivation: H-YAPD recovers chips whose slow rows sit
        // in one horizontal region across several ways (Table 3 rows 3-4).
        let (pop, c) = setup();
        let cal = pop.calibration();
        let mut rescued_beyond_yapd = 0;
        for chip in &pop.chips {
            if let Some(LossReason::Delay { violating_ways }) = classify(&chip.horizontal, &c) {
                if violating_ways >= 2
                    && HYapd.apply(chip, &c, cal).ships()
                    && !Yapd.apply(chip, &c, cal).ships()
                {
                    rescued_beyond_yapd += 1;
                }
            }
        }
        assert!(
            rescued_beyond_yapd > 0,
            "H-YAPD must rescue some multi-way violators YAPD cannot"
        );
    }

    #[test]
    fn leakage_repair_saves_a_majority() {
        let (pop, c) = setup();
        let mut saved = 0;
        let mut lost = 0;
        for chip in &pop.chips {
            if classify(&chip.horizontal, &c) == Some(LossReason::Leakage) {
                if HYapd.apply(chip, &c, pop.calibration()).ships() {
                    saved += 1;
                } else {
                    lost += 1;
                }
            }
        }
        assert!(
            saved > lost,
            "H-YAPD should save most leakage chips ({saved} vs {lost})"
        );
    }
}
