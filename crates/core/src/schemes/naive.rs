//! The naive frequency-binning alternative (§4.5): ship the chip with the
//! scheduler statically assuming the worst way's latency for *every*
//! access.

use super::{RepairedCache, Scheme, SchemeOutcome};
use crate::chip::ChipSample;
use crate::classify::{classify, LossReason};
use crate::constraints::YieldConstraints;
use yac_circuit::{CacheVariant, Calibration};

/// Naive speed binning.
///
/// If any way of the cache needs extra cycles, the instruction scheduler is
/// configured to expect the worst-case latency on **all** loads. The paper
/// measured 6.42 % average CPI loss when one extra cycle is assumed and
/// 12.62 % for two extra cycles — the motivation for VACA's per-way
/// latencies.
///
/// # Examples
///
/// ```
/// use yac_core::{ConstraintSpec, NaiveBinning, Population, Scheme, YieldConstraints};
///
/// let pop = Population::generate(200, 7);
/// let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
/// let bin = NaiveBinning::new(2); // allow up to 6-cycle chips
/// let saved = pop
///     .chips
///     .iter()
///     .filter(|chip| bin.apply(chip, &c, pop.calibration()).ships())
///     .count();
/// assert!(saved > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveBinning {
    max_extra_cycles: u32,
}

impl NaiveBinning {
    /// A bin accepting chips whose slowest way needs up to
    /// `max_extra_cycles` beyond the base latency.
    #[must_use]
    pub fn new(max_extra_cycles: u32) -> Self {
        NaiveBinning { max_extra_cycles }
    }

    /// The deepest acceptable way latency, in cycles.
    #[must_use]
    pub fn max_cycles(&self, c: &YieldConstraints) -> u32 {
        c.base_cycles + self.max_extra_cycles
    }
}

impl Default for NaiveBinning {
    /// The paper's primary binning case: one extra cycle (5-cycle bin).
    fn default() -> Self {
        Self::new(1)
    }
}

impl Scheme for NaiveBinning {
    fn name(&self) -> &str {
        "naive binning"
    }

    fn apply(
        &self,
        chip: &ChipSample,
        constraints: &YieldConstraints,
        _calibration: &Calibration,
    ) -> SchemeOutcome {
        let result = chip.result(CacheVariant::Regular);
        let Some(reason) = classify(result, constraints) else {
            return SchemeOutcome::MeetsAsIs;
        };
        if !constraints.meets_leakage(result.leakage) {
            return SchemeOutcome::Lost(LossReason::Leakage);
        }
        let worst = result
            .ways
            .iter()
            .map(|w| constraints.cycles_for(w.delay))
            .max()
            .unwrap_or(constraints.base_cycles);
        if worst > self.max_cycles(constraints) {
            return SchemeOutcome::Lost(reason);
        }
        // Every access is scheduled at the worst way's latency.
        SchemeOutcome::Saved(RepairedCache::uniform(result.ways.len(), worst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstraintSpec, Population};

    fn setup() -> (Population, YieldConstraints) {
        let pop = Population::generate(600, 21);
        let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
        (pop, c)
    }

    #[test]
    fn binned_chips_run_every_way_at_the_worst_latency() {
        let (pop, c) = setup();
        let bin = NaiveBinning::default();
        for chip in &pop.chips {
            if let SchemeOutcome::Saved(r) = bin.apply(chip, &c, pop.calibration()) {
                let worst = chip
                    .regular
                    .ways
                    .iter()
                    .map(|w| c.cycles_for(w.delay))
                    .max()
                    .unwrap();
                assert_eq!(r.slowest_cycles(), worst);
                assert_eq!(r.ways_at(worst), 4, "all ways binned to the worst");
                assert!(r.disabled.is_none());
            }
        }
    }

    #[test]
    fn wider_bins_accept_more_chips() {
        let (pop, c) = setup();
        let count = |bin: NaiveBinning| {
            pop.chips
                .iter()
                .filter(|chip| bin.apply(chip, &c, pop.calibration()).ships())
                .count()
        };
        let one = count(NaiveBinning::new(1));
        let two = count(NaiveBinning::new(2));
        assert!(two >= one);
    }

    #[test]
    fn binning_cannot_save_leakage() {
        let (pop, c) = setup();
        let bin = NaiveBinning::new(10);
        for chip in &pop.chips {
            if classify(&chip.regular, &c) == Some(LossReason::Leakage) {
                assert!(!bin.apply(chip, &c, pop.calibration()).ships());
            }
        }
    }

    #[test]
    fn max_cycles_reflects_bin_depth() {
        let (_, c) = setup();
        assert_eq!(NaiveBinning::default().max_cycles(&c), 5);
        assert_eq!(NaiveBinning::new(2).max_cycles(&c), 6);
    }
}
