//! The resilient service client: retries with jittered exponential
//! backoff, an overall deadline, and a circuit breaker.
//!
//! [`crate::service::client_request`] is one shot: any transport hiccup
//! — a chaos-injected disconnect, a corrupt frame, a `Busy` refusal —
//! surfaces directly to the caller. This module wraps it in the
//! standard resilience trio so a client under wire chaos still ends
//! every request in a bit-identical result or a *typed* error:
//!
//! * **Retry with jittered exponential backoff.** Transport errors
//!   (connect/read/write failures, CRC-corrupt frames, mid-frame
//!   disconnects) and [`ServiceReply::Busy`] refusals are retried up to
//!   [`ClientConfig::max_attempts`] times — as is
//!   [`ServiceReply::Retryable`], the self-healing server's "I hit a
//!   fault and already fixed it, come back" reply, which like `Busy`
//!   never counts against the breaker. The backoff doubles per
//!   attempt from [`ClientConfig::base_backoff`], capped at
//!   [`ClientConfig::max_backoff`], with deterministic SplitMix64
//!   "equal jitter" (half fixed, half drawn) so synchronized clients
//!   de-correlate without a global randomness source. A `Busy` reply's
//!   `retry_after_ms` hint is honoured first: the client sleeps at
//!   least the hint, using its own jittered schedule only when that is
//!   longer.
//! * **An overall deadline.** [`ClientConfig::deadline`] bounds the
//!   whole call — connect, all attempts, all backoff sleeps. The
//!   remaining budget is pushed down into each socket's read/write
//!   timeouts, so a mid-request stall cannot overshoot it by more than
//!   one timeout granule.
//! * **A circuit breaker.** [`ClientConfig::breaker_threshold`]
//!   consecutive transport failures open the breaker; while open, calls
//!   fail fast as [`ClientError::BreakerOpen`] without touching the
//!   wire. After [`ClientConfig::breaker_cooldown`] the breaker goes
//!   half-open and admits one probe; success closes it, failure
//!   re-opens it for another cooldown. `Busy` refusals do *not* count —
//!   a saturated server is alive, and hammering the breaker shut on
//!   backpressure would turn a traffic spike into an outage.
//!
//! Every decision is observable: retries count `retry_attempts` and
//! trace `RetryAttempted`; breaker transitions count `breaker_opens` /
//! `breaker_half_opens` and trace `BreakerOpened` / `BreakerHalfOpen`.
//!
//! # Examples
//!
//! ```no_run
//! use yac_core::client::{ClientConfig, ResilientClient};
//! use yac_core::service::ServiceRequest;
//!
//! let mut client = ResilientClient::new("127.0.0.1:7070", ClientConfig::default());
//! match client.request(&ServiceRequest::Stats) {
//!     Ok((reply, _raw)) => println!("{reply:?}"),
//!     Err(e) => eprintln!("stats failed: {e}"),
//! }
//! ```

use crate::chaos::{ChaosStream, NetSite};
use crate::service::{read_frame, write_frame, ServiceReply, ServiceRequest};
use std::fmt;
use std::io;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use yac_obs::{Metric, TraceCtx, TraceEventKind};
use yac_variation::montecarlo::mix_seed;

/// Tuning for a [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Attempts per request (first try included). Clamped to at
    /// least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Overall budget for one [`ResilientClient::request`] call —
    /// connect, every attempt and every backoff sleep. `None` means
    /// unbounded.
    pub deadline: Option<Duration>,
    /// Consecutive transport failures that open the breaker. Clamped to
    /// at least 1.
    pub breaker_threshold: u32,
    /// How long an open breaker fails fast before admitting a
    /// half-open probe.
    pub breaker_cooldown: Duration,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for ClientConfig {
    /// Four attempts, 50 ms–2 s backoff, a 30 s deadline, a breaker
    /// that opens after 5 straight transport failures for 1 s.
    fn default() -> Self {
        ClientConfig {
            max_attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            deadline: Some(Duration::from_secs(30)),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(1),
            seed: 0,
        }
    }
}

/// Why a [`ResilientClient::request`] gave up. Every variant is a
/// terminal, typed outcome — the client never hangs and never returns a
/// silently wrong payload.
#[derive(Debug)]
pub enum ClientError {
    /// The breaker is open: recent attempts all failed at the transport
    /// layer, and the cooldown has not elapsed. No wire traffic was
    /// attempted.
    BreakerOpen {
        /// How long until the breaker admits a half-open probe.
        remaining: Duration,
    },
    /// The overall deadline expired before any attempt succeeded.
    DeadlineExceeded {
        /// Time spent before giving up.
        elapsed: Duration,
        /// Attempts made (including the one in flight, if any).
        attempts: u32,
        /// The last transport error or refusal, if any attempt ran.
        last: Option<String>,
    },
    /// Every attempt failed or was refused.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The last transport error or refusal.
        last: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::BreakerOpen { remaining } => write!(
                f,
                "circuit breaker is open ({} ms until half-open probe)",
                remaining.as_millis()
            ),
            ClientError::DeadlineExceeded {
                elapsed,
                attempts,
                last,
            } => {
                write!(
                    f,
                    "deadline exceeded after {} ms and {attempts} attempt(s)",
                    elapsed.as_millis()
                )?;
                if let Some(last) = last {
                    write!(f, " (last: {last})")?;
                }
                Ok(())
            }
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s) (last: {last})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Breaker state. `Open` and `HalfOpen` carry when the breaker opened,
/// so cooldown math needs no extra field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Requests flow; consecutive transport failures are counted.
    Closed,
    /// Requests fail fast until the cooldown elapses.
    Open,
    /// One probe is in flight; its outcome decides open vs closed.
    HalfOpen,
}

/// A closed/open/half-open circuit breaker over consecutive transport
/// failures. Time is supplied by the caller ([`Instant`] values), which
/// keeps the state machine deterministic under test.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// failures (clamped to at least 1) and cools down for `cooldown`.
    #[must_use]
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
        }
    }

    /// Whether a request may proceed at `now`. An open breaker whose
    /// cooldown has elapsed transitions to half-open (traced and
    /// counted) and admits the caller as the probe; an open breaker
    /// inside the cooldown refuses with the remaining wait.
    ///
    /// # Errors
    ///
    /// [`ClientError::BreakerOpen`] with the time until the next probe.
    pub fn admit(&mut self, now: Instant) -> Result<(), ClientError> {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open => {
                let since = self
                    .opened_at
                    .map_or(Duration::ZERO, |at| now.saturating_duration_since(at));
                if since >= self.cooldown {
                    self.state = BreakerState::HalfOpen;
                    yac_obs::inc(Metric::BreakerHalfOpens);
                    yac_obs::trace_instant(TraceEventKind::BreakerHalfOpen, TraceCtx::default());
                    Ok(())
                } else {
                    Err(ClientError::BreakerOpen {
                        remaining: self.cooldown - since,
                    })
                }
            }
        }
    }

    /// Records a successful attempt: closes the breaker and clears the
    /// failure streak.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.opened_at = None;
    }

    /// Records a transport failure at `now`. A half-open probe failure
    /// re-opens immediately; in the closed state the streak is counted
    /// and the breaker opens at the threshold (traced and counted).
    pub fn on_failure(&mut self, now: Instant) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let should_open =
            self.state == BreakerState::HalfOpen || self.consecutive_failures >= self.threshold;
        if should_open && self.state != BreakerState::Open {
            self.state = BreakerState::Open;
            self.opened_at = Some(now);
            yac_obs::inc(Metric::BreakerOpens);
            yac_obs::trace_instant(TraceEventKind::BreakerOpened, TraceCtx::default());
        } else if should_open {
            self.opened_at = Some(now);
        }
    }

    /// Whether the breaker is currently refusing requests (ignoring
    /// cooldown expiry).
    #[must_use]
    pub fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }
}

/// The jittered exponential backoff before retry number `attempt`
/// (0-based): `base << attempt` capped at `max`, then "equal jitter" —
/// half the delay fixed, half scaled by a deterministic SplitMix64 draw
/// — so the result lies in `[delay/2, delay)`.
#[must_use]
pub fn backoff_delay(
    base: Duration,
    max: Duration,
    attempt: u32,
    seed: u64,
    draw_index: u64,
) -> Duration {
    let exp = base
        .checked_mul(1u32 << attempt.min(16))
        .unwrap_or(max)
        .min(max);
    let half = exp / 2;
    // Top 53 bits of the draw as a fraction in [0, 1).
    let unit = (mix_seed(seed, draw_index) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    half + Duration::from_secs_f64(half.as_secs_f64() * unit)
}

/// A service client with retry, deadline and breaker discipline. Owns
/// the breaker state, so reuse one client per server address.
#[derive(Debug)]
pub struct ResilientClient {
    addr: String,
    config: ClientConfig,
    breaker: CircuitBreaker,
    /// Monotone jitter-draw index, so back-to-back requests never reuse
    /// a sleep.
    draws: u64,
}

/// Why one attempt did not produce a terminal reply.
enum AttemptFailure {
    /// Connect/read/write/decode failed: counts against the breaker.
    Transport(io::Error),
    /// The server refused with `Busy`: backpressure, not breakage.
    Busy { retry_after: Duration },
}

impl AttemptFailure {
    fn describe(&self) -> String {
        match self {
            AttemptFailure::Transport(e) => e.to_string(),
            AttemptFailure::Busy { retry_after } => {
                format!("server busy (retry after {} ms)", retry_after.as_millis())
            }
        }
    }
}

impl ResilientClient {
    /// A client for `addr` with a fresh (closed) breaker.
    #[must_use]
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> Self {
        let breaker = CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown);
        ResilientClient {
            addr: addr.into(),
            config,
            breaker,
            draws: 0,
        }
    }

    /// The breaker, for inspection.
    #[must_use]
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Sends `request` until a terminal reply, the attempt budget, the
    /// deadline or the breaker stops it. Terminal replies — results,
    /// stats, errors, `draining`, `deadline`, `cancelled`, `bye` — are
    /// returned as `Ok` with the raw reply text; only transport
    /// failures and `Busy` refusals are retried.
    ///
    /// # Errors
    ///
    /// [`ClientError`] — see its variants; every failure mode is typed.
    pub fn request(
        &mut self,
        request: &ServiceRequest,
    ) -> Result<(ServiceReply, String), ClientError> {
        let started = Instant::now();
        let max_attempts = self.config.max_attempts.max(1);
        let mut last: Option<AttemptFailure> = None;
        for attempt in 0..max_attempts {
            self.breaker.admit(Instant::now())?;
            if attempt > 0 {
                yac_obs::inc(Metric::RetryAttempts);
                yac_obs::trace_instant(TraceEventKind::RetryAttempted, TraceCtx::default());
            }
            match self.attempt(request, started) {
                Ok(terminal) => {
                    self.breaker.on_success();
                    return Ok(terminal);
                }
                Err(failure) => {
                    if let AttemptFailure::Transport(_) = &failure {
                        self.breaker.on_failure(Instant::now());
                    }
                    let sleep = self.next_backoff(&failure, attempt);
                    last = Some(failure);
                    // Don't start a sleep (or another attempt) the
                    // deadline cannot cover.
                    if let Some(deadline) = self.config.deadline {
                        if started.elapsed() + sleep >= deadline {
                            return Err(ClientError::DeadlineExceeded {
                                elapsed: started.elapsed(),
                                attempts: attempt + 1,
                                last: last.as_ref().map(AttemptFailure::describe),
                            });
                        }
                    }
                    if attempt + 1 < max_attempts {
                        std::thread::sleep(sleep);
                    }
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts: max_attempts,
            last: last.map_or_else(|| "no attempt ran".into(), |f| f.describe()),
        })
    }

    /// The sleep before the next attempt: the jittered exponential
    /// schedule, raised to the server's `retry_after_ms` hint when the
    /// refusal carried a longer one.
    fn next_backoff(&mut self, failure: &AttemptFailure, attempt: u32) -> Duration {
        let draw = self.draws;
        self.draws += 1;
        let own = backoff_delay(
            self.config.base_backoff,
            self.config.max_backoff,
            attempt,
            self.config.seed,
            draw,
        );
        match failure {
            AttemptFailure::Busy { retry_after } => own.max(*retry_after),
            AttemptFailure::Transport(_) => own,
        }
    }

    /// One wire attempt: fresh connection, remaining-deadline socket
    /// timeouts, chaos-wrapped stream, one frame each way.
    fn attempt(
        &self,
        request: &ServiceRequest,
        started: Instant,
    ) -> Result<(ServiceReply, String), AttemptFailure> {
        let io = |e: io::Error| AttemptFailure::Transport(e);
        let stream = TcpStream::connect(&self.addr).map_err(io)?;
        stream.set_nodelay(true).ok();
        // Push the remaining overall budget into the socket so a stalled
        // server cannot hang the call past its deadline.
        if let Some(deadline) = self.config.deadline {
            let remaining = deadline
                .saturating_sub(started.elapsed())
                .max(Duration::from_millis(1));
            stream.set_read_timeout(Some(remaining)).map_err(io)?;
            stream.set_write_timeout(Some(remaining)).map_err(io)?;
        }
        let mut stream = ChaosStream::new(stream, NetSite::Client);
        write_frame(&mut stream, request.to_json().as_bytes()).map_err(io)?;
        let payload = read_frame(&mut stream).map_err(io)?.ok_or_else(|| {
            AttemptFailure::Transport(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed without replying",
            ))
        })?;
        let text = String::from_utf8(payload).map_err(|e| {
            AttemptFailure::Transport(io::Error::new(io::ErrorKind::InvalidData, e))
        })?;
        let reply = ServiceReply::parse(&text).map_err(|e| {
            AttemptFailure::Transport(io::Error::new(io::ErrorKind::InvalidData, e))
        })?;
        if let ServiceReply::Busy { retry_after_ms, .. } = reply {
            return Err(AttemptFailure::Busy {
                retry_after: Duration::from_millis(retry_after_ms),
            });
        }
        // `Retryable` is the server saying "I hit a fault and already
        // healed it" (a mid-query pool rebuild): retry on the hinted
        // schedule like `Busy` — the service is healthy, so it must not
        // count against the breaker either.
        if let ServiceReply::Retryable { retry_after_ms } = reply {
            return Err(AttemptFailure::Busy {
                retry_after: Duration::from_millis(retry_after_ms),
            });
        }
        // A server-side CRC failure means the wire corrupted our
        // request in flight — transient, so retry it like any other
        // transport fault rather than surfacing it as terminal.
        if let ServiceReply::Error { message } = &reply {
            if message.contains("fails its CRC") {
                return Err(AttemptFailure::Transport(io::Error::new(
                    io::ErrorKind::InvalidData,
                    message.clone(),
                )));
            }
        }
        Ok((reply, text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(2, Duration::from_millis(250));
        assert!(b.admit(t0).is_ok());
        b.on_failure(t0);
        assert!(!b.is_open(), "one failure is below the threshold");
        b.on_failure(t0);
        assert!(b.is_open(), "threshold reached");

        // Inside the cooldown: fail fast with the remaining wait.
        match b.admit(t0 + Duration::from_millis(100)) {
            Err(ClientError::BreakerOpen { remaining }) => {
                assert_eq!(remaining, Duration::from_millis(150));
            }
            other => panic!("expected BreakerOpen, got {other:?}"),
        }

        // Past the cooldown: one half-open probe is admitted.
        assert!(b.admit(t0 + Duration::from_millis(300)).is_ok());
        assert!(!b.is_open());

        // Probe success closes it and clears the streak.
        b.on_success();
        b.on_failure(t0);
        assert!(!b.is_open(), "streak was reset by the success");
    }

    #[test]
    fn half_open_probe_failure_reopens_immediately() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(3, Duration::from_millis(100));
        for _ in 0..3 {
            b.on_failure(t0);
        }
        assert!(b.is_open());
        assert!(b.admit(t0 + Duration::from_millis(150)).is_ok());
        // The probe fails: straight back to open, new cooldown epoch.
        b.on_failure(t0 + Duration::from_millis(150));
        assert!(b.is_open());
        assert!(b.admit(t0 + Duration::from_millis(200)).is_err());
        assert!(b.admit(t0 + Duration::from_millis(260)).is_ok());
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_within_bounds() {
        let base = Duration::from_millis(100);
        let max = Duration::from_secs(1);
        for attempt in 0..6 {
            let exp = base.checked_mul(1 << attempt).unwrap().min(max);
            for draw in 0..8 {
                let d = backoff_delay(base, max, attempt, 42, draw);
                assert!(d >= exp / 2, "attempt {attempt} draw {draw}: {d:?}");
                assert!(d < exp, "attempt {attempt} draw {draw}: {d:?}");
            }
        }
        // Deterministic: same seed and draw index, same delay.
        assert_eq!(
            backoff_delay(base, max, 3, 7, 11),
            backoff_delay(base, max, 3, 7, 11)
        );
        // Huge attempt numbers saturate at the cap instead of
        // overflowing.
        let d = backoff_delay(base, max, 60, 7, 0);
        assert!(d >= max / 2 && d < max);
    }

    /// A minimal server that answers each fresh connection from a
    /// script of canned replies (`None` = slam the connection shut).
    fn scripted_server(
        replies: Vec<Option<ServiceReply>>,
    ) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for reply in replies {
                let (mut stream, _) = listener.accept().unwrap();
                // Consume the request frame so the client's write wins.
                let _ = crate::service::read_frame(&mut stream);
                match reply {
                    Some(reply) => {
                        let _ =
                            crate::service::write_frame(&mut stream, reply.to_json().as_bytes());
                    }
                    None => drop(stream), // mid-exchange disconnect
                }
            }
        });
        (addr, handle)
    }

    fn quick_config() -> ClientConfig {
        ClientConfig {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            deadline: Some(Duration::from_secs(10)),
            breaker_threshold: 10,
            breaker_cooldown: Duration::from_millis(50),
            seed: 1,
        }
    }

    #[test]
    fn busy_refusals_are_retried_until_the_terminal_reply() {
        let busy = ServiceReply::Busy {
            inflight: 2,
            limit: 2,
            retry_after_ms: 1,
        };
        let (addr, server) = scripted_server(vec![
            Some(busy.clone()),
            Some(busy),
            Some(ServiceReply::Bye),
        ]);
        let mut client = ResilientClient::new(addr, quick_config());
        let (reply, _) = client.request(&ServiceRequest::Shutdown).unwrap();
        assert_eq!(reply, ServiceReply::Bye);
        server.join().unwrap();
    }

    #[test]
    fn retryable_replies_are_retried_like_busy_without_breaker_penalty() {
        let (addr, server) = scripted_server(vec![
            Some(ServiceReply::Retryable { retry_after_ms: 1 }),
            Some(ServiceReply::Retryable { retry_after_ms: 1 }),
            Some(ServiceReply::Bye),
        ]);
        let mut config = quick_config();
        // A breaker that opens on the first failure: if Retryable hit
        // the breaker, the second attempt would be refused outright.
        config.breaker_threshold = 1;
        let mut client = ResilientClient::new(addr, config);
        let (reply, _) = client.request(&ServiceRequest::Shutdown).unwrap();
        assert_eq!(reply, ServiceReply::Bye);
        assert!(!client.breaker().is_open());
        server.join().unwrap();
    }

    #[test]
    fn disconnects_are_retried_and_counted() {
        yac_obs::global().enable();
        let before = yac_obs::global().counter(Metric::RetryAttempts);
        let (addr, server) = scripted_server(vec![None, None, Some(ServiceReply::Bye)]);
        let mut client = ResilientClient::new(addr, quick_config());
        let (reply, _) = client.request(&ServiceRequest::Stats).unwrap();
        assert_eq!(reply, ServiceReply::Bye);
        let after = yac_obs::global().counter(Metric::RetryAttempts);
        assert!(after >= before + 2, "two retries were counted");
        server.join().unwrap();
    }

    #[test]
    fn exhaustion_is_a_typed_error_naming_the_last_failure() {
        let (addr, server) = scripted_server(vec![None, None, None, None]);
        let mut config = quick_config();
        config.max_attempts = 4;
        let mut client = ResilientClient::new(addr, config);
        match client.request(&ServiceRequest::Stats) {
            Err(ClientError::Exhausted { attempts: 4, last }) => {
                assert!(!last.is_empty());
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn breaker_opens_after_consecutive_transport_failures_and_fails_fast() {
        // Nothing listens on this address: every connect fails.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut config = quick_config();
        config.max_attempts = 3;
        config.breaker_threshold = 3;
        config.breaker_cooldown = Duration::from_secs(60);
        let mut client = ResilientClient::new(dead, config);
        match client.request(&ServiceRequest::Stats) {
            Err(ClientError::Exhausted { .. }) => {}
            other => panic!("expected Exhausted, got {other:?}"),
        }
        assert!(client.breaker().is_open());
        // The next call never touches the wire.
        match client.request(&ServiceRequest::Stats) {
            Err(ClientError::BreakerOpen { .. }) => {}
            other => panic!("expected BreakerOpen, got {other:?}"),
        }
    }

    #[test]
    fn deadline_bounds_the_whole_call() {
        // A server that accepts and then never replies.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let served = Arc::new(AtomicU32::new(0));
        let served_clone = Arc::clone(&served);
        let server = std::thread::spawn(move || {
            let mut held = Vec::new();
            // Hold sockets open without replying until the test ends.
            while served_clone.load(Ordering::Relaxed) == 0 {
                listener.set_nonblocking(true).unwrap();
                if let Ok((stream, _)) = listener.accept() {
                    held.push(stream);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let mut config = quick_config();
        config.deadline = Some(Duration::from_millis(200));
        let mut client = ResilientClient::new(addr, config);
        let started = Instant::now();
        match client.request(&ServiceRequest::Stats) {
            Err(ClientError::DeadlineExceeded { .. }) | Err(ClientError::Exhausted { .. }) => {}
            other => panic!("expected a deadline/exhaustion error, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the call returned promptly, not hung"
        );
        served.store(1, Ordering::Relaxed);
        server.join().unwrap();
    }
}
