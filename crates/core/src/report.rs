//! Plain-text rendering of the study results, matching the layout of the
//! paper's tables so side-by-side comparison is easy.

use crate::analysis::LossTable;
use std::fmt::Write as _;

/// Renders a [`LossTable`] in the layout of the paper's Tables 2–3.
///
/// # Examples
///
/// ```
/// use yac_core::{render_loss_table, table2, ConstraintSpec, Population, YieldConstraints};
///
/// let pop = Population::generate(100, 7);
/// let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
/// let text = render_loss_table(&table2(&pop, &c));
/// assert!(text.contains("Leakage Constraint"));
/// ```
#[must_use]
pub fn render_loss_table(table: &LossTable) -> String {
    let _timer = yac_obs::phase(yac_obs::Phase::Report);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Sources of yield loss ({:?} architecture, {} constraints, {} chips)",
        table.base_variant, table.spec_name, table.total_chips
    );
    let _ = write!(out, "{:<28}{:>8}", "Reason of Loss", "# Chips");
    for s in &table.schemes {
        let _ = write!(out, "{:>10}", s.name);
    }
    out.push('\n');
    let _ = write!(out, "{:<28}{:>8}", "Leakage Constraint", table.base.leakage);
    for s in &table.schemes {
        let _ = write!(out, "{:>10}", s.losses.leakage);
    }
    out.push('\n');
    for (i, &count) in table.base.delay.iter().enumerate() {
        let label = format!("Delay Constraint ({} Way)", i + 1);
        let _ = write!(out, "{label:<28}{count:>8}");
        for s in &table.schemes {
            let _ = write!(out, "{:>10}", s.losses.delay.get(i).copied().unwrap_or(0));
        }
        out.push('\n');
    }
    let _ = write!(out, "{:<28}{:>8}", "Total", table.base.total());
    for s in &table.schemes {
        let _ = write!(out, "{:>10}", s.losses.total());
    }
    out.push('\n');
    if table.quarantined > 0 {
        let _ = writeln!(out, "{:<28}{:>8}", "Quarantined", table.quarantined);
    }
    let _ = write!(out, "{:<28}{:>8}", "Yield [%]", "");
    for (i, _) in table.schemes.iter().enumerate() {
        let _ = write!(out, "{:>10.1}", 100.0 * table.yield_fraction(Some(i)));
    }
    out.push('\n');
    let _ = write!(out, "{:<28}{:>8}", "Loss reduction [%]", "");
    for (i, _) in table.schemes.iter().enumerate() {
        let _ = write!(out, "{:>10.1}", 100.0 * table.loss_reduction(i));
    }
    out.push('\n');
    out
}

/// Renders several tables as the totals-only sweep of the paper's Tables
/// 4–5 (one row per constraint setting).
#[must_use]
pub fn render_constraint_sweep(tables: &[LossTable]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<12}{:>8}", "Constraints", "# Chips");
    if let Some(first) = tables.first() {
        for s in &first.schemes {
            let _ = write!(out, "{:>10}", s.name);
        }
    }
    out.push('\n');
    for t in tables {
        let _ = write!(out, "{:<12}{:>8}", t.spec_name, t.base.total());
        for s in &t.schemes {
            let _ = write!(out, "{:>10}", s.losses.total());
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{constraint_sweep, table2};
    use crate::schemes::PowerDownKind;
    use crate::{ConstraintSpec, Population, YieldConstraints};

    #[test]
    fn loss_table_renders_all_rows() {
        let pop = Population::generate(300, 5);
        let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
        let text = render_loss_table(&table2(&pop, &c));
        assert!(text.contains("Leakage Constraint"));
        assert!(text.contains("Delay Constraint (1 Way)"));
        assert!(text.contains("Delay Constraint (4 Way)"));
        assert!(text.contains("Total"));
        assert!(text.contains("YAPD"));
        assert!(text.contains("VACA"));
        assert!(text.contains("Hybrid"));
        assert!(text.contains("Yield [%]"));
    }

    #[test]
    fn sweep_renders_one_row_per_spec() {
        let pop = Population::generate(300, 5);
        let tables = constraint_sweep(
            &pop,
            PowerDownKind::Vertical,
            &[ConstraintSpec::RELAXED, ConstraintSpec::STRICT],
        );
        let text = render_constraint_sweep(&tables);
        assert!(text.contains("relaxed"));
        assert!(text.contains("strict"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn empty_sweep_renders_header_only() {
        let text = render_constraint_sweep(&[]);
        assert_eq!(text.lines().count(), 1);
    }
}
