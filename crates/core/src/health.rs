//! Self-healing runtime support: per-lane heartbeat liveness and the
//! stall sentinel.
//!
//! The paper's central mechanism — detect a defective cache block,
//! disable it, remap around it so the chip keeps yielding — has a
//! runtime analogue: detect a *stalled worker lane*, cancel its lease,
//! reassign the work to a healthy lane, and record honest degradation
//! only when every remap fails. This module provides the three pieces:
//!
//! * [`HeartbeatRegistry`] — one lock-free lane per pool worker. A
//!   worker takes a [`HeartbeatLease`] when it starts a shard, publishes
//!   one monotonic progress tick per chip ([`HeartbeatLease::beat`]),
//!   and releases the lane on drop. Everything is relaxed atomics; a
//!   beat is one `fetch_add`.
//! * [`StallDetector`] — a *pure* state machine over lane snapshots:
//!   feed it [`HeartbeatRegistry::snapshot`] plus a timestamp and it
//!   reports which lanes blew their no-progress budget. Detection being
//!   pure (no clock reads, no threads) is what makes the edge cases —
//!   zero budget, tick wraparound, a heartbeat racing a cancel, every
//!   lane stalled at once — property-testable.
//! * [`StallSentinel`] — the supervision thread: polls the registry,
//!   runs the detector, and walks the escalation ladder. Step one
//!   (cooperative cancel of the stalled lease) is done by the sentinel
//!   itself; steps two and three (reassign to a fresh worker, record
//!   degraded) are policy, delegated to the handler the embedder
//!   installs — the sweep service resubmits the shard and, when the
//!   reassign budget is spent, answers with an honest degraded result.
//!
//! # The escalation ladder
//!
//! 1. **Cancel.** A busy lane whose `(generation, tick)` pair is
//!    unchanged for one budget gets its lease cancelled
//!    ([`StallEvent::Missed`], counted in
//!    [`yac_obs::Metric::HeartbeatsMissed`], traced as
//!    `HeartbeatMissed`). The shard loop polls
//!    [`HeartbeatLease::is_cancelled`] between chips and unwinds
//!    cooperatively.
//! 2. **Reassign.** The handler resubmits the shard to a fresh worker
//!    — the collector takes whichever attempt reports first, so a
//!    cancel that races a late completion is harmless.
//! 3. **Degrade.** When the reassign budget is exhausted, the handler
//!    reports the shard degraded; the query still completes, honestly.
//!
//! A lane that *ignores* its cancel for another full budget is reported
//! once as [`StallEvent::Wedged`] — evidence for the service's `health`
//! report that a thread is truly stuck, not merely slow.
//!
//! # Tick semantics
//!
//! A tick is progress, not time: *any change* to the `(generation,
//! tick)` pair resets the lane's budget, so wraparound (`u64::MAX → 0`)
//! is progress like any other change, and a new lease (fresh
//! generation) is never blamed for its predecessor's silence.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use yac_obs::{Metric, TraceCtx, TraceEventKind};

/// One worker lane's liveness cells. All fields are plain atomics; no
/// lock is ever taken on the worker's publish path.
#[derive(Debug, Default)]
struct Lane {
    /// Monotonic progress counter, bumped once per unit of work (one
    /// chip). Wrapping is fine: the detector watches for *change*.
    tick: AtomicU64,
    /// The shard tag the lane is working, plus 1 — so 0 means idle.
    shard: AtomicU64,
    /// Lease generation, bumped by every [`HeartbeatRegistry::begin`].
    gen: AtomicU64,
    /// The generation whose lease has been cancelled (0 = none).
    cancel: AtomicU64,
}

/// What one lane looked like at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneState {
    /// The shard tag the lane was working, or `None` when idle.
    pub shard: Option<u64>,
    /// Lease generation at snapshot time.
    pub gen: u64,
    /// Progress tick at snapshot time.
    pub tick: u64,
}

/// A lock-free per-lane heartbeat registry: one lane per pool worker,
/// workers publish monotonic progress ticks, the sentinel snapshots.
#[derive(Debug)]
pub struct HeartbeatRegistry {
    lanes: Box<[Lane]>,
}

impl HeartbeatRegistry {
    /// A registry of `lanes` idle lanes (clamped to at least 1).
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        HeartbeatRegistry {
            lanes: (0..lanes.max(1)).map(|_| Lane::default()).collect(),
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Lanes currently holding a lease (advisory).
    #[must_use]
    pub fn busy(&self) -> usize {
        self.lanes
            .iter()
            .filter(|l| l.shard.load(Ordering::Acquire) != 0)
            .count()
    }

    /// Takes the lease on `lane` for shard tag `shard`: bumps the lane's
    /// generation and marks it busy. The returned guard publishes beats
    /// and releases the lane when dropped.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.lanes()`.
    pub fn begin(&self, lane: usize, shard: u64) -> HeartbeatLease<'_> {
        let cell = &self.lanes[lane];
        let gen = cell.gen.fetch_add(1, Ordering::AcqRel) + 1;
        // Publish busy last, so a sentinel that sees the shard also sees
        // the fresh generation and never blames the new lease for the
        // old one's silence.
        cell.shard.store(shard + 1, Ordering::Release);
        HeartbeatLease {
            registry: self,
            lane,
            gen,
        }
    }

    /// Cancels the lease of generation `gen` on `lane` — cooperative:
    /// the worker polls [`HeartbeatLease::is_cancelled`] between chips.
    /// A stale `gen` (the lane has moved on) falls on deaf ears.
    pub fn cancel(&self, lane: usize, gen: u64) {
        if let Some(cell) = self.lanes.get(lane) {
            cell.cancel.store(gen, Ordering::Release);
        }
    }

    /// A point-in-time snapshot of every lane, for the detector and the
    /// `health` report.
    #[must_use]
    pub fn snapshot(&self) -> Vec<LaneState> {
        self.lanes
            .iter()
            .map(|l| {
                let shard = l.shard.load(Ordering::Acquire);
                LaneState {
                    shard: shard.checked_sub(1),
                    gen: l.gen.load(Ordering::Acquire),
                    tick: l.tick.load(Ordering::Acquire),
                }
            })
            .collect()
    }
}

/// The RAII lease a worker holds while running one shard: beats publish
/// progress, drop releases the lane.
#[derive(Debug)]
pub struct HeartbeatLease<'a> {
    registry: &'a HeartbeatRegistry,
    lane: usize,
    gen: u64,
}

impl HeartbeatLease<'_> {
    /// The lane index this lease occupies.
    #[must_use]
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// The lease's generation (what a cancel must match).
    #[must_use]
    pub fn gen(&self) -> u64 {
        self.gen
    }

    /// Publishes one unit of progress. One relaxed `fetch_add`;
    /// wrapping is progress like any other change.
    pub fn beat(&self) {
        self.registry.lanes[self.lane]
            .tick
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the sentinel has cancelled *this* lease (generation
    /// match). Poll between chips; unwind cooperatively when true.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.registry.lanes[self.lane]
            .cancel
            .load(Ordering::Acquire)
            == self.gen
    }
}

impl Drop for HeartbeatLease<'_> {
    fn drop(&mut self) {
        self.registry.lanes[self.lane]
            .shard
            .store(0, Ordering::Release);
    }
}

/// Sentinel tuning.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// How long a busy lane may go without progress before escalation.
    /// A zero budget escalates a busy lane on its second observation.
    pub budget: Duration,
    /// How often the sentinel polls the registry.
    pub poll: Duration,
}

impl HealthConfig {
    /// A config for `budget`, polling at a quarter of it (clamped to
    /// 1–50 ms).
    #[must_use]
    pub fn with_budget(budget: Duration) -> Self {
        HealthConfig {
            budget,
            poll: (budget / 4).clamp(Duration::from_millis(1), Duration::from_millis(50)),
        }
    }
}

impl Default for HealthConfig {
    /// A 2-second stall budget, 50 ms polls.
    fn default() -> Self {
        Self::with_budget(Duration::from_secs(2))
    }
}

/// What the detector reports about a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallEvent {
    /// The lane published no progress for one budget. The sentinel has
    /// cancelled the lease; the handler should reassign the shard.
    Missed {
        /// Lane index.
        lane: usize,
        /// The shard tag the lane was working.
        shard: u64,
        /// The cancelled lease's generation.
        gen: u64,
    },
    /// The lane ignored its cancel for another full budget: the thread
    /// is truly wedged, not merely slow. Reported once per lease.
    Wedged {
        /// Lane index.
        lane: usize,
        /// The shard tag the lane was working.
        shard: u64,
        /// The wedged lease's generation.
        gen: u64,
    },
}

/// Per-lane detector state. `(gen, tick)` is the identity of "the same
/// work with no progress"; any change resets the budget.
#[derive(Debug, Clone, Copy)]
enum Watch {
    /// Busy and making (or presumed making) progress.
    Fresh { gen: u64, tick: u64, since: Instant },
    /// `Missed` fired; waiting to see the cancel honoured.
    Cancelled { gen: u64, tick: u64, since: Instant },
    /// `Wedged` fired; ignored until the generation changes.
    Wedged { gen: u64 },
}

/// The pure stall state machine: feed it lane snapshots and timestamps,
/// it emits [`StallEvent`]s. No clocks, no threads — fully deterministic
/// under test.
#[derive(Debug)]
pub struct StallDetector {
    budget: Duration,
    watches: Vec<Option<Watch>>,
}

impl StallDetector {
    /// A detector for `lanes` lanes under `budget`.
    #[must_use]
    pub fn new(lanes: usize, budget: Duration) -> Self {
        StallDetector {
            budget,
            watches: vec![None; lanes],
        }
    }

    /// Observes one snapshot taken at `now`. Emits at most one event
    /// per lane per call; `Missed` and `Wedged` each fire at most once
    /// per lease generation.
    pub fn observe(&mut self, lanes: &[LaneState], now: Instant) -> Vec<StallEvent> {
        let mut events = Vec::new();
        for (i, state) in lanes.iter().enumerate() {
            let Some(watch) = self.watches.get_mut(i) else {
                break; // More lanes than the detector was sized for.
            };
            let Some(shard) = state.shard else {
                *watch = None;
                continue;
            };
            let fresh = Watch::Fresh {
                gen: state.gen,
                tick: state.tick,
                since: now,
            };
            match *watch {
                None => *watch = Some(fresh),
                Some(Watch::Fresh { gen, tick, since }) => {
                    if gen != state.gen || tick != state.tick {
                        // Progress (or a new lease): restart the budget.
                        // Tick wraparound lands here too — change is
                        // progress, whatever the direction.
                        *watch = Some(fresh);
                    } else if now.saturating_duration_since(since) >= self.budget {
                        events.push(StallEvent::Missed {
                            lane: i,
                            shard,
                            gen,
                        });
                        *watch = Some(Watch::Cancelled {
                            gen,
                            tick,
                            since: now,
                        });
                    }
                }
                Some(Watch::Cancelled { gen, tick, since }) => {
                    if gen != state.gen || tick != state.tick {
                        // A heartbeat raced the cancel: the lane is
                        // alive after all. Back to watching — if the
                        // cancel lands, the lane goes idle and the
                        // watch clears.
                        *watch = Some(fresh);
                    } else if now.saturating_duration_since(since) >= self.budget {
                        events.push(StallEvent::Wedged {
                            lane: i,
                            shard,
                            gen,
                        });
                        *watch = Some(Watch::Wedged { gen });
                    }
                }
                Some(Watch::Wedged { gen }) => {
                    if gen != state.gen {
                        *watch = Some(fresh);
                    }
                }
            }
        }
        events
    }

    /// Lanes currently past `Missed` without recovering (cancelled or
    /// wedged) — the `health` report's "stalled lanes".
    #[must_use]
    pub fn stalled(&self) -> usize {
        self.watches
            .iter()
            .filter(|w| matches!(w, Some(Watch::Cancelled { .. } | Watch::Wedged { .. })))
            .count()
    }
}

/// The supervision thread: polls a [`HeartbeatRegistry`], cancels
/// stalled leases, and hands escalation policy to the embedder's
/// handler.
#[derive(Debug)]
pub struct StallSentinel {
    stop: Arc<AtomicBool>,
    stalled: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl StallSentinel {
    /// Spawns the sentinel over `registry`. For every [`StallEvent`]:
    /// the sentinel itself performs step one of the ladder on `Missed`
    /// (cancels the lease, counts [`Metric::HeartbeatsMissed`], traces
    /// `HeartbeatMissed`), then calls `handler` — which owns steps two
    /// and three (reassign / degrade). A failed thread spawn degrades
    /// gracefully: no supervision, never a panic.
    #[must_use]
    pub fn spawn(
        registry: Arc<HeartbeatRegistry>,
        config: HealthConfig,
        mut handler: impl FnMut(StallEvent) + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stalled = Arc::new(AtomicU64::new(0));
        let handle = {
            let stop = Arc::clone(&stop);
            let stalled = Arc::clone(&stalled);
            std::thread::Builder::new()
                .name("svc-sentinel".into())
                .spawn(move || {
                    let mut detector = StallDetector::new(registry.lanes(), config.budget);
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(config.poll.max(Duration::from_micros(100)));
                        let events = detector.observe(&registry.snapshot(), Instant::now());
                        stalled.store(detector.stalled() as u64, Ordering::Relaxed);
                        for event in events {
                            if let StallEvent::Missed { lane, shard, gen } = event {
                                registry.cancel(lane, gen);
                                yac_obs::inc(Metric::HeartbeatsMissed);
                                yac_obs::trace_instant(
                                    TraceEventKind::HeartbeatMissed,
                                    TraceCtx {
                                        worker: Some(lane as u32),
                                        shard: Some(shard as u32),
                                        ..TraceCtx::default()
                                    },
                                );
                            }
                            handler(event);
                        }
                    }
                })
                .ok()
        };
        StallSentinel {
            stop,
            stalled,
            handle,
        }
    }

    /// Lanes currently stalled (cancelled or wedged), as of the last
    /// sentinel poll.
    #[must_use]
    pub fn stalled_lanes(&self) -> u64 {
        self.stalled.load(Ordering::Relaxed)
    }

    /// Stops and joins the sentinel thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StallSentinel {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy(gen: u64, tick: u64) -> LaneState {
        LaneState {
            shard: Some(7),
            gen,
            tick,
        }
    }

    const IDLE: LaneState = LaneState {
        shard: None,
        gen: 0,
        tick: 0,
    };

    #[test]
    fn lease_publishes_busy_beats_and_releases() {
        let reg = HeartbeatRegistry::new(2);
        assert_eq!(reg.busy(), 0);
        let lease = reg.begin(1, 42);
        assert_eq!(reg.busy(), 1);
        let before = reg.snapshot()[1];
        assert_eq!(before.shard, Some(42));
        lease.beat();
        lease.beat();
        let after = reg.snapshot()[1];
        assert_eq!(after.tick, before.tick + 2);
        assert!(!lease.is_cancelled());
        reg.cancel(1, lease.gen());
        assert!(lease.is_cancelled());
        drop(lease);
        assert_eq!(reg.busy(), 0);
        // A fresh lease has a fresh generation: the old cancel is stale.
        let next = reg.begin(1, 43);
        assert!(!next.is_cancelled());
    }

    #[test]
    fn detector_walks_missed_then_wedged_once_per_lease() {
        let t0 = Instant::now();
        let budget = Duration::from_millis(100);
        let mut d = StallDetector::new(1, budget);
        assert!(d.observe(&[busy(1, 5)], t0).is_empty(), "first sight");
        assert!(
            d.observe(&[busy(1, 5)], t0 + Duration::from_millis(50))
                .is_empty(),
            "inside budget"
        );
        let events = d.observe(&[busy(1, 5)], t0 + Duration::from_millis(150));
        assert_eq!(
            events,
            vec![StallEvent::Missed {
                lane: 0,
                shard: 7,
                gen: 1
            }]
        );
        assert_eq!(d.stalled(), 1);
        // No progress after the cancel: wedged, once.
        let events = d.observe(&[busy(1, 5)], t0 + Duration::from_millis(300));
        assert_eq!(
            events,
            vec![StallEvent::Wedged {
                lane: 0,
                shard: 7,
                gen: 1
            }]
        );
        assert!(d
            .observe(&[busy(1, 5)], t0 + Duration::from_millis(600))
            .is_empty());
        assert_eq!(d.stalled(), 1);
        // A fresh lease on the lane is watched afresh.
        assert!(d
            .observe(&[busy(2, 0)], t0 + Duration::from_millis(700))
            .is_empty());
        assert_eq!(d.stalled(), 0);
    }

    #[test]
    fn progress_and_idleness_reset_the_budget() {
        let t0 = Instant::now();
        let budget = Duration::from_millis(100);
        let mut d = StallDetector::new(1, budget);
        let _ = d.observe(&[busy(1, 5)], t0);
        // A beat inside the budget restarts the clock.
        let _ = d.observe(&[busy(1, 6)], t0 + Duration::from_millis(90));
        assert!(
            d.observe(&[busy(1, 6)], t0 + Duration::from_millis(150))
                .is_empty(),
            "only 60ms since the beat"
        );
        // Going idle clears the watch entirely.
        let _ = d.observe(&[IDLE], t0 + Duration::from_millis(160));
        assert!(d
            .observe(&[busy(1, 6)], t0 + Duration::from_millis(400))
            .is_empty());
        assert_eq!(d.stalled(), 0);
    }

    #[test]
    fn sentinel_cancels_and_reports_a_stalled_lease() {
        let registry = Arc::new(HeartbeatRegistry::new(1));
        let (tx, rx) = std::sync::mpsc::channel();
        let sentinel = StallSentinel::spawn(
            Arc::clone(&registry),
            HealthConfig {
                budget: Duration::from_millis(20),
                poll: Duration::from_millis(2),
            },
            move |event| {
                let _ = tx.send(event);
            },
        );
        let lease = registry.begin(0, 9);
        let event = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("sentinel reports the stall");
        assert_eq!(
            event,
            StallEvent::Missed {
                lane: 0,
                shard: 9,
                gen: lease.gen()
            }
        );
        assert!(lease.is_cancelled(), "step one of the ladder ran");
        drop(lease);
        sentinel.stop();
    }
}
