//! The sweep orchestrator: a grid of studies (seed × constraint ×
//! scheme set) run through the supervised executor with per-study
//! failure isolation and crash-safe resume.
//!
//! The paper's numbers come from repeated Monte Carlo studies — the same
//! population shape evaluated under several constraint recipes and both
//! power-down organisations, across seeds for confidence. A multi-study
//! sweep is exactly the workload where a single lost multi-hour run is
//! the dominant failure mode, so the orchestrator is built around three
//! guarantees:
//!
//! * **Failure domains are per study.** Each grid cell runs behind
//!   `catch_unwind` on top of the supervised executor's own shard
//!   isolation; a poisoned study is recorded [`StudyStatus::Failed`] and
//!   the sweep continues.
//! * **Crash-safe journal.** Progress is appended to a `YAC-SWEEP v1`
//!   journal, every record CRC-trailed like the v2 checkpoint format and
//!   fsynced (file *and* parent directory) before the sweep moves on. A
//!   torn final line — the signature of a crash mid-append — is detected
//!   and dropped; anything else corrupt is refused as
//!   [`StudyError::Corrupt`], never silently recomputed over.
//! * **Bit-identical resume.** Completed studies are restored from their
//!   journal records (every `f64` persisted as IEEE bit images); the
//!   interrupted study resumes shard-granularly from its own
//!   [`crate::executor::run_checkpointed_workers`] checkpoint. A killed
//!   sweep resumed any number of times produces the same loss tables and
//!   CPIs as an uninterrupted run, to the bit.
//!
//! Admission is bounded: at most [`SweepConfig::concurrent_studies`]
//! studies are in flight, each on its own supervised worker pool, so a
//! sweep never runs more than `concurrent_studies × exec.workers` worker
//! threads. Cooperative cancellation ([`SweepConfig::cancel`]) stops the
//! sweep between studies, leaving the journal resumable.
//!
//! # Journal format (`YAC-SWEEP v1`)
//!
//! A line-oriented append-only log. Every line ends with ` CRC xxxxxxxx`
//! — the IEEE CRC32 of the line's bytes before the trailer — so torn
//! appends are detectable per line:
//!
//! ```text
//! YAC-SWEEP v1 CRC xxxxxxxx
//! G <grid-hash 16 hex> <study-count> CRC xxxxxxxx
//! R <index> CRC xxxxxxxx                      # study started
//! S <index> <result...> CRC xxxxxxxx          # completed
//! D <index> <result...> CRC xxxxxxxx          # degraded (honest partial)
//! F <index> <error text> CRC xxxxxxxx         # failed (poisoned study)
//! ```
//!
//! A study's terminal state is its **last** `S`/`D`/`F` record; `R`
//! records only witness that a study was in flight when a crash hit.
//! `<result...>` serialises the study's full [`LossTable`] plus interval
//! and CPI with every float as its 16-hex-digit bit image — resume does
//! not recompute finished studies, it replays their recorded bits.
//!
//! # Examples
//!
//! ```
//! use yac_core::sweep::{run_sweep, SweepConfig, SweepGrid};
//!
//! let mut grid = SweepGrid::paper();
//! grid.chips = 16;
//! grid.seeds = vec![1];
//! let mut config = SweepConfig::default();
//! config.exec.workers = 2;
//! let dir = std::env::temp_dir().join("yac-sweep-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let journal = dir.join("doc.sweep");
//! let _ = std::fs::remove_file(&journal);
//! let outcome = run_sweep(&grid, &config, &journal).unwrap();
//! assert_eq!(outcome.completed(), grid.studies().len());
//! std::fs::remove_file(&journal).unwrap();
//! ```

use crate::analysis::{table2, table3, LossBreakdown, LossTable, SchemeLosses};
use crate::chaos::{intercept_write, IoSite};
use crate::checkpoint::{crc32, fsync_parent, StudyError};
use crate::chip::PopulationConfig;
use crate::confidence::{yield_interval, YieldInterval};
use crate::constraints::{ConstraintSpec, YieldConstraints};
use crate::executor::{run_checkpointed_workers, ExecutorConfig};
use crate::perf::{suite_cpis_isolated, PerfOptions};
use crate::schemes::PowerDownKind;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use yac_cache::CacheConfig;
use yac_circuit::CacheVariant;
use yac_pipeline::PipelineConfig;
use yac_variation::FaultPlan;

/// Journal magic line content (before its CRC trailer).
const MAGIC: &str = "YAC-SWEEP v1";

/// The study grid: every combination of seed, constraint recipe and
/// power-down organisation, over one population shape.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Chips per study population.
    pub chips: usize,
    /// Monte Carlo seeds, one study set per seed.
    pub seeds: Vec<u64>,
    /// Constraint recipes to classify under.
    pub constraints: Vec<ConstraintSpec>,
    /// Power-down organisations (selects Table 2 vs Table 3 losses).
    pub kinds: Vec<PowerDownKind>,
}

impl SweepGrid {
    /// The paper's full grid: 2000 chips, three constraint recipes, both
    /// organisations, one seed (add more for confidence).
    #[must_use]
    pub fn paper() -> Self {
        SweepGrid {
            chips: 2000,
            seeds: vec![2006],
            constraints: vec![
                ConstraintSpec::NOMINAL,
                ConstraintSpec::RELAXED,
                ConstraintSpec::STRICT,
            ],
            kinds: vec![PowerDownKind::Vertical, PowerDownKind::Horizontal],
        }
    }

    /// The grid cells in canonical order (seed-major, then constraint,
    /// then kind); [`StudySpec::index`] is the position in this list and
    /// the index the journal records.
    #[must_use]
    pub fn studies(&self) -> Vec<StudySpec> {
        let mut out = Vec::with_capacity(self.seeds.len() * self.constraints.len());
        for &seed in &self.seeds {
            for &constraint in &self.constraints {
                for &kind in &self.kinds {
                    out.push(StudySpec {
                        index: out.len(),
                        seed,
                        constraint,
                        kind,
                    });
                }
            }
        }
        out
    }

    /// A stable hash of everything that determines the sweep's results:
    /// the grid itself plus the result-shaping parts of the config (CPI
    /// budgets, fault plan). Deliberately excludes the executor tuning —
    /// worker count, shard size and retry budget never change results,
    /// so a sweep may be resumed under a different executor.
    #[must_use]
    pub fn fingerprint(&self, config: &SweepConfig) -> u64 {
        let mut h = mix(0x59ac_5eed, self.chips as u64);
        h = mix(h, self.seeds.len() as u64);
        for &seed in &self.seeds {
            h = mix(h, seed);
        }
        h = mix(h, self.constraints.len() as u64);
        for c in &self.constraints {
            for &b in c.name.as_bytes() {
                h = mix(h, u64::from(b));
            }
            h = mix(h, c.delay_sigma_factor.to_bits());
            h = mix(h, c.leakage_mean_factor.to_bits());
        }
        h = mix(h, self.kinds.len() as u64);
        for &k in &self.kinds {
            h = mix(h, matches!(k, PowerDownKind::Horizontal) as u64);
        }
        match &config.cpi {
            None => h = mix(h, 0),
            Some(c) => {
                h = mix(h, 1);
                h = mix(h, c.warmup_uops);
                h = mix(h, c.measure_uops);
            }
        }
        match &config.faults {
            None => h = mix(h, 0),
            Some(f) => {
                h = mix(h, 1);
                h = mix(h, f.rate().to_bits());
                h = mix(h, f.salt());
            }
        }
        h
    }
}

/// SplitMix64-style finalising fold used for the grid fingerprint (and
/// the service's per-query fingerprint, which must mix identically).
pub(crate) fn mix(h: u64, v: u64) -> u64 {
    let mut z = h
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(v.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudySpec {
    /// Position in [`SweepGrid::studies`]; the journal's study index.
    pub index: usize,
    /// Monte Carlo seed for the population.
    pub seed: u64,
    /// Constraint recipe the population is classified under.
    pub constraint: ConstraintSpec,
    /// Which organisation's loss table the study builds.
    pub kind: PowerDownKind,
}

/// Per-study CPI measurement budgets (trace seed follows the study
/// seed). `None` in [`SweepConfig::cpi`] skips CPI measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpiOptions {
    /// Micro-ops committed before measurement starts.
    pub warmup_uops: u64,
    /// Micro-ops measured.
    pub measure_uops: u64,
}

impl Default for CpiOptions {
    /// The quick benchmark budget — sweeps multiply every cost by the
    /// grid size, so the default leans fast.
    fn default() -> Self {
        let quick = PerfOptions::quick();
        CpiOptions {
            warmup_uops: quick.warmup_uops,
            measure_uops: quick.measure_uops,
        }
    }
}

/// Tuning for a sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Executor configuration used by every study.
    pub exec: ExecutorConfig,
    /// Studies admitted concurrently (each with its own `exec.workers`
    /// pool, so the sweep runs at most `concurrent_studies × workers`
    /// worker threads). Clamped to at least 1.
    pub concurrent_studies: usize,
    /// Shards between checkpoint writes within each study.
    pub checkpoint_every: usize,
    /// Measure mean suite CPI per study with these budgets; `None`
    /// skips CPI entirely.
    pub cpi: Option<CpiOptions>,
    /// Cooperative cancellation: set to `true` between studies to stop
    /// the sweep (finished studies stay journalled, the rest stay
    /// pending and a later run resumes them).
    pub cancel: Option<Arc<AtomicBool>>,
    /// Optional per-chip fault injection, applied to every study.
    pub faults: Option<FaultPlan>,
}

impl Default for SweepConfig {
    /// One study at a time on the default executor, checkpoint every 4
    /// shards, no CPI, no cancellation, no faults.
    fn default() -> Self {
        SweepConfig {
            exec: ExecutorConfig::default(),
            concurrent_studies: 1,
            checkpoint_every: 4,
            cpi: None,
            cancel: None,
            faults: None,
        }
    }
}

/// Everything one finished (or degraded) study produced.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyResult {
    /// The study's loss table (Table 2 or Table 3 shape).
    pub loss: LossTable,
    /// Yield interval under the study's own constraint, widened by any
    /// chips lost to degraded shards.
    pub yield_interval: YieldInterval,
    /// Chips that were actually evaluated (classified + quarantined).
    pub evaluated_chips: usize,
    /// Chips missing because their shard degraded.
    pub missing_chips: usize,
    /// Shards that exhausted their retry budget.
    pub degraded_shards: usize,
    /// Mean suite CPI on the paper's L1D, when CPI was measured.
    pub mean_cpi: Option<f64>,
}

/// What became of one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub enum StudyStatus {
    /// Not yet run (sweep cancelled or crashed before reaching it).
    Pending,
    /// Ran to completion with every chip observed.
    Completed(StudyResult),
    /// Finished, but some shards degraded: the result covers the
    /// surviving chips and its interval is honestly widened.
    Degraded(StudyResult),
    /// The study was poisoned (bad config, panic, corrupt checkpoint);
    /// the sweep continued without it.
    Failed {
        /// What went wrong.
        error: String,
    },
}

impl StudyStatus {
    /// The result, for terminal states that carry one.
    #[must_use]
    pub fn result(&self) -> Option<&StudyResult> {
        match self {
            StudyStatus::Completed(r) | StudyStatus::Degraded(r) => Some(r),
            _ => None,
        }
    }
}

/// The aggregated outcome of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Every grid cell with its status, ascending by study index.
    pub studies: Vec<(StudySpec, StudyStatus)>,
    /// Whether an existing journal was found and honoured.
    pub resumed: bool,
    /// Studies restored from journal records instead of being rerun.
    pub recovered: usize,
    /// Whether cooperative cancellation stopped the sweep early.
    pub cancelled: bool,
}

impl SweepOutcome {
    fn count(&self, f: impl Fn(&StudyStatus) -> bool) -> usize {
        self.studies.iter().filter(|(_, s)| f(s)).count()
    }

    /// Studies that completed with every chip observed.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.count(|s| matches!(s, StudyStatus::Completed(_)))
    }

    /// Studies that finished degraded.
    #[must_use]
    pub fn degraded(&self) -> usize {
        self.count(|s| matches!(s, StudyStatus::Degraded(_)))
    }

    /// Studies that failed outright.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.count(|s| matches!(s, StudyStatus::Failed { .. }))
    }

    /// Studies never reached (cancellation or crash).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.count(|s| matches!(s, StudyStatus::Pending))
    }
}

// ---------------------------------------------------------------------
// Journal rendering and parsing
// ---------------------------------------------------------------------

/// Appends the per-line CRC trailer.
pub(crate) fn crc_line(body: &str) -> String {
    format!("{body} CRC {:08x}\n", crc32(body.as_bytes()))
}

/// Splits a journal line into its body and verifies the CRC trailer.
/// `None` means the line is torn or rotted (only tolerable as the final
/// line of the file).
pub(crate) fn check_crc_line(line: &str) -> Option<&str> {
    let (body, hex) = line.rsplit_once(" CRC ")?;
    let stated = u32::from_str_radix(hex, 16).ok()?;
    (crc32(body.as_bytes()) == stated).then_some(body)
}

fn name_token(name: &str) -> String {
    // Journal records are whitespace-tokenised; names with whitespace
    // (none of ours have any) are made token-safe, at the cost of exact
    // round-trip for those names only.
    name.split_whitespace().collect::<Vec<_>>().join("_")
}

fn render_breakdown(out: &mut String, b: &LossBreakdown) {
    let _ = write!(out, " {} {}", b.leakage, b.delay.len());
    for d in &b.delay {
        let _ = write!(out, " {d}");
    }
}

/// Serialises a [`StudyResult`] as journal tokens (floats as IEEE bit
/// images, so replaying the record is bit-identical to recomputing).
///
/// The rendering is **canonical**: re-rendering a parsed record
/// reproduces it byte for byte. The sweep journal's `S`/`D` records,
/// the service's result cache and its wire replies all carry exactly
/// this text, which is what makes "cached equals recomputed" a byte
/// comparison.
#[must_use]
pub fn render_result(r: &StudyResult) -> String {
    let mut out = String::with_capacity(128);
    let _ = write!(
        out,
        "total {} quarantined {} variant {} spec {}",
        r.loss.total_chips,
        r.loss.quarantined,
        match r.loss.base_variant {
            CacheVariant::Regular => "R",
            CacheVariant::Horizontal => "H",
        },
        name_token(&r.loss.spec_name),
    );
    out.push_str(" base");
    render_breakdown(&mut out, &r.loss.base);
    let _ = write!(out, " schemes {}", r.loss.schemes.len());
    for s in &r.loss.schemes {
        let _ = write!(out, " {}", name_token(&s.name));
        render_breakdown(&mut out, &s.losses);
    }
    let _ = write!(
        out,
        " interval {:016x} {:016x} {:016x} evaluated {} missing {} shards {} cpi {}",
        r.yield_interval.estimate.to_bits(),
        r.yield_interval.lo.to_bits(),
        r.yield_interval.hi.to_bits(),
        r.evaluated_chips,
        r.missing_chips,
        r.degraded_shards,
        match r.mean_cpi {
            Some(c) => format!("{:016x}", c.to_bits()),
            None => "-".to_owned(),
        }
    );
    out
}

struct TokenReader<'a> {
    tokens: std::str::SplitAsciiWhitespace<'a>,
    line: usize,
}

impl<'a> TokenReader<'a> {
    fn corrupt(&self, what: impl Into<String>) -> StudyError {
        StudyError::Corrupt {
            line: self.line,
            what: what.into(),
        }
    }

    fn next(&mut self) -> Result<&'a str, StudyError> {
        self.tokens
            .next()
            .ok_or_else(|| self.corrupt("truncated record"))
    }

    fn keyword(&mut self, word: &str) -> Result<(), StudyError> {
        let got = self.next()?;
        if got == word {
            Ok(())
        } else {
            Err(self.corrupt(format!("expected {word:?}, got {got:?}")))
        }
    }

    fn usize(&mut self) -> Result<usize, StudyError> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| self.corrupt(format!("bad integer {t:?}")))
    }

    fn f64_bits(&mut self) -> Result<f64, StudyError> {
        let t = self.next()?;
        u64::from_str_radix(t, 16)
            .map(f64::from_bits)
            .map_err(|_| self.corrupt(format!("bad f64 bits {t:?}")))
    }

    fn breakdown(&mut self) -> Result<LossBreakdown, StudyError> {
        let leakage = self.usize()?;
        let rows = self.usize()?;
        let mut delay = Vec::with_capacity(rows);
        for _ in 0..rows {
            delay.push(self.usize()?);
        }
        Ok(LossBreakdown { leakage, delay })
    }
}

/// Parses [`render_result`] tokens back into a [`StudyResult`] (bit
/// exact). `line` is folded into [`StudyError::Corrupt`] diagnostics.
///
/// # Errors
///
/// Returns [`StudyError::Corrupt`] when the tokens are truncated,
/// malformed or carry trailing garbage.
pub fn parse_result(tokens: &str, line: usize) -> Result<StudyResult, StudyError> {
    let mut r = TokenReader {
        tokens: tokens.split_ascii_whitespace(),
        line,
    };
    r.keyword("total")?;
    let total_chips = r.usize()?;
    r.keyword("quarantined")?;
    let quarantined = r.usize()?;
    r.keyword("variant")?;
    let base_variant = match r.next()? {
        "R" => CacheVariant::Regular,
        "H" => CacheVariant::Horizontal,
        other => return Err(r.corrupt(format!("bad variant {other:?}"))),
    };
    r.keyword("spec")?;
    let spec_name = r.next()?.to_owned();
    r.keyword("base")?;
    let base = r.breakdown()?;
    r.keyword("schemes")?;
    let nschemes = r.usize()?;
    let mut schemes = Vec::with_capacity(nschemes);
    for _ in 0..nschemes {
        let name = r.next()?.to_owned();
        let losses = r.breakdown()?;
        schemes.push(SchemeLosses { name, losses });
    }
    r.keyword("interval")?;
    let interval = YieldInterval {
        estimate: r.f64_bits()?,
        lo: r.f64_bits()?,
        hi: r.f64_bits()?,
    };
    r.keyword("evaluated")?;
    let evaluated_chips = r.usize()?;
    r.keyword("missing")?;
    let missing_chips = r.usize()?;
    r.keyword("shards")?;
    let degraded_shards = r.usize()?;
    r.keyword("cpi")?;
    let mean_cpi = match r.next()? {
        "-" => None,
        bits => Some(
            u64::from_str_radix(bits, 16)
                .map(f64::from_bits)
                .map_err(|_| r.corrupt(format!("bad cpi bits {bits:?}")))?,
        ),
    };
    if r.tokens.next().is_some() {
        return Err(r.corrupt("trailing tokens on study record"));
    }
    Ok(StudyResult {
        loss: LossTable {
            base_variant,
            spec_name,
            total_chips,
            base,
            schemes,
            quarantined,
        },
        yield_interval: interval,
        evaluated_chips,
        missing_chips,
        degraded_shards,
        mean_cpi,
    })
}

/// What a journal parse recovered.
#[derive(Debug)]
pub(crate) struct ParsedJournal {
    pub(crate) grid_hash: u64,
    pub(crate) studies: usize,
    /// Last terminal record per study index.
    pub(crate) terminal: Vec<(usize, StudyStatus)>,
    /// A torn (CRC-failing or newline-less) final line was dropped; the
    /// file must be truncated to `valid_len` before appending, or the
    /// next record would concatenate onto the partial line.
    pub(crate) torn_tail: bool,
    /// Byte length of the CRC-valid prefix.
    pub(crate) valid_len: u64,
}

/// Parses journal text. `Ok(None)` means the file holds no complete
/// header — the signature of a crash during creation — and the sweep
/// should start fresh (rewriting the file).
pub(crate) fn parse_journal(text: &str) -> Result<Option<ParsedJournal>, StudyError> {
    // A crash mid-append can only tear the final line: CRC-check line by
    // line, tolerating damage (bad CRC or a missing newline) only at the
    // very end of the file. Damage anywhere else is bit rot and fatal.
    let mut bodies = Vec::new();
    let mut torn_tail = false;
    let mut valid_len = 0usize;
    let mut lineno = 0usize;
    let mut pos = 0usize;
    while pos < text.len() {
        lineno += 1;
        let Some(nl) = text[pos..].find('\n') else {
            torn_tail = true; // Newline-less tail: crash mid-append.
            break;
        };
        let line = &text[pos..pos + nl];
        match check_crc_line(line) {
            Some(body) => {
                bodies.push((lineno, body));
                pos += nl + 1;
                valid_len = pos;
            }
            None if pos + nl + 1 == text.len() => {
                torn_tail = true;
                break;
            }
            None => {
                return Err(StudyError::Corrupt {
                    line: lineno,
                    what: "journal line fails its CRC (bit rot mid-file)".into(),
                })
            }
        }
    }
    let Some(&(_, magic)) = bodies.first() else {
        return Ok(None); // Nothing durable yet: fresh sweep.
    };
    if magic != MAGIC {
        return Err(StudyError::Corrupt {
            line: 1,
            what: format!("bad magic {magic:?}"),
        });
    }
    let Some(&(gline, grid)) = bodies.get(1) else {
        return Ok(None); // Header crashed before the grid line.
    };
    let mut r = TokenReader {
        tokens: grid.split_ascii_whitespace(),
        line: gline,
    };
    r.keyword("G")?;
    let hex = r.next()?;
    let grid_hash =
        u64::from_str_radix(hex, 16).map_err(|_| r.corrupt(format!("bad grid hash {hex:?}")))?;
    let studies = r.usize()?;
    let mut terminal: Vec<(usize, StudyStatus)> = Vec::new();
    let mut record =
        |index: usize, status: StudyStatus| match terminal.iter_mut().find(|(i, _)| *i == index) {
            Some((_, s)) => *s = status,
            None => terminal.push((index, status)),
        };
    for &(line, body) in &bodies[2..] {
        let corrupt = |what: String| StudyError::Corrupt { line, what };
        let (tag, rest) = body
            .split_once(' ')
            .ok_or_else(|| corrupt("bare record tag".into()))?;
        let (index_token, payload) = rest.split_once(' ').unwrap_or((rest, ""));
        let index: usize = index_token
            .parse()
            .map_err(|_| corrupt(format!("bad study index {index_token:?}")))?;
        if index >= studies {
            return Err(corrupt(format!("study index {index} out of range")));
        }
        match tag {
            "R" => {} // In-flight witness only; terminal state comes later.
            "S" => record(index, StudyStatus::Completed(parse_result(payload, line)?)),
            "D" => record(index, StudyStatus::Degraded(parse_result(payload, line)?)),
            "F" => record(
                index,
                StudyStatus::Failed {
                    error: payload.to_owned(),
                },
            ),
            other => return Err(corrupt(format!("unknown record tag {other:?}"))),
        }
    }
    Ok(Some(ParsedJournal {
        grid_hash,
        studies,
        terminal,
        torn_tail,
        valid_len: valid_len as u64,
    }))
}

/// The append side of the journal: an open handle plus the path (for
/// error messages and chaos attribution). Appends are CRC-trailed,
/// written in one `write_all` and fsynced before returning.
struct SweepJournal {
    path: PathBuf,
    file: std::fs::File,
}

impl SweepJournal {
    fn io_err(path: &Path, e: std::io::Error) -> StudyError {
        StudyError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }
    }

    /// Opens `path` for appending, creating it (plus the header lines
    /// and a parent-directory fsync) when `fresh`.
    fn open(path: &Path, fresh: bool, grid_hash: u64, studies: usize) -> Result<Self, StudyError> {
        if fresh {
            // Recreate from scratch: a half-written header from a
            // previous crash must not linger ahead of ours.
            let header = format!(
                "{}{}",
                crc_line(MAGIC),
                crc_line(&format!("G {grid_hash:016x} {studies}"))
            );
            intercept_write(IoSite::SweepJournal, path, header.as_bytes(), |bytes| {
                use std::io::Write;
                let mut f = std::fs::File::create(path)?;
                f.write_all(bytes)?;
                f.sync_all()?;
                fsync_parent(path)
            })
            .map_err(|e| Self::io_err(path, e))?;
        }
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| Self::io_err(path, e))?;
        Ok(SweepJournal {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Appends one CRC-trailed record line durably.
    fn append(&mut self, body: &str) -> Result<(), StudyError> {
        let line = crc_line(body);
        intercept_write(IoSite::SweepJournal, &self.path, line.as_bytes(), |bytes| {
            use std::io::Write;
            self.file.write_all(bytes)?;
            self.file.sync_all()
        })
        .map_err(|e| Self::io_err(&self.path, e))
    }
}

// ---------------------------------------------------------------------
// The orchestrator
// ---------------------------------------------------------------------

/// The per-study checkpoint path: `<journal>.s<index>.ckpt` next to the
/// journal, so the interrupted study resumes shard-granularly.
fn study_checkpoint(journal: &Path, index: usize) -> PathBuf {
    journal.with_extension(format!("s{index}.ckpt"))
}

/// Turns a supervised-executor outcome into a [`StudyResult`]:
/// classification, loss table, interval, optional CPI. Shared verbatim
/// by the sweep orchestrator and the service's work-stealing path, so a
/// service-computed result is bit-identical to the sweep's for the same
/// grid cell by construction.
pub(crate) fn study_result_from_outcome(
    outcome: &crate::executor::StudyOutcome,
    constraint: ConstraintSpec,
    kind: PowerDownKind,
    seed: u64,
    cpi: Option<&CpiOptions>,
) -> Result<StudyResult, StudyError> {
    if outcome.population.is_empty() {
        // YieldConstraints::derive needs at least one surviving chip.
        return Err(StudyError::Degraded {
            missing: outcome.missing_chips() + outcome.population.quarantine().len(),
            requested: outcome.requested_chips,
        });
    }
    let constraints = YieldConstraints::derive(&outcome.population, constraint);
    let loss = match kind {
        PowerDownKind::Vertical => table2(&outcome.population, &constraints),
        PowerDownKind::Horizontal => table3(&outcome.population, &constraints),
    };
    let missing = outcome.missing_chips();
    let shipped = loss.total_chips - loss.base.total();
    let interval = yield_interval(shipped, loss.total_chips, missing);
    let mean_cpi = cpi.and_then(|c| {
        let opts = PerfOptions {
            warmup_uops: c.warmup_uops,
            measure_uops: c.measure_uops,
            trace_seed: seed,
        };
        let (cpis, _failures) =
            suite_cpis_isolated(&CacheConfig::l1d_paper(), &PipelineConfig::paper(), &opts);
        if cpis.is_empty() {
            None
        } else {
            Some(cpis.iter().map(|(_, c)| c).sum::<f64>() / cpis.len() as f64)
        }
    });
    Ok(StudyResult {
        evaluated_chips: loss.total_chips + loss.quarantined,
        missing_chips: missing,
        degraded_shards: outcome.degraded.len(),
        yield_interval: interval,
        loss,
        mean_cpi,
    })
}

/// Runs one grid cell end to end: population (checkpointed, supervised),
/// classification, loss table, interval, optional CPI.
fn run_one_study(
    grid: &SweepGrid,
    config: &SweepConfig,
    spec: &StudySpec,
    ckpt: &Path,
) -> Result<StudyResult, StudyError> {
    let mut pop_cfg = PopulationConfig::paper(spec.seed);
    pop_cfg.chips = grid.chips;
    pop_cfg.faults = config.faults;
    let outcome = run_checkpointed_workers(&pop_cfg, &config.exec, ckpt, config.checkpoint_every)?;
    study_result_from_outcome(
        &outcome,
        spec.constraint,
        spec.kind,
        spec.seed,
        config.cpi.as_ref(),
    )
}

/// Runs (or resumes) a sweep, journalling progress at `journal_path`.
///
/// An existing journal is honoured: its grid fingerprint must match
/// (else [`StudyError::Mismatch`]), studies with terminal records are
/// restored without recomputation, and the rest run — the interrupted
/// one resuming from its own shard-granular checkpoint.
///
/// # Errors
///
/// Returns [`StudyError::Io`] when the journal cannot be written (the
/// sweep cannot promise crash safety without it), [`StudyError::Corrupt`]
/// for a damaged journal, [`StudyError::Mismatch`] when the journal
/// belongs to a different grid. Per-study failures do **not** fail the
/// sweep; they surface as [`StudyStatus::Failed`] entries.
pub fn run_sweep(
    grid: &SweepGrid,
    config: &SweepConfig,
    journal_path: &Path,
) -> Result<SweepOutcome, StudyError> {
    let specs = grid.studies();
    if grid.chips == 0 || specs.is_empty() {
        return Err(StudyError::Mismatch(
            "empty sweep grid: chips, seeds, constraints and kinds must all be nonempty".into(),
        ));
    }
    let fingerprint = grid.fingerprint(config);

    let parsed = match std::fs::read_to_string(journal_path) {
        Ok(text) => parse_journal(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(SweepJournal::io_err(journal_path, e)),
    };
    let mut statuses: Vec<StudyStatus> = vec![StudyStatus::Pending; specs.len()];
    let (resumed, recovered) = match &parsed {
        None => (false, 0),
        Some(journal) => {
            if journal.grid_hash != fingerprint || journal.studies != specs.len() {
                return Err(StudyError::Mismatch(format!(
                    "sweep journal belongs to a different grid \
                     (journal {:016x}/{} studies, this grid {:016x}/{})",
                    journal.grid_hash,
                    journal.studies,
                    fingerprint,
                    specs.len()
                )));
            }
            for (index, status) in &journal.terminal {
                statuses[*index] = status.clone();
            }
            (true, journal.terminal.len())
        }
    };
    if let Some(journal) = &parsed {
        if journal.torn_tail {
            // Drop the torn tail before appending: a new record written
            // after a partial line would corrupt the journal mid-file.
            intercept_write(IoSite::SweepJournal, journal_path, &[], |_| {
                let f = std::fs::OpenOptions::new().write(true).open(journal_path)?;
                f.set_len(journal.valid_len)?;
                f.sync_all()
            })
            .map_err(|e| SweepJournal::io_err(journal_path, e))?;
        }
    }
    let journal = Mutex::new(SweepJournal::open(
        journal_path,
        parsed.is_none(),
        fingerprint,
        specs.len(),
    )?);
    if resumed {
        yac_obs::trace_instant(
            yac_obs::TraceEventKind::SweepResumed,
            yac_obs::TraceCtx::default(),
        );
        // Recovered studies no longer need their checkpoints.
        for (index, status) in specs.iter().zip(&statuses) {
            if !matches!(status, StudyStatus::Pending) {
                let _ = std::fs::remove_file(study_checkpoint(journal_path, index.index));
            }
        }
    }

    let pending: Vec<usize> = statuses
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, StudyStatus::Pending))
        .map(|(i, _)| i)
        .collect();
    let statuses = Mutex::new(statuses);
    let first_error: Mutex<Option<StudyError>> = Mutex::new(None);
    let abort = AtomicBool::new(false);
    let cancelled = AtomicBool::new(false);
    let cursor = AtomicUsize::new(0);
    let slots = config.concurrent_studies.clamp(1, pending.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..slots {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    return;
                }
                if config
                    .cancel
                    .as_ref()
                    .is_some_and(|c| c.load(Ordering::Relaxed))
                {
                    cancelled.store(true, Ordering::Relaxed);
                    return;
                }
                let slot = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&index) = pending.get(slot) else {
                    return;
                };
                let spec = specs[index];
                let fail_sweep = |e: StudyError| {
                    let mut first = first_error.lock().unwrap_or_else(|p| p.into_inner());
                    first.get_or_insert(e);
                    abort.store(true, Ordering::Relaxed);
                };
                {
                    let mut j = journal.lock().unwrap_or_else(|p| p.into_inner());
                    if let Err(e) = j.append(&format!("R {index}")) {
                        fail_sweep(e);
                        return;
                    }
                }
                let ctx = yac_obs::TraceCtx::study(index as u32);
                yac_obs::trace_instant(yac_obs::TraceEventKind::StudyStarted, ctx);
                let _span = yac_obs::phase_ctx(yac_obs::Phase::StudyExec, ctx);
                let ckpt = study_checkpoint(journal_path, index);
                let ran = std::panic::catch_unwind(|| run_one_study(grid, config, &spec, &ckpt));
                let status = match ran {
                    Ok(Ok(result)) if result.missing_chips == 0 => {
                        yac_obs::inc(yac_obs::Metric::StudiesCompleted);
                        yac_obs::trace_instant(yac_obs::TraceEventKind::StudyCompleted, ctx);
                        StudyStatus::Completed(result)
                    }
                    Ok(Ok(result)) => {
                        yac_obs::inc(yac_obs::Metric::StudiesDegraded);
                        yac_obs::trace_instant(yac_obs::TraceEventKind::StudyDegraded, ctx);
                        StudyStatus::Degraded(result)
                    }
                    Ok(Err(e)) => {
                        yac_obs::inc(yac_obs::Metric::StudiesFailed);
                        yac_obs::trace_instant(yac_obs::TraceEventKind::StudyDegraded, ctx);
                        StudyStatus::Failed {
                            error: e.to_string(),
                        }
                    }
                    Err(panic) => {
                        yac_obs::inc(yac_obs::Metric::StudiesFailed);
                        yac_obs::trace_instant(yac_obs::TraceEventKind::StudyDegraded, ctx);
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "opaque panic payload".into());
                        StudyStatus::Failed {
                            error: format!("study panicked: {msg}"),
                        }
                    }
                };
                let record = match &status {
                    StudyStatus::Completed(r) => format!("S {index} {}", render_result(r)),
                    StudyStatus::Degraded(r) => format!("D {index} {}", render_result(r)),
                    StudyStatus::Failed { error } => {
                        format!("F {index} {}", error.replace('\n', " "))
                    }
                    StudyStatus::Pending => unreachable!("terminal statuses only"),
                };
                {
                    let mut j = journal.lock().unwrap_or_else(|p| p.into_inner());
                    if let Err(e) = j.append(&record) {
                        fail_sweep(e);
                        return;
                    }
                }
                // The terminal record is durable; the study's checkpoint
                // is now redundant.
                let _ = std::fs::remove_file(&ckpt);
                statuses.lock().unwrap_or_else(|p| p.into_inner())[index] = status;
            });
        }
    });

    if let Some(e) = first_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(e);
    }
    Ok(SweepOutcome {
        studies: specs
            .into_iter()
            .zip(statuses.into_inner().unwrap_or_else(|p| p.into_inner()))
            .collect(),
        resumed,
        recovered,
        cancelled: cancelled.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumerates_seed_major_with_stable_indices() {
        let grid = SweepGrid {
            chips: 8,
            seeds: vec![1, 2],
            constraints: vec![ConstraintSpec::NOMINAL, ConstraintSpec::STRICT],
            kinds: vec![PowerDownKind::Vertical, PowerDownKind::Horizontal],
        };
        let studies = grid.studies();
        assert_eq!(studies.len(), 8);
        for (i, s) in studies.iter().enumerate() {
            assert_eq!(s.index, i);
        }
        assert_eq!(studies[0].seed, 1);
        assert_eq!(studies[0].constraint.name, "nominal");
        assert_eq!(studies[1].kind, PowerDownKind::Horizontal);
        assert_eq!(studies[4].seed, 2);
    }

    #[test]
    fn fingerprint_tracks_results_shaping_inputs_only() {
        let grid = SweepGrid {
            chips: 8,
            seeds: vec![1],
            constraints: vec![ConstraintSpec::NOMINAL],
            kinds: vec![PowerDownKind::Vertical],
        };
        let mut config = SweepConfig::default();
        let base = grid.fingerprint(&config);

        // Executor tuning must not disturb the fingerprint: a sweep may
        // be resumed under a different worker count.
        config.exec.workers = 7;
        config.concurrent_studies = 3;
        config.checkpoint_every = 99;
        assert_eq!(grid.fingerprint(&config), base);

        // Result-shaping knobs must.
        config.cpi = Some(CpiOptions::default());
        assert_ne!(grid.fingerprint(&config), base);
        config.cpi = None;
        config.faults = Some(FaultPlan::new(0.1, 3).unwrap());
        assert_ne!(grid.fingerprint(&config), base);
        config.faults = None;

        let mut other = grid.clone();
        other.seeds = vec![2];
        assert_ne!(other.fingerprint(&config), base);
        let mut other = grid.clone();
        other.chips = 9;
        assert_ne!(other.fingerprint(&config), base);
        let mut other = grid.clone();
        other.constraints = vec![ConstraintSpec::RELAXED];
        assert_ne!(other.fingerprint(&config), base);
        let mut other = grid.clone();
        other.kinds = vec![PowerDownKind::Horizontal];
        assert_ne!(other.fingerprint(&config), base);
    }

    fn sample_result(cpi: Option<f64>) -> StudyResult {
        StudyResult {
            loss: LossTable {
                base_variant: CacheVariant::Horizontal,
                spec_name: "strict".into(),
                total_chips: 100,
                base: LossBreakdown {
                    leakage: 7,
                    delay: vec![3, 2, 0, 1],
                },
                schemes: vec![
                    SchemeLosses {
                        name: "H-YAPD".into(),
                        losses: LossBreakdown {
                            leakage: 7,
                            delay: vec![0, 0, 0, 1],
                        },
                    },
                    SchemeLosses {
                        name: "VACA".into(),
                        losses: LossBreakdown {
                            leakage: 7,
                            delay: vec![1, 0, 0, 1],
                        },
                    },
                ],
                quarantined: 3,
            },
            yield_interval: YieldInterval {
                estimate: 0.87,
                lo: 0.81234567890123,
                hi: 0.93,
            },
            evaluated_chips: 103,
            missing_chips: 5,
            degraded_shards: 1,
            mean_cpi: cpi,
        }
    }

    #[test]
    fn study_records_round_trip_bit_exactly() {
        for r in [sample_result(None), sample_result(Some(1.2345678901234))] {
            let text = render_result(&r);
            let parsed = parse_result(&text, 3).unwrap();
            assert_eq!(parsed, r);
            assert_eq!(
                parsed.yield_interval.lo.to_bits(),
                r.yield_interval.lo.to_bits()
            );
            // Canonical: re-render matches byte for byte.
            assert_eq!(render_result(&parsed), text);
        }
    }

    #[test]
    fn journal_lines_carry_verifiable_crcs() {
        let line = crc_line("S 3 total 1");
        let body = check_crc_line(line.trim_end()).unwrap();
        assert_eq!(body, "S 3 total 1");
        assert!(check_crc_line("S 3 total 1 CRC 00000000").is_none());
        assert!(check_crc_line("no trailer at all").is_none());
    }

    fn journal_text(records: &[&str]) -> String {
        let mut out = String::new();
        out.push_str(&crc_line(MAGIC));
        out.push_str(&crc_line("G 00000000000000aa 4"));
        for r in records {
            out.push_str(&crc_line(r));
        }
        out
    }

    #[test]
    fn parse_journal_restores_last_terminal_record_per_study() {
        let ok = render_result(&sample_result(None));
        let text = journal_text(&[
            "R 0",
            &format!("S 0 {ok}"),
            "R 1",
            "F 1 study panicked: injected",
            "R 1",
            &format!("D 1 {ok}"),
            "R 2",
        ]);
        let parsed = parse_journal(&text).unwrap().unwrap();
        assert_eq!(parsed.grid_hash, 0xaa);
        assert_eq!(parsed.studies, 4);
        assert!(!parsed.torn_tail);
        assert_eq!(parsed.terminal.len(), 2);
        assert!(matches!(parsed.terminal[0].1, StudyStatus::Completed(_)));
        // The retry's D record supersedes the earlier F.
        assert!(matches!(parsed.terminal[1].1, StudyStatus::Degraded(_)));
    }

    #[test]
    fn torn_final_line_is_dropped_but_mid_file_rot_is_fatal() {
        let ok = render_result(&sample_result(None));
        let mut text = journal_text(&[&format!("S 0 {ok}")]);
        // Crash mid-append: half a record, no newline.
        text.push_str("S 1 total 9");
        let parsed = parse_journal(&text).unwrap().unwrap();
        assert!(parsed.torn_tail);
        assert_eq!(parsed.terminal.len(), 1);

        // A complete final line with a bad CRC is also a torn tail.
        let mut torn_crc = journal_text(&[&format!("S 0 {ok}")]);
        torn_crc.push_str("S 1 total 9 CRC 12345678\n");
        let parsed = parse_journal(&torn_crc).unwrap().unwrap();
        assert!(parsed.torn_tail);

        // The same damage mid-file is bit rot, not a crash: refuse.
        let mut rotted = journal_text(&[]);
        rotted.push_str("S 0 total 9 CRC 12345678\n");
        rotted.push_str(&crc_line(&format!("S 1 {ok}")));
        assert!(matches!(
            parse_journal(&rotted),
            Err(StudyError::Corrupt { line: 3, .. })
        ));
    }

    #[test]
    fn headerless_or_half_created_journals_read_as_fresh() {
        assert!(parse_journal("").unwrap().is_none());
        assert!(parse_journal("YAC-SW").unwrap().is_none());
        // Magic complete, grid line torn.
        let mut text = crc_line(MAGIC);
        text.push_str("G 00000000");
        assert!(parse_journal(&text).unwrap().is_none());
        // But a wrong magic is corruption, not freshness.
        assert!(parse_journal(&crc_line("YAC-CHECKPOINT v2")).is_err());
    }

    #[test]
    fn out_of_range_indices_and_unknown_tags_are_corrupt() {
        assert!(matches!(
            parse_journal(&journal_text(&["S 9 total 1"])),
            Err(StudyError::Corrupt { .. })
        ));
        assert!(matches!(
            parse_journal(&journal_text(&["X 0 what"])),
            Err(StudyError::Corrupt { .. })
        ));
    }

    #[test]
    fn name_tokens_stay_whitespace_free() {
        assert_eq!(name_token("H-YAPD"), "H-YAPD");
        assert_eq!(name_token("naive binning"), "naive_binning");
    }
}
