//! Statistical confidence for the yield estimates.
//!
//! The paper reports one 2000-chip Monte Carlo run. Any such estimate
//! carries sampling error; this module repeats the whole study across
//! independent seeds and reports mean ± σ for every scheme's yield and
//! loss reduction, so a reader can tell which differences between schemes
//! are real and which are Monte Carlo noise.

use crate::analysis::{table2, table3, LossTable};
use crate::chip::Population;
use crate::constraints::{ConstraintSpec, YieldConstraints};
use std::fmt;
use yac_variation::stats::Summary;

/// A yield estimate with an explicit uncertainty interval.
///
/// Produced by [`yield_interval`] for supervised runs, where degraded
/// shards can leave chips unevaluated: instead of silently shrinking the
/// denominator, the interval widens to bracket every possible outcome of
/// the missing chips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldInterval {
    /// Point estimate of the shipping fraction among evaluated chips.
    pub estimate: f64,
    /// Lower bound: every missing chip assumed lost, minus sampling error.
    pub lo: f64,
    /// Upper bound: every missing chip assumed shipped, plus sampling
    /// error.
    pub hi: f64,
}

impl YieldInterval {
    /// Width of the interval.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `p` lies inside the interval.
    #[must_use]
    pub fn contains(&self, p: f64) -> bool {
        (self.lo..=self.hi).contains(&p)
    }
}

impl fmt::Display for YieldInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} [{:.4}, {:.4}]", self.estimate, self.lo, self.hi)
    }
}

/// A 95% yield interval that accounts for unevaluated chips.
///
/// `shipped` of `evaluated` chips passed; `missing` more were requested
/// but never evaluated (degraded shards). The bounds combine a normal
/// approximation of the binomial sampling error (z = 1.96) over the
/// evaluated chips with the worst/best case for the missing ones: the
/// lower bound treats all of them as lost, the upper bound as shipped.
/// With `missing = 0` this reduces to the standard Wald interval; each
/// missing chip monotonically widens the interval.
///
/// # Panics
///
/// Panics if `shipped > evaluated`.
#[must_use]
pub fn yield_interval(shipped: usize, evaluated: usize, missing: usize) -> YieldInterval {
    assert!(shipped <= evaluated, "cannot ship more than was evaluated");
    let total = (evaluated + missing) as f64;
    if evaluated == 0 {
        // Nothing measured: the estimate is vacuous and the interval
        // spans everything the missing chips could do.
        return YieldInterval {
            estimate: 0.0,
            lo: 0.0,
            hi: if missing > 0 { 1.0 } else { 0.0 },
        };
    }
    let n = evaluated as f64;
    let p = shipped as f64 / n;
    let se = (p * (1.0 - p) / n).sqrt();
    const Z: f64 = 1.96;
    YieldInterval {
        estimate: p,
        lo: (shipped as f64 / total - Z * se).max(0.0),
        hi: ((shipped + missing) as f64 / total + Z * se).min(1.0),
    }
}

/// Mean ± population σ of one scalar across seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Mean over the seeds.
    pub mean: f64,
    /// Population standard deviation over the seeds.
    pub std_dev: f64,
}

impl Estimate {
    fn from_samples(samples: &[f64]) -> Estimate {
        let s = Summary::from_slice(samples).expect("non-empty finite samples");
        Estimate {
            mean: s.mean,
            std_dev: s.std_dev,
        }
    }

    /// Whether this estimate is clearly above another (means separated by
    /// more than the combined σ).
    #[must_use]
    pub fn clearly_above(&self, other: &Estimate) -> bool {
        self.mean - other.mean > self.std_dev + other.std_dev
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ± {:.2}", self.mean, self.std_dev)
    }
}

/// One scheme's yield statistics across seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeConfidence {
    /// Scheme display name.
    pub name: String,
    /// Yield percentage.
    pub yield_pct: Estimate,
    /// Loss-reduction percentage relative to the base case.
    pub loss_reduction_pct: Estimate,
}

/// The multi-seed study result.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidenceReport {
    /// Chips per seed.
    pub chips: usize,
    /// Seeds used.
    pub seeds: Vec<u64>,
    /// Base-case yield percentage.
    pub base_yield_pct: Estimate,
    /// Per-scheme statistics: YAPD, VACA, Hybrid (regular architecture)
    /// followed by H-YAPD, VACA-H, Hybrid-H (horizontal architecture).
    pub schemes: Vec<SchemeConfidence>,
}

impl ConfidenceReport {
    /// Looks up one scheme's statistics by display name.
    #[must_use]
    pub fn scheme(&self, name: &str) -> Option<&SchemeConfidence> {
        self.schemes.iter().find(|s| s.name == name)
    }
}

impl fmt::Display for ConfidenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} seeds x {} chips: base yield {} %",
            self.seeds.len(),
            self.chips,
            self.base_yield_pct
        )?;
        for s in &self.schemes {
            writeln!(
                f,
                "{:<10} yield {} %   loss reduction {} %",
                s.name, s.yield_pct, s.loss_reduction_pct
            )?;
        }
        Ok(())
    }
}

fn collect(tables: &[LossTable], scheme_idx: usize) -> (Vec<f64>, Vec<f64>) {
    let yields = tables
        .iter()
        .map(|t| 100.0 * t.yield_fraction(Some(scheme_idx)))
        .collect();
    let reductions = tables
        .iter()
        .map(|t| 100.0 * t.loss_reduction(scheme_idx))
        .collect();
    (yields, reductions)
}

/// Runs the full Table 2 + Table 3 study once per seed and aggregates.
///
/// Populations are generated in parallel (one thread per seed).
///
/// # Panics
///
/// Panics if `seeds` is empty or `chips` is zero.
///
/// # Examples
///
/// ```
/// use yac_core::confidence::confidence_study;
///
/// let report = confidence_study(150, &[1, 2, 3]);
/// let hybrid = report.scheme("Hybrid").unwrap();
/// assert!(hybrid.yield_pct.mean > 85.0);
/// ```
#[must_use]
pub fn confidence_study(chips: usize, seeds: &[u64]) -> ConfidenceReport {
    assert!(!seeds.is_empty(), "at least one seed required");
    assert!(chips > 0, "population must be non-empty");

    let mut runs: Vec<(LossTable, LossTable)> = Vec::with_capacity(seeds.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                scope.spawn(move || {
                    let population = Population::generate(chips, seed);
                    let constraints =
                        YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
                    (
                        table2(&population, &constraints),
                        table3(&population, &constraints),
                    )
                })
            })
            .collect();
        for h in handles {
            // Propagate a worker's own panic payload instead of masking
            // it behind a fresh "study worker" panic here.
            match h.join() {
                Ok(run) => runs.push(run),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    let t2: Vec<LossTable> = runs.iter().map(|(a, _)| a.clone()).collect();
    let t3: Vec<LossTable> = runs.iter().map(|(_, b)| b.clone()).collect();

    let base: Vec<f64> = t2.iter().map(|t| 100.0 * t.yield_fraction(None)).collect();
    let mut schemes = Vec::new();
    for (tables, names) in [
        (&t2, ["YAPD", "VACA", "Hybrid"]),
        (&t3, ["H-YAPD", "VACA-H", "Hybrid-H"]),
    ] {
        for (i, name) in names.iter().enumerate() {
            let (yields, reductions) = collect(tables, i);
            schemes.push(SchemeConfidence {
                name: (*name).to_owned(),
                yield_pct: Estimate::from_samples(&yields),
                loss_reduction_pct: Estimate::from_samples(&reductions),
            });
        }
    }

    ConfidenceReport {
        chips,
        seeds: seeds.to_vec(),
        base_yield_pct: Estimate::from_samples(&base),
        schemes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yield_interval_reduces_to_wald_without_missing_chips() {
        let iv = yield_interval(90, 100, 0);
        assert!((iv.estimate - 0.9).abs() < 1e-12);
        let se = (0.9f64 * 0.1 / 100.0).sqrt();
        assert!((iv.lo - (0.9 - 1.96 * se)).abs() < 1e-12);
        assert!((iv.hi - (0.9 + 1.96 * se)).abs() < 1e-12);
        assert!(iv.contains(0.9));
    }

    #[test]
    fn missing_chips_monotonically_widen_the_interval() {
        let mut prev = yield_interval(90, 100, 0);
        for missing in [1, 5, 20, 100] {
            let iv = yield_interval(90, 100, missing);
            assert!(iv.width() > prev.width(), "missing={missing}");
            assert!(iv.lo <= prev.lo && iv.hi >= prev.hi, "nested widening");
            assert_eq!(iv.estimate, prev.estimate, "estimate is unchanged");
            prev = iv;
        }
    }

    #[test]
    fn yield_interval_stays_in_unit_range_and_handles_edges() {
        let all = yield_interval(100, 100, 0);
        assert!(all.hi <= 1.0 && all.lo <= all.hi);
        let none = yield_interval(0, 100, 0);
        assert!(none.lo >= 0.0 && none.lo <= none.hi);
        let vacuous = yield_interval(0, 0, 10);
        assert_eq!((vacuous.lo, vacuous.hi), (0.0, 1.0));
        let empty = yield_interval(0, 0, 0);
        assert_eq!((empty.lo, empty.hi), (0.0, 0.0));
        let text = yield_interval(9, 10, 1).to_string();
        assert!(text.contains('['), "{text}");
    }

    #[test]
    #[should_panic(expected = "cannot ship more")]
    fn yield_interval_rejects_impossible_counts() {
        let _ = yield_interval(11, 10, 0);
    }

    #[test]
    fn study_aggregates_across_seeds() {
        let report = confidence_study(200, &[1, 2, 3, 4]);
        assert_eq!(report.seeds.len(), 4);
        assert_eq!(report.schemes.len(), 6);
        assert!(report.base_yield_pct.mean > 60.0);
        assert!(report.base_yield_pct.std_dev > 0.0, "seeds must differ");
        for s in &report.schemes {
            assert!(s.yield_pct.mean > report.base_yield_pct.mean, "{}", s.name);
            assert!((0.0..=100.0).contains(&s.loss_reduction_pct.mean));
        }
    }

    #[test]
    fn hybrid_is_clearly_better_than_base_across_seeds() {
        let report = confidence_study(300, &[10, 20, 30]);
        let hybrid = report.scheme("Hybrid").expect("hybrid present");
        assert!(
            hybrid.yield_pct.clearly_above(&report.base_yield_pct),
            "hybrid {} vs base {}",
            hybrid.yield_pct,
            report.base_yield_pct
        );
    }

    #[test]
    fn report_is_deterministic_and_displayable() {
        let a = confidence_study(100, &[5, 6]);
        let b = confidence_study(100, &[5, 6]);
        assert_eq!(a, b);
        let text = a.to_string();
        assert!(text.contains("Hybrid"));
        assert!(text.contains("H-YAPD"));
    }

    #[test]
    fn estimate_comparison() {
        let a = Estimate {
            mean: 10.0,
            std_dev: 1.0,
        };
        let b = Estimate {
            mean: 5.0,
            std_dev: 1.0,
        };
        assert!(a.clearly_above(&b));
        assert!(!b.clearly_above(&a));
        let c = Estimate {
            mean: 10.5,
            std_dev: 2.0,
        };
        assert!(!c.clearly_above(&a), "overlapping estimates are not clear");
    }

    #[test]
    #[should_panic(expected = "seed")]
    fn empty_seed_list_rejected() {
        let _ = confidence_study(10, &[]);
    }
}
