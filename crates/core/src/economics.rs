//! The manufacturer's view: revenue impact of the yield-aware schemes.
//!
//! The paper motivates the work economically — "Every discarded chip
//! increases the cost of those chips that survive the fabrication
//! process" (§1) — but stops at yield percentages. This module combines
//! the yield side (how many chips each scheme ships) with the performance
//! side (the CPI discount the repaired chips must be sold at, as in
//! speed-binned price ladders) into revenue per wafer-equivalent batch.

use crate::analysis::LossTable;
use crate::perf::Table6;
use std::fmt;

/// Pricing assumptions.
///
/// # Examples
///
/// ```
/// use yac_core::economics::PriceModel;
///
/// let price = PriceModel::default();
/// assert!(price.full_price > 0.0);
/// assert!((0.0..1.0).contains(&price.degradation_discount_per_pct));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceModel {
    /// Sale price of a healthy full-speed chip (arbitrary currency).
    pub full_price: f64,
    /// Fractional price discount per percent of CPI degradation — the
    /// slope of the speed-binning price ladder. 0.03 means a chip 2 %
    /// slower sells for 94 % of full price.
    pub degradation_discount_per_pct: f64,
}

impl Default for PriceModel {
    /// A 2006-flavoured ladder: $100 parts, 3 % price per 1 % performance.
    fn default() -> Self {
        PriceModel {
            full_price: 100.0,
            degradation_discount_per_pct: 0.03,
        }
    }
}

impl PriceModel {
    /// Price of a chip sold with the given CPI degradation.
    #[must_use]
    pub fn repaired_price(&self, degradation_pct: f64) -> f64 {
        (self.full_price * (1.0 - self.degradation_discount_per_pct * degradation_pct)).max(0.0)
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns the [`PriceError`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), PriceError> {
        if !(self.full_price.is_finite() && self.full_price > 0.0) {
            return Err(PriceError::NonPositivePrice);
        }
        if !(0.0..1.0).contains(&self.degradation_discount_per_pct) {
            return Err(PriceError::BadDiscountSlope);
        }
        Ok(())
    }
}

/// A rejected [`PriceModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriceError {
    /// The full price is not positive and finite.
    NonPositivePrice,
    /// The degradation discount slope is outside `[0, 1)`.
    BadDiscountSlope,
}

impl std::fmt::Display for PriceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PriceError::NonPositivePrice => "full price must be positive",
            PriceError::BadDiscountSlope => "discount slope must lie in [0, 1)",
        })
    }
}

impl std::error::Error for PriceError {}

/// Revenue of one shipping policy over the batch.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeRevenue {
    /// Policy name ("base", "YAPD", ...).
    pub name: String,
    /// Chips shipped at full price (never violated a constraint).
    pub full_price_chips: usize,
    /// Chips shipped after repair, at the degraded price.
    pub repaired_chips: usize,
    /// Weighted CPI degradation of the repaired chips, percent.
    pub avg_degradation_pct: f64,
    /// Total revenue for the batch.
    pub revenue: f64,
}

impl SchemeRevenue {
    /// Revenue uplift over a reference (usually the base case), percent.
    #[must_use]
    pub fn uplift_pct(&self, base: &SchemeRevenue) -> f64 {
        100.0 * (self.revenue / base.revenue - 1.0)
    }
}

/// Revenue comparison across the base case and the schemes of a loss
/// table.
#[derive(Debug, Clone, PartialEq)]
pub struct RevenueReport {
    /// Batch size (chips).
    pub total_chips: usize,
    /// Base case first, then one entry per scheme column.
    pub policies: Vec<SchemeRevenue>,
}

impl RevenueReport {
    /// The base (no-repair) policy.
    #[must_use]
    pub fn base(&self) -> &SchemeRevenue {
        &self.policies[0]
    }
}

impl fmt::Display for RevenueReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10}{:>10}{:>10}{:>10}{:>12}{:>10}",
            "policy", "full", "repaired", "deg%", "revenue", "uplift"
        )?;
        let base = self.base().clone();
        for p in &self.policies {
            writeln!(
                f,
                "{:<10}{:>10}{:>10}{:>9.2}%{:>12.0}{:>9.1}%",
                p.name,
                p.full_price_chips,
                p.repaired_chips,
                p.avg_degradation_pct,
                p.revenue,
                p.uplift_pct(&base),
            )?;
        }
        Ok(())
    }
}

/// Builds the revenue comparison from a loss table (yield side) and the
/// Table 6 weighted degradations (performance side).
///
/// The loss table's scheme columns are matched positionally to the
/// weighted degradations `(YAPD, VACA, Hybrid)`.
///
/// # Panics
///
/// Panics if the price model is invalid or the loss table has no schemes.
#[must_use]
pub fn revenue_report(losses: &LossTable, perf: &Table6, price: &PriceModel) -> RevenueReport {
    price.validate().unwrap_or_else(|e| panic!("{e}"));
    assert!(!losses.schemes.is_empty(), "loss table carries no schemes");

    let total = losses.total_chips;
    let healthy = total - losses.base.total();
    let base_policy = SchemeRevenue {
        name: "base".to_owned(),
        full_price_chips: healthy,
        repaired_chips: 0,
        avg_degradation_pct: 0.0,
        revenue: healthy as f64 * price.full_price,
    };

    let weighted = [perf.weighted.0, perf.weighted.1, perf.weighted.2];
    let mut policies = vec![base_policy];
    for (i, scheme) in losses.schemes.iter().enumerate() {
        let saved = losses.base.total() - scheme.losses.total();
        let degradation = weighted.get(i).copied().unwrap_or(0.0);
        let revenue =
            healthy as f64 * price.full_price + saved as f64 * price.repaired_price(degradation);
        policies.push(SchemeRevenue {
            name: scheme.name.clone(),
            full_price_chips: healthy,
            repaired_chips: saved,
            avg_degradation_pct: degradation,
            revenue,
        });
    }

    RevenueReport {
        total_chips: total,
        policies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::table2;
    use crate::perf::{table6, PerfOptions};
    use crate::{ConstraintSpec, Population, YieldConstraints};

    fn quick_inputs() -> (LossTable, Table6) {
        let population = Population::generate(300, 2006);
        let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
        let perf = PerfOptions {
            warmup_uops: 1_000,
            measure_uops: 4_000,
            trace_seed: 1,
        };
        (
            table2(&population, &constraints),
            table6(&population, &constraints, &perf),
        )
    }

    #[test]
    fn every_scheme_beats_the_base_revenue() {
        let (losses, perf) = quick_inputs();
        let report = revenue_report(&losses, &perf, &PriceModel::default());
        let base = report.base().clone();
        assert_eq!(report.policies.len(), 4);
        for p in &report.policies[1..] {
            assert!(
                p.revenue > base.revenue,
                "{}: {} vs {}",
                p.name,
                p.revenue,
                base.revenue
            );
            assert!(p.uplift_pct(&base) > 0.0);
        }
    }

    #[test]
    fn hybrid_revenue_tops_the_table_despite_its_degradation() {
        let (losses, perf) = quick_inputs();
        let report = revenue_report(&losses, &perf, &PriceModel::default());
        let revenue = |name: &str| {
            report
                .policies
                .iter()
                .find(|p| p.name == name)
                .map(|p| p.revenue)
                .unwrap_or_else(|| panic!("{name}"))
        };
        // The Hybrid ships the most chips; a mild price ladder cannot
        // overturn that.
        assert!(revenue("Hybrid") >= revenue("YAPD"));
        assert!(revenue("Hybrid") >= revenue("VACA"));
    }

    #[test]
    fn steep_price_ladders_reduce_but_do_not_erase_the_uplift() {
        let (losses, perf) = quick_inputs();
        let mild = revenue_report(
            &losses,
            &perf,
            &PriceModel {
                full_price: 100.0,
                degradation_discount_per_pct: 0.01,
            },
        );
        let steep = revenue_report(
            &losses,
            &perf,
            &PriceModel {
                full_price: 100.0,
                degradation_discount_per_pct: 0.3,
            },
        );
        let up = |r: &RevenueReport| r.policies[3].uplift_pct(r.base());
        assert!(up(&mild) > up(&steep));
        assert!(up(&steep) > 0.0, "repaired chips are still worth selling");
    }

    #[test]
    fn repaired_price_floors_at_zero() {
        let price = PriceModel {
            full_price: 100.0,
            degradation_discount_per_pct: 0.5,
        };
        assert_eq!(price.repaired_price(0.0), 100.0);
        assert_eq!(price.repaired_price(400.0), 0.0);
    }

    #[test]
    fn report_is_displayable() {
        let (losses, perf) = quick_inputs();
        let report = revenue_report(&losses, &perf, &PriceModel::default());
        let text = report.to_string();
        assert!(text.contains("Hybrid"));
        assert!(text.contains("uplift"));
    }

    #[test]
    #[should_panic(expected = "full price")]
    fn invalid_price_model_rejected() {
        let (losses, perf) = quick_inputs();
        let _ = revenue_report(
            &losses,
            &perf,
            &PriceModel {
                full_price: 0.0,
                degradation_discount_per_pct: 0.01,
            },
        );
    }
}
