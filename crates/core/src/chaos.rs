//! Deterministic chaos injection for the durability layer: I/O faults
//! and crash points at checkpoint/journal write boundaries.
//!
//! The torture tests in `crates/core/tests/chaos_torture.rs` need to
//! kill a sweep at *every* point where state touches disk and prove the
//! resume path reconstructs bit-identical results. This module numbers
//! each durable write (an **op**) in program order and, when a
//! [`ChaosPlan`] is installed, consults it at every boundary:
//!
//! * **Fault injection** — a SplitMix64-keyed draw (the same
//!   [`FaultPlan`] stream the chip sampler uses) turns the op into an
//!   `io::Error`, which the write site surfaces as
//!   [`crate::StudyError::Io`]. Deterministic: the same plan fails the
//!   same ops every run.
//! * **Crash points** — when the op counter reaches
//!   [`ChaosPlan::crash_at`] the process aborts, optionally after a
//!   *short write* (half the payload lands on disk first), simulating a
//!   power cut mid-append.
//!
//! When no plan is installed the interception is one relaxed atomic
//! load — studies in production never pay for it. Plans are process
//! global; install one only from a single-threaded test harness (the
//! torture tests run each plan in its own subprocess).

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use yac_variation::{FaultPlan, InvalidRateError};

/// Which durable-write boundary an op is about to cross. Names show up
/// in injected error messages so a surfaced failure points at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoSite {
    /// A study checkpoint's temp-file write (payload + fsync).
    Checkpoint,
    /// The atomic rename publishing a checkpoint (+ parent-dir fsync).
    CheckpointRename,
    /// One appended line of a sweep journal (payload + fsync).
    SweepJournal,
    /// A service result-cache file write (full rewrite + fsync).
    CacheFile,
}

impl IoSite {
    /// Stable lower-case site name used in injected error messages.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IoSite::Checkpoint => "checkpoint",
            IoSite::CheckpointRename => "checkpoint-rename",
            IoSite::SweepJournal => "sweep-journal",
            IoSite::CacheFile => "cache-file",
        }
    }
}

/// A deterministic chaos recipe: which ops fail and where to crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Keys the fault draw (and is folded into injected messages).
    pub seed: u64,
    /// Abort the process when the op counter reaches this value.
    pub crash_at: Option<u64>,
    /// On crash, first write half the payload — a torn tail.
    pub torn_crash: bool,
    /// Per-op I/O fault draw; `None` injects no faults.
    faults: Option<FaultPlan>,
}

impl ChaosPlan {
    /// A plan that fails each op with probability `fault_rate` (keyed by
    /// `seed`) and never crashes; add a crash point with
    /// [`ChaosPlan::crash_at`] / [`ChaosPlan::torn`].
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRateError`] unless `fault_rate` is finite and in
    /// `[0, 1]`.
    pub fn new(seed: u64, fault_rate: f64) -> Result<Self, InvalidRateError> {
        let faults = if fault_rate > 0.0 {
            Some(FaultPlan::new(fault_rate, seed)?)
        } else {
            // Validate the rate even when it draws nothing.
            FaultPlan::new(fault_rate, seed)?;
            None
        };
        Ok(ChaosPlan {
            seed,
            crash_at: None,
            torn_crash: false,
            faults,
        })
    }

    /// Sets the crash point: the process aborts at op `op`.
    #[must_use]
    pub fn crash_at(mut self, op: u64) -> Self {
        self.crash_at = Some(op);
        self
    }

    /// Makes the crash torn: half the payload is written first.
    #[must_use]
    pub fn torn(mut self, torn: bool) -> Self {
        self.torn_crash = torn;
        self
    }

    /// Whether the fault draw fails op number `op`.
    #[must_use]
    pub fn faults_op(&self, op: u64) -> bool {
        // The plan's seed is already the FaultPlan salt; the stream seed
        // must differ from it or the two XOR to the same stream for
        // every plan.
        self.faults
            .as_ref()
            .is_some_and(|f| f.fault_for(0, op).is_some())
    }

    /// Parses a plan from the `YAC_CHAOS` environment variable:
    /// comma-separated `seed=N`, `rate=F`, `crash_at=N`, `torn=0|1`
    /// (e.g. `YAC_CHAOS=seed=7,rate=0,crash_at=12,torn=1`). Returns
    /// `Ok(None)` when the variable is unset.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed key or value.
    pub fn from_env() -> Result<Option<ChaosPlan>, String> {
        let Ok(spec) = std::env::var("YAC_CHAOS") else {
            return Ok(None);
        };
        Self::parse(&spec).map(Some)
    }

    /// Parses the `YAC_CHAOS` spec format (see [`ChaosPlan::from_env`]).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed key or value.
    pub fn parse(spec: &str) -> Result<ChaosPlan, String> {
        let (mut seed, mut rate, mut crash_at, mut torn) = (0u64, 0.0f64, None, false);
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec part {part:?} is not key=value"))?;
            let bad = || format!("chaos spec {key}={value:?}: bad value");
            match key.trim() {
                "seed" => seed = value.trim().parse().map_err(|_| bad())?,
                "rate" => rate = value.trim().parse().map_err(|_| bad())?,
                "crash_at" => crash_at = Some(value.trim().parse().map_err(|_| bad())?),
                "torn" => torn = value.trim() == "1",
                other => return Err(format!("chaos spec has unknown key {other:?}")),
            }
        }
        let mut plan = ChaosPlan::new(seed, rate).map_err(|e| format!("chaos spec rate: {e}"))?;
        plan.crash_at = crash_at;
        plan.torn_crash = torn;
        Ok(plan)
    }
}

/// Fast-path gate: `false` means [`intercept_write`] is a passthrough.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Durable-write ops executed since the last [`install`].
static OPS: AtomicU64 = AtomicU64::new(0);
/// The installed plan (process global).
static PLAN: Mutex<Option<ChaosPlan>> = Mutex::new(None);

/// Installs `plan` process-wide and resets the op counter. Only test
/// harnesses should call this; production runs never install a plan.
pub fn install(plan: ChaosPlan) {
    *PLAN
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(plan);
    OPS.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Removes any installed plan; writes pass through untouched again. The
/// op counter keeps its value so a harness can read it after a run.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
    *PLAN
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// Durable-write ops executed since the last [`install`]. A harness
/// runs once with a fault-free plan to learn how many crash points a
/// workload has, then replays with `crash_at` sweeping `0..ops()`.
#[must_use]
pub fn ops() -> u64 {
    OPS.load(Ordering::SeqCst)
}

/// Routes one durable write through the chaos layer. `write` receives
/// the payload to put on disk (possibly truncated for a torn crash);
/// sites without a payload (renames) pass `&[]`.
pub(crate) fn intercept_write(
    site: IoSite,
    path: &Path,
    bytes: &[u8],
    write: impl FnOnce(&[u8]) -> io::Result<()>,
) -> io::Result<()> {
    if !ENABLED.load(Ordering::Relaxed) {
        return write(bytes);
    }
    let plan = *PLAN
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let Some(plan) = plan else {
        return write(bytes);
    };
    let op = OPS.fetch_add(1, Ordering::SeqCst);
    if plan.crash_at == Some(op) {
        if plan.torn_crash && !bytes.is_empty() {
            let _ = write(&bytes[..bytes.len() / 2]);
        }
        // A real crash, not a panic: nothing unwinds, nothing flushes.
        std::process::abort();
    }
    if plan.faults_op(op) {
        return Err(io::Error::other(format!(
            "injected chaos fault at {} op {op} ({})",
            site.name(),
            path.display()
        )));
    }
    write(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    // No test here installs a global plan: tests in one binary share the
    // process, and a stray installed plan would fail unrelated writes.
    // Global install/crash behaviour is exercised in the dedicated
    // `chaos_torture` integration binary, one subprocess per plan.

    #[test]
    fn plans_parse_from_spec_strings() {
        let plan = ChaosPlan::parse("seed=7,rate=0,crash_at=12,torn=1").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.crash_at, Some(12));
        assert!(plan.torn_crash);
        assert!(!plan.faults_op(0));

        let plain = ChaosPlan::parse("seed=3,rate=1").unwrap();
        assert_eq!(plain.crash_at, None);
        assert!(!plain.torn_crash);
        assert!(plain.faults_op(0), "rate 1 faults every op");

        assert!(ChaosPlan::parse("seed").is_err());
        assert!(ChaosPlan::parse("seed=x").is_err());
        assert!(ChaosPlan::parse("rate=2.0").is_err(), "rate out of range");
        assert!(ChaosPlan::parse("mystery=1").is_err());
    }

    #[test]
    fn fault_draw_is_deterministic_and_keyed_by_seed() {
        let plan = ChaosPlan::new(11, 0.5).unwrap();
        let draws: Vec<bool> = (0..64).map(|op| plan.faults_op(op)).collect();
        assert_eq!(
            draws,
            (0..64).map(|op| plan.faults_op(op)).collect::<Vec<_>>(),
            "same plan, same draws"
        );
        assert!(draws.iter().any(|&f| f), "rate 0.5 faults some ops");
        assert!(!draws.iter().all(|&f| f), "rate 0.5 spares some ops");
        let other = ChaosPlan::new(12, 0.5).unwrap();
        assert_ne!(
            draws,
            (0..64).map(|op| other.faults_op(op)).collect::<Vec<_>>(),
            "different seed, different draws"
        );
    }

    #[test]
    fn zero_rate_never_faults() {
        let plan = ChaosPlan::new(1, 0.0).unwrap();
        assert!((0..1000).all(|op| !plan.faults_op(op)));
    }

    #[test]
    fn builder_sets_crash_point() {
        let plan = ChaosPlan::new(1, 0.0).unwrap().crash_at(5).torn(true);
        assert_eq!(plan.crash_at, Some(5));
        assert!(plan.torn_crash);
    }

    #[test]
    fn invalid_rates_are_rejected() {
        assert!(ChaosPlan::new(1, -0.1).is_err());
        assert!(ChaosPlan::new(1, 1.1).is_err());
        assert!(ChaosPlan::new(1, f64::NAN).is_err());
    }
}
