//! Deterministic chaos injection for the durability layer — I/O faults
//! and crash points at checkpoint/journal write boundaries — and for the
//! *network* layer: partial reads/writes, per-op delays, mid-frame
//! disconnects and byte corruption injected into any `Read + Write`
//! stream via [`ChaosStream`].
//!
//! The torture tests in `crates/core/tests/chaos_torture.rs` need to
//! kill a sweep at *every* point where state touches disk and prove the
//! resume path reconstructs bit-identical results. This module numbers
//! each durable write (an **op**) in program order and, when a
//! [`ChaosPlan`] is installed, consults it at every boundary:
//!
//! * **Fault injection** — a SplitMix64-keyed draw (the same
//!   [`FaultPlan`] stream the chip sampler uses) turns the op into an
//!   `io::Error`, which the write site surfaces as
//!   [`crate::StudyError::Io`]. Deterministic: the same plan fails the
//!   same ops every run.
//! * **Crash points** — when the op counter reaches
//!   [`ChaosPlan::crash_at`] the process aborts, optionally after a
//!   *short write* (half the payload lands on disk first), simulating a
//!   power cut mid-append.
//!
//! The network side mirrors the disk side: a [`NetPlan`] (the `net_rate`
//! / `net_delay_us` keys of the same `YAC_CHAOS` spec) keys a SplitMix64
//! draw per stream op. Each [`ChaosStream`] gets its own deterministic
//! sub-stream (seeded by the plan seed, its [`NetSite`] and a process-wide
//! stream counter), so the faults a given stream sees depend only on its
//! creation order, never on scheduler timing.
//!
//! When no plan is installed the interception is one relaxed atomic
//! load — studies in production never pay for it. Plans are process
//! global; install one only from a single-threaded test harness (the
//! torture tests run each plan in its own subprocess).

use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use yac_obs::Metric;
use yac_variation::montecarlo::mix_seed;
use yac_variation::{FaultPlan, InvalidRateError};

/// Which durable-write boundary an op is about to cross. Names show up
/// in injected error messages so a surfaced failure points at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoSite {
    /// A study checkpoint's temp-file write (payload + fsync).
    Checkpoint,
    /// The atomic rename publishing a checkpoint (+ parent-dir fsync).
    CheckpointRename,
    /// One appended line of a sweep journal (payload + fsync).
    SweepJournal,
    /// A service result-cache file write (full rewrite + fsync).
    CacheFile,
}

impl IoSite {
    /// Stable lower-case site name used in injected error messages.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IoSite::Checkpoint => "checkpoint",
            IoSite::CheckpointRename => "checkpoint-rename",
            IoSite::SweepJournal => "sweep-journal",
            IoSite::CacheFile => "cache-file",
        }
    }
}

/// Which end of a connection a [`ChaosStream`] wraps. Folded into the
/// stream's seed so client and server streams draw independent faults,
/// and named in injected error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetSite {
    /// The client end of a service connection.
    Client,
    /// The server end of a service connection.
    Server,
}

impl NetSite {
    /// Stable lower-case site name used in injected error messages.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NetSite::Client => "net-client",
            NetSite::Server => "net-server",
        }
    }

    fn salt(self) -> u64 {
        match self {
            NetSite::Client => 0x636c_6965_6e74, // "client"
            NetSite::Server => 0x7365_7276_6572, // "server"
        }
    }
}

/// What a faulted network op does to its read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum NetFault {
    /// Transfer at most one byte (a pathological short read/write).
    Partial,
    /// Sleep before the op completes normally.
    Delay,
    /// Fail with `ConnectionReset` and poison the stream for good.
    Disconnect,
    /// Flip one bit of the transferred bytes.
    Corrupt,
}

/// The network half of a chaos recipe: with probability `rate`, each
/// stream op draws one of partial transfer, delay, disconnect or bit
/// corruption — uniformly, keyed by the plan seed, the stream's
/// [`NetSite`] and creation index, and the op number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetPlan {
    /// Keys every stream's fault draw.
    pub seed: u64,
    /// Probability an op draws a fault (`0..=1`).
    pub rate: f64,
    /// Injected delay for [`NetFault::Delay`] draws.
    pub delay: Duration,
}

impl NetPlan {
    /// A plan faulting about `rate` of all stream ops, keyed by `seed`,
    /// delaying faulted ops by `delay`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRateError`] unless `rate` is finite and in
    /// `[0, 1]`.
    pub fn new(seed: u64, rate: f64, delay: Duration) -> Result<Self, InvalidRateError> {
        // Reuse FaultPlan's rate validation; the draw itself is local.
        FaultPlan::new(rate, seed)?;
        Ok(NetPlan { seed, rate, delay })
    }

    /// The fault injected into op `op` of the stream keyed by
    /// `stream_seed`, or `None` to pass the op through untouched. Pure:
    /// depends only on `(self, stream_seed, op)`.
    fn fault_for(&self, stream_seed: u64, op: u64) -> Option<(NetFault, u64)> {
        let draw = mix_seed(stream_seed, op);
        let unit = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if unit >= self.rate {
            return None;
        }
        let fault = match (draw >> 2) & 3 {
            0 => NetFault::Partial,
            1 => NetFault::Delay,
            2 => NetFault::Disconnect,
            _ => NetFault::Corrupt,
        };
        Some((fault, draw))
    }
}

/// Salt folded into the memory-corruption draw so it never shares a
/// stream with disk or network faults of the same seed.
const MEM_SALT: u64 = 0x006d_656d_5f72_6f74; // "mem_rot"

/// The memory half of a chaos recipe: with probability `rate`, a cache
/// entry's stored bytes get one bit flipped — keyed by the plan seed and
/// the entry's cache key, so corruption is order-independent (the same
/// entries rot no matter when they were inserted) and `rate=1` rots
/// every entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemPlan {
    /// Keys every entry's corruption draw.
    pub seed: u64,
    /// Probability an entry is corrupted (`0..=1`).
    pub rate: f64,
}

impl MemPlan {
    /// A plan rotting about `rate` of all cache entries, keyed by `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRateError`] unless `rate` is finite and in
    /// `[0, 1]`.
    pub fn new(seed: u64, rate: f64) -> Result<Self, InvalidRateError> {
        // Reuse FaultPlan's rate validation; the draw itself is local.
        FaultPlan::new(rate, seed)?;
        Ok(MemPlan { seed, rate })
    }

    /// The corruption draw for the entry keyed `key`, or `None` when the
    /// entry is spared. Pure: depends only on `(self, key)`.
    fn draw_for(&self, key: u64) -> Option<u64> {
        let draw = mix_seed(self.seed ^ MEM_SALT, key);
        let unit = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (unit < self.rate).then_some(draw)
    }

    /// Flips one deterministic bit of `bytes` when the draw for `key`
    /// corrupts it; returns whether a bit flipped. Empty payloads are
    /// never touched.
    pub fn corrupt(&self, key: u64, bytes: &mut [u8]) -> bool {
        let Some(draw) = self.draw_for(key) else {
            return false;
        };
        if bytes.is_empty() {
            return false;
        }
        let byte = (draw >> 16) as usize % bytes.len();
        let bit = (draw >> 40) & 7;
        bytes[byte] ^= 1 << bit;
        true
    }
}

/// A deterministic chaos recipe: which ops fail and where to crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Keys the fault draw (and is folded into injected messages).
    pub seed: u64,
    /// Abort the process when the op counter reaches this value.
    pub crash_at: Option<u64>,
    /// On crash, first write half the payload — a torn tail.
    pub torn_crash: bool,
    /// Per-op I/O fault draw; `None` injects no faults.
    faults: Option<FaultPlan>,
    /// Network-stream fault draw; `None` leaves the wire untouched.
    net: Option<NetPlan>,
    /// Cache-entry bit-rot draw; `None` leaves memory untouched.
    mem: Option<MemPlan>,
    /// Hang the *first* attempt of this shard index, once per install.
    stall_shard: Option<u64>,
}

impl ChaosPlan {
    /// A plan that fails each op with probability `fault_rate` (keyed by
    /// `seed`) and never crashes; add a crash point with
    /// [`ChaosPlan::crash_at`] / [`ChaosPlan::torn`].
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRateError`] unless `fault_rate` is finite and in
    /// `[0, 1]`.
    pub fn new(seed: u64, fault_rate: f64) -> Result<Self, InvalidRateError> {
        let faults = if fault_rate > 0.0 {
            Some(FaultPlan::new(fault_rate, seed)?)
        } else {
            // Validate the rate even when it draws nothing.
            FaultPlan::new(fault_rate, seed)?;
            None
        };
        Ok(ChaosPlan {
            seed,
            crash_at: None,
            torn_crash: false,
            faults,
            net: None,
            mem: None,
            stall_shard: None,
        })
    }

    /// Adds a network fault plan: each stream op faults with probability
    /// `rate`, delays last `delay`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRateError`] unless `rate` is finite and in
    /// `[0, 1]`.
    pub fn with_net(mut self, rate: f64, delay: Duration) -> Result<Self, InvalidRateError> {
        self.net = if rate > 0.0 {
            Some(NetPlan::new(self.seed, rate, delay)?)
        } else {
            NetPlan::new(self.seed, rate, delay)?;
            None
        };
        Ok(self)
    }

    /// The plan's network half, if any.
    #[must_use]
    pub fn net(&self) -> Option<NetPlan> {
        self.net
    }

    /// Adds a memory fault plan: each cache entry rots with probability
    /// `rate`, keyed by the plan seed and the entry key.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRateError`] unless `rate` is finite and in
    /// `[0, 1]`.
    pub fn with_mem(mut self, rate: f64) -> Result<Self, InvalidRateError> {
        self.mem = if rate > 0.0 {
            Some(MemPlan::new(self.seed, rate)?)
        } else {
            MemPlan::new(self.seed, rate)?;
            None
        };
        Ok(self)
    }

    /// The plan's memory half, if any.
    #[must_use]
    pub fn mem(&self) -> Option<MemPlan> {
        self.mem
    }

    /// Sets the stalled shard: the first attempt of shard `shard` hangs
    /// until cooperatively cancelled (once per [`install`]).
    #[must_use]
    pub fn stall(mut self, shard: u64) -> Self {
        self.stall_shard = Some(shard);
        self
    }

    /// The shard index whose first attempt hangs, if any.
    #[must_use]
    pub fn stalled_shard(&self) -> Option<u64> {
        self.stall_shard
    }

    /// Sets the crash point: the process aborts at op `op`.
    #[must_use]
    pub fn crash_at(mut self, op: u64) -> Self {
        self.crash_at = Some(op);
        self
    }

    /// Makes the crash torn: half the payload is written first.
    #[must_use]
    pub fn torn(mut self, torn: bool) -> Self {
        self.torn_crash = torn;
        self
    }

    /// Whether the fault draw fails op number `op`.
    #[must_use]
    pub fn faults_op(&self, op: u64) -> bool {
        // The plan's seed is already the FaultPlan salt; the stream seed
        // must differ from it or the two XOR to the same stream for
        // every plan.
        self.faults
            .as_ref()
            .is_some_and(|f| f.fault_for(0, op).is_some())
    }

    /// Parses a plan from the `YAC_CHAOS` environment variable:
    /// comma-separated `seed=N`, `rate=F`, `crash_at=N`, `torn=0|1`,
    /// `net_rate=F`, `net_delay_us=N`, `mem_rate=F`, `stall_shard=N`
    /// (e.g. `YAC_CHAOS=seed=7,rate=0,net_rate=0.2,net_delay_us=500`).
    /// Returns `Ok(None)` when the variable is unset.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed key or value.
    pub fn from_env() -> Result<Option<ChaosPlan>, String> {
        let Ok(spec) = std::env::var("YAC_CHAOS") else {
            return Ok(None);
        };
        Self::parse(&spec).map(Some)
    }

    /// Parses the `YAC_CHAOS` spec format (see [`ChaosPlan::from_env`]).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed key or value.
    pub fn parse(spec: &str) -> Result<ChaosPlan, String> {
        let (mut seed, mut rate, mut crash_at, mut torn) = (0u64, 0.0f64, None, false);
        let (mut net_rate, mut net_delay_us) = (0.0f64, 500u64);
        let (mut mem_rate, mut stall_shard) = (0.0f64, None);
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec part {part:?} is not key=value"))?;
            let bad = || format!("chaos spec {key}={value:?}: bad value");
            match key.trim() {
                "seed" => seed = value.trim().parse().map_err(|_| bad())?,
                "rate" => rate = value.trim().parse().map_err(|_| bad())?,
                "crash_at" => crash_at = Some(value.trim().parse().map_err(|_| bad())?),
                "torn" => torn = value.trim() == "1",
                "net_rate" => net_rate = value.trim().parse().map_err(|_| bad())?,
                "net_delay_us" => net_delay_us = value.trim().parse().map_err(|_| bad())?,
                "mem_rate" => mem_rate = value.trim().parse().map_err(|_| bad())?,
                "stall_shard" => stall_shard = Some(value.trim().parse().map_err(|_| bad())?),
                other => return Err(format!("chaos spec has unknown key {other:?}")),
            }
        }
        let mut plan = ChaosPlan::new(seed, rate).map_err(|e| format!("chaos spec rate: {e}"))?;
        plan.crash_at = crash_at;
        plan.torn_crash = torn;
        plan.stall_shard = stall_shard;
        plan.with_net(net_rate, Duration::from_micros(net_delay_us))
            .map_err(|e| format!("chaos spec net_rate: {e}"))?
            .with_mem(mem_rate)
            .map_err(|e| format!("chaos spec mem_rate: {e}"))
    }
}

/// Fast-path gate: `false` means [`intercept_write`] is a passthrough.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Durable-write ops executed since the last [`install`].
static OPS: AtomicU64 = AtomicU64::new(0);
/// The installed plan (process global).
static PLAN: Mutex<Option<ChaosPlan>> = Mutex::new(None);

/// Installs `plan` process-wide and resets the op counter. Only test
/// harnesses should call this; production runs never install a plan.
pub fn install(plan: ChaosPlan) {
    *PLAN
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(plan);
    OPS.store(0, Ordering::SeqCst);
    STALL_TAKEN.store(false, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Removes any installed plan; writes pass through untouched again. The
/// op counter keeps its value so a harness can read it after a run.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
    *PLAN
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// Durable-write ops executed since the last [`install`]. A harness
/// runs once with a fault-free plan to learn how many crash points a
/// workload has, then replays with `crash_at` sweeping `0..ops()`.
#[must_use]
pub fn ops() -> u64 {
    OPS.load(Ordering::SeqCst)
}

/// Routes one durable write through the chaos layer. `write` receives
/// the payload to put on disk (possibly truncated for a torn crash);
/// sites without a payload (renames) pass `&[]`.
pub(crate) fn intercept_write(
    site: IoSite,
    path: &Path,
    bytes: &[u8],
    write: impl FnOnce(&[u8]) -> io::Result<()>,
) -> io::Result<()> {
    if !ENABLED.load(Ordering::Relaxed) {
        return write(bytes);
    }
    let plan = *PLAN
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let Some(plan) = plan else {
        return write(bytes);
    };
    let op = OPS.fetch_add(1, Ordering::SeqCst);
    if plan.crash_at == Some(op) {
        if plan.torn_crash && !bytes.is_empty() {
            let _ = write(&bytes[..bytes.len() / 2]);
        }
        // A real crash, not a panic: nothing unwinds, nothing flushes.
        std::process::abort();
    }
    if plan.faults_op(op) {
        return Err(io::Error::other(format!(
            "injected chaos fault at {} op {op} ({})",
            site.name(),
            path.display()
        )));
    }
    write(bytes)
}

/// Streams created since process start; allocates each [`ChaosStream`]
/// its deterministic sub-seed. Never reset: a stream's faults depend on
/// its creation index, so two streams never share a draw.
static STREAMS: AtomicU64 = AtomicU64::new(0);

/// The installed plan's network half, or `None` when chaos is off. One
/// relaxed atomic load on the fast path.
#[must_use]
pub fn net_plan() -> Option<NetPlan> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    PLAN.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .and_then(|plan| plan.net)
}

/// The installed plan's memory half, or `None` when chaos is off. One
/// relaxed atomic load on the fast path.
#[must_use]
pub fn mem_plan() -> Option<MemPlan> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    PLAN.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .and_then(|plan| plan.mem)
}

/// Routes a freshly-stored cache entry through the memory chaos layer:
/// flips one deterministic bit of `bytes` when the installed plan's
/// `mem_rate` draw corrupts entry `key`. Returns whether a bit flipped.
#[must_use]
pub fn corrupt_cache_entry(key: u64, bytes: &mut [u8]) -> bool {
    mem_plan().is_some_and(|plan| plan.corrupt(key, bytes))
}

/// Whether the installed plan's stalled shard has been claimed yet. One
/// claim per [`install`], so the reassigned attempt runs clean.
static STALL_TAKEN: AtomicBool = AtomicBool::new(false);

/// Claims the hang injection for shard `shard`: returns `true` exactly
/// once per [`install`], and only when the installed plan names this
/// shard in `stall_shard`. The caller is expected to busy-wait
/// *cooperatively* (checking its cancel signal) so the health sentinel
/// can release it.
#[must_use]
pub fn stall_ticket(shard: u64) -> bool {
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    let stalled = PLAN
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .and_then(|plan| plan.stall_shard);
    stalled == Some(shard)
        && STALL_TAKEN
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
}

/// A deterministic fault-injecting wrapper around any `Read + Write`
/// stream (a socket, a pipe, an in-memory cursor).
///
/// The plan is snapshotted at construction: a stream created while chaos
/// is off stays a passthrough for its whole life, so connections opened
/// before a test installs a plan are never retroactively poisoned. Each
/// op (one `read` or `write` call) draws once from the stream's own
/// SplitMix64 sub-stream:
///
/// * **Partial** — transfer at most one byte; framed protocols must
///   survive arbitrarily short reads and writes.
/// * **Delay** — sleep [`NetPlan::delay`] first; deadlines must fire.
/// * **Disconnect** — fail with `ConnectionReset` and poison the stream;
///   every later op fails the same way, like a real dead socket.
/// * **Corrupt** — flip one bit of the transferred bytes; CRC-checked
///   frames must refuse the payload rather than trust it.
///
/// Injected faults count into [`Metric::NetFaultsInjected`].
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    site: NetSite,
    plan: Option<NetPlan>,
    stream_seed: u64,
    op: u64,
    broken: bool,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner`, snapshotting the currently-installed net plan.
    pub fn new(inner: S, site: NetSite) -> Self {
        let plan = net_plan();
        let stream_seed = plan.map_or(0, |p| {
            let index = STREAMS.fetch_add(1, Ordering::Relaxed);
            mix_seed(p.seed ^ site.salt(), index)
        });
        ChaosStream {
            inner,
            site,
            plan,
            stream_seed,
            op: 0,
            broken: false,
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// The wrapped stream, mutably.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Draws the fault for the next op, if any.
    fn next_fault(&mut self) -> Option<(NetFault, u64)> {
        let plan = self.plan?;
        let op = self.op;
        self.op += 1;
        plan.fault_for(self.stream_seed, op)
    }

    fn disconnect(&mut self) -> io::Error {
        self.broken = true;
        io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("injected chaos disconnect at {}", self.site.name()),
        )
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.broken {
            return Err(self.disconnect());
        }
        let Some((fault, draw)) = self.next_fault() else {
            return self.inner.read(buf);
        };
        yac_obs::inc(Metric::NetFaultsInjected);
        match fault {
            NetFault::Partial => {
                let cap = buf.len().min(1);
                self.inner.read(&mut buf[..cap])
            }
            NetFault::Delay => {
                std::thread::sleep(self.plan.map_or(Duration::ZERO, |p| p.delay));
                self.inner.read(buf)
            }
            NetFault::Disconnect => Err(self.disconnect()),
            NetFault::Corrupt => {
                let n = self.inner.read(buf)?;
                if n > 0 {
                    let byte = (draw >> 16) as usize % n;
                    let bit = (draw >> 40) & 7;
                    buf[byte] ^= 1 << bit;
                }
                Ok(n)
            }
        }
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.broken {
            return Err(self.disconnect());
        }
        let Some((fault, draw)) = self.next_fault() else {
            return self.inner.write(buf);
        };
        yac_obs::inc(Metric::NetFaultsInjected);
        match fault {
            NetFault::Partial => {
                let cap = buf.len().min(1);
                self.inner.write(&buf[..cap])
            }
            NetFault::Delay => {
                std::thread::sleep(self.plan.map_or(Duration::ZERO, |p| p.delay));
                self.inner.write(buf)
            }
            NetFault::Disconnect => Err(self.disconnect()),
            NetFault::Corrupt => {
                if buf.is_empty() {
                    return self.inner.write(buf);
                }
                let mut copy = buf.to_vec();
                let byte = (draw >> 16) as usize % copy.len();
                let bit = (draw >> 40) & 7;
                copy[byte] ^= 1 << bit;
                // Report however many corrupted bytes landed; the caller
                // sees an ordinary (possibly short) write.
                self.inner.write(&copy)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.broken {
            return Err(self.disconnect());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // No test here installs a global plan: tests in one binary share the
    // process, and a stray installed plan would fail unrelated writes.
    // Global install/crash behaviour is exercised in the dedicated
    // `chaos_torture` integration binary, one subprocess per plan.

    #[test]
    fn plans_parse_from_spec_strings() {
        let plan = ChaosPlan::parse("seed=7,rate=0,crash_at=12,torn=1").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.crash_at, Some(12));
        assert!(plan.torn_crash);
        assert!(!plan.faults_op(0));

        let plain = ChaosPlan::parse("seed=3,rate=1").unwrap();
        assert_eq!(plain.crash_at, None);
        assert!(!plain.torn_crash);
        assert!(plain.faults_op(0), "rate 1 faults every op");

        assert!(ChaosPlan::parse("seed").is_err());
        assert!(ChaosPlan::parse("seed=x").is_err());
        assert!(ChaosPlan::parse("rate=2.0").is_err(), "rate out of range");
        assert!(ChaosPlan::parse("mystery=1").is_err());
    }

    #[test]
    fn fault_draw_is_deterministic_and_keyed_by_seed() {
        let plan = ChaosPlan::new(11, 0.5).unwrap();
        let draws: Vec<bool> = (0..64).map(|op| plan.faults_op(op)).collect();
        assert_eq!(
            draws,
            (0..64).map(|op| plan.faults_op(op)).collect::<Vec<_>>(),
            "same plan, same draws"
        );
        assert!(draws.iter().any(|&f| f), "rate 0.5 faults some ops");
        assert!(!draws.iter().all(|&f| f), "rate 0.5 spares some ops");
        let other = ChaosPlan::new(12, 0.5).unwrap();
        assert_ne!(
            draws,
            (0..64).map(|op| other.faults_op(op)).collect::<Vec<_>>(),
            "different seed, different draws"
        );
    }

    #[test]
    fn zero_rate_never_faults() {
        let plan = ChaosPlan::new(1, 0.0).unwrap();
        assert!((0..1000).all(|op| !plan.faults_op(op)));
    }

    #[test]
    fn builder_sets_crash_point() {
        let plan = ChaosPlan::new(1, 0.0).unwrap().crash_at(5).torn(true);
        assert_eq!(plan.crash_at, Some(5));
        assert!(plan.torn_crash);
    }

    #[test]
    fn invalid_rates_are_rejected() {
        assert!(ChaosPlan::new(1, -0.1).is_err());
        assert!(ChaosPlan::new(1, 1.1).is_err());
        assert!(ChaosPlan::new(1, f64::NAN).is_err());
        let plan = ChaosPlan::new(1, 0.0).unwrap();
        assert!(plan.with_net(1.5, Duration::ZERO).is_err());
        assert!(plan.with_net(f64::NAN, Duration::ZERO).is_err());
    }

    #[test]
    fn net_keys_parse_from_spec_strings() {
        let plan = ChaosPlan::parse("seed=9,net_rate=0.25,net_delay_us=120").unwrap();
        let net = plan.net().expect("net plan installed");
        assert_eq!(net.seed, 9);
        assert!((net.rate - 0.25).abs() < 1e-12);
        assert_eq!(net.delay, Duration::from_micros(120));

        // net_rate=0 means no net plan at all, and the default spec has none.
        assert_eq!(ChaosPlan::parse("seed=9,net_rate=0").unwrap().net(), None);
        assert_eq!(ChaosPlan::parse("seed=9,rate=0").unwrap().net(), None);
        assert!(ChaosPlan::parse("net_rate=2.0").is_err());
        assert!(ChaosPlan::parse("net_delay_us=x").is_err());
    }

    #[test]
    fn net_fault_draw_is_deterministic_and_mixes_kinds() {
        let plan = NetPlan::new(7, 1.0, Duration::ZERO).unwrap();
        let draws: Vec<_> = (0..256).map(|op| plan.fault_for(42, op)).collect();
        assert_eq!(
            draws,
            (0..256)
                .map(|op| plan.fault_for(42, op))
                .collect::<Vec<_>>(),
            "same stream seed, same draws"
        );
        let kinds: std::collections::HashSet<_> = draws
            .iter()
            .map(|d| d.expect("rate 1 always faults").0)
            .collect();
        assert_eq!(kinds.len(), 4, "all four fault kinds appear: {kinds:?}");
        // A different stream draws a different fault sequence.
        assert_ne!(
            draws,
            (0..256)
                .map(|op| plan.fault_for(43, op))
                .collect::<Vec<_>>()
        );
        // Rate 0 never faults.
        let quiet = NetPlan::new(7, 0.0, Duration::ZERO).unwrap();
        assert!((0..1000).all(|op| quiet.fault_for(42, op).is_none()));
    }

    #[test]
    fn mem_keys_parse_from_spec_strings() {
        let plan = ChaosPlan::parse("seed=9,mem_rate=0.5,stall_shard=3").unwrap();
        let mem = plan.mem().expect("mem plan installed");
        assert_eq!(mem.seed, 9);
        assert!((mem.rate - 0.5).abs() < 1e-12);
        assert_eq!(plan.stalled_shard(), Some(3));

        // mem_rate=0 means no mem plan, and the default spec has none.
        assert_eq!(ChaosPlan::parse("seed=9,mem_rate=0").unwrap().mem(), None);
        assert_eq!(ChaosPlan::parse("seed=9,rate=0").unwrap().mem(), None);
        assert_eq!(
            ChaosPlan::parse("seed=9,rate=0").unwrap().stalled_shard(),
            None
        );
        assert!(ChaosPlan::parse("mem_rate=2.0").is_err());
        assert!(ChaosPlan::parse("stall_shard=x").is_err());
    }

    #[test]
    fn mem_corruption_is_deterministic_keyed_by_entry_and_one_bit() {
        let plan = MemPlan::new(7, 1.0).unwrap();
        let original = b"E 00deadbeef077 result line".to_vec();
        let mut rotted = original.clone();
        assert!(plan.corrupt(42, &mut rotted), "rate 1 rots every entry");
        let flipped: u32 = original
            .iter()
            .zip(&rotted)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit must flip");
        // Same key, same flip — order-independent corruption.
        let mut again = original.clone();
        assert!(plan.corrupt(42, &mut again));
        assert_eq!(again, rotted);
        // A different key flips a different draw.
        let mut other = original.clone();
        assert!(plan.corrupt(43, &mut other));
        assert_ne!(other, rotted);
        // Rate 0 never rots; empty payloads are never touched.
        let quiet = MemPlan::new(7, 0.0).unwrap();
        let mut untouched = original.clone();
        assert!(!quiet.corrupt(42, &mut untouched));
        assert_eq!(untouched, original);
        assert!(!plan.corrupt(42, &mut []));
    }

    #[test]
    fn builder_sets_stall_shard() {
        let plan = ChaosPlan::new(1, 0.0).unwrap().stall(4);
        assert_eq!(plan.stalled_shard(), Some(4));
        // No global plan installed in unit tests, so no ticket.
        assert!(!stall_ticket(4));
    }

    #[test]
    fn chaos_stream_without_a_plan_is_a_passthrough() {
        // No global plan installed in unit tests (see module note), so
        // the stream must transfer bytes verbatim.
        let mut stream = ChaosStream::new(io::Cursor::new(Vec::new()), NetSite::Client);
        stream.write_all(b"hello wire").unwrap();
        stream.flush().unwrap();
        stream.get_mut().set_position(0);
        let mut back = Vec::new();
        stream.read_to_end(&mut back).unwrap();
        assert_eq!(back, b"hello wire");
    }

    #[test]
    fn chaos_stream_faults_follow_an_explicit_plan() {
        // Drive the fault paths without touching the global install by
        // building the stream by hand around a full-rate plan.
        let plan = NetPlan::new(3, 1.0, Duration::ZERO).unwrap();
        let mut buf = [0u8; 64];
        let mut saw_partial = false;
        let mut saw_reset = false;
        // A stream dies at its first Disconnect draw, so scan several
        // independent streams to observe both fault shapes.
        for stream_seed in 0..16 {
            let mut stream = ChaosStream {
                inner: io::Cursor::new(vec![0u8; 4096]),
                site: NetSite::Server,
                plan: Some(plan),
                stream_seed,
                op: 0,
                broken: false,
            };
            for _ in 0..64 {
                match stream.read(&mut buf) {
                    Ok(n) if n == 1 && buf.len() > 1 => saw_partial = true,
                    Ok(_) => {}
                    Err(e) => {
                        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset, "{e}");
                        saw_reset = true;
                        break;
                    }
                }
            }
            if stream.broken {
                // Once disconnected, the stream stays dead.
                let err = stream.read(&mut buf).unwrap_err();
                assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
                let err = stream.write(b"x").unwrap_err();
                assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
            }
        }
        assert!(saw_partial, "rate-1 plan never injected a partial read");
        assert!(saw_reset, "rate-1 plan never injected a disconnect");
    }

    #[test]
    fn chaos_stream_corruption_flips_exactly_one_bit() {
        let plan = NetPlan::new(3, 1.0, Duration::ZERO).unwrap();
        // Find a (seed, op) pair that draws Corrupt, then check the write.
        let mut found = false;
        for seed in 0..64 {
            if let Some((NetFault::Corrupt, _)) = plan.fault_for(seed, 0) {
                let mut stream = ChaosStream {
                    inner: io::Cursor::new(Vec::new()),
                    site: NetSite::Client,
                    plan: Some(plan),
                    stream_seed: seed,
                    op: 0,
                    broken: false,
                };
                let payload = [0u8; 32];
                let n = stream.write(&payload).unwrap();
                let written = &stream.get_ref().get_ref()[..n];
                let flipped: u32 = written.iter().map(|b| b.count_ones()).sum();
                assert_eq!(flipped, 1, "exactly one bit must flip: {written:?}");
                found = true;
                break;
            }
        }
        assert!(found, "no corrupt draw in 64 stream seeds at rate 1");
    }
}
