//! Performance analysis (§5.2 of the paper): the CPI cost of each repair,
//! per benchmark and per post-repair cache configuration — the machinery
//! behind Table 6 and Figures 9–10.

use crate::analysis::saved_config_census;
use crate::chip::Population;
use crate::classify::WayCycleCensus;
use crate::constraints::YieldConstraints;
use crate::schemes::{Hybrid, PowerDownKind, Vaca, Yapd};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use yac_cache::{CacheConfig, HierarchyConfig, MemoryHierarchy};
use yac_circuit::CacheVariant;
use yac_pipeline::{Pipeline, PipelineConfig};
use yac_workload::{spec2000, BenchmarkProfile, TraceGenerator};

/// Options controlling the pipeline simulations.
///
/// # Examples
///
/// ```
/// use yac_core::perf::PerfOptions;
///
/// let quick = PerfOptions::quick();
/// assert!(quick.measure_uops < PerfOptions::default().measure_uops);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfOptions {
    /// Micro-ops committed before measurement starts (cache/predictor
    /// warm-up).
    pub warmup_uops: u64,
    /// Micro-ops measured.
    pub measure_uops: u64,
    /// Trace seed.
    pub trace_seed: u64,
}

impl PerfOptions {
    /// A fast setting for tests and smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        PerfOptions {
            warmup_uops: 10_000,
            measure_uops: 40_000,
            trace_seed: 2006,
        }
    }
}

impl Default for PerfOptions {
    /// The setting used for the reported experiments. The paper simulates
    /// 100 M instructions per benchmark on SimpleScalar; 200 k synthetic
    /// micro-ops per benchmark give CPI deltas stable to ~0.1 % here
    /// because the synthetic traces are statistically stationary.
    fn default() -> Self {
        PerfOptions {
            warmup_uops: 20_000,
            measure_uops: 200_000,
            trace_seed: 2006,
        }
    }
}

/// The L1D configuration a scheme's repair maps onto, in canonical way
/// order (4-cycle ways first, then 5-cycle ways, then any 6-plus way).
///
/// Chips in one Table 6 row differ in *which* ways are slow or disabled;
/// with rotated cold fills the position does not matter, so a canonical
/// arrangement represents the row.
#[must_use]
pub fn canonical_l1d(census: WayCycleCensus, disable_slowest: bool) -> CacheConfig {
    let mut cfg = CacheConfig::l1d_paper();
    let mut way = 0usize;
    for _ in 0..census.ways_4 {
        cfg.way_latency[way] = 4;
        way += 1;
    }
    for _ in 0..census.ways_5 {
        cfg.way_latency[way] = 5;
        way += 1;
    }
    for _ in 0..census.ways_6_plus {
        // A 6-plus way is only ever simulated disabled; the latency value
        // is irrelevant once the way is off, but keep it meaningful.
        cfg.way_latency[way] = 6;
        if disable_slowest {
            cfg.way_enabled[way] = false;
        }
        way += 1;
    }
    if disable_slowest && census.ways_6_plus == 0 {
        // Disable the slowest (or, for 4-0-0 leakage chips, the last) way.
        let victim = if census.ways_5 > 0 {
            usize::from(census.ways_4)
        } else {
            cfg.ways - 1
        };
        cfg.way_enabled[victim] = false;
    }
    cfg
}

/// Simulates one benchmark on a machine with the given L1D and returns its
/// CPI.
///
/// # Panics
///
/// Panics if the cache or pipeline configuration is invalid.
#[must_use]
pub fn benchmark_cpi(
    profile: BenchmarkProfile,
    l1d: &CacheConfig,
    pipeline: &PipelineConfig,
    opts: &PerfOptions,
) -> f64 {
    let mut hier = HierarchyConfig::paper();
    hier.l1d = l1d.clone();
    let mem = MemoryHierarchy::new(hier).expect("valid hierarchy");
    let mut cpu = Pipeline::new(pipeline.clone(), mem).expect("valid pipeline");
    let trace = TraceGenerator::new(profile, opts.trace_seed);
    cpu.run(trace, opts.warmup_uops, opts.measure_uops).cpi()
}

/// CPI of every SPEC2000-like benchmark on the given L1D, in suite order.
/// Benchmarks run on separate threads.
///
/// # Panics
///
/// Panics if any benchmark worker fails; use [`suite_cpis_isolated`] to
/// quarantine failures instead.
#[must_use]
pub fn suite_cpis(
    l1d: &CacheConfig,
    pipeline: &PipelineConfig,
    opts: &PerfOptions,
) -> Vec<(&'static str, f64)> {
    let (cpis, failures) = suite_cpis_isolated(l1d, pipeline, opts);
    assert!(
        failures.is_empty(),
        "benchmark worker failed: {}",
        failures
            .iter()
            .map(|f| format!("{}: {}", f.benchmark, f.error))
            .collect::<Vec<_>>()
            .join("; ")
    );
    cpis
}

/// One benchmark worker that could not produce a usable CPI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkFailure {
    /// The benchmark's name.
    pub benchmark: &'static str,
    /// Why it failed (panic message or a description of the bad result).
    pub error: String,
}

/// Fault-isolated variant of [`suite_cpis`]: each benchmark runs on its
/// own thread, and a worker that panics or reports a non-finite CPI is
/// quarantined into the failure list instead of tearing down the suite.
///
/// The CPI list keeps suite order, with failed benchmarks absent.
#[must_use]
pub fn suite_cpis_isolated(
    l1d: &CacheConfig,
    pipeline: &PipelineConfig,
    opts: &PerfOptions,
) -> (Vec<(&'static str, f64)>, Vec<BenchmarkFailure>) {
    let profiles = spec2000::all_profiles();
    let mut out = Vec::with_capacity(profiles.len());
    let mut failures = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = profiles
            .into_iter()
            .map(|p| {
                let name = p.name;
                let l1d = l1d.clone();
                let pipeline = pipeline.clone();
                let opts = *opts;
                (
                    name,
                    scope.spawn(move || {
                        yac_obs::trace_label_thread(&format!("bench-{name}"));
                        let _timer = yac_obs::phase(yac_obs::Phase::PipelineSim);
                        benchmark_cpi(p, &l1d, &pipeline, &opts)
                    }),
                )
            })
            .collect();
        for (name, h) in handles {
            match h.join() {
                Ok(cpi) if cpi.is_finite() && cpi > 0.0 => {
                    yac_obs::inc(yac_obs::Metric::BenchmarksSimulated);
                    out.push((name, cpi));
                }
                Ok(cpi) => failures.push(BenchmarkFailure {
                    benchmark: name,
                    error: format!("non-finite or non-positive CPI ({cpi})"),
                }),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".to_string());
                    failures.push(BenchmarkFailure {
                        benchmark: name,
                        error: format!("worker panicked: {msg}"),
                    });
                }
            }
        }
    });
    yac_obs::add(yac_obs::Metric::BenchmarkFailures, failures.len() as u64);
    (out, failures)
}

/// Per-benchmark CPI degradation of a repaired configuration relative to a
/// healthy baseline, plus the suite average — the data series of the
/// paper's Figures 9 and 10.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteDegradation {
    /// `(benchmark, CPI increase in percent)`, suite order.
    pub per_benchmark: Vec<(&'static str, f64)>,
    /// Arithmetic mean over the suite, percent.
    pub average: f64,
}

/// Measures the suite-wide CPI degradation of `l1d` against the healthy
/// baseline cache.
#[must_use]
pub fn suite_degradation(l1d: &CacheConfig, opts: &PerfOptions) -> SuiteDegradation {
    let pipeline = PipelineConfig::paper();
    let base = suite_cpis(&CacheConfig::l1d_paper(), &pipeline, opts);
    let modified = suite_cpis(l1d, &pipeline, opts);
    degradation_between(&base, &modified)
}

fn degradation_between(
    base: &[(&'static str, f64)],
    modified: &[(&'static str, f64)],
) -> SuiteDegradation {
    let per_benchmark: Vec<(&'static str, f64)> = base
        .iter()
        .zip(modified)
        .map(|(&(name, b), &(_, m))| (name, 100.0 * (m / b - 1.0)))
        .collect();
    let average = per_benchmark.iter().map(|(_, d)| d).sum::<f64>() / per_benchmark.len() as f64;
    SuiteDegradation {
        per_benchmark,
        average,
    }
}

/// One row of the paper's Table 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6Row {
    /// The pre-repair way-latency configuration (e.g. `3-1-0`).
    pub census: WayCycleCensus,
    /// Chips of the population with this configuration saved by the Hybrid
    /// (the paper's "chip frequency" column sums to the Hybrid's saves).
    pub chip_frequency: usize,
    /// Suite-average CPI degradation under YAPD, if YAPD can save the row.
    pub yapd: Option<f64>,
    /// Ditto for VACA.
    pub vaca: Option<f64>,
    /// Ditto for the Hybrid.
    pub hybrid: Option<f64>,
}

/// The paper's Table 6: per-configuration degradations, chip frequencies
/// from a yield population, and the weighted sums.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6 {
    /// Rows in the paper's order.
    pub rows: Vec<Table6Row>,
    /// Weighted average degradation over the chips each scheme saves:
    /// `(YAPD, VACA, Hybrid)` in percent.
    pub weighted: (f64, f64, f64),
}

/// The canonical row order of the paper's Table 6.
#[must_use]
pub fn table6_row_order() -> Vec<WayCycleCensus> {
    let c = |a, b, d| WayCycleCensus {
        ways_4: a,
        ways_5: b,
        ways_6_plus: d,
    };
    vec![
        c(3, 1, 0),
        c(2, 2, 0),
        c(1, 3, 0),
        c(0, 4, 0),
        c(3, 0, 1),
        c(2, 1, 1),
        c(1, 2, 1),
        c(0, 3, 1),
        c(4, 0, 0),
    ]
}

fn scheme_applicable(census: WayCycleCensus) -> (bool, bool, bool) {
    let yapd = census.ways_5 + census.ways_6_plus <= 1;
    let vaca = census.ways_6_plus == 0 && !census.all_fast();
    let hybrid = census.ways_6_plus <= 1;
    (yapd, vaca, hybrid)
}

/// Builds Table 6 from a yield population.
///
/// For each configuration row: the chip frequency comes from the chips the
/// Hybrid saves; the per-scheme degradations come from pipeline
/// simulations of the canonical repaired cache over all 24 benchmarks; the
/// weighted sums average each scheme's degradation over the chips *that
/// scheme* saves, exactly as the paper computes them (§5.2).
#[must_use]
pub fn table6(
    population: &Population,
    constraints: &YieldConstraints,
    opts: &PerfOptions,
) -> Table6 {
    let yapd = Yapd;
    let vaca = Vaca::new(CacheVariant::Regular);
    let hybrid = Hybrid::new(PowerDownKind::Vertical);
    let freq_yapd = saved_config_census(population, constraints, &yapd, CacheVariant::Regular);
    let freq_vaca = saved_config_census(population, constraints, &vaca, CacheVariant::Regular);
    let freq_hybrid = saved_config_census(population, constraints, &hybrid, CacheVariant::Regular);

    let pipeline = PipelineConfig::paper();
    let base = suite_cpis(&CacheConfig::l1d_paper(), &pipeline, opts);
    // Average degradation for a repaired L1D, memoised by configuration.
    let mut memo: BTreeMap<(Vec<u32>, Vec<bool>), f64> = BTreeMap::new();
    let mut degradation_of = |cfg: &CacheConfig| -> f64 {
        let key = (cfg.way_latency.clone(), cfg.way_enabled.clone());
        if let Some(&d) = memo.get(&key) {
            return d;
        }
        let modified = suite_cpis(cfg, &pipeline, opts);
        let d = degradation_between(&base, &modified).average;
        memo.insert(key, d);
        d
    };

    let mut rows = Vec::new();
    for census in table6_row_order() {
        let (can_yapd, can_vaca, can_hybrid) = scheme_applicable(census);
        let yapd_deg = can_yapd.then(|| degradation_of(&canonical_l1d(census, true)));
        let vaca_deg = can_vaca.then(|| degradation_of(&canonical_l1d(census, false)));
        let hybrid_deg = can_hybrid.then(|| {
            // The Hybrid keeps ways on as long as possible (§4.4): it
            // disables only for a 6-plus way or a leakage repair (4-0-0).
            let needs_disable = census.ways_6_plus > 0 || census.all_fast();
            degradation_of(&canonical_l1d(census, needs_disable))
        });
        rows.push(Table6Row {
            census,
            chip_frequency: freq_hybrid.get(&census).copied().unwrap_or(0),
            yapd: yapd_deg,
            vaca: vaca_deg,
            hybrid: hybrid_deg,
        });
    }

    let weighted_for = |freq: &BTreeMap<WayCycleCensus, usize>,
                        pick: &dyn Fn(&Table6Row) -> Option<f64>| {
        let mut total = 0usize;
        let mut sum = 0.0;
        for row in &rows {
            if let (Some(d), Some(&n)) = (pick(row), freq.get(&row.census)) {
                total += n;
                sum += d * n as f64;
            }
        }
        if total == 0 {
            0.0
        } else {
            sum / total as f64
        }
    };
    let weighted = (
        weighted_for(&freq_yapd, &|r| r.yapd),
        weighted_for(&freq_vaca, &|r| r.vaca),
        weighted_for(&freq_hybrid, &|r| r.hybrid),
    );

    Table6 { rows, weighted }
}

/// Renders a [`Table6`] in the paper's layout.
#[must_use]
pub fn render_table6(table: &Table6) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8}{:>10}{:>10}{:>10}{:>10}",
        "config", "# chips", "YAPD", "VACA", "Hybrid"
    );
    let cell = |v: Option<f64>| match v {
        Some(d) => format!("{d:>9.2}%"),
        None => format!("{:>10}", "N/A"),
    };
    for row in &table.rows {
        let _ = writeln!(
            out,
            "{:<8}{:>10}{}{}{}",
            row.census.to_string(),
            row.chip_frequency,
            cell(row.yapd),
            cell(row.vaca),
            cell(row.hybrid),
        );
    }
    let _ = writeln!(
        out,
        "{:<8}{:>10}{:>9.2}%{:>9.2}%{:>9.2}%",
        "wgt sum", "", table.weighted.0, table.weighted.1, table.weighted.2
    );
    out
}

/// Comparison of the fixed keep-ways-on Hybrid against the adaptive
/// policy (§4.4's discussion) on 3-1-0 chips: per benchmark, the CPI cost
/// of each repair and which one the adaptive policy picks.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveComparison {
    /// `(benchmark, keep-on cost %, disable cost %, adaptive pick)` where
    /// the pick is `true` when the way is kept on.
    pub per_benchmark: Vec<(&'static str, f64, f64, bool)>,
    /// Suite-average cost of always keeping the way on (the paper's fixed
    /// policy), percent.
    pub fixed_average: f64,
    /// Suite-average cost when each benchmark gets the adaptive choice.
    pub adaptive_average: f64,
}

/// Evaluates the adaptive Hybrid policy on the 3-1-0 configuration: for
/// every benchmark, simulate both repairs (keep the 5-cycle way on, or
/// disable it) and let the workload's [`BenchmarkProfile::memory_intensity`]
/// make the §4.4 call.
#[must_use]
pub fn adaptive_comparison(opts: &PerfOptions) -> AdaptiveComparison {
    let census = WayCycleCensus {
        ways_4: 3,
        ways_5: 1,
        ways_6_plus: 0,
    };
    let pipeline = PipelineConfig::paper();
    let base = suite_cpis(&CacheConfig::l1d_paper(), &pipeline, opts);
    let keep = suite_cpis(&canonical_l1d(census, false), &pipeline, opts);
    let disable = suite_cpis(&canonical_l1d(census, true), &pipeline, opts);

    let mut per_benchmark = Vec::new();
    let mut fixed_sum = 0.0;
    let mut adaptive_sum = 0.0;
    for (profile, ((&(name, b), &(_, k)), &(_, d))) in spec2000::all_profiles()
        .into_iter()
        .zip(base.iter().zip(&keep).zip(&disable))
    {
        let keep_cost = 100.0 * (k / b - 1.0);
        let disable_cost = 100.0 * (d / b - 1.0);
        let keeps = profile.memory_intensity() >= 0.5;
        per_benchmark.push((name, keep_cost, disable_cost, keeps));
        fixed_sum += keep_cost;
        adaptive_sum += if keeps { keep_cost } else { disable_cost };
    }
    let n = per_benchmark.len() as f64;
    AdaptiveComparison {
        per_benchmark,
        fixed_average: fixed_sum / n,
        adaptive_average: adaptive_sum / n,
    }
}

/// Renders per-benchmark degradation series (Figures 9–10) as text.
#[must_use]
pub fn render_degradation(title: &str, series: &[(&str, &SuiteDegradation)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:<12}", "benchmark");
    for (label, _) in series {
        let _ = write!(out, "{label:>10}");
    }
    out.push('\n');
    if let Some((_, first)) = series.first() {
        for (i, (name, _)) in first.per_benchmark.iter().enumerate() {
            let _ = write!(out, "{name:<12}");
            for (_, s) in series {
                let _ = write!(out, "{:>9.2}%", s.per_benchmark[i].1);
            }
            out.push('\n');
        }
    }
    let _ = write!(out, "{:<12}", "average");
    for (_, s) in series {
        let _ = write!(out, "{:>9.2}%", s.average);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstraintSpec, Scheme, SchemeOutcome};

    fn census(a: u8, b: u8, c: u8) -> WayCycleCensus {
        WayCycleCensus {
            ways_4: a,
            ways_5: b,
            ways_6_plus: c,
        }
    }

    #[test]
    fn canonical_l1d_shapes() {
        let vaca = canonical_l1d(census(2, 2, 0), false);
        assert_eq!(vaca.way_latency, vec![4, 4, 5, 5]);
        assert!(vaca.way_enabled.iter().all(|&e| e));
        vaca.validate().unwrap();

        let yapd = canonical_l1d(census(3, 1, 0), true);
        assert_eq!(yapd.way_enabled, vec![true, true, true, false]);
        yapd.validate().unwrap();

        let hybrid211 = canonical_l1d(census(2, 1, 1), true);
        assert_eq!(hybrid211.way_enabled, vec![true, true, true, false]);
        assert_eq!(&hybrid211.way_latency[..3], &[4, 4, 5]);
        hybrid211.validate().unwrap();

        let leak = canonical_l1d(census(4, 0, 0), true);
        assert_eq!(leak.way_enabled, vec![true, true, true, false]);
        leak.validate().unwrap();
    }

    #[test]
    fn applicability_matches_paper_rules() {
        assert_eq!(scheme_applicable(census(3, 1, 0)), (true, true, true));
        assert_eq!(scheme_applicable(census(2, 2, 0)), (false, true, true));
        assert_eq!(scheme_applicable(census(3, 0, 1)), (true, false, true));
        assert_eq!(scheme_applicable(census(2, 1, 1)), (false, false, true));
        assert_eq!(scheme_applicable(census(4, 0, 0)), (true, false, true));
        assert_eq!(scheme_applicable(census(2, 0, 2)), (false, false, false));
    }

    #[test]
    fn row_order_matches_paper() {
        let order = table6_row_order();
        assert_eq!(order.len(), 9);
        assert_eq!(order[0].to_string(), "3-1-0");
        assert_eq!(order[8].to_string(), "4-0-0");
    }

    #[test]
    fn suite_cpis_cover_all_benchmarks() {
        let opts = PerfOptions {
            warmup_uops: 2_000,
            measure_uops: 5_000,
            trace_seed: 1,
        };
        let cpis = suite_cpis(&CacheConfig::l1d_paper(), &PipelineConfig::paper(), &opts);
        assert_eq!(cpis.len(), 24);
        for (name, cpi) in &cpis {
            assert!(*cpi > 0.25, "{name}: cpi {cpi}");
            assert!(*cpi < 50.0, "{name}: cpi {cpi}");
        }
    }

    #[test]
    fn degradation_is_positive_for_slow_ways() {
        let opts = PerfOptions::quick();
        let mut l1d = CacheConfig::l1d_paper();
        l1d.way_latency = vec![5; 4];
        let deg = suite_degradation(&l1d, &opts);
        assert_eq!(deg.per_benchmark.len(), 24);
        assert!(deg.average > 0.5, "all-5-cycle must hurt: {}", deg.average);
    }

    #[test]
    fn table6_quick_has_paper_shape() {
        let population = Population::generate(400, 2006);
        let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
        let opts = PerfOptions::quick();
        let t = table6(&population, &constraints, &opts);

        assert_eq!(t.rows.len(), 9);
        // N/A pattern matches the paper.
        let row = |s: &str| t.rows.iter().find(|r| r.census.to_string() == s).unwrap();
        assert!(row("3-1-0").yapd.is_some() && row("3-1-0").vaca.is_some());
        assert!(row("2-2-0").yapd.is_none() && row("2-2-0").vaca.is_some());
        assert!(row("3-0-1").vaca.is_none() && row("3-0-1").yapd.is_some());
        assert!(row("2-1-1").yapd.is_none() && row("2-1-1").vaca.is_none());
        assert!(row("2-1-1").hybrid.is_some());
        assert!(row("4-0-0").vaca.is_none() && row("4-0-0").yapd.is_some());

        // YAPD's degradation is identical wherever it applies (always the
        // same 3-way repair).
        let y1 = row("3-1-0").yapd.unwrap();
        let y2 = row("3-0-1").yapd.unwrap();
        let y3 = row("4-0-0").yapd.unwrap();
        assert!((y1 - y2).abs() < 1e-9 && (y2 - y3).abs() < 1e-9);

        // Hybrid equals VACA where no disable is needed.
        assert!((row("3-1-0").hybrid.unwrap() - row("3-1-0").vaca.unwrap()).abs() < 1e-9);
        // Hybrid equals YAPD on 3-0-1 (disable the slow way, rest at 4).
        assert!((row("3-0-1").hybrid.unwrap() - row("3-0-1").yapd.unwrap()).abs() < 1e-9);

        // VACA gets more expensive with more slow ways.
        let v: Vec<f64> = ["3-1-0", "2-2-0", "1-3-0", "0-4-0"]
            .iter()
            .map(|s| row(s).vaca.unwrap())
            .collect();
        assert!(v[0] < v[3], "VACA cost grows with slow ways: {v:?}");

        // The frequency column counts Hybrid saves.
        let total: usize = t.rows.iter().map(|r| r.chip_frequency).sum();
        let hybrid = Hybrid::new(PowerDownKind::Vertical);
        let saved = population
            .chips
            .iter()
            .filter(|c| {
                matches!(
                    hybrid.apply(c, &constraints, population.calibration()),
                    SchemeOutcome::Saved(_)
                )
            })
            .count();
        assert_eq!(total, saved);
    }

    #[test]
    fn renderers_produce_all_rows() {
        let t = Table6 {
            rows: vec![Table6Row {
                census: census(3, 1, 0),
                chip_frequency: 91,
                yapd: Some(1.0),
                vaca: Some(2.0),
                hybrid: Some(2.0),
            }],
            weighted: (1.0, 2.0, 1.8),
        };
        let text = render_table6(&t);
        assert!(text.contains("3-1-0"));
        assert!(text.contains("91"));
        assert!(text.contains("wgt sum"));

        let deg = SuiteDegradation {
            per_benchmark: vec![("gzip", 1.5)],
            average: 1.5,
        };
        let text = render_degradation("fig", &[("VACA", &deg)]);
        assert!(text.contains("gzip"));
        assert!(text.contains("average"));
    }
}
