//! Chip samples and populations: the bridge from Monte Carlo variation
//! sampling through the circuit model to the yield analysis.
//!
//! The paper simulates every die twice — once with the regular cache
//! organisation and once with the H-YAPD organisation, applying "the same
//! process variation parameters used in the previous simulations" (§5.1).
//! [`ChipSample`] therefore carries both circuit evaluations of one die.

use yac_circuit::{CacheCircuitModel, CacheCircuitResult, CacheVariant, Calibration};
use yac_variation::{MonteCarlo, VariationConfig};

/// One manufactured chip: the same die evaluated under both cache
/// organisations.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSample {
    /// Index of the chip in its population's Monte Carlo stream.
    pub index: u64,
    /// Circuit evaluation with the regular (vertical power-down) layout.
    pub regular: CacheCircuitResult,
    /// Circuit evaluation with the H-YAPD (horizontal power-down) layout.
    pub horizontal: CacheCircuitResult,
}

impl ChipSample {
    /// The evaluation for the requested organisation.
    #[must_use]
    pub fn result(&self, variant: CacheVariant) -> &CacheCircuitResult {
        match variant {
            CacheVariant::Regular => &self.regular,
            CacheVariant::Horizontal => &self.horizontal,
        }
    }

    /// Number of ways on the die.
    #[must_use]
    pub fn way_count(&self) -> usize {
        self.regular.ways.len()
    }
}

/// Configuration of a population study.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of chips to simulate (the paper uses 2000).
    pub chips: usize,
    /// Monte Carlo seed; the population is fully reproducible from it.
    pub seed: u64,
    /// Variation-sampling configuration.
    pub variation: VariationConfig,
    /// Circuit model for the regular organisation.
    pub regular_model: CacheCircuitModel,
    /// Circuit model for the H-YAPD organisation.
    pub horizontal_model: CacheCircuitModel,
}

impl PopulationConfig {
    /// The paper's study shape: 2000 chips, calibrated models.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        PopulationConfig {
            chips: 2000,
            seed,
            variation: VariationConfig::default(),
            regular_model: CacheCircuitModel::regular(),
            horizontal_model: CacheCircuitModel::horizontal(),
        }
    }
}

/// A simulated population of chips.
///
/// # Examples
///
/// ```
/// use yac_core::Population;
/// use yac_circuit::CacheVariant;
///
/// let pop = Population::generate(50, 7);
/// assert_eq!(pop.chips.len(), 50);
/// let delays = pop.delays(CacheVariant::Regular);
/// assert_eq!(delays.len(), 50);
/// ```
#[derive(Debug, Clone)]
pub struct Population {
    /// All simulated chips, in Monte Carlo stream order.
    pub chips: Vec<ChipSample>,
    calibration: Calibration,
    seed: u64,
}

impl Population {
    /// Generates a population with the paper's default configuration but a
    /// custom size and seed.
    #[must_use]
    pub fn generate(chips: usize, seed: u64) -> Self {
        let mut cfg = PopulationConfig::paper(seed);
        cfg.chips = chips;
        Self::generate_with(&cfg)
    }

    /// Generates a population from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the variation configuration is invalid.
    #[must_use]
    pub fn generate_with(config: &PopulationConfig) -> Self {
        let mc = MonteCarlo::new(config.variation);
        let dies = mc.generate(config.chips, config.seed);
        let chips = dies
            .iter()
            .enumerate()
            .map(|(i, die)| ChipSample {
                index: i as u64,
                regular: config.regular_model.evaluate(die),
                horizontal: config.horizontal_model.evaluate(die),
            })
            .collect();
        Population {
            chips,
            calibration: *config.regular_model.calibration(),
            seed: config.seed,
        }
    }

    /// The calibration shared by the population's circuit models (needed by
    /// schemes to recompute self-heating after a power-down).
    #[must_use]
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The Monte Carlo seed the population was generated from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of chips.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Whether the population is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// Cache access delays of every chip under one organisation.
    #[must_use]
    pub fn delays(&self, variant: CacheVariant) -> Vec<f64> {
        self.chips.iter().map(|c| c.result(variant).delay).collect()
    }

    /// Settled leakage of every chip under one organisation.
    #[must_use]
    pub fn leakages(&self, variant: CacheVariant) -> Vec<f64> {
        self.chips
            .iter()
            .map(|c| c.result(variant).leakage)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible() {
        let a = Population::generate(20, 3);
        let b = Population::generate(20, 3);
        assert_eq!(a.chips, b.chips);
        assert_eq!(a.seed(), 3);
    }

    #[test]
    fn horizontal_variant_is_slower_on_every_chip() {
        let pop = Population::generate(50, 5);
        for chip in &pop.chips {
            assert!(
                chip.horizontal.delay > chip.regular.delay,
                "chip {} horizontal not slower",
                chip.index
            );
        }
    }

    #[test]
    fn variants_share_leakage_distribution() {
        // The H-YAPD reorganisation changes timing, not devices: leakage of
        // the two variants is identical per chip.
        let pop = Population::generate(30, 9);
        for chip in &pop.chips {
            assert!((chip.regular.leakage - chip.horizontal.leakage).abs() < 1e-12);
        }
    }

    #[test]
    fn result_accessor_selects_variant() {
        let pop = Population::generate(2, 1);
        let c = &pop.chips[0];
        assert_eq!(c.result(CacheVariant::Regular), &c.regular);
        assert_eq!(c.result(CacheVariant::Horizontal), &c.horizontal);
        assert_eq!(c.way_count(), 4);
    }

    #[test]
    fn empty_population_is_supported() {
        let pop = Population::generate(0, 1);
        assert!(pop.is_empty());
        assert_eq!(pop.len(), 0);
        assert!(pop.delays(CacheVariant::Regular).is_empty());
    }

    #[test]
    fn indices_are_sequential() {
        let pop = Population::generate(10, 2);
        for (i, chip) in pop.chips.iter().enumerate() {
            assert_eq!(chip.index, i as u64);
        }
    }
}
