//! Chip samples and populations: the bridge from Monte Carlo variation
//! sampling through the circuit model to the yield analysis.
//!
//! The paper simulates every die twice — once with the regular cache
//! organisation and once with the H-YAPD organisation, applying "the same
//! process variation parameters used in the previous simulations" (§5.1).
//! [`ChipSample`] therefore carries both circuit evaluations of one die.

use crate::quarantine::QuarantineLedger;
use std::panic::{catch_unwind, AssertUnwindSafe};
use yac_circuit::{CacheCircuitModel, CacheCircuitResult, CacheVariant, Calibration};
use yac_variation::{CacheVariation, FaultPlan, MonteCarlo, VariationConfig};

/// One manufactured chip: the same die evaluated under both cache
/// organisations.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSample {
    /// Index of the chip in its population's Monte Carlo stream.
    pub index: u64,
    /// Circuit evaluation with the regular (vertical power-down) layout.
    pub regular: CacheCircuitResult,
    /// Circuit evaluation with the H-YAPD (horizontal power-down) layout.
    pub horizontal: CacheCircuitResult,
}

impl ChipSample {
    /// The evaluation for the requested organisation.
    #[must_use]
    pub fn result(&self, variant: CacheVariant) -> &CacheCircuitResult {
        match variant {
            CacheVariant::Regular => &self.regular,
            CacheVariant::Horizontal => &self.horizontal,
        }
    }

    /// Number of ways on the die.
    #[must_use]
    pub fn way_count(&self) -> usize {
        self.regular.ways.len()
    }
}

/// Configuration of a population study.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of chips to simulate (the paper uses 2000).
    pub chips: usize,
    /// Monte Carlo seed; the population is fully reproducible from it.
    pub seed: u64,
    /// Variation-sampling configuration.
    pub variation: VariationConfig,
    /// Circuit model for the regular organisation.
    pub regular_model: CacheCircuitModel,
    /// Circuit model for the H-YAPD organisation.
    pub horizontal_model: CacheCircuitModel,
    /// Optional deterministic fault-injection plan; corrupted chips land
    /// in the population's quarantine ledger instead of its chip list.
    pub faults: Option<FaultPlan>,
}

impl PopulationConfig {
    /// The paper's study shape: 2000 chips, calibrated models, no fault
    /// injection.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        PopulationConfig {
            chips: 2000,
            seed,
            variation: VariationConfig::default(),
            regular_model: CacheCircuitModel::regular(),
            horizontal_model: CacheCircuitModel::horizontal(),
            faults: None,
        }
    }
}

/// A simulated population of chips.
///
/// # Examples
///
/// ```
/// use yac_core::Population;
/// use yac_circuit::CacheVariant;
///
/// let pop = Population::generate(50, 7);
/// assert_eq!(pop.chips.len(), 50);
/// let delays = pop.delays(CacheVariant::Regular);
/// assert_eq!(delays.len(), 50);
/// ```
#[derive(Debug, Clone)]
pub struct Population {
    /// All simulated chips, in Monte Carlo stream order. When a fault plan
    /// or an evaluation failure quarantines chips, their stream indices
    /// are simply absent here — `chips[i].index` is not necessarily `i`.
    pub chips: Vec<ChipSample>,
    quarantine: QuarantineLedger,
    calibration: Calibration,
    seed: u64,
}

impl Population {
    /// Generates a population with the paper's default configuration but a
    /// custom size and seed.
    #[must_use]
    pub fn generate(chips: usize, seed: u64) -> Self {
        let mut cfg = PopulationConfig::paper(seed);
        cfg.chips = chips;
        Self::generate_with(&cfg)
    }

    /// Generates a population from an explicit configuration.
    ///
    /// Sampling and circuit evaluation are fault-isolated per chip: a die
    /// the fault plan corrupts, a sampler panic, or a circuit evaluation
    /// that panics or produces non-finite results quarantines that one
    /// chip (see [`Population::quarantine`]) and the rest of the
    /// population is unaffected.
    ///
    /// # Panics
    ///
    /// Panics if the variation configuration is invalid.
    #[must_use]
    pub fn generate_with(config: &PopulationConfig) -> Self {
        let mc = MonteCarlo::new(config.variation);
        let outcome = mc.generate_checked(config.chips, config.seed, config.faults.as_ref());
        let mut quarantine = QuarantineLedger::from_failures(&outcome.failures);
        let mut chips = Vec::with_capacity(outcome.dies.len());
        for (index, die) in &outcome.dies {
            match evaluate_isolated(config, die) {
                Ok((regular, horizontal)) => chips.push(ChipSample {
                    index: *index,
                    regular,
                    horizontal,
                }),
                Err(error) => quarantine.record(*index, config.seed, error),
            }
        }
        Population {
            chips,
            quarantine,
            calibration: *config.regular_model.calibration(),
            seed: config.seed,
        }
    }

    /// Assembles a population from parts already generated elsewhere
    /// (the checkpoint/resume machinery).
    pub(crate) fn from_parts(
        chips: Vec<ChipSample>,
        quarantine: QuarantineLedger,
        calibration: Calibration,
        seed: u64,
    ) -> Self {
        Population {
            chips,
            quarantine,
            calibration,
            seed,
        }
    }

    /// The ledger of chips that failed generation or evaluation.
    #[must_use]
    pub fn quarantine(&self) -> &QuarantineLedger {
        &self.quarantine
    }

    /// A copy of this population keeping only the chips whose stream
    /// index appears in `indices` (the quarantine ledger is cleared — the
    /// restriction is an explicit selection, not a failure).
    ///
    /// Used to compare studies: a fault-injected run's clean survivors
    /// must match an uninjected run restricted to the same indices.
    #[must_use]
    pub fn restricted_to(&self, indices: &[u64]) -> Self {
        let keep: std::collections::HashSet<u64> = indices.iter().copied().collect();
        Population {
            chips: self
                .chips
                .iter()
                .filter(|c| keep.contains(&c.index))
                .cloned()
                .collect(),
            quarantine: QuarantineLedger::new(),
            calibration: self.calibration,
            seed: self.seed,
        }
    }

    /// The calibration shared by the population's circuit models (needed by
    /// schemes to recompute self-heating after a power-down).
    #[must_use]
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The Monte Carlo seed the population was generated from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of chips.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Whether the population is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// Cache access delays of every chip under one organisation.
    #[must_use]
    pub fn delays(&self, variant: CacheVariant) -> Vec<f64> {
        self.chips.iter().map(|c| c.result(variant).delay).collect()
    }

    /// Settled leakage of every chip under one organisation.
    #[must_use]
    pub fn leakages(&self, variant: CacheVariant) -> Vec<f64> {
        self.chips
            .iter()
            .map(|c| c.result(variant).leakage)
            .collect()
    }
}

/// Evaluates one die under both circuit models with panic isolation and a
/// finiteness check on the results, so one pathological die cannot tear
/// down the generation or smuggle NaNs into the yield analysis.
pub(crate) fn evaluate_isolated(
    config: &PopulationConfig,
    die: &CacheVariation,
) -> Result<(CacheCircuitResult, CacheCircuitResult), String> {
    let results = catch_unwind(AssertUnwindSafe(|| {
        (
            config.regular_model.evaluate(die),
            config.horizontal_model.evaluate(die),
        )
    }))
    .map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string());
        format!("circuit evaluation panicked: {msg}")
    })?;
    for (variant, result) in [("regular", &results.0), ("horizontal", &results.1)] {
        if !(result.delay.is_finite() && result.leakage.is_finite()) {
            return Err(format!(
                "{variant} evaluation produced non-finite results \
                 (delay {}, leakage {})",
                result.delay, result.leakage
            ));
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible() {
        let a = Population::generate(20, 3);
        let b = Population::generate(20, 3);
        assert_eq!(a.chips, b.chips);
        assert_eq!(a.seed(), 3);
    }

    #[test]
    fn horizontal_variant_is_slower_on_every_chip() {
        let pop = Population::generate(50, 5);
        for chip in &pop.chips {
            assert!(
                chip.horizontal.delay > chip.regular.delay,
                "chip {} horizontal not slower",
                chip.index
            );
        }
    }

    #[test]
    fn variants_share_leakage_distribution() {
        // The H-YAPD reorganisation changes timing, not devices: leakage of
        // the two variants is identical per chip.
        let pop = Population::generate(30, 9);
        for chip in &pop.chips {
            assert!((chip.regular.leakage - chip.horizontal.leakage).abs() < 1e-12);
        }
    }

    #[test]
    fn result_accessor_selects_variant() {
        let pop = Population::generate(2, 1);
        let c = &pop.chips[0];
        assert_eq!(c.result(CacheVariant::Regular), &c.regular);
        assert_eq!(c.result(CacheVariant::Horizontal), &c.horizontal);
        assert_eq!(c.way_count(), 4);
    }

    #[test]
    fn empty_population_is_supported() {
        let pop = Population::generate(0, 1);
        assert!(pop.is_empty());
        assert_eq!(pop.len(), 0);
        assert!(pop.delays(CacheVariant::Regular).is_empty());
    }

    #[test]
    fn indices_are_sequential() {
        let pop = Population::generate(10, 2);
        for (i, chip) in pop.chips.iter().enumerate() {
            assert_eq!(chip.index, i as u64);
        }
    }

    #[test]
    fn clean_generation_has_empty_quarantine() {
        let pop = Population::generate(25, 4);
        assert!(pop.quarantine().is_empty());
        assert_eq!(pop.len(), 25);
    }

    #[test]
    fn fault_plan_quarantines_exactly_the_planned_chips() {
        let plan = FaultPlan::new(0.10, 17).unwrap();
        let mut cfg = PopulationConfig::paper(21);
        cfg.chips = 120;
        cfg.faults = Some(plan);
        let pop = Population::generate_with(&cfg);
        let expected = plan.injected_indices(21, 120);
        assert!(!expected.is_empty(), "10% of 120 should hit something");
        assert_eq!(pop.quarantine().indices(), expected);
        assert_eq!(pop.len() + pop.quarantine().len(), 120);
        for chip in &pop.chips {
            assert!(!expected.contains(&chip.index));
        }
    }

    #[test]
    fn surviving_chips_match_the_uninjected_run() {
        let plan = FaultPlan::new(0.10, 17).unwrap();
        let mut cfg = PopulationConfig::paper(21);
        cfg.chips = 80;
        cfg.faults = Some(plan);
        let injected = Population::generate_with(&cfg);

        cfg.faults = None;
        let clean = Population::generate_with(&cfg);
        let survivors: Vec<u64> = injected.chips.iter().map(|c| c.index).collect();
        let restricted = clean.restricted_to(&survivors);
        assert_eq!(injected.chips, restricted.chips);
        assert!(restricted.quarantine().is_empty());
    }

    #[test]
    fn restricted_to_keeps_only_requested_indices() {
        let pop = Population::generate(10, 2);
        let sub = pop.restricted_to(&[1, 3, 8]);
        assert_eq!(
            sub.chips.iter().map(|c| c.index).collect::<Vec<_>>(),
            vec![1, 3, 8]
        );
        assert_eq!(sub.seed(), pop.seed());
    }
}
