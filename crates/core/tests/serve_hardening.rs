//! Overload-hardening tests for the TCP serve loop: slowloris eviction,
//! the connection cap, graceful drain, and client-supplied query
//! deadlines. All timing-sensitive checks use generous bounds — the
//! point is "bounded and typed", not "fast".
//!
//! Assertions read per-service stats, never the process-global metric
//! registry — other tests in this binary share that registry.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use yac_core::{
    client_request, serve, ConstraintSpec, ExecutorConfig, PowerDownKind, ServiceConfig,
    ServiceReply, ServiceRequest, ShardFaultPlan, StudyQuery, SweepService,
};

fn small_query(seed: u64) -> StudyQuery {
    StudyQuery {
        chips: 16,
        seed,
        constraint: ConstraintSpec::NOMINAL,
        kind: PowerDownKind::Vertical,
        cpi: None,
    }
}

fn fast_exec() -> ExecutorConfig {
    let mut exec = ExecutorConfig::with_workers(2);
    exec.shard_chips = 8;
    exec
}

/// An executor whose shards fail their first attempts and back off, so
/// a query reliably takes a while (but still completes).
fn slow_exec(failing_attempts: u32, backoff_ms: u64) -> ExecutorConfig {
    let mut exec = fast_exec();
    exec.max_retries = failing_attempts;
    exec.backoff = Duration::from_millis(backoff_ms);
    exec.shard_faults = Some(ShardFaultPlan::always(failing_attempts));
    exec
}

struct Harness {
    addr: String,
    service: Arc<SweepService>,
    server: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(config: ServiceConfig) -> Harness {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let service = Arc::new(SweepService::new(config));
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve(&listener, &service))
    };
    Harness {
        addr,
        service,
        server,
    }
}

impl Harness {
    /// Shuts the server down over the wire and joins it.
    fn finish(self) {
        let (bye, _) = client_request(&self.addr, &ServiceRequest::Shutdown).unwrap();
        assert_eq!(bye, ServiceReply::Bye);
        self.server.join().unwrap().unwrap();
    }
}

/// A client that sends half a frame header and stalls is evicted within
/// the read deadline (plus slack), not serviced and not hung on — the
/// slowloris defence.
#[test]
fn slow_clients_are_evicted_within_the_read_deadline() {
    let harness = start(ServiceConfig {
        exec: fast_exec(),
        max_inflight: 1,
        cache_bytes: 1 << 20,
        read_deadline: Duration::from_millis(100),
        ..ServiceConfig::default()
    });

    let mut stream = TcpStream::connect(&harness.addr).unwrap();
    stream.write_all(&[0, 0, 0, 9]).unwrap(); // half a header, then silence
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    let mut byte = [0u8; 1];
    let evicted = matches!(stream.read(&mut byte), Ok(0) | Err(_));
    assert!(evicted, "the stalled connection was serviced, not dropped");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "eviction took {:?} — the read deadline did not fire",
        started.elapsed()
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    while harness.service.stats().evicted == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(harness.service.stats().evicted, 1, "eviction not counted");

    // An idle-but-polite client (connected, no bytes at all) is NOT
    // evicted: the deadline arms at the first byte of a frame.
    let idle = TcpStream::connect(&harness.addr).unwrap();
    std::thread::sleep(Duration::from_millis(250));
    let (reply, _) = client_request(&harness.addr, &ServiceRequest::Stats).unwrap();
    match reply {
        ServiceReply::Stats(stats) => assert_eq!(stats.evicted, 1, "idle client was evicted"),
        other => panic!("expected stats, got {other:?}"),
    }
    drop(idle);
    harness.finish();
}

/// Connections beyond `max_conns` receive a typed `Busy` refusal and a
/// close — accept never stalls and handlers never pile up unbounded.
#[test]
fn connections_beyond_the_cap_are_refused_with_busy() {
    let harness = start(ServiceConfig {
        exec: fast_exec(),
        max_inflight: 1,
        cache_bytes: 1 << 20,
        max_conns: 1,
        ..ServiceConfig::default()
    });

    // Occupy the only slot with an open, idle connection.
    let held = TcpStream::connect(&harness.addr).unwrap();
    // The serve loop learns about the held connection asynchronously;
    // poll until the next connection is refused.
    let deadline = Instant::now() + Duration::from_secs(10);
    let refusal = loop {
        assert!(Instant::now() < deadline, "no refusal before the deadline");
        match client_request(&harness.addr, &ServiceRequest::Stats) {
            Ok((ServiceReply::Busy { .. }, _)) => break harness.service.stats(),
            Ok(_) => std::thread::sleep(Duration::from_millis(10)),
            // The refusal path may also close before the reply lands.
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    assert!(refusal.rejected >= 1, "refusals must be counted");

    // Releasing the held connection frees the slot.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "slot never freed after close");
        if let Ok((ServiceReply::Stats(_), _)) =
            client_request(&harness.addr, &ServiceRequest::Stats)
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    harness.finish();
}

/// Drain: the `drain` op is acknowledged, later queries are refused
/// with `Draining`, and the serve loop exits on its own once in-flight
/// work completes — no shutdown op needed, no slot leaked.
#[test]
fn drain_refuses_new_queries_and_exits_once_idle() {
    let harness = start(ServiceConfig {
        exec: fast_exec(),
        max_inflight: 2,
        cache_bytes: 1 << 20,
        ..ServiceConfig::default()
    });

    // Prove the service works, then drain it.
    let request = ServiceRequest::Query {
        query: small_query(41),
        deadline_ms: None,
    };
    let (reply, _) = client_request(&harness.addr, &request).unwrap();
    assert!(matches!(reply, ServiceReply::Result { .. }));

    let (reply, _) = client_request(&harness.addr, &ServiceRequest::Drain).unwrap();
    match reply {
        ServiceReply::Draining { inflight } => assert_eq!(inflight, 0),
        other => panic!("expected a draining ack, got {other:?}"),
    }

    // A query racing the drain is refused with the typed status (the
    // serve loop may already be gone, which is equally acceptable).
    if let Ok((reply, _)) = client_request(&harness.addr, &request) {
        assert!(
            matches!(reply, ServiceReply::Draining { .. }),
            "expected a draining refusal, got {reply:?}"
        );
    }

    // The loop exits without a shutdown op.
    harness.server.join().unwrap().unwrap();
    assert_eq!(harness.service.inflight(), 0, "drain leaked a slot");
    let stats = harness.service.stats();
    assert!(stats.draining, "stats must report the draining state");
}

/// A client-supplied `deadline_ms` cancels a slow query cooperatively:
/// the reply is the typed `Deadline` status carrying the elapsed time,
/// and the service stays healthy for the next query.
#[test]
fn query_deadlines_cancel_cooperatively_with_a_typed_reply() {
    let harness = start(ServiceConfig {
        // Every shard fails twice and backs off 100 ms: the query takes
        // well over 200 ms unless cancelled.
        exec: slow_exec(2, 100),
        max_inflight: 1,
        cache_bytes: 1 << 20,
        ..ServiceConfig::default()
    });

    let request = ServiceRequest::Query {
        query: small_query(51),
        deadline_ms: Some(30),
    };
    let started = Instant::now();
    let (reply, _) = client_request(&harness.addr, &request).unwrap();
    match reply {
        ServiceReply::Deadline { elapsed_ms } => {
            assert!(elapsed_ms >= 25, "deadline fired early: {elapsed_ms} ms");
        }
        other => panic!("expected a deadline reply, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "deadline reply took {:?}",
        started.elapsed()
    );
    assert_eq!(harness.service.inflight(), 0, "deadline leaked a slot");

    // The same query without a deadline completes normally.
    let request = ServiceRequest::Query {
        query: small_query(51),
        deadline_ms: None,
    };
    let (reply, _) = client_request(&harness.addr, &request).unwrap();
    assert!(
        matches!(reply, ServiceReply::Result { cached: false, .. }),
        "service unhealthy after a deadline cancel: {reply:?}"
    );
    harness.finish();
}
