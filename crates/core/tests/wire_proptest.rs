//! Property-style fuzz of the wire codec: the framing layer and the
//! request/reply JSON parsers must map *every* input — random garbage,
//! truncations, oversized length claims, single-bit corruption — to a
//! typed error or a clean value. Never a panic, never a hang, never an
//! unbounded allocation.
//!
//! The generator is a deterministic SplitMix64 walk (no proptest
//! dependency, no flaky shrink): every failure reports the case index,
//! and rerunning reproduces it exactly.

use std::io::{Cursor, ErrorKind};
use yac_core::service::MAX_FRAME;
use yac_core::{read_frame, write_frame, ServiceReply, ServiceRequest};
use yac_variation::montecarlo::mix_seed;

const FUZZ_SEED: u64 = 0x5eed_2006;

/// A tiny deterministic byte stream over `mix_seed`.
struct Rng {
    seed: u64,
    index: u64,
}

impl Rng {
    fn new(case: u64) -> Self {
        Rng {
            seed: mix_seed(FUZZ_SEED, case),
            index: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let v = mix_seed(self.seed, self.index);
        self.index += 1;
        v
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| (self.next_u64() & 0xff) as u8).collect()
    }
}

#[test]
fn random_payloads_round_trip_bit_identically() {
    for case in 0..200 {
        let mut rng = Rng::new(case);
        let len = rng.below(4096);
        let payload = rng.bytes(len);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let got = read_frame(&mut Cursor::new(&wire))
            .unwrap_or_else(|e| panic!("case {case}: round trip failed: {e}"))
            .expect("a full frame was written");
        assert_eq!(got, payload, "case {case}: payload changed in flight");
    }
}

#[test]
fn truncated_frames_are_typed_errors_never_panics() {
    for case in 0..200 {
        let mut rng = Rng::new(case);
        let plen = 1 + rng.below(512);
        let payload = rng.bytes(plen);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        // Every proper prefix of a valid frame: empty means clean EOF
        // (Ok(None)); anything else is a typed UnexpectedEof.
        let cut = rng.below(wire.len());
        match read_frame(&mut Cursor::new(&wire[..cut])) {
            Ok(None) => assert_eq!(cut, 0, "case {case}: partial frame read as EOF"),
            Ok(Some(_)) => panic!("case {case}: truncated frame decoded to a payload"),
            Err(e) => assert_eq!(
                e.kind(),
                ErrorKind::UnexpectedEof,
                "case {case}: wrong error kind {e:?}"
            ),
        }
    }
}

#[test]
fn oversized_length_claims_are_refused_without_the_allocation() {
    // A header claiming more than MAX_FRAME is refused outright.
    for claim in [MAX_FRAME as u32 + 1, u32::MAX, u32::MAX - 7] {
        let mut wire = claim.to_be_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut Cursor::new(&wire)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData, "claim {claim}");
    }
    // A hostile-but-legal claim (MAX_FRAME with almost no data behind
    // it) must fail fast as EOF — the progressive reader never trusts
    // the header enough to allocate the full claim up front, so this
    // also finishes instantly instead of reserving 16 MiB per probe.
    let started = std::time::Instant::now();
    for _ in 0..64 {
        let mut wire = (MAX_FRAME as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 64]);
        let err = read_frame(&mut Cursor::new(&wire)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    }
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "hostile length claims must not cost a 16 MiB allocation each"
    );
}

#[test]
fn single_bit_corruption_never_yields_a_payload() {
    for case in 0..200 {
        let mut rng = Rng::new(case);
        let plen = 1 + rng.below(256);
        let payload = rng.bytes(plen);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let bit = rng.below(wire.len() * 8);
        wire[bit / 8] ^= 1 << (bit % 8);
        // A flipped length field misroutes the read (oversize claim or
        // short read); a flipped CRC or payload bit fails the checksum.
        // All are typed errors — CRC-32 catches every single-bit error.
        match read_frame(&mut Cursor::new(&wire)) {
            Err(e) if matches!(e.kind(), ErrorKind::InvalidData | ErrorKind::UnexpectedEof) => {}
            Err(e) => panic!("case {case} bit {bit}: unexpected error kind {e:?}"),
            Ok(got) => panic!("case {case} bit {bit}: corruption went undetected: {got:?}"),
        }
    }
}

#[test]
fn random_garbage_streams_never_panic_the_reader() {
    for case in 0..400 {
        let mut rng = Rng::new(case ^ 0xdead);
        let wlen = rng.below(2048);
        let wire = rng.bytes(wlen);
        // Any outcome is fine except a panic; a decoded payload must at
        // least have carried a valid CRC.
        let _ = read_frame(&mut Cursor::new(&wire));
    }
}

#[test]
fn garbage_json_is_a_typed_parse_error_for_both_directions() {
    for case in 0..300 {
        let mut rng = Rng::new(case ^ 0xbeef);
        let blen = rng.below(512);
        let bytes = rng.bytes(blen);
        let text = String::from_utf8_lossy(&bytes);
        // Parsers must return Err, not panic; random bytes essentially
        // never form a valid op/status object.
        if let Ok(req) = ServiceRequest::parse(&text) {
            panic!("case {case}: garbage parsed as request {req:?}");
        }
        if let Ok(rep) = ServiceReply::parse(&text) {
            panic!("case {case}: garbage parsed as reply {rep:?}");
        }
    }
    // Structured-but-wrong JSON: valid syntax, bad fields.
    for text in [
        "{}",
        "{\"op\":\"query\"}",
        "{\"op\":\"nope\"}",
        "{\"status\":\"ok\"}",
        "{\"status\":\"busy\",\"inflight\":\"many\"}",
        "[1,2,3]",
        "null",
    ] {
        assert!(ServiceRequest::parse(text).is_err(), "request: {text}");
        assert!(ServiceReply::parse(text).is_err(), "reply: {text}");
    }
}
