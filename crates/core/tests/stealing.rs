//! Stress tests for the work-stealing deque and pool: concurrent owner
//! pops racing thief steals must deliver every task exactly once, and a
//! deliberately imbalanced pool must actually steal.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use yac_core::{StealPool, WorkDeque};

/// SplitMix64, used only to vary thread interleavings across rounds.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One owner popping and two thieves stealing halves, concurrently, must
/// partition the deque's contents: every item lands in exactly one
/// collector, none duplicated, none lost. Several seeded rounds vary the
/// interleaving via yield patterns.
#[test]
fn concurrent_pops_and_steals_partition_the_deque() {
    const ITEMS: usize = 4000;
    for round in 0..6u64 {
        let deque = Arc::new(WorkDeque::new());
        for i in 0..ITEMS {
            deque.push(i);
        }
        let owner_done = Arc::new(AtomicBool::new(false));
        let collected: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));

        std::thread::scope(|scope| {
            {
                let deque = Arc::clone(&deque);
                let owner_done = Arc::clone(&owner_done);
                let collected = Arc::clone(&collected);
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    let mut state = mix(round ^ 0xB0B);
                    while let Some(item) = deque.pop() {
                        mine.push(item);
                        state = mix(state);
                        if state % 7 == 0 {
                            std::thread::yield_now();
                        }
                    }
                    owner_done.store(true, Ordering::Release);
                    collected.lock().unwrap().extend(mine);
                });
            }
            for thief in 0..2u64 {
                let deque = Arc::clone(&deque);
                let owner_done = Arc::clone(&owner_done);
                let collected = Arc::clone(&collected);
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    let mut state = mix(round.wrapping_mul(31) ^ thief);
                    loop {
                        let batch = deque.steal_half();
                        if batch.is_empty() && owner_done.load(Ordering::Acquire) {
                            break;
                        }
                        mine.extend(batch);
                        state = mix(state);
                        if state % 3 == 0 {
                            std::thread::yield_now();
                        }
                    }
                    collected.lock().unwrap().extend(mine);
                });
            }
        });

        let mut all = Arc::try_unwrap(collected)
            .expect("threads joined")
            .into_inner()
            .unwrap();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..ITEMS).collect::<Vec<_>>(),
            "round {round}: items lost or duplicated under concurrent pop/steal"
        );
        assert!(deque.is_empty());
    }
}

/// Submitting every task to one worker of a multi-worker pool forces the
/// idle workers to steal; each task still runs exactly once, and the
/// pool's stolen counter proves redistribution happened.
#[test]
fn imbalanced_pool_steals_and_runs_each_task_exactly_once() {
    const TASKS: usize = 300;
    let pool = StealPool::new(4);
    assert_eq!(pool.workers(), 4);
    let runs: Arc<Vec<AtomicUsize>> = Arc::new((0..TASKS).map(|_| AtomicUsize::new(0)).collect());
    let done = Arc::new(AtomicUsize::new(0));

    for i in 0..TASKS {
        let runs = Arc::clone(&runs);
        let done = Arc::clone(&done);
        pool.submit_to(
            0,
            Box::new(move |_worker| {
                // A short stall keeps worker 0's deque non-empty long
                // enough for thieves to find it.
                std::thread::sleep(Duration::from_micros(100));
                runs[i].fetch_add(1, Ordering::AcqRel);
                done.fetch_add(1, Ordering::AcqRel);
            }),
        );
    }

    let deadline = Instant::now() + Duration::from_secs(30);
    while done.load(Ordering::Acquire) < TASKS {
        assert!(
            Instant::now() < deadline,
            "pool failed to drain {TASKS} tasks"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    for (i, count) in runs.iter().enumerate() {
        assert_eq!(
            count.load(Ordering::Acquire),
            1,
            "task {i} ran a wrong number of times"
        );
    }
    assert!(
        pool.stolen() > 0,
        "all work pinned to worker 0 yet nothing was stolen"
    );
    pool.shutdown();
}

/// Round-robin submission across workers also delivers exactly-once, and
/// shutdown drains queued work rather than dropping it.
#[test]
fn round_robin_pool_drains_all_work_on_shutdown() {
    const TASKS: usize = 500;
    let pool = StealPool::new(3);
    let done = Arc::new(AtomicUsize::new(0));
    for _ in 0..TASKS {
        let done = Arc::clone(&done);
        pool.submit(Box::new(move |_worker| {
            done.fetch_add(1, Ordering::AcqRel);
        }));
    }
    pool.shutdown();
    assert_eq!(done.load(Ordering::Acquire), TASKS);
}
