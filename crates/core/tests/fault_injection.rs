//! End-to-end robustness acceptance test: a fault plan corrupting 5 % of a
//! 500-chip population completes, quarantines exactly the injected chips,
//! and leaves the clean 95 % with loss-table results identical to an
//! uninjected run restricted to the same chips.

use yac_core::{
    render_loss_table, table2, ConstraintSpec, Population, PopulationConfig, YieldConstraints,
};
use yac_variation::FaultPlan;

#[test]
fn five_percent_injection_on_500_chips_is_fully_accounted() {
    let plan = FaultPlan::new(0.05, 2006).unwrap();
    let mut cfg = PopulationConfig::paper(42);
    cfg.chips = 500;
    cfg.faults = Some(plan);
    let injected = Population::generate_with(&cfg);

    // The run completes and reports exactly the injected chips.
    let expected = plan.injected_indices(42, 500);
    assert!(!expected.is_empty(), "5% of 500 must hit something");
    assert_eq!(injected.quarantine().indices(), expected);
    assert_eq!(injected.len() + injected.quarantine().len(), 500);

    // The clean survivors equal the uninjected run restricted to them.
    cfg.faults = None;
    let clean = Population::generate_with(&cfg);
    let survivors: Vec<u64> = injected.chips.iter().map(|c| c.index).collect();
    let restricted = clean.restricted_to(&survivors);
    assert_eq!(injected.chips, restricted.chips);

    // Both populations hold the same chips, so the derived constraints and
    // every loss-table number are identical; only the quarantine row tells
    // the runs apart.
    let constraints = YieldConstraints::derive(&injected, ConstraintSpec::NOMINAL);
    assert_eq!(
        constraints,
        YieldConstraints::derive(&restricted, ConstraintSpec::NOMINAL)
    );
    let from_injected = table2(&injected, &constraints);
    let from_restricted = table2(&restricted, &constraints);
    assert_eq!(from_injected.base, from_restricted.base);
    assert_eq!(from_injected.schemes, from_restricted.schemes);
    assert_eq!(from_injected.total_chips, from_restricted.total_chips);
    assert_eq!(from_injected.quarantined, expected.len());
    assert_eq!(from_restricted.quarantined, 0);

    // The rendered reports differ only by the quarantine row.
    let text_injected = render_loss_table(&from_injected);
    let text_restricted = render_loss_table(&from_restricted);
    let without_quarantine: Vec<&str> = text_injected
        .lines()
        .filter(|l| !l.starts_with("Quarantined"))
        .collect();
    assert!(text_injected.contains("Quarantined"));
    assert_eq!(
        without_quarantine,
        text_restricted.lines().collect::<Vec<_>>()
    );
}
