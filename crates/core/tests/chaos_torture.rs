//! Crash-consistency torture: kill a sweep at **every** durable-write
//! boundary (journal appends, checkpoint writes, checkpoint renames) in
//! a subprocess, resume, and require bit-identical loss tables and CPIs
//! versus an uninterrupted run.
//!
//! Chaos plans are process global, so every crashing run happens in its
//! own subprocess (`current_exe` re-invoked with `--exact` on the child
//! test, plan delivered via `YAC_CHAOS`); the few in-process installs
//! below are serialized by [`CHAOS_LOCK`].

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Mutex;
use std::time::Duration;
use yac_core::sweep::CpiOptions;
use yac_core::{
    chaos, run_sweep, ChaosPlan, ConstraintSpec, ExecutorConfig, PowerDownKind, StudyError,
    StudyStatus, SweepConfig, SweepGrid, SweepOutcome,
};

/// Serializes the tests in this binary that install a global chaos plan.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// The grid every torture run uses: two studies, small enough that a
/// full kill-at-every-op sweep stays fast, with CPI measurement on so
/// "CPIs survive resume bit-exactly" is actually exercised.
fn torture_grid() -> SweepGrid {
    SweepGrid {
        chips: 24,
        seeds: vec![1, 2],
        constraints: vec![ConstraintSpec::NOMINAL],
        kinds: vec![PowerDownKind::Vertical],
    }
}

fn torture_config() -> SweepConfig {
    let mut exec = ExecutorConfig::with_workers(2);
    exec.shard_chips = 8;
    exec.backoff = Duration::ZERO;
    SweepConfig {
        exec,
        // One study at a time: the journal's op sequence stays stable
        // enough that crash points land on meaningful boundaries.
        concurrent_studies: 1,
        checkpoint_every: 1,
        cpi: Some(CpiOptions {
            warmup_uops: 100,
            measure_uops: 400,
        }),
        cancel: None,
        faults: None,
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("yac-chaos-torture").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every number a sweep outcome carries, with f64s as bit images.
fn outcome_bits(outcome: &SweepOutcome) -> Vec<Vec<u64>> {
    outcome
        .studies
        .iter()
        .map(|(_, status)| match status {
            StudyStatus::Completed(r) | StudyStatus::Degraded(r) => {
                let mut bits = vec![
                    r.yield_interval.estimate.to_bits(),
                    r.yield_interval.lo.to_bits(),
                    r.yield_interval.hi.to_bits(),
                    r.mean_cpi.expect("torture config measures CPI").to_bits(),
                    r.loss.total_chips as u64,
                    r.loss.quarantined as u64,
                    r.loss.base.leakage as u64,
                ];
                bits.extend(r.loss.base.delay.iter().map(|&d| d as u64));
                for s in &r.loss.schemes {
                    bits.push(s.losses.leakage as u64);
                    bits.extend(s.losses.delay.iter().map(|&d| d as u64));
                }
                bits
            }
            other => panic!("torture studies must finish, got {other:?}"),
        })
        .collect()
}

fn terminal_records(journal: &Path) -> usize {
    std::fs::read_to_string(journal)
        .unwrap_or_default()
        .lines()
        .filter(|l| l.starts_with("S ") || l.starts_with("D ") || l.starts_with("F "))
        .count()
}

/// The subprocess side: inert unless the parent set `YAC_TORTURE_DIR`,
/// in which case it installs the `YAC_CHAOS` plan and runs the sweep —
/// aborting mid-write when the plan says so.
#[test]
fn chaos_child_run_sweep() {
    let Ok(dir) = std::env::var("YAC_TORTURE_DIR") else {
        return;
    };
    let plan = ChaosPlan::from_env()
        .expect("parent always sets a valid YAC_CHAOS")
        .expect("parent always sets YAC_CHAOS");
    chaos::install(plan);
    let journal = Path::new(&dir).join("torture.sweep");
    // The child may also complete (crash point past the op count) or
    // surface an injected fault; the parent interprets the exit.
    match run_sweep(&torture_grid(), &torture_config(), &journal) {
        Ok(_) => {}
        Err(StudyError::Io { .. }) => std::process::exit(3),
        Err(other) => panic!("unexpected sweep error under chaos: {other}"),
    }
}

#[test]
fn kill_at_every_write_boundary_then_resume_bit_exactly() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let grid = torture_grid();
    let config = torture_config();

    // Uninterrupted reference run.
    let reference_dir = fresh_dir("reference");
    let reference = run_sweep(&grid, &config, &reference_dir.join("torture.sweep")).unwrap();
    assert_eq!(reference.completed(), 2);
    let reference_bits = outcome_bits(&reference);

    // Count the durable-write ops one clean run performs: install a
    // fault-free, crash-free plan purely for its op counter.
    let count_dir = fresh_dir("count");
    chaos::install(ChaosPlan::new(0, 0.0).unwrap());
    let counted = run_sweep(&grid, &config, &count_dir.join("torture.sweep"));
    chaos::clear();
    assert_eq!(outcome_bits(&counted.unwrap()), reference_bits);
    let ops = chaos::ops();
    assert!(
        ops >= 7,
        "a 2-study sweep must cross several write boundaries, saw {ops}"
    );

    // Kill a subprocess at every boundary (torn every other time), then
    // resume in-process and demand bit-identity with the reference.
    let exe = std::env::current_exe().unwrap();
    for op in 0..ops {
        let dir = fresh_dir(&format!("kill-{op}"));
        let journal = dir.join("torture.sweep");
        let output = Command::new(&exe)
            .args(["chaos_child_run_sweep", "--exact", "--test-threads=1"])
            .env("YAC_TORTURE_DIR", &dir)
            .env(
                "YAC_CHAOS",
                format!("seed=0,rate=0,crash_at={op},torn={}", op % 2),
            )
            .output()
            .unwrap();
        assert!(
            !output.status.success(),
            "child must die at op {op}, got: {}",
            String::from_utf8_lossy(&output.stdout)
        );

        let recovered_on_disk = terminal_records(&journal);
        let resumed = run_sweep(&grid, &config, &journal)
            .unwrap_or_else(|e| panic!("resume after kill at op {op} failed: {e}"));
        assert_eq!(
            outcome_bits(&resumed),
            reference_bits,
            "kill at op {op}: resumed results must be bit-identical"
        );
        assert_eq!(
            resumed.recovered, recovered_on_disk,
            "kill at op {op}: every terminal record on disk must be \
             honoured without recomputation"
        );
        // Journal inspection: completed studies are never rerun, so each
        // study has exactly one terminal record even after the resume.
        assert_eq!(
            terminal_records(&journal),
            2,
            "kill at op {op}: one terminal record per study"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    let _ = std::fs::remove_dir_all(reference_dir);
    let _ = std::fs::remove_dir_all(count_dir);
}

#[test]
fn injected_io_faults_surface_as_typed_errors_never_panics() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let grid = torture_grid();
    let mut config = torture_config();
    config.cpi = None; // Fault behaviour is about the I/O path only.

    // Rate 1 fails the very first durable write — the journal header —
    // and the sweep must refuse to run without its crash-safety net.
    let dir = fresh_dir("faults-all");
    chaos::install(ChaosPlan::new(3, 1.0).unwrap());
    let result = run_sweep(&grid, &config, &dir.join("torture.sweep"));
    chaos::clear();
    match result {
        Err(StudyError::Io { message, .. }) => {
            assert!(
                message.contains("injected chaos fault"),
                "the typed error must carry the injection site: {message}"
            );
        }
        other => panic!("expected a typed I/O error, got {other:?}"),
    }

    // A moderate deterministic rate: whatever it hits — journal append
    // (sweep-level Io error) or checkpoint write (study-level failure) —
    // must surface as typed errors, never a panic or silent corruption.
    let dir = fresh_dir("faults-some");
    chaos::install(ChaosPlan::new(11, 0.25).unwrap());
    let result = run_sweep(&grid, &config, &dir.join("torture.sweep"));
    chaos::clear();
    let mut injected_seen = false;
    match result {
        Ok(outcome) => {
            for (_, status) in &outcome.studies {
                if let StudyStatus::Failed { error } = status {
                    assert!(
                        error.contains("injected chaos fault") || error.contains("degraded"),
                        "failures under chaos are typed: {error}"
                    );
                    injected_seen = true;
                }
            }
        }
        Err(StudyError::Io { message, .. }) => {
            assert!(message.contains("injected chaos fault"), "{message}");
            injected_seen = true;
        }
        Err(other) => panic!("unexpected error kind under chaos: {other}"),
    }
    assert!(
        injected_seen,
        "a 25% fault rate over a 2-study sweep must hit something"
    );

    // After clearing chaos the same journal can be repaired or rerun.
    let journal = dir.join("torture.sweep");
    let healthy = run_sweep(&grid, &config, &journal).unwrap();
    assert_eq!(
        healthy.completed() + healthy.failed() + healthy.degraded(),
        2
    );
    let _ = std::fs::remove_dir_all(std::env::temp_dir().join("yac-chaos-torture"));
}
