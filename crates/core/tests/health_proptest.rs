//! Property tests for the stall detector — the pure state machine at
//! the heart of the self-healing runtime. Detection must be correct at
//! the edges a wall-clock integration test can't pin down: a zero
//! budget, progress-tick wraparound, a heartbeat racing the cancel, and
//! every lane stalled at once.

use proptest::prelude::*;
use std::time::{Duration, Instant};
use yac_core::{LaneState, StallDetector, StallEvent};

fn busy(shard: u64, gen: u64, tick: u64) -> LaneState {
    LaneState {
        shard: Some(shard),
        gen,
        tick,
    }
}

const IDLE: LaneState = LaneState {
    shard: None,
    gen: 0,
    tick: 0,
};

proptest! {
    /// Zero budget is the degenerate fast path: a busy lane that shows
    /// the same `(gen, tick)` twice is `Missed` on its second
    /// observation and `Wedged` on its third — never on the first
    /// sighting (a lane must be *observed* stalled, not presumed), and
    /// never a fourth event for the same lease.
    #[test]
    fn zero_budget_escalates_on_the_second_observation(
        shard in 0u64..1 << 20,
        gen in 1u64..u64::MAX,
        tick in any::<u64>(),
    ) {
        let t0 = Instant::now();
        let mut d = StallDetector::new(1, Duration::ZERO);
        let state = [busy(shard, gen, tick)];
        prop_assert!(d.observe(&state, t0).is_empty());
        prop_assert_eq!(
            d.observe(&state, t0),
            vec![StallEvent::Missed { lane: 0, shard, gen }]
        );
        prop_assert_eq!(
            d.observe(&state, t0),
            vec![StallEvent::Wedged { lane: 0, shard, gen }]
        );
        prop_assert!(d.observe(&state, t0).is_empty(), "wedged fires once");
        prop_assert_eq!(d.stalled(), 1);
    }

    /// *Any* change of the `(gen, tick)` pair is progress — including
    /// the tick wrapping `u64::MAX → 0` and a generation change with the
    /// tick unchanged. A lane that keeps changing is never reported, no
    /// matter how much time passes.
    #[test]
    fn tick_wraparound_and_any_change_count_as_progress(
        shard in 0u64..1 << 20,
        budget_ms in 1u64..100,
        steps in 2usize..40,
    ) {
        let budget = Duration::from_millis(budget_ms);
        let t0 = Instant::now();
        let mut d = StallDetector::new(1, budget);
        // Walk the tick straight through the wraparound boundary, each
        // observation spaced *past* the budget: only change keeps the
        // lane alive.
        let mut tick = u64::MAX - (steps as u64) / 2;
        for step in 0..steps {
            let now = t0 + budget * (step as u32 + 1) * 2;
            let events = d.observe(&[busy(shard, 1, tick)], now);
            if step == 0 {
                prop_assert!(events.is_empty(), "first sighting");
            } else {
                prop_assert!(events.is_empty(), "tick changed: progress");
            }
            tick = tick.wrapping_add(1);
        }
        prop_assert_eq!(d.stalled(), 0);
        // Now hold the tick still for one budget: the stall is real.
        let t_stall = t0 + budget * (steps as u32 + 1) * 2;
        prop_assert!(d.observe(&[busy(shard, 1, tick)], t_stall).is_empty());
        let events = d.observe(&[busy(shard, 1, tick)], t_stall + budget);
        prop_assert_eq!(
            events,
            vec![StallEvent::Missed { lane: 0, shard, gen: 1 }]
        );
    }

    /// A heartbeat that races the cancel (progress observed *after*
    /// `Missed` fired) resets the ladder: the lane is alive after all,
    /// so it must not be reported `Wedged`, and `stalled()` drops back
    /// to zero. Only another full budget of silence may re-escalate.
    #[test]
    fn a_heartbeat_racing_the_cancel_resets_the_ladder(
        shard in 0u64..1 << 20,
        gen in 1u64..u64::MAX,
        tick in 0u64..u64::MAX - 1,
        budget_ms in 1u64..100,
    ) {
        let budget = Duration::from_millis(budget_ms);
        let t0 = Instant::now();
        let mut d = StallDetector::new(1, budget);
        let _ = d.observe(&[busy(shard, gen, tick)], t0);
        prop_assert_eq!(
            d.observe(&[busy(shard, gen, tick)], t0 + budget),
            vec![StallEvent::Missed { lane: 0, shard, gen }]
        );
        prop_assert_eq!(d.stalled(), 1);
        // The racing beat lands before the wedge deadline.
        let t_beat = t0 + budget + budget / 2;
        prop_assert!(d.observe(&[busy(shard, gen, tick + 1)], t_beat).is_empty());
        prop_assert_eq!(d.stalled(), 0, "the lane recovered");
        // Even two budgets after the *original* stall, no Wedged: the
        // budget restarted at the beat. Silence from the beat on may
        // only re-report Missed, never skip straight to Wedged.
        let events = d.observe(&[busy(shard, gen, tick + 1)], t_beat + budget);
        prop_assert_eq!(
            events,
            vec![StallEvent::Missed { lane: 0, shard, gen }]
        );
    }

    /// Every stalled lane reports — independently, in one observation,
    /// with its own shard and generation. Idle lanes mixed in are never
    /// blamed, and `stalled()` counts exactly the stalled ones.
    #[test]
    fn all_stalled_lanes_report_at_once(
        lanes in 1usize..24,
        idle_mask in any::<u32>(),
        budget_ms in 1u64..100,
    ) {
        let budget = Duration::from_millis(budget_ms);
        let t0 = Instant::now();
        let mut d = StallDetector::new(lanes, budget);
        let states: Vec<LaneState> = (0..lanes)
            .map(|i| {
                if idle_mask >> (i % 32) & 1 == 1 {
                    IDLE
                } else {
                    busy(100 + i as u64, 1 + i as u64, 7)
                }
            })
            .collect();
        let stalled: Vec<usize> = (0..lanes)
            .filter(|i| states[*i].shard.is_some())
            .collect();
        prop_assert!(d.observe(&states, t0).is_empty());
        let events = d.observe(&states, t0 + budget);
        let expected: Vec<StallEvent> = stalled
            .iter()
            .map(|&i| StallEvent::Missed {
                lane: i,
                shard: 100 + i as u64,
                gen: 1 + i as u64,
            })
            .collect();
        prop_assert_eq!(events, expected, "one Missed per busy lane");
        prop_assert_eq!(d.stalled(), stalled.len());
        // And the whole fleet wedges together when the cancels are
        // ignored for another budget.
        let events = d.observe(&states, t0 + budget * 2);
        prop_assert_eq!(events.len(), stalled.len());
        prop_assert!(events.iter().all(|e| matches!(e, StallEvent::Wedged { .. })));
    }
}
