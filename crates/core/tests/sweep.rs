//! The sweep orchestrator end to end: grid completeness, per-study
//! failure isolation, cooperative cancellation, journal resume (skipping
//! completed studies), and fresh-vs-resumed bit-identity.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use yac_core::sweep::CpiOptions;
use yac_core::{
    run_sweep, ConstraintSpec, ExecutorConfig, PowerDownKind, ShardFaultPlan, StudyError,
    StudyStatus, SweepConfig, SweepGrid, SweepOutcome,
};

fn small_grid() -> SweepGrid {
    SweepGrid {
        chips: 24,
        seeds: vec![1, 2],
        constraints: vec![ConstraintSpec::NOMINAL],
        kinds: vec![PowerDownKind::Vertical, PowerDownKind::Horizontal],
    }
}

fn config() -> SweepConfig {
    let mut exec = ExecutorConfig::with_workers(2);
    exec.shard_chips = 8;
    exec.backoff = Duration::ZERO;
    SweepConfig {
        exec,
        concurrent_studies: 2,
        checkpoint_every: 1,
        cpi: None,
        cancel: None,
        faults: None,
    }
}

fn journal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("yac-sweep-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

/// Every f64 a sweep outcome carries, as bits — the strictest equality.
fn outcome_bits(outcome: &SweepOutcome) -> Vec<Vec<u64>> {
    outcome
        .studies
        .iter()
        .map(|(_, status)| match status.result() {
            None => vec![],
            Some(r) => {
                let mut bits = vec![
                    r.yield_interval.estimate.to_bits(),
                    r.yield_interval.lo.to_bits(),
                    r.yield_interval.hi.to_bits(),
                    r.mean_cpi.unwrap_or(0.0).to_bits(),
                    r.loss.total_chips as u64,
                    r.loss.quarantined as u64,
                ];
                bits.push(r.loss.base.leakage as u64);
                bits.extend(r.loss.base.delay.iter().map(|&d| d as u64));
                for s in &r.loss.schemes {
                    bits.push(s.losses.leakage as u64);
                    bits.extend(s.losses.delay.iter().map(|&d| d as u64));
                }
                bits
            }
        })
        .collect()
}

fn cleanup(journal: &Path) {
    let _ = std::fs::remove_file(journal);
}

#[test]
fn sweep_runs_every_grid_cell_and_names_them_correctly() {
    let grid = small_grid();
    let journal = journal_path("complete.sweep");
    let outcome = run_sweep(&grid, &config(), &journal).unwrap();

    assert_eq!(outcome.studies.len(), 4);
    assert_eq!(outcome.completed(), 4);
    assert!(!outcome.resumed);
    assert_eq!(outcome.recovered, 0);
    assert!(!outcome.cancelled);
    for (spec, status) in &outcome.studies {
        let result = status.result().expect("all studies complete");
        assert_eq!(result.loss.spec_name, "nominal");
        assert_eq!(result.missing_chips, 0);
        assert_eq!(result.evaluated_chips, grid.chips);
        // Table 2 for vertical, Table 3 for horizontal.
        let expected_scheme = match spec.kind {
            PowerDownKind::Vertical => "YAPD",
            PowerDownKind::Horizontal => "H-YAPD",
        };
        assert_eq!(result.loss.schemes[0].name, expected_scheme);
    }
    // Per-study checkpoints are cleaned up once their record is durable.
    for index in 0..4 {
        assert!(!journal.with_extension(format!("s{index}.ckpt")).exists());
    }
    cleanup(&journal);
}

#[test]
fn concurrency_and_worker_count_do_not_change_results() {
    let grid = small_grid();
    let serial_journal = journal_path("serial.sweep");
    let mut serial_cfg = config();
    serial_cfg.concurrent_studies = 1;
    serial_cfg.exec.workers = 1;
    let serial = run_sweep(&grid, &serial_cfg, &serial_journal).unwrap();

    let parallel_journal = journal_path("parallel.sweep");
    let mut parallel_cfg = config();
    parallel_cfg.concurrent_studies = 4;
    parallel_cfg.exec.workers = 3;
    let parallel = run_sweep(&grid, &parallel_cfg, &parallel_journal).unwrap();

    assert_eq!(outcome_bits(&serial), outcome_bits(&parallel));
    cleanup(&serial_journal);
    cleanup(&parallel_journal);
}

#[test]
fn resume_skips_completed_studies_and_matches_a_fresh_run() {
    let grid = small_grid();
    let cfg = config();

    let fresh_journal = journal_path("fresh.sweep");
    let fresh = run_sweep(&grid, &cfg, &fresh_journal).unwrap();

    // Interrupt via cancellation after the first study, then resume.
    let resumed_journal = journal_path("resumed.sweep");
    let cancel = Arc::new(AtomicBool::new(true)); // cancel immediately...
    let mut first_cfg = cfg.clone();
    first_cfg.concurrent_studies = 1;
    first_cfg.cancel = Some(Arc::clone(&cancel));
    let cancelled = run_sweep(&grid, &first_cfg, &resumed_journal).unwrap();
    assert!(cancelled.cancelled);
    assert_eq!(cancelled.pending(), 4, "cancel before any study started");

    // ... then let exactly one study through.
    cancel.store(false, Ordering::Relaxed);
    let one_cancel = Arc::new(AtomicBool::new(false));
    let mut one_cfg = cfg.clone();
    one_cfg.concurrent_studies = 1;
    one_cfg.cancel = Some(Arc::clone(&one_cancel));
    std::thread::scope(|scope| {
        // Cancel as soon as the first terminal record lands.
        scope.spawn(|| loop {
            let text = std::fs::read_to_string(&resumed_journal).unwrap_or_default();
            if text
                .lines()
                .any(|l| l.starts_with("S ") || l.starts_with("D "))
            {
                one_cancel.store(true, Ordering::Relaxed);
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        });
        let partial = run_sweep(&grid, &one_cfg, &resumed_journal).unwrap();
        assert!(partial.resumed, "a journal already existed");
        assert!(partial.cancelled);
        assert!(partial.completed() >= 1);
        assert!(partial.pending() < 4);
    });

    // The final resume completes the rest without recomputing the done
    // ones: its `recovered` count equals the terminal records on disk.
    let terminal_on_disk = std::fs::read_to_string(&resumed_journal)
        .unwrap()
        .lines()
        .filter(|l| l.starts_with("S ") || l.starts_with("D ") || l.starts_with("F "))
        .count();
    assert!(terminal_on_disk >= 1);
    let finished = run_sweep(&grid, &cfg, &resumed_journal).unwrap();
    assert!(finished.resumed);
    assert_eq!(finished.recovered, terminal_on_disk);
    assert_eq!(finished.completed(), 4);
    assert_eq!(outcome_bits(&finished), outcome_bits(&fresh));

    cleanup(&fresh_journal);
    cleanup(&resumed_journal);
}

#[test]
fn a_poisoned_study_degrades_without_sinking_the_sweep() {
    let grid = small_grid();
    let journal = journal_path("poisoned.sweep");
    let mut cfg = config();
    // Every shard of every study fails on every attempt: populations come
    // back empty, which each study surfaces as a typed failure.
    cfg.exec.shard_faults = Some(ShardFaultPlan::always(u32::MAX));
    cfg.exec.max_retries = 0;
    let outcome = run_sweep(&grid, &cfg, &journal).unwrap();
    assert_eq!(outcome.failed(), 4, "all studies poisoned");
    for (_, status) in &outcome.studies {
        let StudyStatus::Failed { error } = status else {
            panic!("expected failure, got {status:?}");
        };
        assert!(error.contains("degraded"), "typed degraded error: {error}");
    }

    // A later healthy resume honours the failure records (it does not
    // silently retry them) — retrying is the caller's decision.
    let mut healthy = config();
    healthy.exec.shard_faults = None;
    let resumed = run_sweep(&grid, &healthy, &journal).unwrap();
    assert!(resumed.resumed);
    assert_eq!(resumed.recovered, 4);
    assert_eq!(resumed.failed(), 4);
    cleanup(&journal);
}

#[test]
fn partially_degraded_studies_report_honest_accounting() {
    let grid = small_grid();
    let journal = journal_path("degraded.sweep");
    let mut cfg = config();
    // Deterministically fail ~40% of shards beyond the retry budget.
    cfg.exec.shard_faults = Some(ShardFaultPlan::new(0.4, 7, u32::MAX).unwrap());
    cfg.exec.max_retries = 0;
    let outcome = run_sweep(&grid, &cfg, &journal).unwrap();
    let degraded: Vec<_> = outcome
        .studies
        .iter()
        .filter_map(|(_, s)| match s {
            StudyStatus::Degraded(r) => Some(r),
            _ => None,
        })
        .collect();
    assert!(
        !degraded.is_empty(),
        "a 40% shard-fault rate must degrade at least one of 4 studies"
    );
    for r in degraded {
        assert!(r.missing_chips > 0);
        assert!(r.degraded_shards > 0);
        assert_eq!(r.evaluated_chips + r.missing_chips, grid.chips);
        // Missing chips widen the interval beyond the Wald width.
        assert!(r.yield_interval.hi - r.yield_interval.lo > 0.0);
    }
    cleanup(&journal);
}

#[test]
fn journal_from_a_different_grid_is_refused() {
    let grid = small_grid();
    let journal = journal_path("mismatch.sweep");
    run_sweep(&grid, &config(), &journal).unwrap();

    let mut other = small_grid();
    other.seeds = vec![9, 10];
    let err = run_sweep(&other, &config(), &journal).unwrap_err();
    assert!(matches!(err, StudyError::Mismatch(_)), "got {err}");

    // A config that shapes results (CPI) also changes the fingerprint.
    let mut cpi_cfg = config();
    cpi_cfg.cpi = Some(CpiOptions {
        warmup_uops: 100,
        measure_uops: 400,
    });
    let err = run_sweep(&grid, &cpi_cfg, &journal).unwrap_err();
    assert!(matches!(err, StudyError::Mismatch(_)), "got {err}");

    // But executor tuning does not: resuming wider is fine.
    let mut wider = config();
    wider.exec.workers = 4;
    wider.concurrent_studies = 4;
    let outcome = run_sweep(&grid, &wider, &journal).unwrap();
    assert!(outcome.resumed);
    assert_eq!(outcome.recovered, 4);
    cleanup(&journal);
}

#[test]
fn empty_grids_are_rejected_up_front() {
    let journal = journal_path("empty.sweep");
    let mut grid = small_grid();
    grid.seeds.clear();
    assert!(matches!(
        run_sweep(&grid, &config(), &journal),
        Err(StudyError::Mismatch(_))
    ));
    let mut grid = small_grid();
    grid.chips = 0;
    assert!(matches!(
        run_sweep(&grid, &config(), &journal),
        Err(StudyError::Mismatch(_))
    ));
    assert!(!journal.exists(), "rejected sweeps must not touch disk");
}

#[test]
fn per_study_cpi_measurement_is_deterministic() {
    let mut grid = small_grid();
    grid.seeds = vec![1];
    grid.kinds = vec![PowerDownKind::Vertical];
    let mut cfg = config();
    cfg.cpi = Some(CpiOptions {
        warmup_uops: 200,
        measure_uops: 800,
    });

    let journal_a = journal_path("cpi-a.sweep");
    let a = run_sweep(&grid, &cfg, &journal_a).unwrap();
    let journal_b = journal_path("cpi-b.sweep");
    let b = run_sweep(&grid, &cfg, &journal_b).unwrap();

    let cpi_a = a.studies[0].1.result().unwrap().mean_cpi;
    let cpi_b = b.studies[0].1.result().unwrap().mean_cpi;
    assert!(cpi_a.is_some());
    assert_eq!(
        cpi_a.map(f64::to_bits),
        cpi_b.map(f64::to_bits),
        "CPI must be bit-identical run to run"
    );
    cleanup(&journal_a);
    cleanup(&journal_b);
}
